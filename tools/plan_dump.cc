// plan_dump: serialize, inspect, and round-trip physical plan blobs.
//
// Two modes:
//
//   # optimize a statement and write its framed plan blob
//   plan_dump --sql "SELECT ... " --out plan.cbqp
//
//   # read a blob back, validate framing/checksum, and pretty-print it
//   plan_dump --in plan.cbqp
//
// Serialization uses the versioned, checksummed wire format of
// optimizer/plan_serde.h (magic "CBQP"). The dump path also proves the
// round-trip inline: deserialize(serialize(plan)) must re-serialize
// bit-identical before the blob is written. By default the statement is
// optimized against the fuzzer's scaled-down HR database; --db hr uses the
// full-size workload schema instead.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "cbqt/engine.h"
#include "fuzz/harness.h"
#include "optimizer/plan_serde.h"
#include "storage/database.h"
#include "workload/schema_gen.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --sql STMT [--out FILE] [--db fuzz|hr]\n"
               "       %s --sql-file FILE [--out FILE] [--db fuzz|hr]\n"
               "       %s --in FILE\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sql, sql_file, out_path, in_path, db_kind = "fuzz";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--sql") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sql = v;
    } else if (arg == "--sql-file") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sql_file = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      out_path = v;
    } else if (arg == "--in") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      in_path = v;
    } else if (arg == "--db") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      db_kind = v;
    } else {
      return Usage(argv[0]);
    }
  }

  // Inspect mode: no database needed — the blob is self-contained.
  if (!in_path.empty()) {
    std::ifstream in(in_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    auto plan = cbqt::DeserializePlan(bytes);
    if (!plan.ok()) {
      std::fprintf(stderr, "invalid plan blob (%zu bytes): %s\n", bytes.size(),
                   plan.status().ToString().c_str());
      return 1;
    }
    std::printf("-- %s: %zu bytes, serde version %u\n", in_path.c_str(),
                bytes.size(), cbqt::kPlanSerdeVersion);
    std::printf("%s", cbqt::PlanToString(**plan).c_str());
    return 0;
  }

  if (!sql_file.empty()) {
    std::ifstream in(sql_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", sql_file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sql = buf.str();
  }
  if (sql.empty()) return Usage(argv[0]);

  cbqt::Database db;
  cbqt::Status st = db_kind == "hr"
                        ? cbqt::BuildHrDatabase(cbqt::SchemaConfig{}, &db)
                        : cbqt::BuildFuzzDatabase(&db);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to build %s database: %s\n", db_kind.c_str(),
                 st.ToString().c_str());
    return 2;
  }

  cbqt::QueryEngine engine(db);
  auto prepared = engine.Prepare(sql);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  std::string bytes = cbqt::SerializePlan(*prepared.value().plan);

  // Prove the round-trip before anything is written: the blob must
  // deserialize and re-serialize bit-identical.
  auto restored = cbqt::DeserializePlan(bytes);
  if (!restored.ok()) {
    std::fprintf(stderr, "round-trip failed to deserialize: %s\n",
                 restored.status().ToString().c_str());
    return 1;
  }
  if (cbqt::SerializePlan(**restored) != bytes) {
    std::fprintf(stderr, "round-trip is not bit-identical\n");
    return 1;
  }

  std::printf("-- %zu bytes, serde version %u, cost %.3f\n", bytes.size(),
              cbqt::kPlanSerdeVersion, prepared.value().cost);
  std::printf("%s", cbqt::PlanToString(*prepared.value().plan).c_str());

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out || !out.write(bytes.data(),
                           static_cast<std::streamsize>(bytes.size()))) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("-- wrote %s\n", out_path.c_str());
  }
  return 0;
}
