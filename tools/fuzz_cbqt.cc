// Metamorphic differential fuzzer CLI.
//
// Generates seeded random queries over the fuzz HR schema, derives
// equivalence-preserving mutants, and differences every (query, mutant)
// across the oracle deck (search strategies x threads x transform masks x
// executor batch/spill settings) against the reference interpreter.
// Exit code 0 = no divergence; 1 = divergence (repros printed, and dumped
// when --corpus-dir is given); 2 = usage/setup error.
//
//   fuzz_cbqt --seed 7 --time-box-ms 60000 --min-execs 500
//   fuzz_cbqt --rounds 50 --mutants 3 --corpus-dir tests/fuzz_corpus
//   fuzz_cbqt --canary --rounds 20          # must find the seeded bug
//   fuzz_cbqt --fault-sweep "exec-batch:p=0.002;planner:every=40"
//
// CBQT_FUZZ_SEED in the environment overrides --seed (soak runs).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz/harness.h"
#include "storage/database.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--rounds N] [--time-box-ms MS] [--mutants N]\n"
      "          [--min-execs N] [--corpus-dir DIR] [--canary]\n"
      "          [--fault-sweep SITES] [--fault-seed N] [--no-shrink]\n"
      "          [--serde-roundtrip]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  cbqt::FuzzOptions options;
  options.time_box_ms = 60000;
  int64_t min_execs = 0;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--rounds") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.rounds = std::atoi(v);
    } else if (arg == "--time-box-ms") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.time_box_ms = std::atof(v);
    } else if (arg == "--mutants") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.mutants_per_query = std::atoi(v);
    } else if (arg == "--min-execs") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      min_execs = std::atoll(v);
    } else if (arg == "--corpus-dir") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.corpus_dir = v;
    } else if (arg == "--canary") {
      options.canary = true;
    } else if (arg == "--fault-sweep") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.fault_sites = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--serde-roundtrip") {
      options.serde_roundtrip = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (const char* env_seed = std::getenv("CBQT_FUZZ_SEED")) {
    options.seed = std::strtoull(env_seed, nullptr, 10);
    std::printf("seed from CBQT_FUZZ_SEED: %llu\n",
                static_cast<unsigned long long>(options.seed));
  }

  cbqt::Database db;
  cbqt::Status st = cbqt::BuildFuzzDatabase(&db);
  if (!st.ok()) {
    std::fprintf(stderr, "failed to build fuzz database: %s\n",
                 st.ToString().c_str());
    return 2;
  }

  cbqt::FuzzReport report = cbqt::RunFuzz(db, options);
  std::printf("%s\n", report.Summary().c_str());

  if (min_execs > 0 && report.executions < min_execs) {
    std::fprintf(stderr, "FAIL: only %d differential executions (< %lld)\n",
                 report.executions, static_cast<long long>(min_execs));
    return 1;
  }
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: fuzzing found divergences\n");
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
