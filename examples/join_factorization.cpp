// Join factorization (paper §2.2.5, Q14 -> Q15): a UNION ALL whose branches
// join the same table gets that table hoisted out so it is scanned and
// joined once.
//
//   $ ./build/examples/join_factorization

#include <cstdio>

#include "binder/binder.h"
#include "cbqt/framework.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "sql/unparser.h"
#include "transform/join_factorization.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

int main() {
  Database db;
  SchemaConfig schema;
  schema.employees = 20000;
  schema.job_history = 30000;
  if (!BuildHrDatabase(schema, &db).ok()) return 1;

  // Q14-like: both branches join the (large, unindexed-join) job_history.
  const char* sql =
      "SELECT j.job_title, d.dept_name FROM job_history j, departments d "
      "WHERE j.dept_id = d.dept_id AND d.loc_id = 3 "
      "UNION ALL "
      "SELECT j.job_title, d.dept_name FROM job_history j, departments d "
      "WHERE j.dept_id = d.dept_id AND d.budget > 700000";

  auto q14 = ParseSql(sql);
  if (!q14.ok() || !BindQuery(db, q14.value().get()).ok()) return 1;

  PhysicalOptimizer physical(db);
  Executor executor(db);

  auto show = [&](const char* label, const QueryBlock& qb) {
    auto opt = physical.Optimize(qb);
    if (!opt.ok()) return;
    double t0 = NowMs();
    auto rows = executor.Execute(*opt->plan);
    double t1 = NowMs();
    std::printf("---- %s ----\n%s\n  estimated cost %10.1f   measured %7.1f "
                "ms   rows %zu\n\n",
                label, BlockToSqlPretty(qb).c_str(), opt->cost, t1 - t0,
                rows.ok() ? rows->rows.size() : 0);
  };

  std::printf("====== Q14: UNION ALL scans job_history twice ======\n\n");
  show("Q14", *q14.value());

  auto q15 = q14.value()->Clone();
  {
    TransformContext ctx{q15.get(), &db};
    JoinFactorizationTransformation factorize;
    int n = factorize.CountObjects(ctx);
    std::printf("factorization candidates found: %d\n\n", n);
    if (n < 1 || !factorize.Apply(ctx, OnesState(n)).ok() ||
        !BindQuery(db, q15.get()).ok()) {
      std::fprintf(stderr, "factorization failed\n");
      return 1;
    }
  }
  std::printf("====== Q15: common table factored out ======\n\n");
  show("Q15", *q15);

  CbqtOptimizer optimizer(db);
  auto chosen = optimizer.Optimize(*q14.value());
  if (chosen.ok()) {
    std::printf("CBQT applied:");
    for (const auto& a : chosen->stats.applied) std::printf(" %s", a.c_str());
    std::printf("  (final cost %.1f)\n", chosen->cost);
  }
  return 0;
}
