// A miniature of the paper's §4 performance study: run a mixed workload
// (mostly SPJ, ~8% transformable — the paper's stated mix) under the
// heuristic-only and cost-based optimizers, and summarize per family.
//
//   $ ./build/examples/workload_study [num_queries]
//
// The MQO axis runs the workload on N concurrent sessions sharing one
// engine, with multi-query optimization on or off:
//
//   $ ./build/examples/workload_study [num_queries] --mqo on|off [--sessions N]
//
// The multi-tenant axis runs N tenants against one scheduler-governed
// engine, each tenant an OLTP-heavy serving mix with an analytics tail,
// priorities dealt from --priority-mix (comma-separated classes, cycled
// over the tenants; default "0,1,2"):
//
//   $ ./build/examples/workload_study [num_queries] --tenants 3 \
//         [--priority-mix 0,2,2] [--sessions N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "workload/query_gen.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

namespace {

int RunMqoAxis(const WorkloadRunner& runner,
               const std::vector<WorkloadQuery>& queries, bool mqo_on,
               int sessions) {
  CbqtConfig cfg = ConfigForMode(OptimizerMode::kCostBased);
  cfg.mqo.enabled = mqo_on;
  double t0 = NowMs();
  WorkloadRunReport report = runner.RunAllConcurrent(queries, cfg, sessions);
  double wall_ms = NowMs() - t0;
  std::printf("mqo=%s sessions=%d: %d/%d ok, %.1f ms wall, %.1f q/s\n",
              mqo_on ? "on" : "off", sessions, report.succeeded,
              report.attempted, wall_ms,
              wall_ms > 0 ? report.succeeded / wall_ms * 1000.0 : 0.0);
  if (mqo_on) {
    std::printf(
        "  batches=%lld subplan_hits=%lld streams=%lld consumers=%lld "
        "rows_shared=%lld bytes_saved=%lld\n",
        static_cast<long long>(report.mqo_batches),
        static_cast<long long>(report.mqo_shared_subplan_hits),
        static_cast<long long>(report.mqo_scan_streams),
        static_cast<long long>(report.mqo_scan_consumers),
        static_cast<long long>(report.mqo_rows_shared),
        static_cast<long long>(report.mqo_bytes_saved));
  }
  if (report.failed > 0) {
    std::printf("%s\n", report.ErrorSummary().c_str());
  }
  return report.untyped_failures() == 0 ? 0 : 1;
}

std::vector<int> ParsePriorityMix(const char* arg) {
  std::vector<int> mix;
  std::string s(arg);
  size_t pos = 0;
  while (pos < s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    int p = std::atoi(s.substr(pos, comma - pos).c_str());
    if (p < 0) p = 0;
    if (p >= kNumPriorityClasses) p = kNumPriorityClasses - 1;
    mix.push_back(p);
    pos = comma + 1;
  }
  if (mix.empty()) mix = {0, 1, 2};
  return mix;
}

int RunTenantAxis(const WorkloadRunner& runner, const SchemaConfig& schema,
                  int count, int num_tenants, const std::vector<int>& mix,
                  int sessions) {
  CbqtConfig cfg = ConfigForMode(OptimizerMode::kCostBased);
  SchedulerConfig& sched = cfg.guardrails.scheduler;
  sched.enabled = true;
  sched.max_concurrent = sessions;
  sched.queue_timeout_ms = 10000;

  std::vector<WorkloadRunner::TenantSession> tenant_sessions;
  for (int i = 0; i < num_tenants; ++i) {
    TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.priority = mix[static_cast<size_t>(i) % mix.size()];
    // Higher classes get higher in-class weight too, so the study shows
    // both levers at once.
    spec.weight = kNumPriorityClasses - spec.priority;
    sched.tenants.push_back(spec);

    WorkloadRunner::TenantSession t;
    t.tenant = spec.name;
    t.queries = GenerateTenantWorkload(count, 0.8, 0.08, schema,
                                       17 + static_cast<uint64_t>(i));
    t.sessions = 2;
    tenant_sessions.push_back(std::move(t));
  }

  WorkloadRunReport report = runner.RunTenants(tenant_sessions, cfg);
  std::printf("%d tenants x %d queries, %d slots (priority mix: ",
              num_tenants, count, sessions);
  for (size_t i = 0; i < sched.tenants.size(); ++i) {
    std::printf("%s%d", i > 0 ? "," : "", sched.tenants[i].priority);
  }
  std::printf(")\n%-12s %4s %6s %8s %8s %8s %8s %9s\n", "tenant", "prio",
              "ok/all", "p50(ms)", "p99(ms)", "max(ms)", "q/s", "throttled");
  for (size_t i = 0; i < report.per_tenant.size(); ++i) {
    const TenantRunReport& t = report.per_tenant[i];
    std::printf("%-12s %4d %3d/%-3d %8.2f %8.2f %8.2f %8.1f %9d\n",
                t.tenant.c_str(), sched.tenants[i].priority, t.succeeded,
                t.attempted, t.p50_ms, t.p99_ms, t.max_ms, t.qps,
                t.gave_up_throttled);
  }
  std::printf("scheduler: shed=%lld budget_shrunk=%lld promotions=%lld\n",
              static_cast<long long>(report.scheduler_shed),
              static_cast<long long>(report.scheduler_budget_shrunk),
              static_cast<long long>(report.scheduler_promotions));
  if (report.failed > 0) std::printf("%s\n", report.ErrorSummary().c_str());
  return report.untyped_failures() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int count = 150;
  int sessions = 8;
  int mqo_axis = -1;  // -1: classic study; 0/1: concurrent MQO axis
  int num_tenants = 0;  // > 0: multi-tenant scheduling axis
  std::vector<int> priority_mix = {0, 1, 2};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--mqo") == 0 && i + 1 < argc) {
      mqo_axis = std::strcmp(argv[++i], "on") == 0 ? 1 : 0;
    } else if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      num_tenants = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--priority-mix") == 0 && i + 1 < argc) {
      priority_mix = ParsePriorityMix(argv[++i]);
    } else {
      count = std::atoi(argv[i]);
    }
  }
  Database db;
  SchemaConfig schema;
  schema.employees = 10000;
  schema.job_history = 15000;
  schema.orders = 15000;
  schema.order_items = 30000;
  schema.customers = 2000;
  if (num_tenants > 0) schema.oltp_indexes = true;
  if (!BuildHrDatabase(schema, &db).ok()) return 1;
  WorkloadRunner runner(db);

  if (num_tenants > 0) {
    return RunTenantAxis(runner, schema, count, num_tenants, priority_mix,
                         sessions);
  }

  auto queries = GenerateMixedWorkload(count, 0.5, schema, 17);

  if (mqo_axis >= 0) {
    return RunMqoAxis(runner, queries, mqo_axis == 1, sessions);
  }

  struct FamilyAgg {
    int n = 0;
    int changed = 0;
    double base_ms = 0;
    double cbqt_ms = 0;
  };
  std::map<std::string, FamilyAgg> by_family;

  for (const auto& q : queries) {
    auto base = runner.Run(q.sql, ConfigForMode(OptimizerMode::kHeuristicOnly));
    auto cbqt = runner.Run(q.sql, ConfigForMode(OptimizerMode::kCostBased));
    if (!base.ok() || !cbqt.ok()) continue;
    FamilyAgg& agg = by_family[QueryFamilyName(q.family)];
    ++agg.n;
    if (base->plan_shape != cbqt->plan_shape) ++agg.changed;
    agg.base_ms += base->total_ms();
    agg.cbqt_ms += cbqt->total_ms();
  }

  std::printf("%-16s %5s %8s %12s %12s %8s\n", "family", "n", "changed",
              "heuristic", "cost-based", "gain");
  double total_base = 0, total_cbqt = 0;
  for (const auto& [name, agg] : by_family) {
    total_base += agg.base_ms;
    total_cbqt += agg.cbqt_ms;
    std::printf("%-16s %5d %8d %10.1fms %10.1fms %7.0f%%\n", name.c_str(),
                agg.n, agg.changed, agg.base_ms, agg.cbqt_ms,
                agg.cbqt_ms > 0
                    ? (agg.base_ms - agg.cbqt_ms) / agg.cbqt_ms * 100
                    : 0.0);
  }
  std::printf("%-16s %31.1fms %10.1fms %7.0f%%\n", "TOTAL", total_base,
              total_cbqt,
              total_cbqt > 0 ? (total_base - total_cbqt) / total_cbqt * 100
                             : 0.0);
  std::printf(
      "\n(The paper's Figure 2 reports +20%% total run time on affected "
      "queries; SPJ\nqueries are unaffected by design — their plans should "
      "show `changed = 0`.)\n");
  return 0;
}
