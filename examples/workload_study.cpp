// A miniature of the paper's §4 performance study: run a mixed workload
// (mostly SPJ, ~8% transformable — the paper's stated mix) under the
// heuristic-only and cost-based optimizers, and summarize per family.
//
//   $ ./build/examples/workload_study [num_queries]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "workload/query_gen.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

int main(int argc, char** argv) {
  int count = argc > 1 ? std::atoi(argv[1]) : 150;
  Database db;
  SchemaConfig schema;
  schema.employees = 10000;
  schema.job_history = 15000;
  schema.orders = 15000;
  schema.order_items = 30000;
  schema.customers = 2000;
  if (!BuildHrDatabase(schema, &db).ok()) return 1;
  WorkloadRunner runner(db);

  auto queries = GenerateMixedWorkload(count, 0.5, schema, 17);

  struct FamilyAgg {
    int n = 0;
    int changed = 0;
    double base_ms = 0;
    double cbqt_ms = 0;
  };
  std::map<std::string, FamilyAgg> by_family;

  for (const auto& q : queries) {
    auto base = runner.Run(q.sql, ConfigForMode(OptimizerMode::kHeuristicOnly));
    auto cbqt = runner.Run(q.sql, ConfigForMode(OptimizerMode::kCostBased));
    if (!base.ok() || !cbqt.ok()) continue;
    FamilyAgg& agg = by_family[QueryFamilyName(q.family)];
    ++agg.n;
    if (base->plan_shape != cbqt->plan_shape) ++agg.changed;
    agg.base_ms += base->total_ms();
    agg.cbqt_ms += cbqt->total_ms();
  }

  std::printf("%-16s %5s %8s %12s %12s %8s\n", "family", "n", "changed",
              "heuristic", "cost-based", "gain");
  double total_base = 0, total_cbqt = 0;
  for (const auto& [name, agg] : by_family) {
    total_base += agg.base_ms;
    total_cbqt += agg.cbqt_ms;
    std::printf("%-16s %5d %8d %10.1fms %10.1fms %7.0f%%\n", name.c_str(),
                agg.n, agg.changed, agg.base_ms, agg.cbqt_ms,
                agg.cbqt_ms > 0
                    ? (agg.base_ms - agg.cbqt_ms) / agg.cbqt_ms * 100
                    : 0.0);
  }
  std::printf("%-16s %31.1fms %10.1fms %7.0f%%\n", "TOTAL", total_base,
              total_cbqt,
              total_cbqt > 0 ? (total_base - total_cbqt) / total_cbqt * 100
                             : 0.0);
  std::printf(
      "\n(The paper's Figure 2 reports +20%% total run time on affected "
      "queries; SPJ\nqueries are unaffected by design — their plans should "
      "show `changed = 0`.)\n");
  return 0;
}
