// An interactive SQL shell over the built-in HR database — the "downstream
// user" artifact: type queries, see the transformed tree, the plan, and the
// results. Everything runs through the cbqt::QueryEngine facade.
//
//   $ ./build/examples/cbqt_shell
//   cbqt> SELECT d.dept_name FROM departments d WHERE EXISTS
//         (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id);
//   cbqt> .mode heuristic      -- switch optimizer mode
//   cbqt> .threads 4           -- parallel state evaluation
//   cbqt> .explain on          -- toggle plan printing
//   cbqt> .tables              -- list tables
//   cbqt> .quit

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cbqt/engine.h"
#include "sql/unparser.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

namespace {

void PrintRows(const std::vector<Row>& rows, const Schema& schema) {
  // Header.
  for (const auto& slot : schema) {
    std::printf("%-18s", slot.name.c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < schema.size(); ++i) std::printf("----------------- ");
  std::printf("\n");
  size_t shown = 0;
  for (const auto& r : rows) {
    for (const auto& v : r) std::printf("%-18s", v.ToString().c_str());
    std::printf("\n");
    if (++shown >= 25) {
      std::printf("... (%zu more rows)\n", rows.size() - shown);
      break;
    }
  }
  std::printf("(%zu rows)\n", rows.size());
}

}  // namespace

int main() {
  std::printf("cbqt shell — cost-based query transformation demo\n");
  std::printf("building the HR database ...\n");
  Database db;
  SchemaConfig schema;
  schema.employees = 5000;
  schema.job_history = 8000;
  schema.orders = 6000;
  schema.order_items = 12000;
  schema.customers = 1000;
  if (!BuildHrDatabase(schema, &db).ok()) {
    std::fprintf(stderr, "failed to build database\n");
    return 1;
  }
  std::printf(
      "tables: departments employees job_history jobs locations customers\n"
      "        orders order_items products accounts\n"
      "commands: .mode cost|heuristic|unnest-off|jppd-off  .explain on|off\n"
      "          .threads N  .tables  .quit     (end SQL with ';')\n\n");

  OptimizerMode mode = OptimizerMode::kCostBased;
  int num_threads = 1;
  bool explain = true;
  std::string buffer;
  std::string line;
  std::printf("cbqt> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    if (buffer.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".tables") {
        for (const auto& name : db.catalog().TableNames()) {
          const TableStats* ts = db.stats().Find(name);
          std::printf("  %-14s %8.0f rows\n", name.c_str(),
                      ts != nullptr ? ts->rows : 0.0);
        }
      } else if (line == ".explain on") {
        explain = true;
      } else if (line == ".explain off") {
        explain = false;
      } else if (line.rfind(".threads ", 0) == 0) {
        int n = std::atoi(line.substr(9).c_str());
        if (n >= 1) {
          num_threads = n;
          std::printf("state evaluation on %d thread(s)\n", num_threads);
        } else {
          std::printf("usage: .threads N  (N >= 1)\n");
        }
      } else if (line.rfind(".mode ", 0) == 0) {
        std::string m = line.substr(6);
        if (m == "cost") mode = OptimizerMode::kCostBased;
        else if (m == "heuristic") mode = OptimizerMode::kHeuristicOnly;
        else if (m == "unnest-off") mode = OptimizerMode::kUnnestOff;
        else if (m == "jppd-off") mode = OptimizerMode::kJppdOff;
        else std::printf("unknown mode: %s\n", m.c_str());
      } else {
        std::printf("unknown command: %s\n", line.c_str());
      }
      std::printf("cbqt> ");
      std::fflush(stdout);
      continue;
    }
    buffer += line;
    buffer += "\n";
    if (buffer.find(';') == std::string::npos) {
      std::printf("   -> ");
      std::fflush(stdout);
      continue;
    }
    std::string sql = buffer.substr(0, buffer.find(';'));
    buffer.clear();

    CbqtConfig config = ConfigForMode(mode);
    config.num_threads = num_threads;
    QueryEngine engine(db, config);
    auto result = engine.Run(sql);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      std::printf("cbqt> ");
      std::fflush(stdout);
      continue;
    }
    const PreparedQuery& prepared = result->prepared;
    if (explain) {
      std::printf("-- transformed (%.2f ms", prepared.optimize_ms);
      for (const auto& a : prepared.stats.applied) {
        std::printf("; %s", a.c_str());
      }
      std::printf(")\n%s\n\n-- plan (cost %.1f)\n%s\n",
                  BlockToSqlPretty(*prepared.tree).c_str(), prepared.cost,
                  PlanToString(*prepared.plan).c_str());
    }
    PrintRows(result->rows, prepared.plan->output);
    std::printf("optimize %.2f ms, execute %.2f ms, %lld rows processed\n",
                prepared.optimize_ms, result->execute_ms,
                static_cast<long long>(result->rows_processed));
    std::printf("cbqt> ");
    std::fflush(stdout);
  }
  std::printf("bye\n");
  return 0;
}
