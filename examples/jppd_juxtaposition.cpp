// The paper's Q12 / Q13 / Q18 three-way comparison (§3.3.2 juxtaposition):
// a DISTINCT view joined to outer tables can stay as-is (Q12), have the join
// predicate pushed down — removing DISTINCT and converting to a semijoin
// (Q13) — or be merged with DISTINCT pulled up over ROWID keys (Q18). The
// optimizer must cost all three.
//
//   $ ./build/examples/jppd_juxtaposition

#include <cstdio>

#include "binder/binder.h"
#include "cbqt/framework.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "sql/unparser.h"
#include "transform/groupby_view_merge.h"
#include "transform/jppd.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

namespace {

void Show(const Database& db, const char* label, const QueryBlock& qb) {
  PhysicalOptimizer physical(db);
  auto opt = physical.Optimize(qb);
  if (!opt.ok()) {
    std::printf("%s: %s\n", label, opt.status().ToString().c_str());
    return;
  }
  Executor executor(db);
  double t0 = NowMs();
  auto rows = executor.Execute(*opt->plan);
  double t1 = NowMs();
  std::printf("---- %s ----\n%s\n  estimated cost %10.1f   measured %7.1f "
              "ms   rows %zu\n\n",
              label, BlockToSqlPretty(qb).c_str(), opt->cost, t1 - t0,
              rows.ok() ? rows->rows.size() : 0);
}

}  // namespace

int main() {
  Database db;
  SchemaConfig schema;
  schema.employees = 20000;
  schema.job_history = 30000;
  if (!BuildHrDatabase(schema, &db).ok()) return 1;

  // Q12: employees with post-1998 job history, via a DISTINCT view.
  const char* sql =
      "SELECT e1.employee_name, e1.salary FROM employees e1, (SELECT "
      "DISTINCT j.emp_id AS emp_id FROM job_history j WHERE j.start_date > "
      "'19980101') v WHERE v.emp_id = e1.emp_id AND e1.salary > 148000";

  auto q12 = ParseSql(sql);
  if (!q12.ok() || !BindQuery(db, q12.value().get()).ok()) return 1;
  std::printf("============ Q12: DISTINCT view, hash join ============\n\n");
  Show(db, "Q12", *q12.value());

  // Q13: join predicate pushed down; DISTINCT removed; semijoin.
  auto q13 = q12.value()->Clone();
  {
    TransformContext ctx{q13.get(), &db};
    JoinPredicatePushdownTransformation jppd;
    if (jppd.CountObjects(ctx) != 1 || !jppd.Apply(ctx, {true}).ok() ||
        !BindQuery(db, q13.get()).ok()) {
      std::fprintf(stderr, "jppd failed\n");
      return 1;
    }
  }
  std::printf("==== Q13: JPPD (lateral semijoin, DISTINCT removed) ====\n\n");
  Show(db, "Q13", *q13);

  // Q18: view merged, DISTINCT pulled up over ROWID keys.
  auto q18 = q12.value()->Clone();
  {
    TransformContext ctx{q18.get(), &db};
    GroupByViewMergeTransformation merge;
    if (merge.CountObjects(ctx) != 1 || !merge.Apply(ctx, {true}).ok() ||
        !BindQuery(db, q18.get()).ok()) {
      std::fprintf(stderr, "merge failed\n");
      return 1;
    }
  }
  std::printf("====== Q18: view merged, DISTINCT pulled up ======\n\n");
  Show(db, "Q18", *q18);

  // The framework juxtaposes all three and keeps the cheapest.
  CbqtOptimizer optimizer(db);
  auto chosen = optimizer.Optimize(*q12.value());
  if (chosen.ok()) {
    std::printf("=============== CBQT's choice ===============\n");
    std::printf("applied:");
    for (const auto& a : chosen->stats.applied) std::printf(" %s", a.c_str());
    std::printf("\nfinal cost %.1f\n%s\n", chosen->cost,
                BlockToSqlPretty(*chosen->tree).c_str());
  }
  return 0;
}
