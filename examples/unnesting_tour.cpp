// A tour of the paper's Q1 -> Q10 -> Q11 transformation chain: the same
// query costed (a) untransformed under tuple-iteration semantics, (b) with
// the aggregate subquery unnested into a GROUP BY view, and (c) with that
// view merged — the interleaving scenario of §3.3.1.
//
//   $ ./build/examples/unnesting_tour

#include <cstdio>

#include "binder/binder.h"
#include "cbqt/framework.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "parser/parser.h"
#include "sql/unparser.h"
#include "transform/groupby_view_merge.h"
#include "transform/subquery_unnest.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

namespace {

double TimeExecution(const Database& db, const PlanNode& plan) {
  Executor executor(db);
  double t0 = NowMs();
  auto rows = executor.Execute(plan);
  double t1 = NowMs();
  if (!rows.ok()) return -1;
  return t1 - t0;
}

void Show(const Database& db, const char* label, const QueryBlock& qb) {
  PhysicalOptimizer physical(db);
  auto opt = physical.Optimize(qb);
  if (!opt.ok()) {
    std::printf("%s: optimize failed: %s\n", label,
                opt.status().ToString().c_str());
    return;
  }
  double exec_ms = TimeExecution(db, *opt->plan);
  std::printf("---- %s ----\n%s\n  estimated cost: %10.1f   measured "
              "execution: %7.1f ms\n\n",
              label, BlockToSqlPretty(qb).c_str(), opt->cost, exec_ms);
}

}  // namespace

int main() {
  Database db;
  SchemaConfig schema;
  schema.employees = 8000;
  schema.job_history = 12000;
  Status st = BuildHrDatabase(schema, &db);
  if (!st.ok()) return 1;

  // Q1 with an aggregate correlated subquery (orders.emp_id variant uses an
  // unindexed correlation so the trade-off is visible; switch the date to
  // see the decision flip).
  const char* sql =
      "SELECT e1.employee_name, j.job_title FROM employees e1, job_history "
      "j WHERE e1.emp_id = j.emp_id AND j.start_date > '19990101' AND "
      "e1.salary > (SELECT AVG(e2.salary) FROM employees e2 WHERE "
      "e2.dept_id = e1.dept_id)";

  auto q1 = ParseSql(sql);
  if (!q1.ok()) return 1;
  if (!BindQuery(db, q1.value().get()).ok()) return 1;

  std::printf("=============== Q1: untransformed (TIS) ===============\n\n");
  Show(db, "Q1", *q1.value());

  // Q10: unnest the aggregate subquery into a GROUP BY inline view.
  auto q10 = q1.value()->Clone();
  {
    TransformContext ctx{q10.get(), &db};
    SubqueryUnnestViewTransformation unnest;
    int n = unnest.CountObjects(ctx);
    if (n != 1 || !unnest.Apply(ctx, {true}).ok() ||
        !BindQuery(db, q10.get()).ok()) {
      std::fprintf(stderr, "unnest failed\n");
      return 1;
    }
  }
  std::printf("========== Q10: unnested into a GROUP BY view =========\n\n");
  Show(db, "Q10", *q10);

  // Q11: merge the generated view (group-by pullup with ROWID keys).
  auto q11 = q10->Clone();
  {
    TransformContext ctx{q11.get(), &db};
    GroupByViewMergeTransformation merge;
    int n = merge.CountObjects(ctx);
    if (n != 1 || !merge.Apply(ctx, {true}).ok() ||
        !BindQuery(db, q11.get()).ok()) {
      std::fprintf(stderr, "merge failed\n");
      return 1;
    }
  }
  std::printf("======= Q11: the view merged above the joins ==========\n\n");
  Show(db, "Q11", *q11);

  // What does the full framework choose?
  CbqtOptimizer optimizer(db);
  auto chosen = optimizer.Optimize(*q1.value());
  if (chosen.ok()) {
    std::printf("=============== CBQT's choice ===============\n");
    std::printf("applied:");
    for (const auto& a : chosen->stats.applied) std::printf(" %s", a.c_str());
    std::printf("\nfinal cost %.1f\n%s\n", chosen->cost,
                BlockToSqlPretty(*chosen->tree).c_str());
    std::printf(
        "\nWithout interleaving (paper §3.3.1), unnesting would be rejected "
        "whenever\nQ10 alone costs more than Q1, even though Q11 is the "
        "cheapest of the three.\n");
  }
  return 0;
}
