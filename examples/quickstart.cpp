// Quickstart: build a database, run a SQL query through the cost-based
// transformation framework, and inspect what the optimizer did. The whole
// pipeline (parse -> bind -> CBQT -> physical plan -> execute) is behind
// the cbqt::QueryEngine facade.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "cbqt/engine.h"
#include "sql/unparser.h"
#include "workload/schema_gen.h"

using namespace cbqt;

int main() {
  // 1. Build an in-memory HR database (tables, data, indexes, statistics).
  Database db;
  SchemaConfig schema;
  schema.employees = 5000;
  schema.job_history = 8000;
  Status st = BuildHrDatabase(schema, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "schema: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. The paper's Q1: two subqueries, each independently unnestable.
  const char* sql =
      "SELECT e1.employee_name, j.job_title "
      "FROM employees e1, job_history j "
      "WHERE e1.emp_id = j.emp_id AND j.start_date > '19980101' "
      "AND e1.salary > (SELECT AVG(e2.salary) FROM employees e2 "
      "                 WHERE e2.dept_id = e1.dept_id) "
      "AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l "
      "                   WHERE d.loc_id = l.loc_id AND l.country_id = 'US')";
  std::printf("Original SQL:\n%s\n\n", sql);

  // 3. Prepare: heuristic transformations run imperatively, cost-based
  //    ones through state-space search (paper §3). CbqtConfig::num_threads
  //    would evaluate transformation states concurrently.
  QueryEngine engine(db);
  auto prepared = engine.Prepare(sql);
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  std::printf("Transformed query tree:\n%s\n\n",
              BlockToSqlPretty(*prepared->tree).c_str());
  std::printf("Transformations applied:");
  for (const auto& a : prepared->stats.applied) std::printf(" %s", a.c_str());
  std::printf("\nStates costed: %d  (interleaved: %d, annotations reused: "
              "%lld)\n\n",
              prepared->stats.states_evaluated,
              prepared->stats.interleaved_states,
              static_cast<long long>(prepared->stats.annotation_hits));
  std::printf("Physical plan (cost %.1f):\n%s\n", prepared->cost,
              PlanToString(*prepared->plan).c_str());

  // 4. Execute the prepared query.
  auto result = engine.Execute(std::move(prepared.value()));
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("Result: %zu rows (%lld rows processed by operators)\n",
              result->rows.size(),
              static_cast<long long>(result->rows_processed));
  for (size_t i = 0; i < result->rows.size() && i < 5; ++i) {
    std::printf("  %s, %s\n", result->rows[i][0].ToString().c_str(),
                result->rows[i][1].ToString().c_str());
  }
  if (result->rows.size() > 5) {
    std::printf("  ... and %zu more\n", result->rows.size() - 5);
  }
  return 0;
}
