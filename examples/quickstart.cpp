// Quickstart: build a database, run a SQL query through the cost-based
// transformation framework, and inspect what the optimizer did.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "cbqt/framework.h"
#include "exec/executor.h"
#include "parser/parser.h"
#include "sql/unparser.h"
#include "workload/runner.h"
#include "workload/schema_gen.h"

using namespace cbqt;

int main() {
  // 1. Build an in-memory HR database (tables, data, indexes, statistics).
  Database db;
  SchemaConfig schema;
  schema.employees = 5000;
  schema.job_history = 8000;
  Status st = BuildHrDatabase(schema, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "schema: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. The paper's Q1: two subqueries, each independently unnestable.
  const char* sql =
      "SELECT e1.employee_name, j.job_title "
      "FROM employees e1, job_history j "
      "WHERE e1.emp_id = j.emp_id AND j.start_date > '19980101' "
      "AND e1.salary > (SELECT AVG(e2.salary) FROM employees e2 "
      "                 WHERE e2.dept_id = e1.dept_id) "
      "AND e1.dept_id IN (SELECT d.dept_id FROM departments d, locations l "
      "                   WHERE d.loc_id = l.loc_id AND l.country_id = 'US')";
  std::printf("Original SQL:\n%s\n\n", sql);

  auto parsed = ParseSql(sql);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  // 3. Optimize: heuristic transformations run imperatively, cost-based
  //    ones through state-space search (paper §3).
  CbqtOptimizer optimizer(db);
  auto result = optimizer.Optimize(*parsed.value());
  if (!result.ok()) {
    std::fprintf(stderr, "optimize: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Transformed query tree:\n%s\n\n",
              BlockToSqlPretty(*result->tree).c_str());
  std::printf("Transformations applied:");
  for (const auto& a : result->stats.applied) std::printf(" %s", a.c_str());
  std::printf("\nStates costed: %d  (interleaved: %d, annotations reused: "
              "%lld)\n\n",
              result->stats.states_evaluated,
              result->stats.interleaved_states,
              static_cast<long long>(result->stats.annotation_hits));
  std::printf("Physical plan (cost %.1f):\n%s\n", result->cost,
              PlanToString(*result->plan).c_str());

  // 4. Execute.
  Executor executor(db);
  ExecStats stats;
  auto rows = executor.Execute(*result->plan, &stats);
  if (!rows.ok()) {
    std::fprintf(stderr, "execute: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("Result: %zu rows (%lld rows processed by operators)\n",
              rows->size(), static_cast<long long>(stats.rows_processed));
  for (size_t i = 0; i < rows->size() && i < 5; ++i) {
    std::printf("  %s, %s\n", (*rows)[i][0].ToString().c_str(),
                (*rows)[i][1].ToString().c_str());
  }
  if (rows->size() > 5) std::printf("  ... and %zu more\n", rows->size() - 5);
  return 0;
}
