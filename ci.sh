#!/usr/bin/env bash
# CI entry point: builds the Release, ThreadSanitizer, and Address/UB
# sanitizer configurations and runs the test suite on each. TSan must
# report zero races — the parallel CBQT search (ThreadPool + sharded
# AnnotationCache), the fault-injection tests (test_fault_injection,
# injected faults + budget under num_threads >= 4), the tenant scheduler's
# concurrent admission/dispatch legs (test_scheduler, multi-tenant threads
# hammering one TenantScheduler), and the COW + join-order
# memo equivalence sweeps (CowMemoMatchesFullClones in test_equivalence and
# CowMemoEscapeHatchBitIdentical in test_paper_queries, both at
# num_threads = 4) are exercised in every config. ASan/UBSan additionally
# covers the robustness corpus (test_parser_robustness, test_governor) and
# the spill-to-disk pipeline (test_batch_executor forces sort / hash-join /
# aggregation / distinct state through SpillManager temp files under a tiny
# memory budget, so the serialize/partition/merge paths run under ASan).
#
#   $ ./ci.sh              # release + tsan + asan + bench-smoke + fuzz-smoke
#   $ ./ci.sh release      # just the release config
#   $ ./ci.sh tsan         # just the thread-sanitizer config
#   $ ./ci.sh asan         # just the address/UB-sanitizer config
#   $ ./ci.sh bench-smoke  # quick Release run of the perf benches
#   $ ./ci.sh fuzz-smoke   # time-boxed metamorphic differential fuzz leg
set -euo pipefail
cd "$(dirname "$0")"

want="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  echo "=== [${name}] configure + build ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
}

if [[ "${want}" == "all" || "${want}" == "release" ]]; then
  run_config release -DCMAKE_BUILD_TYPE=Release
fi

if [[ "${want}" == "all" || "${want}" == "tsan" ]]; then
  # TSAN_OPTIONS makes any reported race fail the run (exit code != 0).
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" run_config tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
fi

if [[ "${want}" == "all" || "${want}" == "bench-smoke" ]]; then
  # Smoke-runs the perf benches on the Release build with minimal reps, so a
  # change that breaks bench linkage or the plan cache's warm-Prepare speedup
  # (>= 10x, asserted by bench_plan_cache itself) fails CI without paying for
  # a full measurement campaign.
  dir="build-ci-release"
  echo "=== [bench-smoke] configure + build ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${jobs}" \
    --target bench_table1_reuse bench_plan_cache bench_plan_warmstart \
    bench_state_eval bench_guardrails bench_executor bench_mqo bench_tenants
  echo "=== [bench-smoke] bench_table1_reuse ==="
  (cd "${dir}" && ./bench/bench_table1_reuse)
  echo "=== [bench-smoke] bench_plan_cache ==="
  (cd "${dir}" && ./bench/bench_plan_cache --reps 3)
  # bench_plan_warmstart asserts the persistence gates: snapshot warm-start
  # >= 10x faster than a cold optimize at bit-identical plans, instance B
  # importing every shape from the shared store on first touch, and
  # fuzz-corpus plans executing row-identically after a serde round-trip.
  echo "=== [bench-smoke] bench_plan_warmstart ==="
  (cd "${dir}" && ./bench/bench_plan_warmstart --reps 3)
  # bench_state_eval asserts its own gates: bit-identical plans between
  # COW+memo and forced full clones, and >= 2x states/sec.
  echo "=== [bench-smoke] bench_state_eval ==="
  (cd "${dir}" && ./bench/bench_state_eval --reps 3)
  # bench_guardrails asserts the runtime-guardrail gates: < 5% end-to-end
  # overhead with every polling/charging site active, p99 cancel latency
  # < 2x the polling quantum, and an 8-seed probabilistic fault-injection
  # sweep over a mixed workload that must complete process-level (counts
  # reconcile; injected failures stay per-query).
  echo "=== [bench-smoke] bench_guardrails ==="
  # 5 reps (not 3): the overhead gate is a best-of comparison of two ~100 ms
  # runs, and on a loaded single-core box 3 reps leaves enough noise to brush
  # the 5% gate.
  (cd "${dir}" && ./bench/bench_guardrails --reps 5 --cancel-samples 15)
  # bench_executor asserts the vectorized-executor gate: >= 2x rows/sec over
  # a faithful row-at-a-time baseline on scan / filter / hash-join /
  # hash-aggregate, with bit-identical result rows. 5 reps for the same
  # noise reason as bench_guardrails (best-of comparison on a loaded box).
  echo "=== [bench-smoke] bench_executor ==="
  (cd "${dir}" && ./bench/bench_executor --reps 5)
  # bench_mqo asserts the multi-query-optimization gate: 8 concurrent
  # sessions over repeated scan-dominated templates must reach >= 1.5x
  # aggregate throughput with MQO on vs off, with every execution's rows
  # verified bit-identical (canonically sorted) against an MQO-off
  # reference.
  echo "=== [bench-smoke] bench_mqo ==="
  (cd "${dir}" && ./bench/bench_mqo)
  # bench_tenants asserts the noisy-neighbor isolation gates: a well-behaved
  # tenant's p99 under a low-priority analytic flood stays <= 2x its
  # isolated baseline, every query completes or fails typed (zero
  # starvation, no untyped failures), and victim rows produced mid-flood are
  # bit-identical to a serial reference.
  echo "=== [bench-smoke] bench_tenants ==="
  (cd "${dir}" && CBQT_BENCH_QUERIES=60 ./bench/bench_tenants)
fi

if [[ "${want}" == "all" || "${want}" == "fuzz-smoke" ]]; then
  # Time-boxed metamorphic differential fuzzing (fixed seed, so the leg is
  # reproducible): random queries + equivalence-preserving mutants, every
  # execution differenced across the full oracle deck (4 search strategies,
  # transform masks, 1/4 threads, batch/spill settings) against the
  # reference interpreter. Three gates:
  #   1. ~60 s fuzz run with >= 500 differential executions, zero diffs;
  #   2. canary proof: --canary seeds a known bug, the run MUST catch it
  #      (a fuzzer that cannot find the canary is not testing anything);
  #   3. fault sweep: probabilistic fault injection at the planner and
  #      executor sites must degrade cleanly (clean error or clean result,
  #      never wrong rows).
  dir="build-ci-release"
  echo "=== [fuzz-smoke] configure + build ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "${dir}" -j "${jobs}" --target fuzz_cbqt
  # --serde-roundtrip additionally pushes every deck engine's chosen plan
  # through the binary plan serde (serialize -> deserialize -> re-serialize
  # must be bit-identical), so the fuzz deck doubles as the serde corpus.
  echo "=== [fuzz-smoke] differential fuzz (60s, seed 7) ==="
  (cd "${dir}" && ./tools/fuzz_cbqt --seed 7 --time-box-ms 60000 \
      --min-execs 500 --serde-roundtrip)
  echo "=== [fuzz-smoke] canary proof ==="
  if (cd "${dir}" && ./tools/fuzz_cbqt --seed 11 --canary --rounds 20 \
      --time-box-ms 0 --mutants 0 >/dev/null 2>&1); then
    echo "FAIL: canary bug was not detected" >&2
    exit 1
  fi
  echo "canary caught (exit 1 as required)"
  echo "=== [fuzz-smoke] fault-injection sweep ==="
  (cd "${dir}" && ./tools/fuzz_cbqt --seed 3 --rounds 40 --time-box-ms 0 \
      --fault-sweep "exec-batch:p=0.02;planner:every=7;exec-spill-write:p=0.01" \
      --fault-seed 5)
fi

if [[ "${want}" == "all" || "${want}" == "asan" ]]; then
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" run_config asan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
fi

echo "=== CI OK (${want}) ==="
