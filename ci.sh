#!/usr/bin/env bash
# CI entry point: builds the Release and ThreadSanitizer configurations and
# runs the test suite on both. TSan must report zero races — the parallel
# CBQT search (ThreadPool + sharded AnnotationCache) is exercised by
# test_parallel_search.
#
#   $ ./ci.sh            # release + tsan
#   $ ./ci.sh release    # just the release config
#   $ ./ci.sh tsan       # just the thread-sanitizer config
set -euo pipefail
cd "$(dirname "$0")"

want="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 2)"

run_config() {
  local name="$1"; shift
  local dir="build-ci-${name}"
  echo "=== [${name}] configure + build ==="
  cmake -B "${dir}" -S . "$@" >/dev/null
  cmake --build "${dir}" -j "${jobs}"
  echo "=== [${name}] ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
}

if [[ "${want}" == "all" || "${want}" == "release" ]]; then
  run_config release -DCMAKE_BUILD_TYPE=Release
fi

if [[ "${want}" == "all" || "${want}" == "tsan" ]]; then
  # TSAN_OPTIONS makes any reported race fail the run (exit code != 0).
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" run_config tsan \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
fi

echo "=== CI OK (${want}) ==="
