
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/binder/binder.cc" "src/CMakeFiles/cbqt_lib.dir/binder/binder.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/binder/binder.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/cbqt_lib.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/statistics.cc" "src/CMakeFiles/cbqt_lib.dir/catalog/statistics.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/catalog/statistics.cc.o.d"
  "/root/repo/src/cbqt/annotation_cache.cc" "src/CMakeFiles/cbqt_lib.dir/cbqt/annotation_cache.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/cbqt/annotation_cache.cc.o.d"
  "/root/repo/src/cbqt/framework.cc" "src/CMakeFiles/cbqt_lib.dir/cbqt/framework.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/cbqt/framework.cc.o.d"
  "/root/repo/src/cbqt/search.cc" "src/CMakeFiles/cbqt_lib.dir/cbqt/search.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/cbqt/search.cc.o.d"
  "/root/repo/src/cbqt/state.cc" "src/CMakeFiles/cbqt_lib.dir/cbqt/state.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/cbqt/state.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/cbqt_lib.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cbqt_lib.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/cbqt_lib.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/common/str_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/cbqt_lib.dir/common/value.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/common/value.cc.o.d"
  "/root/repo/src/exec/eval.cc" "src/CMakeFiles/cbqt_lib.dir/exec/eval.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/exec/eval.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/cbqt_lib.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/reference.cc" "src/CMakeFiles/cbqt_lib.dir/exec/reference.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/exec/reference.cc.o.d"
  "/root/repo/src/optimizer/card_est.cc" "src/CMakeFiles/cbqt_lib.dir/optimizer/card_est.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/optimizer/card_est.cc.o.d"
  "/root/repo/src/optimizer/join_order.cc" "src/CMakeFiles/cbqt_lib.dir/optimizer/join_order.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/optimizer/join_order.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/cbqt_lib.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/plan.cc" "src/CMakeFiles/cbqt_lib.dir/optimizer/plan.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/optimizer/plan.cc.o.d"
  "/root/repo/src/optimizer/planner.cc" "src/CMakeFiles/cbqt_lib.dir/optimizer/planner.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/optimizer/planner.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/cbqt_lib.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/cbqt_lib.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/parser/parser.cc.o.d"
  "/root/repo/src/sql/expr.cc" "src/CMakeFiles/cbqt_lib.dir/sql/expr.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/expr.cc.o.d"
  "/root/repo/src/sql/expr_util.cc" "src/CMakeFiles/cbqt_lib.dir/sql/expr_util.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/expr_util.cc.o.d"
  "/root/repo/src/sql/query_block.cc" "src/CMakeFiles/cbqt_lib.dir/sql/query_block.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/query_block.cc.o.d"
  "/root/repo/src/sql/signature.cc" "src/CMakeFiles/cbqt_lib.dir/sql/signature.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/signature.cc.o.d"
  "/root/repo/src/sql/type.cc" "src/CMakeFiles/cbqt_lib.dir/sql/type.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/type.cc.o.d"
  "/root/repo/src/sql/unparser.cc" "src/CMakeFiles/cbqt_lib.dir/sql/unparser.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/sql/unparser.cc.o.d"
  "/root/repo/src/storage/database.cc" "src/CMakeFiles/cbqt_lib.dir/storage/database.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/storage/database.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/cbqt_lib.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/cbqt_lib.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/storage/table.cc.o.d"
  "/root/repo/src/transform/group_pruning.cc" "src/CMakeFiles/cbqt_lib.dir/transform/group_pruning.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/group_pruning.cc.o.d"
  "/root/repo/src/transform/groupby_placement.cc" "src/CMakeFiles/cbqt_lib.dir/transform/groupby_placement.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/groupby_placement.cc.o.d"
  "/root/repo/src/transform/groupby_view_merge.cc" "src/CMakeFiles/cbqt_lib.dir/transform/groupby_view_merge.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/groupby_view_merge.cc.o.d"
  "/root/repo/src/transform/join_elimination.cc" "src/CMakeFiles/cbqt_lib.dir/transform/join_elimination.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/join_elimination.cc.o.d"
  "/root/repo/src/transform/join_factorization.cc" "src/CMakeFiles/cbqt_lib.dir/transform/join_factorization.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/join_factorization.cc.o.d"
  "/root/repo/src/transform/join_simplification.cc" "src/CMakeFiles/cbqt_lib.dir/transform/join_simplification.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/join_simplification.cc.o.d"
  "/root/repo/src/transform/jppd.cc" "src/CMakeFiles/cbqt_lib.dir/transform/jppd.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/jppd.cc.o.d"
  "/root/repo/src/transform/or_expansion.cc" "src/CMakeFiles/cbqt_lib.dir/transform/or_expansion.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/or_expansion.cc.o.d"
  "/root/repo/src/transform/predicate_moveround.cc" "src/CMakeFiles/cbqt_lib.dir/transform/predicate_moveround.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/predicate_moveround.cc.o.d"
  "/root/repo/src/transform/predicate_pullup.cc" "src/CMakeFiles/cbqt_lib.dir/transform/predicate_pullup.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/predicate_pullup.cc.o.d"
  "/root/repo/src/transform/setop_to_join.cc" "src/CMakeFiles/cbqt_lib.dir/transform/setop_to_join.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/setop_to_join.cc.o.d"
  "/root/repo/src/transform/subquery_unnest.cc" "src/CMakeFiles/cbqt_lib.dir/transform/subquery_unnest.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/subquery_unnest.cc.o.d"
  "/root/repo/src/transform/transform_util.cc" "src/CMakeFiles/cbqt_lib.dir/transform/transform_util.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/transform_util.cc.o.d"
  "/root/repo/src/transform/view_merge.cc" "src/CMakeFiles/cbqt_lib.dir/transform/view_merge.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/transform/view_merge.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/cbqt_lib.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/runner.cc" "src/CMakeFiles/cbqt_lib.dir/workload/runner.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/workload/runner.cc.o.d"
  "/root/repo/src/workload/schema_gen.cc" "src/CMakeFiles/cbqt_lib.dir/workload/schema_gen.cc.o" "gcc" "src/CMakeFiles/cbqt_lib.dir/workload/schema_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
