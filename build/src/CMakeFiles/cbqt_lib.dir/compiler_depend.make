# Empty compiler generated dependencies file for cbqt_lib.
# This may be replaced when dependencies are built.
