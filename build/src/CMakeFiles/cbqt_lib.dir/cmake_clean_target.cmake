file(REMOVE_RECURSE
  "libcbqt_lib.a"
)
