file(REMOVE_RECURSE
  "CMakeFiles/test_unparser.dir/test_unparser.cc.o"
  "CMakeFiles/test_unparser.dir/test_unparser.cc.o.d"
  "test_unparser"
  "test_unparser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unparser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
