# Empty dependencies file for test_unparser.
# This may be replaced when dependencies are built.
