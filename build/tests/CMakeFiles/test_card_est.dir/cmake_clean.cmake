file(REMOVE_RECURSE
  "CMakeFiles/test_card_est.dir/test_card_est.cc.o"
  "CMakeFiles/test_card_est.dir/test_card_est.cc.o.d"
  "test_card_est"
  "test_card_est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_card_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
