# Empty compiler generated dependencies file for test_card_est.
# This may be replaced when dependencies are built.
