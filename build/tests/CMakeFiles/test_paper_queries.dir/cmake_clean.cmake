file(REMOVE_RECURSE
  "CMakeFiles/test_paper_queries.dir/test_paper_queries.cc.o"
  "CMakeFiles/test_paper_queries.dir/test_paper_queries.cc.o.d"
  "test_paper_queries"
  "test_paper_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paper_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
