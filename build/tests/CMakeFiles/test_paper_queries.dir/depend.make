# Empty dependencies file for test_paper_queries.
# This may be replaced when dependencies are built.
