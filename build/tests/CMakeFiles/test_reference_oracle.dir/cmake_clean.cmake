file(REMOVE_RECURSE
  "CMakeFiles/test_reference_oracle.dir/test_reference_oracle.cc.o"
  "CMakeFiles/test_reference_oracle.dir/test_reference_oracle.cc.o.d"
  "test_reference_oracle"
  "test_reference_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
