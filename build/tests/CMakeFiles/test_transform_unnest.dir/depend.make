# Empty dependencies file for test_transform_unnest.
# This may be replaced when dependencies are built.
