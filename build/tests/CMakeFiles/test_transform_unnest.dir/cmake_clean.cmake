file(REMOVE_RECURSE
  "CMakeFiles/test_transform_unnest.dir/test_transform_unnest.cc.o"
  "CMakeFiles/test_transform_unnest.dir/test_transform_unnest.cc.o.d"
  "test_transform_unnest"
  "test_transform_unnest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_unnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
