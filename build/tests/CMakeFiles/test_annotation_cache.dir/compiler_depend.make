# Empty compiler generated dependencies file for test_annotation_cache.
# This may be replaced when dependencies are built.
