file(REMOVE_RECURSE
  "CMakeFiles/test_annotation_cache.dir/test_annotation_cache.cc.o"
  "CMakeFiles/test_annotation_cache.dir/test_annotation_cache.cc.o.d"
  "test_annotation_cache"
  "test_annotation_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotation_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
