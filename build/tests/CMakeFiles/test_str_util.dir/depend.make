# Empty dependencies file for test_str_util.
# This may be replaced when dependencies are built.
