file(REMOVE_RECURSE
  "CMakeFiles/test_str_util.dir/test_str_util.cc.o"
  "CMakeFiles/test_str_util.dir/test_str_util.cc.o.d"
  "test_str_util"
  "test_str_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_str_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
