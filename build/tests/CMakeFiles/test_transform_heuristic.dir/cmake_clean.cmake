file(REMOVE_RECURSE
  "CMakeFiles/test_transform_heuristic.dir/test_transform_heuristic.cc.o"
  "CMakeFiles/test_transform_heuristic.dir/test_transform_heuristic.cc.o.d"
  "test_transform_heuristic"
  "test_transform_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
