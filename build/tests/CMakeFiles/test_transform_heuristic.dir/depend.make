# Empty dependencies file for test_transform_heuristic.
# This may be replaced when dependencies are built.
