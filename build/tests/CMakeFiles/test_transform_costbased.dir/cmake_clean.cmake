file(REMOVE_RECURSE
  "CMakeFiles/test_transform_costbased.dir/test_transform_costbased.cc.o"
  "CMakeFiles/test_transform_costbased.dir/test_transform_costbased.cc.o.d"
  "test_transform_costbased"
  "test_transform_costbased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_costbased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
