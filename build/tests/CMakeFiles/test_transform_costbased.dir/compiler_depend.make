# Empty compiler generated dependencies file for test_transform_costbased.
# This may be replaced when dependencies are built.
