# Empty compiler generated dependencies file for test_expr_util.
# This may be replaced when dependencies are built.
