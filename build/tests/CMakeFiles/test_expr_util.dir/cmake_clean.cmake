file(REMOVE_RECURSE
  "CMakeFiles/test_expr_util.dir/test_expr_util.cc.o"
  "CMakeFiles/test_expr_util.dir/test_expr_util.cc.o.d"
  "test_expr_util"
  "test_expr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
