file(REMOVE_RECURSE
  "CMakeFiles/test_join_order.dir/test_join_order.cc.o"
  "CMakeFiles/test_join_order.dir/test_join_order.cc.o.d"
  "test_join_order"
  "test_join_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
