file(REMOVE_RECURSE
  "CMakeFiles/test_binder.dir/test_binder.cc.o"
  "CMakeFiles/test_binder.dir/test_binder.cc.o.d"
  "test_binder"
  "test_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
