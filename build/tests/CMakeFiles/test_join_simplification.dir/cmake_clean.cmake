file(REMOVE_RECURSE
  "CMakeFiles/test_join_simplification.dir/test_join_simplification.cc.o"
  "CMakeFiles/test_join_simplification.dir/test_join_simplification.cc.o.d"
  "test_join_simplification"
  "test_join_simplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join_simplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
