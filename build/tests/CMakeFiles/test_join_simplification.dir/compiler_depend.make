# Empty compiler generated dependencies file for test_join_simplification.
# This may be replaced when dependencies are built.
