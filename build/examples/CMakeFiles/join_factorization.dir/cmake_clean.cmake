file(REMOVE_RECURSE
  "CMakeFiles/join_factorization.dir/join_factorization.cpp.o"
  "CMakeFiles/join_factorization.dir/join_factorization.cpp.o.d"
  "join_factorization"
  "join_factorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_factorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
