# Empty compiler generated dependencies file for join_factorization.
# This may be replaced when dependencies are built.
