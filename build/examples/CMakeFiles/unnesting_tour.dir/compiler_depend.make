# Empty compiler generated dependencies file for unnesting_tour.
# This may be replaced when dependencies are built.
