file(REMOVE_RECURSE
  "CMakeFiles/unnesting_tour.dir/unnesting_tour.cpp.o"
  "CMakeFiles/unnesting_tour.dir/unnesting_tour.cpp.o.d"
  "unnesting_tour"
  "unnesting_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unnesting_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
