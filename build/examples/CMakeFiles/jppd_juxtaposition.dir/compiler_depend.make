# Empty compiler generated dependencies file for jppd_juxtaposition.
# This may be replaced when dependencies are built.
