file(REMOVE_RECURSE
  "CMakeFiles/jppd_juxtaposition.dir/jppd_juxtaposition.cpp.o"
  "CMakeFiles/jppd_juxtaposition.dir/jppd_juxtaposition.cpp.o.d"
  "jppd_juxtaposition"
  "jppd_juxtaposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jppd_juxtaposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
