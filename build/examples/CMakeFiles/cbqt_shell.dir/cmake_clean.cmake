file(REMOVE_RECURSE
  "CMakeFiles/cbqt_shell.dir/cbqt_shell.cpp.o"
  "CMakeFiles/cbqt_shell.dir/cbqt_shell.cpp.o.d"
  "cbqt_shell"
  "cbqt_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbqt_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
