# Empty compiler generated dependencies file for cbqt_shell.
# This may be replaced when dependencies are built.
