# Empty dependencies file for bench_fig2_cbqt.
# This may be replaced when dependencies are built.
