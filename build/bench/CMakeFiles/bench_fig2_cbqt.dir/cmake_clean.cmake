file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cbqt.dir/bench_fig2_cbqt.cc.o"
  "CMakeFiles/bench_fig2_cbqt.dir/bench_fig2_cbqt.cc.o.d"
  "bench_fig2_cbqt"
  "bench_fig2_cbqt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cbqt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
