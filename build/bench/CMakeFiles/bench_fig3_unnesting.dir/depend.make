# Empty dependencies file for bench_fig3_unnesting.
# This may be replaced when dependencies are built.
