file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_unnesting.dir/bench_fig3_unnesting.cc.o"
  "CMakeFiles/bench_fig3_unnesting.dir/bench_fig3_unnesting.cc.o.d"
  "bench_fig3_unnesting"
  "bench_fig3_unnesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_unnesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
