# Empty dependencies file for bench_fig4_jppd.
# This may be replaced when dependencies are built.
