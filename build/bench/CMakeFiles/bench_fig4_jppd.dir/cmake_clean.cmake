file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_jppd.dir/bench_fig4_jppd.cc.o"
  "CMakeFiles/bench_fig4_jppd.dir/bench_fig4_jppd.cc.o.d"
  "bench_fig4_jppd"
  "bench_fig4_jppd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_jppd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
