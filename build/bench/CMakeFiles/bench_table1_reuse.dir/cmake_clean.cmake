file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_reuse.dir/bench_table1_reuse.cc.o"
  "CMakeFiles/bench_table1_reuse.dir/bench_table1_reuse.cc.o.d"
  "bench_table1_reuse"
  "bench_table1_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
