# Empty dependencies file for bench_sec43_gbp.
# This may be replaced when dependencies are built.
