file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_gbp.dir/bench_sec43_gbp.cc.o"
  "CMakeFiles/bench_sec43_gbp.dir/bench_sec43_gbp.cc.o.d"
  "bench_sec43_gbp"
  "bench_sec43_gbp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_gbp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
