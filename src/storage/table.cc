#include "storage/table.h"

namespace cbqt {

namespace {

bool KindMatches(DataType t, const Value& v) {
  switch (t) {
    case DataType::kInt64:
      return v.kind() == ValueKind::kInt64;
    case DataType::kDouble:
      return v.kind() == ValueKind::kDouble || v.kind() == ValueKind::kInt64;
    case DataType::kString:
      return v.kind() == ValueKind::kString;
    case DataType::kBool:
      return v.kind() == ValueKind::kBool;
    case DataType::kUnknown:
      return true;
  }
  return false;
}

}  // namespace

Status Table::Insert(Row row) {
  if (row.size() != def_.columns.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + def_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& col = def_.columns[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return Status::InvalidArgument("NULL in NOT NULL column " + col.name);
      }
      continue;
    }
    if (!KindMatches(col.type, row[i])) {
      return Status::InvalidArgument("type mismatch in column " + col.name);
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace cbqt
