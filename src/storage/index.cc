#include "storage/index.h"

#include <algorithm>

namespace cbqt {

namespace {

// Total order over key rows (prefix-wise TotalLess).
bool KeyLess(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (TotalLess(a[i], b[i])) return true;
    if (TotalLess(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

bool KeyPrefixEqualNonNull(const Row& entry_key, const Row& probe) {
  for (size_t i = 0; i < probe.size(); ++i) {
    if (entry_key[i].is_null() || probe[i].is_null()) return false;
    if (CompareValues(entry_key[i], probe[i]) != Ordering::kEqual) return false;
  }
  return true;
}

}  // namespace

Index::Index(std::string name, const Table& table, std::vector<int> key_columns)
    : name_(std::move(name)), key_columns_(std::move(key_columns)) {
  entries_.reserve(table.NumRows());
  const auto& rows = table.rows();
  for (size_t r = 0; r < rows.size(); ++r) {
    Row key;
    key.reserve(key_columns_.size());
    for (int c : key_columns_) key.push_back(rows[r][static_cast<size_t>(c)]);
    entries_.push_back(Entry{std::move(key), static_cast<int64_t>(r)});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) { return KeyLess(a.key, b.key); });
}

std::vector<int64_t> Index::LookupEqual(const Row& key) const {
  std::vector<int64_t> out;
  for (const Value& v : key) {
    if (v.is_null()) return out;  // NULL probe matches nothing
  }
  // Binary search for the lower bound of the probe prefix.
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [&](const Entry& e, const Row& probe) {
        for (size_t i = 0; i < probe.size(); ++i) {
          if (TotalLess(e.key[i], probe[i])) return true;
          if (TotalLess(probe[i], e.key[i])) return false;
        }
        return false;
      });
  for (auto it = lo; it != entries_.end(); ++it) {
    if (!KeyPrefixEqualNonNull(it->key, key)) break;
    out.push_back(it->rowid);
  }
  return out;
}

std::vector<int64_t> Index::LookupRange(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  std::vector<int64_t> out;
  for (const Entry& e : entries_) {
    const Value& k = e.key[0];
    if (k.is_null()) continue;
    if (!lo.is_null()) {
      Ordering ord = CompareValues(k, lo);
      if (ord == Ordering::kUnknown) continue;
      if (ord == Ordering::kLess) continue;
      if (ord == Ordering::kEqual && !lo_inclusive) continue;
    }
    if (!hi.is_null()) {
      Ordering ord = CompareValues(k, hi);
      if (ord == Ordering::kUnknown) continue;
      if (ord == Ordering::kGreater) break;  // sorted: nothing further matches
      if (ord == Ordering::kEqual && !hi_inclusive) continue;
    }
    out.push_back(e.rowid);
  }
  return out;
}

}  // namespace cbqt
