#ifndef CBQT_STORAGE_TABLE_H_
#define CBQT_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "common/value.h"

namespace cbqt {

/// In-memory row-store table. Row position doubles as the implicit ROWID
/// pseudo-column (paper Q11 groups by `j.rowid` after group-by view
/// merging, so ROWIDs are first-class here).
class Table {
 public:
  explicit Table(TableDef def) : def_(std::move(def)) {}

  const TableDef& def() const { return def_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t NumRows() const { return rows_.size(); }

  /// Appends a row. The row must have exactly one value per column; type
  /// and nullability are validated.
  Status Insert(Row row);

  /// Appends without validation (bulk loads from the generator).
  void InsertUnchecked(Row row) { rows_.push_back(std::move(row)); }

 private:
  TableDef def_;
  std::vector<Row> rows_;
};

}  // namespace cbqt

#endif  // CBQT_STORAGE_TABLE_H_
