#ifndef CBQT_STORAGE_DATABASE_H_
#define CBQT_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/table.h"

namespace cbqt {

/// The database instance: catalog + stored tables + indexes + statistics.
///
/// This is the substrate every layer above (binder, optimizer, executor,
/// workload runner) consumes. Loading (CreateTable/Insert) is single-
/// threaded by design; once loaded, concurrent readers are safe, and the
/// one runtime mutator — Analyze(), which rebuilds statistics and indexes
/// in place — excludes them via a reader/writer lock: QueryEngine holds
/// ReadLock() for the duration of each engine operation, Analyze() takes
/// the lock exclusively. The stats epoch is bumped after the rebuild, so
/// plan-cache entries planned under the old statistics are invalidated on
/// their next lookup.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers the table in the catalog and creates empty storage plus the
  /// declared indexes' metadata (index contents are built by BuildIndexes /
  /// Analyze after loading).
  Status CreateTable(TableDef def);

  /// Inserts a row (validated).
  Status Insert(const std::string& table, Row row);

  /// Bulk-append without validation.
  Status InsertBulk(const std::string& table, std::vector<Row> rows);

  /// (Re)builds the physical structures for all declared indexes of `table`.
  Status BuildIndexes(const std::string& table);

  /// Computes table/column statistics for every table (and builds any
  /// missing indexes). Equivalent to ANALYZE.
  Status Analyze();

  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }
  const StatsRegistry& stats() const { return stats_; }

  /// Monotonic version of the statistics, bumped by every successful
  /// Analyze(). Plans are cached against an epoch (cbqt/plan_cache.h) and
  /// lazily invalidated when it moves — a stats refresh implicitly flushes
  /// every engine plan cache over this database.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// Shared (reader) lock over the stored data and statistics. Engine
  /// operations hold one for their whole duration so Analyze() cannot swap
  /// statistics or rebuild indexes under an in-flight plan or scan.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(rw_mu_);
  }

  /// nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// The built index with this name on this table, or nullptr.
  const Index* FindIndex(const std::string& table,
                         const std::string& index_name) const;

 private:
  /// BuildIndexes body without locking, shared by the public method and
  /// Analyze() (which already holds rw_mu_ exclusively).
  Status BuildIndexesLocked(const std::string& table);

  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<std::unique_ptr<Index>>> indexes_;
  StatsRegistry stats_;
  std::atomic<uint64_t> stats_epoch_{0};
  mutable std::shared_mutex rw_mu_;  ///< see ReadLock()
};

}  // namespace cbqt

#endif  // CBQT_STORAGE_DATABASE_H_
