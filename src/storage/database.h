#ifndef CBQT_STORAGE_DATABASE_H_
#define CBQT_STORAGE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "common/status.h"
#include "storage/index.h"
#include "storage/table.h"

namespace cbqt {

/// The database instance: catalog + stored tables + indexes + statistics.
///
/// This is the substrate every layer above (binder, optimizer, executor,
/// workload runner) consumes. Single-threaded by design; the paper's
/// experiments are about plan choice, not concurrency.
class Database {
 public:
  Database() = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers the table in the catalog and creates empty storage plus the
  /// declared indexes' metadata (index contents are built by BuildIndexes /
  /// Analyze after loading).
  Status CreateTable(TableDef def);

  /// Inserts a row (validated).
  Status Insert(const std::string& table, Row row);

  /// Bulk-append without validation.
  Status InsertBulk(const std::string& table, std::vector<Row> rows);

  /// (Re)builds the physical structures for all declared indexes of `table`.
  Status BuildIndexes(const std::string& table);

  /// Computes table/column statistics for every table (and builds any
  /// missing indexes). Equivalent to ANALYZE.
  Status Analyze();

  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }
  const StatsRegistry& stats() const { return stats_; }

  /// Monotonic version of the statistics, bumped by every successful
  /// Analyze(). Plans are cached against an epoch (cbqt/plan_cache.h) and
  /// lazily invalidated when it moves — a stats refresh implicitly flushes
  /// every engine plan cache over this database.
  uint64_t stats_epoch() const {
    return stats_epoch_.load(std::memory_order_acquire);
  }

  /// nullptr if absent.
  const Table* FindTable(const std::string& name) const;
  Table* FindMutableTable(const std::string& name);

  /// The built index with this name on this table, or nullptr.
  const Index* FindIndex(const std::string& table,
                         const std::string& index_name) const;

 private:
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, std::vector<std::unique_ptr<Index>>> indexes_;
  StatsRegistry stats_;
  std::atomic<uint64_t> stats_epoch_{0};
};

}  // namespace cbqt

#endif  // CBQT_STORAGE_DATABASE_H_
