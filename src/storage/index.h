#ifndef CBQT_STORAGE_INDEX_H_
#define CBQT_STORAGE_INDEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace cbqt {

/// Secondary index: key column values -> row ids, stored as a sorted vector
/// of (key, rowid). Supports equality probes on a key prefix and single-
/// column range probes, which is what the planner's index access paths and
/// index nested-loop joins need.
class Index {
 public:
  /// Builds the index over `table` for `key_columns` (column indices into
  /// the table schema, probe order).
  Index(std::string name, const Table& table, std::vector<int> key_columns);

  const std::string& name() const { return name_; }
  const std::vector<int>& key_columns() const { return key_columns_; }

  /// Row ids whose first `key.size()` key columns equal `key`
  /// (NULL keys never match, per SQL index semantics).
  std::vector<int64_t> LookupEqual(const Row& key) const;

  /// Row ids whose first key column lies in [lo, hi]; unbounded sides pass
  /// NULL. Only meaningful for single-column leading ranges.
  std::vector<int64_t> LookupRange(const Value& lo, bool lo_inclusive,
                                   const Value& hi, bool hi_inclusive) const;

  size_t NumEntries() const { return entries_.size(); }

 private:
  struct Entry {
    Row key;
    int64_t rowid;
  };

  std::string name_;
  std::vector<int> key_columns_;
  std::vector<Entry> entries_;
};

}  // namespace cbqt

#endif  // CBQT_STORAGE_INDEX_H_
