#include "storage/database.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "common/str_util.h"

namespace cbqt {

Status Database::CreateTable(TableDef def) {
  std::string name = ToLower(def.name);
  CBQT_RETURN_IF_ERROR(catalog_.AddTable(def));
  const TableDef* stored = catalog_.FindTable(name);
  tables_.emplace(name, std::make_unique<Table>(*stored));
  indexes_.emplace(name, std::vector<std::unique_ptr<Index>>{});
  return Status::OK();
}

Status Database::Insert(const std::string& table, Row row) {
  Table* t = FindMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  return t->Insert(std::move(row));
}

Status Database::InsertBulk(const std::string& table, std::vector<Row> rows) {
  Table* t = FindMutableTable(table);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  for (auto& row : rows) t->InsertUnchecked(std::move(row));
  return Status::OK();
}

Status Database::BuildIndexes(const std::string& table) {
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  return BuildIndexesLocked(table);
}

Status Database::BuildIndexesLocked(const std::string& table) {
  std::string name = ToLower(table);
  const Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("no such table: " + table);
  auto& built = indexes_[name];
  built.clear();
  for (const IndexDef& idef : t->def().indexes) {
    std::vector<int> cols;
    for (const auto& c : idef.columns) {
      int ci = t->def().FindColumn(ToLower(c));
      if (ci < 0) {
        return Status::InvalidArgument("index " + idef.name +
                                       " references unknown column " + c);
      }
      cols.push_back(ci);
    }
    built.push_back(std::make_unique<Index>(idef.name, *t, cols));
  }
  return Status::OK();
}

Status Database::Analyze() {
  // Exclusive against engine operations (Database::ReadLock): statistics
  // and index rebuilds never race an in-flight plan or scan.
  std::unique_lock<std::shared_mutex> lock(rw_mu_);
  for (auto& [name, table] : tables_) {
    CBQT_RETURN_IF_ERROR(BuildIndexesLocked(name));
    const auto& rows = table->rows();
    TableStats ts;
    ts.rows = static_cast<double>(rows.size());
    ts.blocks = std::max(1.0, std::ceil(ts.rows / kRowsPerBlock));
    ts.columns.resize(table->def().columns.size());
    for (size_t c = 0; c < table->def().columns.size(); ++c) {
      ColumnStats& cs = ts.columns[c];
      std::unordered_set<size_t> hashes;
      double nulls = 0;
      bool have_minmax = false;
      for (const Row& row : rows) {
        const Value& v = row[c];
        if (v.is_null()) {
          nulls += 1;
          continue;
        }
        hashes.insert(v.Hash());
        if (!have_minmax) {
          cs.min = v;
          cs.max = v;
          have_minmax = true;
        } else {
          if (TotalLess(v, cs.min)) cs.min = v;
          if (TotalLess(cs.max, v)) cs.max = v;
        }
      }
      cs.ndv = static_cast<double>(hashes.size());
      cs.null_frac = rows.empty() ? 0.0 : nulls / static_cast<double>(rows.size());
    }
    stats_.Put(name, std::move(ts));
  }
  stats_epoch_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return nullptr;
  return it->second.get();
}

Table* Database::FindMutableTable(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return nullptr;
  return it->second.get();
}

const Index* Database::FindIndex(const std::string& table,
                                 const std::string& index_name) const {
  auto it = indexes_.find(ToLower(table));
  if (it == indexes_.end()) return nullptr;
  for (const auto& idx : it->second) {
    if (idx->name() == index_name) return idx.get();
  }
  return nullptr;
}

}  // namespace cbqt
