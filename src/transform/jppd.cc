#include "transform/jppd.h"

#include "transform/transform_util.h"

namespace cbqt {

namespace {

struct JppdCandidate {
  QueryBlock* block;
  size_t from_index;
  /// Indices into block->where (for inner-joined views) or into the
  /// TableRef's join_conds (for semi/anti/outer-joined views) of the
  /// pushable predicates.
  std::vector<size_t> pred_indices;
  bool preds_in_join_conds;
};

// Is `e` a pushable join equality for view `valias`: `valias.c = other`,
// where `other` does not reference the view and has no subqueries?
bool PushableEquality(const Expr& e, const std::string& valias,
                      std::string* view_col, const Expr** other_side) {
  if (e.kind != ExprKind::kBinary || e.bop != BinaryOp::kEq) return false;
  const Expr* l = e.children[0].get();
  const Expr* r = e.children[1].get();
  const Expr* vref = nullptr;
  const Expr* other = nullptr;
  if (l->kind == ExprKind::kColumnRef && l->table_alias == valias) {
    vref = l;
    other = r;
  } else if (r->kind == ExprKind::kColumnRef && r->table_alias == valias) {
    vref = r;
    other = l;
  }
  if (vref == nullptr) return false;
  if (ExprUsesAlias(*other, valias)) return false;
  if (ContainsSubquery(*other) || ContainsRownum(*other)) return false;
  *view_col = vref->column_name;
  *other_side = other;
  return true;
}

// Can a predicate on output column `col` be pushed into regular view `v`?
bool ColumnPushable(const QueryBlock& v, const std::string& col) {
  auto colmap = ViewColumnMap(v);
  auto it = colmap.find(col);
  if (it == colmap.end()) return false;
  const Expr* def = it->second;
  if (ContainsAggregate(*def) || ContainsWindow(*def) ||
      ContainsSubquery(*def)) {
    return false;
  }
  if (v.IsAggregating()) {
    int key_index = -1;
    for (size_t g = 0; g < v.group_by.size(); ++g) {
      if (ExprEquals(*v.group_by[g], *def)) key_index = static_cast<int>(g);
    }
    if (key_index < 0) return false;
    // Under GROUPING SETS the key must be in every set (see
    // predicate_moveround.cc for the rationale).
    for (const auto& set : v.grouping_sets) {
      bool in_set = false;
      for (int k : set) {
        if (k == key_index) in_set = true;
      }
      if (!in_set) return false;
    }
  }
  return true;
}

bool ViewEligible(const TableRef& tr) {
  if (tr.IsBaseTable() || tr.no_merge || tr.lateral) return false;
  const QueryBlock& v = *tr.derived;
  if (v.rownum_limit >= 0) return false;
  if (v.IsSetOp()) {
    if (v.set_op != SetOpKind::kUnionAll && v.set_op != SetOpKind::kUnion) {
      return false;
    }
    for (const auto& b : v.branches) {
      if (b->IsSetOp() || b->rownum_limit >= 0) return false;
    }
    return true;
  }
  // Unmergeable-view categories the paper lists: distinct, group-by,
  // semi/anti/outer-joined. (A plain SPJ inner view would just be merged.)
  return v.distinct || v.IsAggregating() || tr.join != JoinKind::kInner;
}

bool ColumnPushableBranch(const QueryBlock& b,
                          const std::map<std::string, const Expr*>& colmap,
                          const std::string& col) {
  auto it = colmap.find(col);
  if (it == colmap.end()) return false;
  const Expr* def = it->second;
  if (ContainsAggregate(*def) || ContainsWindow(*def) ||
      ContainsSubquery(*def)) {
    return false;
  }
  if (b.IsAggregating()) {
    int key_index = -1;
    for (size_t g = 0; g < b.group_by.size(); ++g) {
      if (ExprEquals(*b.group_by[g], *def)) key_index = static_cast<int>(g);
    }
    if (key_index < 0) return false;
    for (const auto& set : b.grouping_sets) {
      bool in_set = false;
      for (int k : set) {
        if (k == key_index) in_set = true;
      }
      if (!in_set) return false;
    }
  }
  return true;
}

bool ColumnPushableIntoView(const QueryBlock& v, const std::string& col) {
  if (v.IsSetOp()) {
    for (size_t bi = 0; bi < v.branches.size(); ++bi) {
      if (v.branches[bi]->IsSetOp()) return false;
      if (!ColumnPushableBranch(*v.branches[bi], BranchColumnMap(v, bi), col)) {
        return false;
      }
    }
    return true;
  }
  return ColumnPushable(v, col);
}

std::vector<JppdCandidate> FindCandidates(QueryBlock* root) {
  std::vector<JppdCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if (b->IsSetOp()) return;
    for (size_t i = 0; i < b->from.size(); ++i) {
      TableRef& tr = b->from[i];
      if (!ViewEligible(tr)) continue;
      JppdCandidate cand;
      cand.block = b;
      cand.from_index = i;
      cand.preds_in_join_conds = tr.join != JoinKind::kInner;
      const std::vector<ExprPtr>& preds =
          cand.preds_in_join_conds ? tr.join_conds : b->where;
      for (size_t p = 0; p < preds.size(); ++p) {
        std::string col;
        const Expr* other = nullptr;
        if (!PushableEquality(*preds[p], tr.alias, &col, &other)) continue;
        if (!ColumnPushableIntoView(*tr.derived, col)) continue;
        // For inner-joined views the other side must reference at least one
        // sibling (otherwise it is just a filter, not a join predicate).
        if (!cand.preds_in_join_conds) {
          bool refs_sibling = false;
          for (const auto& e : b->from) {
            if (e.alias != tr.alias && ExprUsesAlias(*other, e.alias)) {
              refs_sibling = true;
            }
          }
          if (!refs_sibling) continue;
        }
        cand.pred_indices.push_back(p);
      }
      if (!cand.pred_indices.empty()) out.push_back(std::move(cand));
    }
  });
  return out;
}

void PushPredIntoView(QueryBlock* view, const std::string& valias,
                      ExprPtr pred) {
  if (view->IsSetOp()) {
    for (size_t bi = 0; bi < view->branches.size(); ++bi) {
      auto& b = view->branches[bi];
      auto colmap = BranchColumnMap(*view, bi);
      ExprPtr copy = pred->Clone();
      RewriteColumnRefs(&copy, [&](const Expr& ref) -> ExprPtr {
        if (ref.table_alias != valias) return nullptr;
        auto it = colmap.find(ref.column_name);
        if (it == colmap.end()) return nullptr;
        return it->second->Clone();
      });
      b->where.push_back(std::move(copy));
    }
    return;
  }
  auto colmap = ViewColumnMap(*view);
  RewriteColumnRefs(&pred, [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != valias) return nullptr;
    auto it = colmap.find(ref.column_name);
    if (it == colmap.end()) return nullptr;
    return it->second->Clone();
  });
  view->where.push_back(std::move(pred));
}

void ApplyJppd(TransformContext& ctx, const JppdCandidate& cand) {
  QueryBlock* b = cand.block;
  TableRef& tr = b->from[cand.from_index];
  QueryBlock& view = *tr.derived;

  // Record which view output columns get an equality pushed (for the
  // duplicate-operator removal below).
  std::set<std::string> pushed_cols;

  std::vector<ExprPtr>& source =
      cand.preds_in_join_conds ? tr.join_conds : b->where;
  // Remove in reverse index order.
  std::vector<ExprPtr> to_push;
  for (size_t k = cand.pred_indices.size(); k-- > 0;) {
    size_t p = cand.pred_indices[k];
    std::string col;
    const Expr* other = nullptr;
    if (PushableEquality(*source[p], tr.alias, &col, &other)) {
      pushed_cols.insert(col);
    }
    to_push.push_back(std::move(source[p]));
    source.erase(source.begin() + static_cast<long>(p));
  }
  for (auto& pred : to_push) {
    PushPredIntoView(&view, tr.alias, std::move(pred));
  }
  tr.lateral = true;

  // Q12 -> Q13: remove DISTINCT / GROUP BY when the pushed equalities cover
  // every duplicate-removal column of an aggregate-free view, converting
  // the join into a semijoin.
  if (!view.IsSetOp() && tr.join == JoinKind::kInner &&
      tr.join_conds.empty()) {
    bool has_aggregates = view.IsAggregating() && [&] {
      for (const auto& item : view.select) {
        if (ContainsAggregate(*item.expr)) return true;
      }
      return false;
    }();
    bool removable = false;
    if (view.distinct && !has_aggregates) {
      removable = true;
      for (const auto& item : view.select) {
        if (pushed_cols.count(item.alias) == 0) removable = false;
      }
    } else if (!view.group_by.empty() && !has_aggregates &&
               view.grouping_sets.empty()) {
      removable = true;
      auto colmap = ViewColumnMap(view);
      for (const auto& g : view.group_by) {
        bool covered = false;
        for (const auto& col : pushed_cols) {
          auto it = colmap.find(col);
          if (it != colmap.end() && ExprEquals(*it->second, *g)) {
            covered = true;
          }
        }
        if (!covered) removable = false;
      }
    }
    if (removable) {
      // The view's outputs must not be referenced elsewhere (a semijoin
      // hides them).
      std::set<const Expr*> none;
      if (CountAliasUses(*ctx.root, tr.alias, none) == 0) {
        view.distinct = false;
        view.group_by.clear();
        tr.join = JoinKind::kSemi;
      }
    }
  }
}

}  // namespace

int JoinPredicatePushdownTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status JoinPredicatePushdownTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("jppd object count changed");
  }
  // Within a block, applying one candidate erases WHERE conjuncts, which
  // shifts other candidates' predicate indices. Apply in reverse order of
  // enumeration; since predicate indices were collected ascending per
  // candidate and candidates of the same block are ordered by from index,
  // we conservatively re-enumerate after each application instead.
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    // Re-find this candidate by (block, from_index) to get fresh indices.
    auto fresh = FindCandidates(ctx.root);
    const JppdCandidate* match = nullptr;
    for (const auto& f : fresh) {
      if (f.block == candidates[i].block &&
          f.from_index == candidates[i].from_index) {
        match = &f;
      }
    }
    if (match == nullptr) continue;  // invalidated by a prior application
    ApplyJppd(ctx, *match);
  }
  return Status::OK();
}

bool JoinPredicatePushdownTransformation::HeuristicDecision(
    const TransformContext& ctx, int index) const {
  auto candidates = FindCandidates(ctx.root);
  if (index < 0 || index >= static_cast<int>(candidates.size())) return false;
  const JppdCandidate& cand = candidates[static_cast<size_t>(index)];
  const TableRef& tr = cand.block->from[cand.from_index];
  const QueryBlock* v = tr.derived.get();
  if (v->IsSetOp()) v = v->branches[0].get();
  const std::vector<ExprPtr>& preds =
      cand.preds_in_join_conds ? tr.join_conds : cand.block->where;
  auto colmap = ViewColumnMap(*tr.derived);
  for (size_t p : cand.pred_indices) {
    std::string col;
    const Expr* other = nullptr;
    if (!PushableEquality(*preds[p], tr.alias, &col, &other)) continue;
    auto it = colmap.find(col);
    if (it == colmap.end()) continue;
    const Expr* def = it->second;
    if (def->kind != ExprKind::kColumnRef) continue;
    int idx = v->FindFrom(def->table_alias);
    if (idx < 0) continue;
    const TableRef& inner_tr = v->from[static_cast<size_t>(idx)];
    if (inner_tr.IsBaseTable() && inner_tr.table_def != nullptr &&
        !inner_tr.table_def->FindIndexCovering({def->column_name}).empty()) {
      return true;  // an index inside the view: push
    }
  }
  return false;
}

}  // namespace cbqt
