#ifndef CBQT_TRANSFORM_OR_EXPANSION_H_
#define CBQT_TRANSFORM_OR_EXPANSION_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based disjunction-into-UNION-ALL expansion (paper §2.2.8): a block
/// whose WHERE contains a top-level disjunction `p1 OR p2 OR ... OR pn`
/// expands into a UNION ALL of n copies of the block, branch i filtered by
/// `p_i AND LNNVL(p_1) AND ... AND LNNVL(p_{i-1})` — the LNNVL guards keep
/// rows from appearing in two branches, preserving duplicate semantics
/// without a DISTINCT.
///
/// Objects: blocks with an expandable disjunction (the first one per
/// block). Never applied heuristically.
class OrExpansionTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "or-expansion"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override {
    (void)ctx;
    (void)index;
    return false;
  }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_OR_EXPANSION_H_
