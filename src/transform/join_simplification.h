#ifndef CBQT_TRANSFORM_JOIN_SIMPLIFICATION_H_
#define CBQT_TRANSFORM_JOIN_SIMPLIFICATION_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Outer-join simplification (imperative; the classic rewrite underlying
/// the outer-join reordering literature the paper cites [3][17][18]):
/// a LEFT OUTER JOIN whose null-padded rows are provably rejected by a
/// WHERE predicate on the right side degenerates to an inner join, which
/// frees the join order (outer joins are non-commutative, §2.1.1).
///
/// A predicate is null-rejecting here when it is a comparison or
/// IS NOT NULL over the outer-joined alias — both evaluate to
/// FALSE/UNKNOWN on the padded NULLs.
Result<bool> SimplifyOuterJoins(TransformContext& ctx);

/// Distinct elimination (imperative): DISTINCT is a no-op when the select
/// list already contains a unique key of a single-table block (each base
/// row appears at most once, so duplicates are impossible). Semi/anti
/// joined entries never multiply rows and do not block the rewrite.
Result<bool> EliminateDistinct(TransformContext& ctx);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_JOIN_SIMPLIFICATION_H_
