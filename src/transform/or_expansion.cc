#include "transform/or_expansion.h"

#include "sql/expr_util.h"
#include "transform/transform_util.h"

namespace cbqt {

namespace {

// Collects the disjuncts of a top-level OR tree.
void CollectDisjuncts(const Expr& e, std::vector<const Expr*>* out) {
  if (e.kind == ExprKind::kBinary && e.bop == BinaryOp::kOr) {
    CollectDisjuncts(*e.children[0], out);
    CollectDisjuncts(*e.children[1], out);
    return;
  }
  out->push_back(&e);
}

int FindExpandableConjunct(const QueryBlock& b) {
  if (b.IsSetOp() || b.IsAggregating() || b.distinct || b.from.empty() ||
      b.rownum_limit >= 0 || !b.order_by.empty() || !b.grouping_sets.empty()) {
    return -1;
  }
  for (const auto& item : b.select) {
    if (ContainsWindow(*item.expr) || ContainsRownum(*item.expr) ||
        ContainsSubquery(*item.expr)) {
      return -1;
    }
  }
  for (size_t i = 0; i < b.where.size(); ++i) {
    const Expr& w = *b.where[i];
    if (w.kind != ExprKind::kBinary || w.bop != BinaryOp::kOr) continue;
    if (ContainsSubquery(w) || ContainsRownum(w)) continue;
    // Expansion splits a filter on the block's *output* rows into disjoint
    // UNION ALL branches. A predicate referencing a semi/anti-joined alias
    // is not an output filter — it is part of the EXISTS/NOT EXISTS
    // semantics (the alias's rows never reach the output), and per-branch
    // LNNVL guards evaluate against different inner rows, so the branches
    // are not disjoint over the outer rows. Skip those disjunctions.
    bool joins_non_output_alias = false;
    for (const auto& tr : b.from) {
      if (tr.join != JoinKind::kSemi && tr.join != JoinKind::kAnti &&
          tr.join != JoinKind::kAntiNA) {
        continue;
      }
      if (ExprUsesAlias(w, tr.alias)) {
        joins_non_output_alias = true;
        break;
      }
    }
    if (joins_non_output_alias) continue;
    std::vector<const Expr*> disjuncts;
    CollectDisjuncts(w, &disjuncts);
    if (disjuncts.size() >= 2 && disjuncts.size() <= 4) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<QueryBlock*> FindCandidates(QueryBlock* root) {
  std::vector<QueryBlock*> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if (FindExpandableConjunct(*b) >= 0) out.push_back(b);
  });
  return out;
}

void ExpandOr(QueryBlock* b) {
  int idx = FindExpandableConjunct(*b);
  ExprPtr disjunction = std::move(b->where[static_cast<size_t>(idx)]);
  b->where.erase(b->where.begin() + idx);

  std::vector<const Expr*> disjuncts;
  CollectDisjuncts(*disjunction, &disjuncts);

  std::vector<CowPtr<QueryBlock>> branches;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    auto branch = b->Clone();
    branch->where.push_back(disjuncts[i]->Clone());
    // LNNVL guards against the earlier disjuncts keep branches disjoint
    // without a DISTINCT (duplicate-preserving, like Oracle's OR expansion).
    for (size_t j = 0; j < i; ++j) {
      branch->where.push_back(
          MakeUnary(UnaryOp::kLnnvl, disjuncts[j]->Clone()));
    }
    branches.push_back(std::move(branch));
  }

  b->select.clear();
  b->from.clear();
  b->where.clear();
  b->group_by.clear();
  b->having.clear();
  b->order_by.clear();
  b->set_op = SetOpKind::kUnionAll;
  b->branches = std::move(branches);
}

}  // namespace

int OrExpansionTransformation::CountObjects(const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status OrExpansionTransformation::Apply(TransformContext& ctx,
                                        const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("or-expansion object count changed");
  }
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    if (FindExpandableConjunct(*candidates[i]) < 0) continue;
    ExpandOr(candidates[i]);
  }
  return Status::OK();
}

}  // namespace cbqt
