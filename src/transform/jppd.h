#ifndef CBQT_TRANSFORM_JPPD_H_
#define CBQT_TRANSFORM_JPPD_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based join predicate pushdown (paper §2.2.3): pushes equality join
/// predicates inside distinct / group-by / UNION-ALL / semi- / anti- /
/// outer-joined views. Inside the view the pushed predicate acts like a
/// correlation, so the view becomes LATERAL, must follow the tables it now
/// references, and is joined by nested loop — opening index access paths
/// that plain views cannot use.
///
/// When the pushed equalities cover *all* DISTINCT/GROUP BY columns of an
/// aggregate-free view, the duplicate-removing operator is deleted and the
/// join converted to a semijoin (Q12 -> Q13).
///
/// Each view with at least one pushable predicate is one state-space
/// object. Heuristic decision: push when some pushed column maps to an
/// indexed base column inside the view.
class JoinPredicatePushdownTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "jppd"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override;
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_JPPD_H_
