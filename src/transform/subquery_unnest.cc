#include "transform/subquery_unnest.h"

#include <functional>

#include "transform/transform_util.h"

namespace cbqt {

bool ProvablyNonNull(const QueryBlock& root, const Expr& e) {
  if (e.kind == ExprKind::kLiteral) return !e.literal.is_null();
  if (e.kind != ExprKind::kColumnRef) return false;
  if (e.column_name == "rowid") return true;
  bool non_null = false;
  VisitAllBlocksConst(&root, [&](const QueryBlock* b) {
    int idx = b->FindFrom(e.table_alias);
    if (idx < 0) return;
    const TableRef& tr = b->from[static_cast<size_t>(idx)];
    if (tr.IsBaseTable() && tr.table_def != nullptr &&
        tr.table_def->IsNotNull(e.column_name)) {
      non_null = true;
    }
  });
  return non_null;
}

namespace {

// ---------------------------------------------------------------------------
// Heuristic merge unnesting
// ---------------------------------------------------------------------------

bool MergeUnnestable(const QueryBlock& parent, const Expr& w) {
  if (w.kind != ExprKind::kSubquery) return false;
  if (w.subkind == SubqueryKind::kScalar) return false;
  const QueryBlock& s = *w.subquery;
  if (s.IsSetOp() || s.IsAggregating() || s.rownum_limit >= 0) return false;
  if (s.from.size() != 1) return false;  // multi-table: cost-based path
  if (s.from[0].join != JoinKind::kInner || s.from[0].lateral) return false;
  for (const auto& item : s.select) {
    if (ContainsWindow(*item.expr) || ContainsSubquery(*item.expr) ||
        ContainsRownum(*item.expr)) {
      return false;
    }
  }
  for (const auto& c : s.where) {
    if (ContainsRownum(*c)) return false;
    if (ContainsSubquery(*c)) return false;  // nested subqueries stay TIS
  }
  if (!CorrelatedOnlyToParent(s, parent)) return false;
  return true;
}

// Performs the merge of subquery conjunct `w` into `parent`.
void MergeUnnest(TransformContext& ctx, QueryBlock* parent, ExprPtr w) {
  QueryBlock& s = *w->subquery;
  std::set<std::string> inner;
  CollectDefinedAliases(s, &inner);

  // Decide the join kind while `s` is still intact (nullability checks
  // resolve columns against its FROM list).
  JoinKind kind = JoinKind::kSemi;
  switch (w->subkind) {
    case SubqueryKind::kExists:
    case SubqueryKind::kIn:
    case SubqueryKind::kAnyCmp:
      kind = JoinKind::kSemi;
      break;
    case SubqueryKind::kNotExists:
      kind = JoinKind::kAnti;
      break;
    case SubqueryKind::kNotIn: {
      bool nullable = false;
      for (size_t i = 0; i < w->children.size(); ++i) {
        if (!ProvablyNonNull(*ctx.root, *w->children[i])) nullable = true;
        if (!ProvablyNonNull(s, *s.select[i].expr)) nullable = true;
      }
      kind = nullable ? JoinKind::kAntiNA : JoinKind::kAnti;
      break;
    }
    case SubqueryKind::kAllCmp: {
      bool nullable = !ProvablyNonNull(*ctx.root, *w->children[0]) ||
                      !ProvablyNonNull(s, *s.select[0].expr);
      kind = nullable ? JoinKind::kAntiNA : JoinKind::kAnti;
      break;
    }
    case SubqueryKind::kScalar:
      break;  // unreachable (filtered above)
  }

  TableRef entry = std::move(s.from[0]);
  std::vector<ExprPtr> local_conds;
  std::vector<ExprPtr> join_conds;
  for (auto& c : s.where) {
    bool touches_outer = false;
    VisitExprDeepConst(c.get(), [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef && !x->table_alias.empty() &&
          inner.count(x->table_alias) == 0) {
        touches_outer = true;
      }
    });
    if (touches_outer) {
      join_conds.push_back(std::move(c));
    } else {
      local_conds.push_back(std::move(c));
    }
  }

  // Connecting conditions from the subquery kind.
  switch (w->subkind) {
    case SubqueryKind::kIn:
    case SubqueryKind::kNotIn:
      for (size_t i = 0; i < w->children.size(); ++i) {
        join_conds.push_back(MakeBinary(BinaryOp::kEq,
                                        std::move(w->children[i]),
                                        std::move(s.select[i].expr)));
      }
      break;
    case SubqueryKind::kAnyCmp:
      join_conds.push_back(MakeBinary(w->sub_cmp, std::move(w->children[0]),
                                      std::move(s.select[0].expr)));
      break;
    case SubqueryKind::kAllCmp:
      // ALL becomes an antijoin on the *violating* rows.
      join_conds.push_back(MakeBinary(NegateComparison(w->sub_cmp),
                                      std::move(w->children[0]),
                                      std::move(s.select[0].expr)));
      break;
    default:
      break;
  }

  entry.join = kind;
  entry.join_conds = std::move(join_conds);
  // Local predicates on the (semi/anti-joined) table filter its rows before
  // the join; in the declarative tree they are plain WHERE conjuncts on the
  // moved alias, which the planner applies at the scan.
  for (auto& c : local_conds) parent->where.push_back(std::move(c));
  parent->from.push_back(std::move(entry));
}

// ---------------------------------------------------------------------------
// Cost-based view-generating unnesting
// ---------------------------------------------------------------------------

// One candidate: a WHERE conjunct of `block` holding an unnestable subquery.
// Discovery is read-only (blocks may be COW-shared with the base tree);
// `path` addresses the block positionally so Apply can thaw exactly the
// blocks whose bits are set.
struct ViewUnnestCandidate {
  const QueryBlock* block;
  std::vector<BlockStep> path;  // root -> block
  size_t conjunct;   // index into block->where
  bool aggregate;    // true: scalar aggregate comparison; false: multi-table
};

bool AggregateUnnestable(const QueryBlock& parent, const Expr& w) {
  // Shape: expr cmp (scalar subquery) — either side.
  if (w.kind != ExprKind::kBinary || !IsComparisonOp(w.bop)) return false;
  const Expr* sub = nullptr;
  const Expr* other = nullptr;
  if (w.children[0]->kind == ExprKind::kSubquery) {
    sub = w.children[0].get();
    other = w.children[1].get();
  } else if (w.children[1]->kind == ExprKind::kSubquery) {
    sub = w.children[1].get();
    other = w.children[0].get();
  }
  if (sub == nullptr || sub->subkind != SubqueryKind::kScalar) return false;
  if (ContainsSubquery(*other)) return false;
  const QueryBlock& s = *sub->subquery;
  if (s.IsSetOp() || s.distinct || !s.group_by.empty() || !s.having.empty() ||
      s.rownum_limit >= 0) {
    return false;
  }
  if (s.select.size() != 1) return false;
  const Expr& agg = *s.select[0].expr;
  if (agg.kind != ExprKind::kAggregate) return false;
  // COUNT over an empty group yields 0 (not NULL): a plain join would
  // lose the row — classic COUNT bug; keep TIS for those.
  if (agg.agg == AggFunc::kCount || agg.agg == AggFunc::kCountStar) {
    return false;
  }
  if (!IsCorrelated(s)) return false;
  if (!CorrelatedOnlyToParent(s, parent)) return false;
  for (const auto& tr : s.from) {
    if (tr.join != JoinKind::kInner || tr.lateral) return false;
  }
  for (const auto& c : s.where) {
    if (ContainsSubquery(*c) || ContainsRownum(*c)) return false;
  }
  // The correlated predicates must be extractable equalities; validate on a
  // clone so failure leaves the tree intact.
  auto probe = s.Clone();
  std::vector<CorrelatedEq> eqs;
  std::vector<ExprPtr> rest;
  return ExtractCorrelatedEqualities(probe.get(), parent, &eqs, &rest);
}

bool MultiTableUnnestable(const QueryBlock& parent, const Expr& w) {
  if (w.kind != ExprKind::kSubquery) return false;
  if (w.subkind == SubqueryKind::kScalar) return false;
  const QueryBlock& s = *w.subquery;
  if (s.IsSetOp() || s.IsAggregating() || s.rownum_limit >= 0) return false;
  if (s.from.size() < 2) return false;  // single-table handled by merging
  for (const auto& tr : s.from) {
    if (tr.join != JoinKind::kInner || tr.lateral) return false;
  }
  for (const auto& item : s.select) {
    if (ContainsWindow(*item.expr) || ContainsSubquery(*item.expr) ||
        ContainsRownum(*item.expr)) {
      return false;
    }
  }
  for (const auto& c : s.where) {
    if (ContainsSubquery(*c) || ContainsRownum(*c)) return false;
  }
  if (!CorrelatedOnlyToParent(s, parent)) return false;
  auto probe = s.Clone();
  std::vector<CorrelatedEq> eqs;
  std::vector<ExprPtr> rest;
  return ExtractCorrelatedEqualities(probe.get(), parent, &eqs, &rest);
}

std::vector<ViewUnnestCandidate> FindViewUnnestCandidates(
    const QueryBlock* root) {
  std::vector<ViewUnnestCandidate> out;
  VisitAllBlocksWithPath(
      root, [&](const QueryBlock* b, const std::vector<BlockStep>& path) {
        if (b->IsSetOp()) return;
        for (size_t i = 0; i < b->where.size(); ++i) {
          const Expr& w = *b->where[i];
          if (AggregateUnnestable(*b, w)) {
            out.push_back(ViewUnnestCandidate{b, path, i, true});
          } else if (MultiTableUnnestable(*b, w)) {
            out.push_back(ViewUnnestCandidate{b, path, i, false});
          }
        }
      });
  return out;
}

// Q1 -> Q10: unnest a correlated scalar aggregate subquery into an inline
// GROUP BY view joined on the correlation columns.
Status ApplyAggregateUnnest(TransformContext& ctx, QueryBlock* block,
                            size_t conjunct_idx, size_t cand_index) {
  ExprPtr w = std::move(block->where[conjunct_idx]);
  block->where.erase(block->where.begin() + static_cast<long>(conjunct_idx));

  bool sub_is_left = w->children[0]->kind == ExprKind::kSubquery;
  ExprPtr sub_expr = std::move(w->children[sub_is_left ? 0 : 1]);
  ExprPtr other = std::move(w->children[sub_is_left ? 1 : 0]);
  QueryBlock& s = *sub_expr->subquery;

  std::vector<CorrelatedEq> eqs;
  std::vector<ExprPtr> rest;
  if (!ExtractCorrelatedEqualities(&s, *block, &eqs, &rest)) {
    return Status::Internal("aggregate unnest candidate became illegal");
  }

  // The alias is keyed by the candidate's (state-independent) discovery
  // index: a candidate's view is named identically in every state that
  // unnests it, which is what lets block annotations and join-order memo
  // fingerprints match across states.
  std::string valias =
      GlobalUniqueAlias(*ctx.root, "vw_sq" + std::to_string(cand_index));
  auto view = std::make_unique<QueryBlock>();
  view->qb_name = valias;
  view->from = std::move(s.from);
  view->where = std::move(rest);
  SelectItem agg_item;
  agg_item.expr = std::move(s.select[0].expr);
  agg_item.alias = "agg_val";
  view->select.push_back(std::move(agg_item));
  for (size_t k = 0; k < eqs.size(); ++k) {
    view->group_by.push_back(eqs[k].local->Clone());
    SelectItem key_item;
    key_item.expr = std::move(eqs[k].local);
    key_item.alias = "c" + std::to_string(k);
    view->select.push_back(std::move(key_item));
  }

  // Rebuild the comparison against the view's aggregate output, preserving
  // operand order.
  ExprPtr agg_ref = MakeColumnRef(valias, "agg_val");
  ExprPtr new_cmp =
      sub_is_left
          ? MakeBinary(w->bop, std::move(agg_ref), std::move(other))
          : MakeBinary(w->bop, std::move(other), std::move(agg_ref));
  block->where.push_back(std::move(new_cmp));
  for (size_t k = 0; k < eqs.size(); ++k) {
    block->where.push_back(MakeBinary(BinaryOp::kEq, std::move(eqs[k].outer),
                                      MakeColumnRef(valias,
                                                    "c" + std::to_string(k))));
  }

  TableRef entry;
  entry.alias = valias;
  entry.derived = std::move(view);
  entry.join = JoinKind::kInner;
  block->from.push_back(std::move(entry));
  return Status::OK();
}

// Multi-table EXISTS / IN and negations: unnest into a semi-/anti-joined
// inline view (paper §2.2.1 first paragraph).
Status ApplyMultiTableUnnest(TransformContext& ctx, QueryBlock* block,
                             size_t conjunct_idx, size_t cand_index) {
  ExprPtr w = std::move(block->where[conjunct_idx]);
  block->where.erase(block->where.begin() + static_cast<long>(conjunct_idx));
  QueryBlock& s = *w->subquery;

  std::vector<CorrelatedEq> eqs;
  std::vector<ExprPtr> rest;
  if (!ExtractCorrelatedEqualities(&s, *block, &eqs, &rest)) {
    return Status::Internal("multi-table unnest candidate became illegal");
  }

  // The alias is keyed by the candidate's (state-independent) discovery
  // index: a candidate's view is named identically in every state that
  // unnests it, which is what lets block annotations and join-order memo
  // fingerprints match across states.
  std::string valias =
      GlobalUniqueAlias(*ctx.root, "vw_sq" + std::to_string(cand_index));
  auto view = std::make_unique<QueryBlock>();
  view->qb_name = valias;
  view->from = std::move(s.from);
  view->where = std::move(rest);

  std::vector<ExprPtr> join_conds;
  for (size_t k = 0; k < eqs.size(); ++k) {
    SelectItem item;
    item.expr = std::move(eqs[k].local);
    item.alias = "c" + std::to_string(k);
    view->select.push_back(std::move(item));
    join_conds.push_back(MakeBinary(
        BinaryOp::kEq, std::move(eqs[k].outer),
        MakeColumnRef(valias, "c" + std::to_string(k))));
  }

  JoinKind kind = JoinKind::kSemi;
  switch (w->subkind) {
    case SubqueryKind::kExists:
      kind = JoinKind::kSemi;
      break;
    case SubqueryKind::kNotExists:
      kind = JoinKind::kAnti;
      break;
    case SubqueryKind::kIn:
    case SubqueryKind::kAnyCmp:
      kind = JoinKind::kSemi;
      break;
    case SubqueryKind::kNotIn:
    case SubqueryKind::kAllCmp: {
      bool nullable = false;
      for (size_t i = 0; i < w->children.size(); ++i) {
        if (!ProvablyNonNull(*ctx.root, *w->children[i])) nullable = true;
      }
      for (size_t i = 0; i < s.select.size() && i < w->children.size(); ++i) {
        if (!ProvablyNonNull(*view, *s.select[i].expr)) nullable = true;
      }
      kind = nullable ? JoinKind::kAntiNA : JoinKind::kAnti;
      break;
    }
    case SubqueryKind::kScalar:
      break;
  }

  // IN / ANY / ALL connecting conditions join the outer operands with the
  // subquery select items, exported through the view.
  if (w->subkind == SubqueryKind::kIn || w->subkind == SubqueryKind::kNotIn) {
    for (size_t i = 0; i < w->children.size(); ++i) {
      std::string alias = "s" + std::to_string(i);
      SelectItem item;
      item.expr = std::move(s.select[i].expr);
      item.alias = alias;
      view->select.push_back(std::move(item));
      join_conds.push_back(MakeBinary(BinaryOp::kEq, std::move(w->children[i]),
                                      MakeColumnRef(valias, alias)));
    }
  } else if (w->subkind == SubqueryKind::kAnyCmp ||
             w->subkind == SubqueryKind::kAllCmp) {
    SelectItem item;
    item.expr = std::move(s.select[0].expr);
    item.alias = "s0";
    view->select.push_back(std::move(item));
    BinaryOp op = w->subkind == SubqueryKind::kAnyCmp
                      ? w->sub_cmp
                      : NegateComparison(w->sub_cmp);
    join_conds.push_back(MakeBinary(op, std::move(w->children[0]),
                                    MakeColumnRef(valias, "s0")));
  } else if (view->select.empty()) {
    // EXISTS with no correlation columns: export a constant.
    SelectItem item;
    item.expr = MakeLiteral(Value::Int(1));
    item.alias = "c0";
    view->select.push_back(std::move(item));
  }

  TableRef entry;
  entry.alias = valias;
  entry.derived = std::move(view);
  entry.join = kind;
  entry.join_conds = std::move(join_conds);
  block->from.push_back(std::move(entry));
  return Status::OK();
}

}  // namespace

Result<bool> UnnestSubqueriesByMerge(TransformContext& ctx) {
  bool changed = false;
  for (int guard = 0; guard < 64; ++guard) {
    QueryBlock* target = nullptr;
    size_t conjunct = 0;
    VisitAllBlocks(ctx.root, [&](QueryBlock* b) {
      if (target != nullptr || b->IsSetOp()) return;
      for (size_t i = 0; i < b->where.size(); ++i) {
        if (MergeUnnestable(*b, *b->where[i])) {
          target = b;
          conjunct = i;
          return;
        }
      }
    });
    if (target == nullptr) break;
    ExprPtr w = std::move(target->where[conjunct]);
    target->where.erase(target->where.begin() + static_cast<long>(conjunct));
    MergeUnnest(ctx, target, std::move(w));
    changed = true;
  }
  return changed;
}

int SubqueryUnnestViewTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindViewUnnestCandidates(ctx.root).size());
}

Status SubqueryUnnestViewTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindViewUnnestCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("unnest object count changed between "
                            "enumeration and application");
  }
  // Apply in reverse enumeration order: unnesting removes its conjunct
  // (shifting later conjunct indices of the same block) and appends new
  // non-candidate conjuncts at the end, so earlier candidates' coordinates
  // stay valid. Candidate subqueries never nest inside one another (the
  // legality checks reject subqueries whose WHERE contains subqueries).
  // Discovery was read-only; thaw each chosen candidate's block by path so
  // untouched blocks stay shared with the base tree. Mutating an earlier
  // (pre-order) block never invalidates a later candidate's path: the
  // removed conjunct only shifts subquery positions *within* its own block,
  // and remaining candidates are never in an applied block's subtree.
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    const ViewUnnestCandidate& cand = candidates[i];
    QueryBlock* block = ThawBlockPath(ctx.root, cand.path);
    if (block == nullptr) {
      return Status::Internal("unnest candidate path no longer resolves");
    }
    Status st = cand.aggregate
                    ? ApplyAggregateUnnest(ctx, block, cand.conjunct, i)
                    : ApplyMultiTableUnnest(ctx, block, cand.conjunct, i);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

bool SubqueryUnnestViewTransformation::HeuristicDecision(
    const TransformContext& ctx, int index) const {
  auto candidates = FindViewUnnestCandidates(ctx.root);
  if (index < 0 || index >= static_cast<int>(candidates.size())) return false;
  const ViewUnnestCandidate& cand = candidates[static_cast<size_t>(index)];
  const QueryBlock* b = cand.block;
  // Pre-10g rule (paper §2.2.1): if the outer query has filter predicates
  // and the local correlation columns are indexed, do not unnest.
  bool outer_has_filters = false;
  for (const auto& w : b->where) {
    std::string alias;
    if (!ContainsSubquery(*w) && IsSingleTableFilter(*w, &alias)) {
      outer_has_filters = true;
    }
  }
  if (!outer_has_filters) return true;
  // Inspect the subquery's correlated equalities' local columns.
  const Expr& w = *b->where[cand.conjunct];
  const QueryBlock* s = nullptr;
  if (w.kind == ExprKind::kSubquery) {
    s = w.subquery.get();
  } else {
    for (const auto& c : w.children) {
      if (c->kind == ExprKind::kSubquery) s = c->subquery.get();
    }
  }
  if (s == nullptr) return true;
  auto probe = s->Clone();
  std::vector<CorrelatedEq> eqs;
  std::vector<ExprPtr> rest;
  if (!ExtractCorrelatedEqualities(probe.get(), *b, &eqs, &rest)) return true;
  if (eqs.empty()) return true;
  for (const auto& eq : eqs) {
    if (eq.local->kind != ExprKind::kColumnRef) return true;
    int idx = s->FindFrom(eq.local->table_alias);
    if (idx < 0) return true;
    const TableRef& tr = s->from[static_cast<size_t>(idx)];
    if (!tr.IsBaseTable() || tr.table_def == nullptr) return true;
    if (tr.table_def->FindIndexCovering({eq.local->column_name}).empty()) {
      return true;  // no index on some local column: unnest
    }
  }
  return false;  // indexed correlation + outer filters: keep TIS
}

}  // namespace cbqt
