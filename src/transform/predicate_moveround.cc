#include "transform/predicate_moveround.h"

#include <map>

#include "transform/transform_util.h"

namespace cbqt {

namespace {

struct ColKey {
  std::string alias;
  std::string column;
  bool operator<(const ColKey& o) const {
    if (alias != o.alias) return alias < o.alias;
    return column < o.column;
  }
  bool operator==(const ColKey& o) const {
    return alias == o.alias && column == o.column;
  }
};

// Union-find over columns for the block's equi-join classes.
class ColumnClasses {
 public:
  int Id(const ColKey& k) {
    auto it = ids_.find(k);
    if (it != ids_.end()) return it->second;
    int id = static_cast<int>(parent_.size());
    ids_[k] = id;
    parent_.push_back(id);
    keys_.push_back(k);
    return id;
  }
  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }
  void Union(const ColKey& a, const ColKey& b) {
    int ra = Find(Id(a));
    int rb = Find(Id(b));
    if (ra != rb) parent_[static_cast<size_t>(ra)] = rb;
  }
  std::vector<ColKey> Members(const ColKey& k) {
    std::vector<ColKey> out;
    auto it = ids_.find(k);
    if (it == ids_.end()) return out;
    int root = Find(it->second);
    for (size_t i = 0; i < keys_.size(); ++i) {
      if (Find(static_cast<int>(i)) == root) out.push_back(keys_[i]);
    }
    return out;
  }

 private:
  std::map<ColKey, int> ids_;
  std::vector<int> parent_;
  std::vector<ColKey> keys_;
};

bool ConjunctExists(const QueryBlock& qb, const Expr& candidate) {
  for (const auto& w : qb.where) {
    if (ExprEquals(*w, candidate)) return true;
  }
  return false;
}

// (1) transitive move-across within one block. Read-only computation of the
// derived predicates so the COW traversal can decide without thawing.
std::vector<ExprPtr> ComputeTransitiveAdditions(const QueryBlock& qb) {
  ColumnClasses classes;
  for (const auto& w : qb.where) {
    const Expr* l = nullptr;
    const Expr* r = nullptr;
    if (w->kind == ExprKind::kBinary && w->bop == BinaryOp::kEq &&
        IsJoinPredicate(*w, &l, &r)) {
      classes.Union(ColKey{l->table_alias, l->column_name},
                    ColKey{r->table_alias, r->column_name});
    }
  }
  std::vector<ExprPtr> additions;
  for (const auto& w : qb.where) {
    // col cmp literal
    if (w->kind != ExprKind::kBinary || !IsComparisonOp(w->bop)) continue;
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    BinaryOp op = w->bop;
    if (w->children[0]->kind == ExprKind::kColumnRef &&
        w->children[1]->kind == ExprKind::kLiteral) {
      col = w->children[0].get();
      lit = w->children[1].get();
    } else if (w->children[1]->kind == ExprKind::kColumnRef &&
               w->children[0]->kind == ExprKind::kLiteral) {
      col = w->children[1].get();
      lit = w->children[0].get();
      op = SwapComparison(op);
    }
    if (col == nullptr || col->corr_depth != 0) continue;
    for (const auto& member :
         classes.Members(ColKey{col->table_alias, col->column_name})) {
      if (member == ColKey{col->table_alias, col->column_name}) continue;
      // Clone (rather than rebuild from the value) so a parameterized
      // literal's slot rides along: when a cached plan is re-bound to new
      // parameter values, the derived transitive predicate follows its
      // source predicate's value (sql/parameterize.h).
      ExprPtr candidate = MakeBinary(
          op, MakeColumnRef(member.alias, member.column), lit->Clone());
      if (!ConjunctExists(qb, *candidate)) {
        bool already_added = false;
        for (const auto& a : additions) {
          if (ExprEquals(*a, *candidate)) already_added = true;
        }
        if (!already_added) additions.push_back(std::move(candidate));
      }
    }
  }
  return additions;
}

bool TransitivePredicates(QueryBlock* qb) {
  std::vector<ExprPtr> additions = ComputeTransitiveAdditions(*qb);
  if (additions.empty()) return false;
  for (auto& a : additions) qb->where.push_back(std::move(a));
  return true;
}

// Legality of pushing a predicate that references view output columns
// `used_cols` into view block `view` (a regular block). `colmap` maps the
// view's visible output names to this block's defining expressions.
bool PushableIntoRegularView(const QueryBlock& view,
                             const std::map<std::string, const Expr*>& colmap,
                             const std::vector<std::string>& used_cols) {
  for (const auto& c : used_cols) {
    auto it = colmap.find(c);
    if (it == colmap.end()) return false;
    const Expr* def = it->second;
    if (ContainsWindow(*def) || ContainsAggregate(*def) ||
        ContainsSubquery(*def) || ContainsRownum(*def)) {
      return false;
    }
    if (view.IsAggregating()) {
      // Must be (equal to) a grouping expression — and, under GROUPING
      // SETS, one present in *every* set: a set without the key emits NULL
      // for it, which the pushed-down (pre-aggregation) predicate could not
      // filter. Group pruning (§2.1.4) removes such sets first; only then
      // does pushing become legal.
      int key_index = -1;
      for (size_t g = 0; g < view.group_by.size(); ++g) {
        if (ExprEquals(*view.group_by[g], *def)) {
          key_index = static_cast<int>(g);
        }
      }
      if (key_index < 0) return false;
      for (const auto& set : view.grouping_sets) {
        bool in_set = false;
        for (int k : set) {
          if (k == key_index) in_set = true;
        }
        if (!in_set) return false;
      }
    }
    // Pushing below window functions requires the column to be in the
    // PARTITION BY of every window function the view computes (paper Q7/Q8).
    for (const auto& item : view.select) {
      bool checked = false;
      VisitExprConst(item.expr.get(), [&](const Expr* x) {
        if (x->kind != ExprKind::kWindow || checked) return;
        bool in_pby = false;
        for (const auto& p : x->partition_by) {
          if (ExprEquals(*p, *def)) in_pby = true;
        }
        if (!in_pby) checked = true;  // mark failure
      });
      if (checked) return false;
    }
  }
  if (view.rownum_limit >= 0) return false;  // filtering changes the cutoff
  return true;
}

ExprPtr RewriteForView(const Expr& pred, const std::string& valias,
                       const std::map<std::string, const Expr*>& colmap) {
  ExprPtr copy = pred.Clone();
  RewriteColumnRefs(&copy, [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != valias) return nullptr;
    auto it = colmap.find(ref.column_name);
    if (it == colmap.end()) return nullptr;
    return it->second->Clone();
  });
  return copy;
}

// Full legality check for pushing conjunct `w` of `qb` into the view it
// filters: read-only, shared by the COW decide pass and the mutation pass.
// Only *inexpensive* predicates move around (paper §2.1.3); pushing an
// expensive predicate down would undo cost-based predicate pullup.
bool ConjunctPushable(const QueryBlock& qb, const Expr& w,
                      std::string* alias_out) {
  std::string alias;
  if (ContainsRownum(w) || ContainsExpensivePredicate(w) ||
      !IsSingleTableFilter(w, &alias)) {
    return false;
  }
  int idx = qb.FindFrom(alias);
  if (idx < 0) return false;
  const TableRef& tr = qb.from[static_cast<size_t>(idx)];
  if (tr.IsBaseTable() || tr.no_merge || tr.lateral ||
      tr.join != JoinKind::kInner) {
    return false;
  }
  std::vector<std::string> used;
  for (const Expr* ref : CollectLocalColumnRefs(w)) {
    used.push_back(ref->column_name);
  }
  const QueryBlock& view = *tr.derived;
  if (view.IsSetOp()) {
    if (view.set_op != SetOpKind::kUnionAll &&
        view.set_op != SetOpKind::kUnion) {
      return false;
    }
    for (size_t bi = 0; bi < view.branches.size(); ++bi) {
      const QueryBlock& b = *view.branches[bi];
      auto colmap = BranchColumnMap(view, bi);
      if (b.IsSetOp() || !PushableIntoRegularView(b, colmap, used)) {
        return false;
      }
    }
  } else if (!PushableIntoRegularView(view, ViewColumnMap(view), used)) {
    return false;
  }
  if (alias_out != nullptr) *alias_out = alias;
  return true;
}

bool AnyPushableIntoViews(const QueryBlock& qb) {
  for (const auto& w : qb.where) {
    if (ConjunctPushable(qb, *w, nullptr)) return true;
  }
  return false;
}

// (2) pushdown into views of one block. Thaws a view only when a predicate
// actually moves into it; unaffected views stay shared.
bool PushIntoViews(QueryBlock* qb) {
  bool changed = false;
  std::vector<ExprPtr> kept;
  for (auto& w : qb->where) {
    std::string alias;
    if (!ConjunctPushable(*qb, *w, &alias)) {
      kept.push_back(std::move(w));
      continue;
    }
    int idx = qb->FindFrom(alias);
    TableRef& tr = qb->from[static_cast<size_t>(idx)];
    if (tr.derived.peek()->IsSetOp()) {
      QueryBlock* view = tr.derived.write();
      for (size_t bi = 0; bi < view->branches.size(); ++bi) {
        auto colmap = BranchColumnMap(*view, bi);
        view->branches[bi].write()->where.push_back(
            RewriteForView(*w, alias, colmap));
      }
    } else {
      auto colmap = ViewColumnMap(*tr.derived.peek());
      tr.derived.write()->where.push_back(RewriteForView(*w, alias, colmap));
    }
    changed = true;
  }
  qb->where = std::move(kept);
  return changed;
}

}  // namespace

Result<bool> MovePredicatesAround(TransformContext& ctx) {
  bool changed = false;
  for (int round = 0; round < 3; ++round) {
    bool round_changed = MutateBlocksCow(
        ctx.root,
        [](const QueryBlock& b) {
          if (b.IsSetOp()) return false;
          return !ComputeTransitiveAdditions(b).empty() ||
                 AnyPushableIntoViews(b);
        },
        [](QueryBlock* b) {
          bool c = TransitivePredicates(b);
          if (PushIntoViews(b)) c = true;
          return c;
        });
    if (!round_changed) break;
    changed = true;
  }
  return changed;
}

}  // namespace cbqt
