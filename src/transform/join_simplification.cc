#include "transform/join_simplification.h"

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// True if `e` rejects rows where every column of `alias` is NULL: a
// comparison or IS NOT NULL whose evaluation over NULL inputs cannot be
// TRUE. Conservative: the predicate must reference `alias`, contain no
// OR / IS NULL / LNNVL / CASE / subquery, and be a plain comparison or
// IS NOT NULL at the top.
bool NullRejectingOn(const Expr& e, const std::string& alias) {
  if (!ExprUsesAlias(e, alias)) return false;
  if (ContainsSubquery(e)) return false;
  bool safe = true;
  VisitExprConst(&e, [&](const Expr* x) {
    if (x->kind == ExprKind::kBinary && x->bop == BinaryOp::kOr) safe = false;
    if (x->kind == ExprKind::kBinary && x->bop == BinaryOp::kNullSafeEq) {
      safe = false;
    }
    if (x->kind == ExprKind::kUnary &&
        (x->uop == UnaryOp::kIsNull || x->uop == UnaryOp::kLnnvl ||
         x->uop == UnaryOp::kNot)) {
      safe = false;
    }
    if (x->kind == ExprKind::kCase) safe = false;
  });
  if (!safe) return false;
  if (e.kind == ExprKind::kBinary && IsComparisonOp(e.bop)) return true;
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kIsNotNull) return true;
  return false;
}

// Read-only half of SimplifyBlock: would it change anything?
bool WouldSimplifyBlock(const QueryBlock& qb) {
  for (const auto& tr : qb.from) {
    if (tr.join != JoinKind::kLeftOuter) continue;
    for (const auto& w : qb.where) {
      if (NullRejectingOn(*w, tr.alias)) return true;
    }
  }
  return false;
}

bool SimplifyBlock(QueryBlock* qb) {
  bool changed = false;
  for (auto& tr : qb->from) {
    if (tr.join != JoinKind::kLeftOuter) continue;
    bool rejecting = false;
    for (const auto& w : qb->where) {
      if (NullRejectingOn(*w, tr.alias)) rejecting = true;
    }
    if (!rejecting) continue;
    tr.join = JoinKind::kInner;
    for (auto& c : tr.join_conds) qb->where.push_back(std::move(c));
    tr.join_conds.clear();
    changed = true;
  }
  return changed;
}

// Every check of distinct elimination except the final mutation, so the
// COW traversal can decide without thawing.
bool DistinctRemovable(const QueryBlock& qb) {
  if (!qb.distinct || qb.IsAggregating()) return false;
  // Exactly one row-producing entry (semi/anti entries never multiply).
  const TableRef* producer = nullptr;
  for (const auto& tr : qb.from) {
    if (tr.join == JoinKind::kSemi || tr.join == JoinKind::kAnti ||
        tr.join == JoinKind::kAntiNA) {
      continue;
    }
    if (producer != nullptr) return false;
    producer = &tr;
  }
  if (producer == nullptr || !producer->IsBaseTable() ||
      producer->table_def == nullptr) {
    return false;
  }
  // The select list must contain some unique key of the producer as plain
  // column refs.
  auto select_has_col = [&](const std::string& col) {
    for (const auto& item : qb.select) {
      const Expr& e = *item.expr;
      if (e.kind == ExprKind::kColumnRef && e.table_alias == producer->alias &&
          e.column_name == col) {
        return true;
      }
    }
    return false;
  };
  auto covers_key = [&](const std::vector<std::string>& key) {
    if (key.empty()) return false;
    for (const auto& col : key) {
      if (!select_has_col(col)) return false;
    }
    return true;
  };
  bool unique = covers_key(producer->table_def->primary_key) ||
                select_has_col("rowid");
  if (!unique) {
    for (const auto& key : producer->table_def->unique_keys) {
      if (covers_key(key)) unique = true;
    }
  }
  return unique;
}

}  // namespace

Result<bool> SimplifyOuterJoins(TransformContext& ctx) {
  // COW-aware: blocks that would not change are traversed read-only and
  // stay shared with the base tree.
  bool changed = MutateBlocksCow(
      ctx.root,
      [](const QueryBlock& b) { return !b.IsSetOp() && WouldSimplifyBlock(b); },
      [](QueryBlock* b) { return SimplifyBlock(b); });
  return changed;
}

Result<bool> EliminateDistinct(TransformContext& ctx) {
  bool changed = MutateBlocksCow(
      ctx.root,
      [](const QueryBlock& b) { return !b.IsSetOp() && DistinctRemovable(b); },
      [](QueryBlock* b) {
        b->distinct = false;
        return true;
      });
  return changed;
}

}  // namespace cbqt
