#ifndef CBQT_TRANSFORM_PREDICATE_MOVEROUND_H_
#define CBQT_TRANSFORM_PREDICATE_MOVEROUND_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Filter predicate move-around (paper §2.1.3, imperative):
///  * transitive predicate generation across equi-join equivalence classes
///    ("move across": a literal filter on one side of an equi join spawns
///    the same filter on the other side);
///  * pushdown of single-view filters into derived tables — through plain
///    views, group-by views (group columns only), set-operation branches,
///    and window functions via their PARTITION BY columns (pushing through
///    ORDER BY would need range analysis and is not attempted, matching the
///    paper's "requires analysis" caveat).
/// Returns whether anything changed; caller re-binds.
Result<bool> MovePredicatesAround(TransformContext& ctx);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_PREDICATE_MOVEROUND_H_
