#include "transform/transform_util.h"

#include "transform/group_pruning.h"
#include "transform/join_elimination.h"
#include "transform/join_simplification.h"
#include "transform/predicate_moveround.h"
#include "transform/subquery_unnest.h"
#include "transform/view_merge.h"

namespace cbqt {

std::map<std::string, const Expr*> ViewColumnMap(const QueryBlock& view) {
  std::map<std::string, const Expr*> out;
  const QueryBlock* block = &view;
  if (view.IsSetOp() && !view.branches.empty()) block = view.branches[0].get();
  for (const auto& item : block->select) {
    out[item.alias] = item.expr.get();
  }
  return out;
}

std::map<std::string, const Expr*> BranchColumnMap(const QueryBlock& setop,
                                                   size_t branch_idx) {
  std::map<std::string, const Expr*> out;
  if (!setop.IsSetOp() || branch_idx >= setop.branches.size()) return out;
  const QueryBlock& names = *setop.branches[0];
  const QueryBlock& exprs = *setop.branches[branch_idx];
  for (size_t i = 0; i < names.select.size() && i < exprs.select.size(); ++i) {
    out[names.select[i].alias] = exprs.select[i].expr.get();
  }
  return out;
}

bool IsCorrelated(const QueryBlock& sub) {
  std::set<std::string> inner;
  CollectDefinedAliases(sub, &inner);
  bool correlated = false;
  VisitAllExprsConst(&sub, [&](const Expr* e) {
    if (e->kind == ExprKind::kColumnRef && !e->table_alias.empty() &&
        inner.count(e->table_alias) == 0) {
      correlated = true;
    }
  });
  return correlated;
}

bool CorrelatedOnlyToParent(const QueryBlock& sub, const QueryBlock& parent) {
  std::set<std::string> inner;
  CollectDefinedAliases(sub, &inner);
  std::set<std::string> parent_aliases;
  for (const auto& tr : parent.from) parent_aliases.insert(tr.alias);
  bool ok = true;
  VisitAllExprsConst(&sub, [&](const Expr* e) {
    if (e->kind == ExprKind::kColumnRef && !e->table_alias.empty() &&
        inner.count(e->table_alias) == 0 &&
        parent_aliases.count(e->table_alias) == 0) {
      ok = false;
    }
  });
  return ok;
}

bool ExtractCorrelatedEqualities(QueryBlock* sub, const QueryBlock& parent,
                                 std::vector<CorrelatedEq>* eqs,
                                 std::vector<ExprPtr>* rest) {
  std::set<std::string> inner;
  CollectDefinedAliases(*sub, &inner);
  std::set<std::string> parent_aliases;
  for (const auto& tr : parent.from) parent_aliases.insert(tr.alias);

  auto refs_only = [&](const Expr& e, const std::set<std::string>& allowed,
                       bool* any) {
    bool ok = true;
    bool found = false;
    VisitExprDeepConst(&e, [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef && !x->table_alias.empty()) {
        if (allowed.count(x->table_alias) == 0) {
          ok = false;
        } else {
          found = true;
        }
      }
    });
    if (any != nullptr) *any = found;
    return ok;
  };

  auto touches_outer_fn = [&](const Expr& e) {
    bool touches = false;
    VisitExprDeepConst(&e, [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef && !x->table_alias.empty() &&
          inner.count(x->table_alias) == 0) {
        touches = true;
      }
    });
    return touches;
  };

  // Validation pass: every outer-touching conjunct must be `local = outer`.
  for (const auto& w : sub->where) {
    if (!touches_outer_fn(*w)) continue;
    if (w->kind != ExprKind::kBinary || w->bop != BinaryOp::kEq) return false;
    const Expr& a = *w->children[0];
    const Expr& b = *w->children[1];
    bool ok_ab = refs_only(a, inner, nullptr) &&
                 refs_only(b, parent_aliases, nullptr);
    bool ok_ba = refs_only(b, inner, nullptr) &&
                 refs_only(a, parent_aliases, nullptr);
    if (!ok_ab && !ok_ba) return false;
  }

  // Extraction pass.
  std::vector<CorrelatedEq> found_eqs;
  std::vector<ExprPtr> remaining;
  for (auto& w : sub->where) {
    if (!touches_outer_fn(*w)) {
      remaining.push_back(std::move(w));
      continue;
    }
    CorrelatedEq eq;
    if (refs_only(*w->children[0], inner, nullptr) &&
        refs_only(*w->children[1], parent_aliases, nullptr)) {
      eq.local = std::move(w->children[0]);
      eq.outer = std::move(w->children[1]);
    } else {
      eq.local = std::move(w->children[1]);
      eq.outer = std::move(w->children[0]);
    }
    found_eqs.push_back(std::move(eq));
  }
  *eqs = std::move(found_eqs);
  *rest = std::move(remaining);
  sub->where.clear();
  return true;
}

int CountAliasUses(const QueryBlock& root, const std::string& a,
                   const std::set<const Expr*>& exclude) {
  int count = 0;
  auto counter = [&](const Expr* e) {
    VisitExprDeepConst(e, [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef && x->table_alias == a) ++count;
    });
  };
  // Walk every expression slot of every block, skipping excluded roots.
  VisitAllBlocksConst(&root, [&](const QueryBlock* b) {
    auto slot = [&](const ExprPtr& e) {
      if (exclude.count(e.get()) == 0) counter(e.get());
    };
    for (const auto& item : b->select) slot(item.expr);
    for (const auto& tr : b->from) {
      for (const auto& c : tr.join_conds) slot(c);
    }
    for (const auto& w : b->where) slot(w);
    for (const auto& g : b->group_by) slot(g);
    for (const auto& h : b->having) slot(h);
    for (const auto& o : b->order_by) slot(o.expr);
  });
  return count;
}

bool IsSpjView(const QueryBlock& view) {
  if (view.IsSetOp()) return false;
  if (view.distinct || !view.group_by.empty() || !view.having.empty()) {
    return false;
  }
  if (!view.order_by.empty() || view.rownum_limit >= 0) return false;
  for (const auto& item : view.select) {
    if (ContainsAggregate(*item.expr) || ContainsWindow(*item.expr) ||
        ContainsSubquery(*item.expr) || ContainsRownum(*item.expr)) {
      return false;
    }
  }
  for (const auto& w : view.where) {
    if (ContainsRownum(*w)) return false;
  }
  return true;
}

Status ApplyHeuristicTransformations(TransformContext& ctx,
                                     const HeuristicOptions& opts) {
  // Repeat to fixpoint: transformations enable one another (e.g. a merged
  // view exposes new unnestable subqueries; unnesting creates SPJ views).
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    if (opts.outer_join_simplification) {
      auto r = SimplifyOuterJoins(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.view_merge) {
      auto r = MergeSpjViews(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.join_elimination) {
      auto r = EliminateJoins(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.subquery_unnest) {
      auto r = UnnestSubqueriesByMerge(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.predicate_moveround) {
      auto r = MovePredicatesAround(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.group_pruning) {
      auto r = PruneGroups(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (opts.distinct_elimination) {
      auto r = EliminateDistinct(ctx);
      if (!r.ok()) return r.status();
      changed |= r.value();
    }
    if (!changed) break;
  }
  return Status::OK();
}

}  // namespace cbqt
