#include "transform/view_merge.h"

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// Finds one mergeable view in `qb` (not descending); returns its index or -1.
int FindMergeableView(const QueryBlock& qb) {
  for (size_t i = 0; i < qb.from.size(); ++i) {
    const TableRef& tr = qb.from[i];
    if (tr.IsBaseTable() || tr.no_merge || tr.lateral) continue;
    if (!IsSpjView(*tr.derived)) continue;
    if (tr.derived->from.empty()) continue;
    if (tr.join != JoinKind::kInner && tr.derived->from.size() != 1) {
      continue;  // non-inner views merge only when single-table
    }
    // All view FROM entries must be inner unless the view itself is inner
    // joined (then non-inner entries splice in unchanged).
    if (tr.join != JoinKind::kInner &&
        tr.derived->from[0].join != JoinKind::kInner) {
      continue;
    }
    return static_cast<int>(i);
  }
  return -1;
}

void MergeViewAt(TransformContext& ctx, QueryBlock* qb, int index) {
  TableRef tr = std::move(qb->from[static_cast<size_t>(index)]);
  qb->from.erase(qb->from.begin() + index);
  QueryBlock& view = *tr.derived;
  std::string valias = tr.alias;

  // Column map (name -> owned expr) before we disturb the view.
  std::map<std::string, ExprPtr> colmap;
  for (auto& item : view.select) colmap[item.alias] = std::move(item.expr);

  if (tr.join == JoinKind::kInner) {
    // Splice the view's FROM entries at the view's position and its WHERE
    // into the outer WHERE.
    for (size_t k = 0; k < view.from.size(); ++k) {
      qb->from.insert(qb->from.begin() + index + static_cast<long>(k),
                      std::move(view.from[k]));
    }
    for (auto& w : view.where) qb->where.push_back(std::move(w));
  } else {
    // Single-table non-inner view: the table inherits the view's join kind
    // and conditions; the view's WHERE predicates become join conditions
    // (they filter the right side before the semi/anti/outer join).
    TableRef entry = std::move(view.from[0]);
    entry.join = tr.join;
    entry.join_conds = std::move(tr.join_conds);
    for (auto& w : view.where) entry.join_conds.push_back(std::move(w));
    qb->from.insert(qb->from.begin() + index, std::move(entry));
  }

  // Rewrite references to the view's outputs throughout the block subtree
  // (including its nested subqueries). Note join_conds moved above are now
  // owned by qb's FROM entries and get rewritten too.
  RewriteColumnRefsInBlock(qb, [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != valias) return nullptr;
    auto it = colmap.find(ref.column_name);
    if (it == colmap.end()) return nullptr;
    return it->second->Clone();
  });
  (void)ctx;
}

}  // namespace

Result<bool> MergeSpjViews(TransformContext& ctx) {
  bool changed = false;
  for (int guard = 0; guard < 64; ++guard) {
    QueryBlock* target = nullptr;
    int index = -1;
    VisitAllBlocks(ctx.root, [&](QueryBlock* b) {
      if (target != nullptr) return;
      int i = FindMergeableView(*b);
      if (i >= 0) {
        target = b;
        index = i;
      }
    });
    if (target == nullptr) break;
    MergeViewAt(ctx, target, index);
    changed = true;
  }
  return changed;
}

}  // namespace cbqt
