#ifndef CBQT_TRANSFORM_JOIN_FACTORIZATION_H_
#define CBQT_TRANSFORM_JOIN_FACTORIZATION_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based join factorization (paper §2.2.5, Q14 -> Q15): when every
/// branch of a UNION ALL joins the same table with equivalent local filters,
/// the table is pulled out into the containing block; the UNION ALL becomes
/// a view joined to it (the branches export their join columns), so the
/// common table is scanned once instead of once per branch.
///
/// Objects: (UNION ALL block, common table) pairs. Not applied in heuristic
/// mode (the transformation is introduced by this paper as cost-based).
class JoinFactorizationTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "join-factorization"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override {
    (void)ctx;
    (void)index;
    return false;
  }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_JOIN_FACTORIZATION_H_
