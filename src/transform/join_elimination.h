#ifndef CBQT_TRANSFORM_JOIN_ELIMINATION_H_
#define CBQT_TRANSFORM_JOIN_ELIMINATION_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Join elimination (paper §2.1.2, imperative): removes a table whose join
/// provably cannot change the result —
///  * an inner join over a complete foreign key -> primary key equality
///    whose key-side table is otherwise unreferenced (Q4), adding
///    `fk IS NOT NULL` when the FK columns are nullable; and
///  * a left outer join on a unique key of the right table, right side
///    otherwise unreferenced (Q5).
/// Returns whether anything changed; caller re-binds.
Result<bool> EliminateJoins(TransformContext& ctx);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_JOIN_ELIMINATION_H_
