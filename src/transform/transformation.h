#ifndef CBQT_TRANSFORM_TRANSFORMATION_H_
#define CBQT_TRANSFORM_TRANSFORMATION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// Context shared by all transformations: the root of the query tree being
/// mutated (alias uniqueness and rebinding are root-scoped) and the database
/// (catalog for legality checks, statistics for heuristic rules).
struct TransformContext {
  QueryBlock* root = nullptr;
  const Database* db = nullptr;
};

/// A cost-based transformation in the paper's sense (§3.1): it applies to N
/// *objects* found in the query tree (subqueries, views, join-graph nodes,
/// expensive predicates, ...), and a transformation *state* is a bit vector
/// selecting which objects to transform.
///
/// Object identity across deep copies: `CountObjects` enumerates objects in
/// a deterministic tree order, and `Apply` re-enumerates on the (copied)
/// tree, transforming the i-th object iff bits[i]. Every state is applied to
/// a fresh copy of the same original tree, so enumeration is stable.
class CostBasedTransformation {
 public:
  virtual ~CostBasedTransformation() = default;

  virtual std::string Name() const = 0;

  /// Number of applicable objects in the tree.
  virtual int CountObjects(const TransformContext& ctx) const = 0;

  /// Mutates the tree, transforming selected objects. The caller re-binds
  /// afterwards. bits.size() must equal CountObjects() on this tree.
  virtual Status Apply(TransformContext& ctx,
                       const std::vector<bool>& bits) const = 0;

  /// Heuristic-mode decision for object i (used when cost-based
  /// transformation is disabled, Figure 2's baseline): whether the legacy
  /// heuristic rule would transform this object. Default: transform always.
  virtual bool HeuristicDecision(const TransformContext& ctx, int index) const {
    (void)ctx;
    (void)index;
    return true;
  }

  /// True if Apply is copy-on-write safe: it discovers its objects through
  /// read-only traversals and thaws (privately copies) only the blocks it
  /// actually rewrites, so the framework may hand it a structurally shared
  /// CloneCow copy of the base tree instead of a full deep copy. The default
  /// is false: Apply gets a deep copy and may mutate freely.
  virtual bool CowSafe() const { return false; }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_TRANSFORMATION_H_
