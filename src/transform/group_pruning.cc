#include "transform/group_pruning.h"

#include <algorithm>

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// A predicate rejects NULL inputs unless it is IS NULL (or contains OR /
// IS NULL handling). We prune conservatively: only simple comparison /
// IS NOT NULL predicates count as null-rejecting.
bool IsNullRejecting(const Expr& e) {
  if (e.kind == ExprKind::kBinary && IsComparisonOp(e.bop)) return true;
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kIsNotNull) return true;
  return false;
}

// Read-only: computes the grouping sets of `view` (joined as `tr` inside
// `qb`) that survive the null-rejecting outer predicates. Returns false if
// pruning would not change the view.
bool ComputeKeptSets(const QueryBlock& qb, const TableRef& tr,
                     const QueryBlock& view,
                     std::vector<std::vector<int>>* kept_out) {
  auto colmap = ViewColumnMap(view);
  // Grouping-key indices that outer predicates require to be non-NULL.
  std::vector<int> required;
  for (const auto& w : qb.where) {
    if (!IsNullRejecting(*w)) continue;
    std::string alias;
    if (!IsSingleTableFilter(*w, &alias) || alias != tr.alias) continue;
    for (const Expr* ref : CollectLocalColumnRefs(*w)) {
      auto it = colmap.find(ref->column_name);
      if (it == colmap.end()) continue;
      for (size_t k = 0; k < view.group_by.size(); ++k) {
        if (ExprEquals(*view.group_by[k], *it->second)) {
          required.push_back(static_cast<int>(k));
        }
      }
    }
  }
  if (required.empty()) return false;
  std::vector<std::vector<int>> kept;
  for (const auto& set : view.grouping_sets) {
    bool ok = true;
    for (int need : required) {
      if (std::find(set.begin(), set.end(), need) == set.end()) ok = false;
    }
    if (ok) kept.push_back(set);
  }
  if (kept.size() == view.grouping_sets.size()) return false;
  *kept_out = std::move(kept);
  return true;
}

bool PruneViewGroupsWouldChange(const QueryBlock& qb) {
  for (const auto& tr : qb.from) {
    if (tr.IsBaseTable() || tr.derived->IsSetOp()) continue;
    const QueryBlock& view = *tr.derived;
    if (view.grouping_sets.size() <= 1) continue;
    std::vector<std::vector<int>> kept;
    if (ComputeKeptSets(qb, tr, view, &kept)) return true;
  }
  return false;
}

bool PruneViewGroups(QueryBlock* qb) {
  bool changed = false;
  for (auto& tr : qb->from) {
    // Decide on a read-only view of the child; thaw only if pruning fires,
    // so untouched views stay shared with the base tree.
    const QueryBlock* vc = tr.derived.peek();
    if (tr.IsBaseTable() || vc->IsSetOp()) continue;
    if (vc->grouping_sets.size() <= 1) continue;
    std::vector<std::vector<int>> kept;
    if (!ComputeKeptSets(*qb, tr, *vc, &kept)) continue;
    changed = true;
    QueryBlock& view = *tr.derived.write();
    if (kept.empty()) {
      // No grouping set survives: the view is provably empty.
      view.grouping_sets.clear();
      view.where.push_back(MakeLiteral(Value::Boolean(false)));
      continue;
    }
    // A single surviving set covering every key is just an ordinary
    // GROUP BY.
    if (kept.size() == 1 && kept[0].size() == view.group_by.size()) {
      view.grouping_sets.clear();
    } else {
      view.grouping_sets = std::move(kept);
    }
  }
  return changed;
}

}  // namespace

Result<bool> PruneGroups(TransformContext& ctx) {
  bool changed = MutateBlocksCow(
      ctx.root,
      [](const QueryBlock& b) {
        return !b.IsSetOp() && PruneViewGroupsWouldChange(b);
      },
      [](QueryBlock* b) { return PruneViewGroups(b); });
  return changed;
}

}  // namespace cbqt
