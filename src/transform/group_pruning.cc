#include "transform/group_pruning.h"

#include <algorithm>

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// A predicate rejects NULL inputs unless it is IS NULL (or contains OR /
// IS NULL handling). We prune conservatively: only simple comparison /
// IS NOT NULL predicates count as null-rejecting.
bool IsNullRejecting(const Expr& e) {
  if (e.kind == ExprKind::kBinary && IsComparisonOp(e.bop)) return true;
  if (e.kind == ExprKind::kUnary && e.uop == UnaryOp::kIsNotNull) return true;
  return false;
}

bool PruneViewGroups(QueryBlock* qb) {
  bool changed = false;
  for (auto& tr : qb->from) {
    if (tr.IsBaseTable() || tr.derived->IsSetOp()) continue;
    QueryBlock& view = *tr.derived;
    if (view.grouping_sets.size() <= 1) continue;
    auto colmap = ViewColumnMap(view);
    // Grouping-key indices that outer predicates require to be non-NULL.
    std::vector<int> required;
    for (const auto& w : qb->where) {
      if (!IsNullRejecting(*w)) continue;
      std::string alias;
      if (!IsSingleTableFilter(*w, &alias) || alias != tr.alias) continue;
      for (const Expr* ref : CollectLocalColumnRefs(*w)) {
        auto it = colmap.find(ref->column_name);
        if (it == colmap.end()) continue;
        for (size_t k = 0; k < view.group_by.size(); ++k) {
          if (ExprEquals(*view.group_by[k], *it->second)) {
            required.push_back(static_cast<int>(k));
          }
        }
      }
    }
    if (required.empty()) continue;
    std::vector<std::vector<int>> kept;
    for (auto& set : view.grouping_sets) {
      bool ok = true;
      for (int need : required) {
        if (std::find(set.begin(), set.end(), need) == set.end()) ok = false;
      }
      if (ok) kept.push_back(std::move(set));
    }
    if (kept.size() == view.grouping_sets.size()) continue;
    changed = true;
    if (kept.empty()) {
      // No grouping set survives: the view is provably empty.
      view.grouping_sets.clear();
      view.where.push_back(MakeLiteral(Value::Boolean(false)));
      continue;
    }
    // A single surviving set covering every key is just an ordinary
    // GROUP BY.
    if (kept.size() == 1 && kept[0].size() == view.group_by.size()) {
      view.grouping_sets.clear();
    } else {
      view.grouping_sets = std::move(kept);
    }
  }
  return changed;
}

}  // namespace

Result<bool> PruneGroups(TransformContext& ctx) {
  bool changed = false;
  VisitAllBlocks(ctx.root, [&](QueryBlock* b) {
    if (b->IsSetOp()) return;
    if (PruneViewGroups(b)) changed = true;
  });
  return changed;
}

}  // namespace cbqt
