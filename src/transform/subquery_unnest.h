#ifndef CBQT_TRANSFORM_SUBQUERY_UNNEST_H_
#define CBQT_TRANSFORM_SUBQUERY_UNNEST_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Heuristic subquery unnesting by *merging* (paper §2.1.1, imperative):
/// single-table, aggregate-free EXISTS / NOT EXISTS / IN / NOT IN / ANY /
/// ALL subqueries correlated only to their parent become semijoined /
/// antijoined FROM entries of the parent. NOT IN and ALL over possibly-NULL
/// columns use the null-aware antijoin (the paper's "next release" feature,
/// implemented here). Returns whether anything changed; caller re-binds.
Result<bool> UnnestSubqueriesByMerge(TransformContext& ctx);

/// Cost-based subquery unnesting that *generates inline views* (paper
/// §2.2.1):
///  * correlated scalar aggregate subqueries (`x > (SELECT AVG(..) ..)`)
///    become inline GROUP BY views joined on the correlation columns
///    (Q1 -> Q10);
///  * multi-table EXISTS / NOT EXISTS / IN / NOT IN subqueries become
///    semi-/anti-joined inline views.
/// Each unnestable subquery is one state-space object. The heuristic
/// decision reproduces the pre-10g rule: do NOT unnest when the outer query
/// has filter predicates and the correlation's local columns are indexed.
class SubqueryUnnestViewTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "unnest-view"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override;
  // Candidate discovery is read-only and Apply thaws only the rewritten
  // blocks, so states may be evaluated on structurally shared tree copies.
  bool CowSafe() const override { return true; }
};

/// True if `e` provably cannot be NULL: a non-NULL literal, or a column
/// declared NOT NULL / ROWID (resolved against the FROM entries under
/// `root`).
bool ProvablyNonNull(const QueryBlock& root, const Expr& e);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_SUBQUERY_UNNEST_H_
