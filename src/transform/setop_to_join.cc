#include "transform/setop_to_join.h"

#include "binder/binder.h"
#include "transform/transform_util.h"

namespace cbqt {

namespace {

// Two state-space objects per INTERSECT/MINUS block: bit one converts the
// set operator into a join; bit two moves the duplicate removal from the
// join's output to its inputs — the paper's "cost-based decision ... as to
// whether duplicates should be removed at the inputs or the output of the
// joins" (§2.2.7, "similar to distinct placement").
struct SetOpCandidate {
  QueryBlock* block;
  bool input_dedup_variant;
};

std::vector<SetOpCandidate> FindCandidates(QueryBlock* root) {
  std::vector<SetOpCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if ((b->set_op == SetOpKind::kIntersect ||
         b->set_op == SetOpKind::kMinus) &&
        b->branches.size() == 2) {
      out.push_back(SetOpCandidate{b, false});
      out.push_back(SetOpCandidate{b, true});
    }
  });
  return out;
}

void ConvertSetOp(TransformContext& ctx, QueryBlock* b, bool input_dedup) {
  JoinKind kind =
      b->set_op == SetOpKind::kIntersect ? JoinKind::kSemi : JoinKind::kAnti;
  std::string a1 = GlobalUniqueAlias(*ctx.root, "vw_st");
  auto left = std::move(b->branches[0]);
  auto right = std::move(b->branches[1]);
  std::string a2 = a1 + "r";

  auto lcols = BlockOutputColumns(*left);
  auto rcols = BlockOutputColumns(*right);

  b->set_op = SetOpKind::kNone;
  b->branches.clear();
  // Input dedup requires a regular left branch (DISTINCT on a compound
  // block has no meaning); fall back to output dedup otherwise.
  if (input_dedup && left->IsSetOp()) input_dedup = false;
  if (input_dedup) {
    // Dedup at the inputs: the left branch becomes DISTINCT, after which
    // the semijoin/antijoin preserves uniqueness and no output DISTINCT is
    // needed. (The right side of a semi/antijoin never multiplies rows.)
    left->distinct = true;
    b->distinct = false;
  } else {
    b->distinct = true;
  }

  TableRef lref;
  lref.alias = a1;
  lref.derived = std::move(left);
  TableRef rref;
  rref.alias = a2;
  rref.derived = std::move(right);
  rref.join = kind;
  for (size_t i = 0; i < lcols.size() && i < rcols.size(); ++i) {
    // Null-safe equality: INTERSECT/MINUS match NULLs (paper §2.2.7).
    rref.join_conds.push_back(
        MakeBinary(BinaryOp::kNullSafeEq, MakeColumnRef(a1, lcols[i].name),
                   MakeColumnRef(a2, rcols[i].name)));
  }
  for (const auto& col : lcols) {
    SelectItem item;
    item.expr = MakeColumnRef(a1, col.name);
    item.alias = col.name;
    b->select.push_back(std::move(item));
  }
  b->from.push_back(std::move(lref));
  b->from.push_back(std::move(rref));
}

}  // namespace

int SetOpToJoinTransformation::CountObjects(const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status SetOpToJoinTransformation::Apply(TransformContext& ctx,
                                        const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("setop-to-join object count changed");
  }
  // Candidates come in (convert, input-dedup) pairs per block; either bit
  // converts, the second selects where duplicates are removed. Process per
  // block in reverse so nested candidates stay valid.
  for (size_t i = 0; i < candidates.size(); i += 2) {
    size_t j = candidates.size() - 2 - i;
    bool convert = bits[j] || bits[j + 1];
    if (!convert) continue;
    QueryBlock* block = candidates[j].block;
    if (block->set_op != SetOpKind::kIntersect &&
        block->set_op != SetOpKind::kMinus) {
      continue;  // already converted via an enclosing application
    }
    ConvertSetOp(ctx, block, /*input_dedup=*/bits[j + 1]);
  }
  return Status::OK();
}

}  // namespace cbqt
