#ifndef CBQT_TRANSFORM_GROUPBY_VIEW_MERGE_H_
#define CBQT_TRANSFORM_GROUPBY_VIEW_MERGE_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based group-by / distinct view merging (paper §2.2.2): pulls the
/// aggregation above the containing block's joins.
///  * GROUP BY views (Q10 -> Q11): the view's tables and predicates splice
///    into the outer block, which becomes GROUP BY {view keys} ∪ {ROWIDs of
///    the other outer tables} ∪ {outer columns used outside aggregates};
///    references to the view's aggregate outputs become the aggregates
///    themselves, now evaluated after the joins.
///  * DISTINCT views (Q12 -> Q18): the merged query is wrapped in a new
///    derived table carrying the outer tables' ROWIDs, with DISTINCT pulled
///    up.
/// Each mergeable view is one state-space object. Heuristic decision: merge
/// always (the aggressive legacy rule).
class GroupByViewMergeTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "groupby-view-merge"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_GROUPBY_VIEW_MERGE_H_
