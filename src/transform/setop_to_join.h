#ifndef CBQT_TRANSFORM_SETOP_TO_JOIN_H_
#define CBQT_TRANSFORM_SETOP_TO_JOIN_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based conversion of set operators into joins (paper §2.2.7):
/// INTERSECT becomes a null-safe semijoin and MINUS a null-safe antijoin
/// between the two branches (as derived tables), with DISTINCT applied to
/// the output. Null-safety (`IS NOT DISTINCT FROM` conditions) preserves
/// the set operators' NULL-matching semantics, which ordinary joins lack.
///
/// Objects: INTERSECT / MINUS blocks. Never applied heuristically.
class SetOpToJoinTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "setop-to-join"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override {
    (void)ctx;
    (void)index;
    return false;
  }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_SETOP_TO_JOIN_H_
