#include "transform/groupby_placement.h"

#include "transform/transform_util.h"

namespace cbqt {

namespace {

struct GbpCandidate {
  QueryBlock* block;
  size_t from_index;  // the table T to pre-aggregate
};

// Collects the aggregate expressions of `qb` (select + having + order).
std::vector<const Expr*> CollectBlockAggregates(const QueryBlock& qb) {
  std::vector<const Expr*> out;
  auto collect = [&](const Expr* e) {
    VisitExprConst(e, [&](const Expr* x) {
      if (x->kind != ExprKind::kAggregate) return;
      for (const Expr* seen : out) {
        if (ExprEquals(*seen, *x)) return;
      }
      out.push_back(x);
    });
  };
  for (const auto& item : qb.select) collect(item.expr.get());
  for (const auto& h : qb.having) collect(h.get());
  for (const auto& o : qb.order_by) collect(o.expr.get());
  return out;
}

// Column refs to `alias` that appear outside aggregate arguments anywhere
// in the block subtree.
std::set<std::string> NonAggregateRefs(QueryBlock* qb,
                                       const std::string& alias) {
  std::set<std::string> out;
  std::function<void(const Expr*)> walk = [&](const Expr* e) {
    if (e == nullptr) return;
    if (e->kind == ExprKind::kAggregate) return;  // args excluded
    if (e->kind == ExprKind::kColumnRef && e->table_alias == alias) {
      out.insert(e->column_name);
      return;
    }
    for (const auto& c : e->children) walk(c.get());
    for (const auto& c : e->partition_by) walk(c.get());
    for (const auto& c : e->win_order_by) walk(c.get());
    if (e->subquery != nullptr) {
      // Read-only walk: const access avoids thawing a shared COW edge.
      VisitAllBlocks(const_cast<QueryBlock*>(e->subquery.peek()),
                     [&](QueryBlock* b) {
                       VisitLocalExprSlots(
                           b, [&](ExprPtr& slot) { walk(slot.get()); });
                     });
    }
  };
  VisitLocalExprSlots(qb, [&](ExprPtr& slot) { walk(slot.get()); });
  for (auto& tr : qb->from) {
    if (tr.derived != nullptr) {
      VisitAllBlocks(tr.derived.get(), [&](QueryBlock* b) {
        VisitLocalExprSlots(b, [&](ExprPtr& slot) { walk(slot.get()); });
      });
    }
  }
  return out;
}

bool IsGbpCandidate(QueryBlock* qb, size_t from_index) {
  if (qb->IsSetOp()) return false;
  if (qb->group_by.empty() || !qb->grouping_sets.empty()) return false;
  if (qb->distinct || qb->rownum_limit >= 0) return false;
  if (qb->from.size() < 2) return false;
  const TableRef& t = qb->from[from_index];
  if (!t.IsBaseTable() || t.join != JoinKind::kInner || !t.join_conds.empty()) {
    return false;
  }
  for (const auto& e : qb->from) {
    if (e.join != JoinKind::kInner || e.lateral) return false;
  }
  // No window functions (pre-aggregation would change their input rows).
  for (const auto& item : qb->select) {
    if (ContainsWindow(*item.expr)) return false;
  }
  auto aggs = CollectBlockAggregates(*qb);
  if (aggs.empty()) return false;
  for (const Expr* a : aggs) {
    if (a->agg == AggFunc::kCountStar) return false;  // needs multiplicities
    if (a->agg_distinct) return false;
    // The argument must reference exactly the candidate table.
    std::set<std::string> aliases = CollectLocalAliases(*a->children[0]);
    if (aliases.size() != 1 || *aliases.begin() != t.alias) return false;
    if (ContainsSubquery(*a->children[0])) return false;
  }
  // Every WHERE conjunct touching T must be either a single-table filter on
  // T or an equality join between a T column and other tables.
  for (const auto& w : qb->where) {
    if (!ExprUsesAlias(*w, t.alias)) continue;
    if (ContainsSubquery(*w)) return false;
    std::string alias;
    if (IsSingleTableFilter(*w, &alias) && alias == t.alias) continue;
    if (w->kind != ExprKind::kBinary || w->bop != BinaryOp::kEq) return false;
    const Expr* l = w->children[0].get();
    const Expr* r = w->children[1].get();
    bool ok = (l->kind == ExprKind::kColumnRef && l->table_alias == t.alias &&
               !ExprUsesAlias(*r, t.alias)) ||
              (r->kind == ExprKind::kColumnRef && r->table_alias == t.alias &&
               !ExprUsesAlias(*l, t.alias));
    if (!ok) return false;
  }
  // Non-aggregate refs to T (group keys, join columns, select exprs) must
  // be plain column uses — guaranteed by the join-predicate shape above and
  // by grouping on them in the view; nothing further to check.
  return true;
}

std::vector<GbpCandidate> FindCandidates(QueryBlock* root) {
  std::vector<GbpCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if (b->IsSetOp()) return;
    for (size_t i = 0; i < b->from.size(); ++i) {
      if (IsGbpCandidate(b, i)) out.push_back(GbpCandidate{b, i});
    }
  });
  return out;
}

void ApplyGbp(TransformContext& ctx, QueryBlock* qb, size_t from_index) {
  std::string talias = qb->from[from_index].alias;
  std::string valias = GlobalUniqueAlias(*ctx.root, "vw_gbp");

  // 1. Move T's single-table filters into the view.
  std::vector<ExprPtr> view_filters;
  {
    std::vector<ExprPtr> kept;
    for (auto& w : qb->where) {
      std::string alias;
      if (IsSingleTableFilter(*w, &alias) && alias == talias) {
        view_filters.push_back(std::move(w));
      } else {
        kept.push_back(std::move(w));
      }
    }
    qb->where = std::move(kept);
  }

  // 2. Needed (non-aggregate) T columns become the view's grouping keys.
  std::set<std::string> needed = NonAggregateRefs(qb, talias);
  needed.erase("rowid");  // ROWIDs are not meaningful through aggregation

  // 3. Partial aggregates.
  auto aggs = CollectBlockAggregates(*qb);
  auto view = std::make_unique<QueryBlock>();
  view->qb_name = valias;
  view->from.push_back(std::move(qb->from[from_index]));
  qb->from.erase(qb->from.begin() + static_cast<long>(from_index));
  view->where = std::move(view_filters);

  std::map<std::string, std::string> colmap;  // T column -> view alias
  int c = 0;
  for (const auto& col : needed) {
    SelectItem item;
    item.expr = MakeColumnRef(talias, col);
    item.alias = "g" + std::to_string(c++);
    colmap[col] = item.alias;
    view->group_by.push_back(item.expr->Clone());
    view->select.push_back(std::move(item));
  }

  struct AggRewrite {
    ExprPtr pattern;      // original aggregate
    ExprPtr replacement;  // outer expression over the view's outputs
  };
  std::vector<AggRewrite> rewrites;
  int a = 0;
  for (const Expr* agg : aggs) {
    std::string base = "p" + std::to_string(a++);
    AggRewrite rw;
    rw.pattern = agg->Clone();
    switch (agg->agg) {
      case AggFunc::kSum: {
        SelectItem item;
        item.expr = MakeAggregate(AggFunc::kSum, agg->children[0]->Clone());
        item.alias = base;
        view->select.push_back(std::move(item));
        rw.replacement = MakeAggregate(AggFunc::kSum,
                                       MakeColumnRef(valias, base));
        break;
      }
      case AggFunc::kCount: {
        SelectItem item;
        item.expr = MakeAggregate(AggFunc::kCount, agg->children[0]->Clone());
        item.alias = base;
        view->select.push_back(std::move(item));
        rw.replacement = MakeAggregate(AggFunc::kSum,
                                       MakeColumnRef(valias, base));
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax: {
        SelectItem item;
        item.expr = MakeAggregate(agg->agg, agg->children[0]->Clone());
        item.alias = base;
        view->select.push_back(std::move(item));
        rw.replacement =
            MakeAggregate(agg->agg, MakeColumnRef(valias, base));
        break;
      }
      case AggFunc::kAvg: {
        SelectItem sum_item;
        sum_item.expr =
            MakeAggregate(AggFunc::kSum, agg->children[0]->Clone());
        sum_item.alias = base + "_s";
        view->select.push_back(std::move(sum_item));
        SelectItem cnt_item;
        cnt_item.expr =
            MakeAggregate(AggFunc::kCount, agg->children[0]->Clone());
        cnt_item.alias = base + "_c";
        view->select.push_back(std::move(cnt_item));
        rw.replacement = MakeBinary(
            BinaryOp::kDiv,
            MakeAggregate(AggFunc::kSum, MakeColumnRef(valias, base + "_s")),
            MakeAggregate(AggFunc::kSum, MakeColumnRef(valias, base + "_c")));
        break;
      }
      case AggFunc::kCountStar:
        break;  // rejected by legality
    }
    rewrites.push_back(std::move(rw));
  }

  // 4. Insert the view and rewrite the block: aggregates first (whole-tree
  // matches), then plain T-column refs.
  TableRef entry;
  entry.alias = valias;
  entry.derived = std::move(view);
  qb->from.push_back(std::move(entry));

  std::function<void(ExprPtr&)> rewrite = [&](ExprPtr& e) {
    if (e == nullptr) return;
    for (const auto& rw : rewrites) {
      if (ExprEquals(*e, *rw.pattern)) {
        e = rw.replacement->Clone();
        return;
      }
    }
    if (e->kind == ExprKind::kColumnRef && e->table_alias == talias) {
      auto it = colmap.find(e->column_name);
      if (it != colmap.end()) {
        ExprPtr ref = MakeColumnRef(valias, it->second);
        ref->type = e->type;
        e = std::move(ref);
      }
      return;
    }
    for (auto& ch : e->children) rewrite(ch);
    for (auto& ch : e->partition_by) rewrite(ch);
    for (auto& ch : e->win_order_by) rewrite(ch);
    if (e->subquery != nullptr) {
      VisitAllBlocks(e->subquery.get(), [&](QueryBlock* b) {
        VisitLocalExprSlots(b, [&](ExprPtr& slot) { rewrite(slot); });
      });
    }
  };
  VisitLocalExprSlots(qb, [&](ExprPtr& slot) { rewrite(slot); });
}

}  // namespace

int GroupByPlacementTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status GroupByPlacementTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("gbp object count changed");
  }
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    // Re-validate: a previous application may have consumed this table's
    // block shape.
    if (candidates[i].from_index >= candidates[i].block->from.size()) continue;
    if (!IsGbpCandidate(candidates[i].block, candidates[i].from_index)) {
      continue;
    }
    ApplyGbp(ctx, candidates[i].block, candidates[i].from_index);
  }
  return Status::OK();
}

}  // namespace cbqt
