#include "transform/join_elimination.h"

#include <algorithm>

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// True if `e` is `a.x = b.y` (either orientation) for the given aliases and
// columns.
bool IsColEq(const Expr& e, const std::string& a, const std::string& x,
             const std::string& b, const std::string& y) {
  if (e.kind != ExprKind::kBinary || e.bop != BinaryOp::kEq) return false;
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  if (l.kind != ExprKind::kColumnRef || r.kind != ExprKind::kColumnRef) {
    return false;
  }
  auto match = [](const Expr& c, const std::string& al, const std::string& co) {
    return c.table_alias == al && c.column_name == co;
  };
  return (match(l, a, x) && match(r, b, y)) ||
         (match(l, b, y) && match(r, a, x));
}

// Attempts FK -> PK elimination within block `qb`. Returns true on change.
bool TryFkElimination(TransformContext& ctx, QueryBlock* qb) {
  for (size_t di = 0; di < qb->from.size(); ++di) {
    const TableRef& d = qb->from[di];
    if (!d.IsBaseTable() || d.table_def == nullptr ||
        d.join != JoinKind::kInner || !d.join_conds.empty()) {
      continue;
    }
    for (size_t ei = 0; ei < qb->from.size(); ++ei) {
      if (ei == di) continue;
      const TableRef& e = qb->from[ei];
      if (!e.IsBaseTable() || e.table_def == nullptr) continue;
      for (const auto& fk : e.table_def->foreign_keys) {
        if (fk.ref_table != d.table_name) continue;
        // The FK must reference d's primary key in full.
        if (fk.ref_columns.size() != d.table_def->primary_key.size()) continue;
        bool refs_pk = true;
        for (const auto& rc : fk.ref_columns) {
          if (std::find(d.table_def->primary_key.begin(),
                        d.table_def->primary_key.end(),
                        rc) == d.table_def->primary_key.end()) {
            refs_pk = false;
          }
        }
        if (!refs_pk) continue;
        // Every FK column pair must appear as a WHERE equality.
        std::set<const Expr*> join_conjuncts;
        bool all_present = true;
        for (size_t k = 0; k < fk.columns.size(); ++k) {
          const Expr* found = nullptr;
          for (const auto& w : qb->where) {
            if (IsColEq(*w, e.alias, fk.columns[k], d.alias,
                        fk.ref_columns[k])) {
              found = w.get();
              break;
            }
          }
          if (found == nullptr) {
            all_present = false;
            break;
          }
          join_conjuncts.insert(found);
        }
        if (!all_present) continue;
        // d must be unreferenced outside these join conjuncts.
        if (CountAliasUses(*ctx.root, d.alias, join_conjuncts) > 0) continue;

        // Eliminate: drop the join conjuncts and the table; preserve
        // semantics for nullable FK columns.
        std::vector<ExprPtr> kept;
        for (auto& w : qb->where) {
          if (join_conjuncts.count(w.get()) == 0) kept.push_back(std::move(w));
        }
        qb->where = std::move(kept);
        for (const auto& col : fk.columns) {
          if (!e.table_def->IsNotNull(col)) {
            qb->where.push_back(MakeUnary(
                UnaryOp::kIsNotNull, MakeColumnRef(e.alias, col)));
          }
        }
        qb->from.erase(qb->from.begin() + static_cast<long>(di));
        return true;
      }
    }
  }
  return false;
}

// Attempts outer-join-on-unique-key elimination. Returns true on change.
bool TryOuterUniqueElimination(TransformContext& ctx, QueryBlock* qb) {
  for (size_t di = 0; di < qb->from.size(); ++di) {
    const TableRef& d = qb->from[di];
    if (!d.IsBaseTable() || d.table_def == nullptr ||
        d.join != JoinKind::kLeftOuter || d.join_conds.empty()) {
      continue;
    }
    // Every join condition must be `other.x = d.y`; the y's must form a
    // unique key of d.
    std::vector<std::string> d_cols;
    bool shape_ok = true;
    for (const auto& c : d.join_conds) {
      if (c->kind != ExprKind::kBinary || c->bop != BinaryOp::kEq) {
        shape_ok = false;
        break;
      }
      const Expr* l = c->children[0].get();
      const Expr* r = c->children[1].get();
      if (l->kind != ExprKind::kColumnRef || r->kind != ExprKind::kColumnRef) {
        shape_ok = false;
        break;
      }
      const Expr* d_side = nullptr;
      const Expr* o_side = nullptr;
      if (l->table_alias == d.alias && r->table_alias != d.alias) {
        d_side = l;
        o_side = r;
      } else if (r->table_alias == d.alias && l->table_alias != d.alias) {
        d_side = r;
        o_side = l;
      }
      if (d_side == nullptr) {
        shape_ok = false;
        break;
      }
      (void)o_side;
      d_cols.push_back(d_side->column_name);
    }
    if (!shape_ok) continue;
    if (!d.table_def->IsUniqueKey(d_cols)) continue;
    std::set<const Expr*> exclude;
    for (const auto& c : d.join_conds) exclude.insert(c.get());
    if (CountAliasUses(*ctx.root, d.alias, exclude) > 0) continue;
    qb->from.erase(qb->from.begin() + static_cast<long>(di));
    return true;
  }
  return false;
}

}  // namespace

Result<bool> EliminateJoins(TransformContext& ctx) {
  bool changed = false;
  for (int guard = 0; guard < 64; ++guard) {
    bool round_changed = false;
    VisitAllBlocks(ctx.root, [&](QueryBlock* b) {
      if (round_changed || b->IsSetOp()) return;
      if (TryFkElimination(ctx, b) || TryOuterUniqueElimination(ctx, b)) {
        round_changed = true;
      }
    });
    if (!round_changed) break;
    changed = true;
  }
  return changed;
}

}  // namespace cbqt
