#ifndef CBQT_TRANSFORM_TRANSFORM_UTIL_H_
#define CBQT_TRANSFORM_TRANSFORM_UTIL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sql/expr_util.h"
#include "sql/query_block.h"
#include "transform/transformation.h"

namespace cbqt {

/// A correlated equality conjunct of a subquery: `local = outer` where
/// `local` references only the subquery's own tables and `outer` references
/// only enclosing blocks' tables.
struct CorrelatedEq {
  ExprPtr local;
  ExprPtr outer;
};

/// View output column name -> defining select expression.
std::map<std::string, const Expr*> ViewColumnMap(const QueryBlock& view);

/// For a set-operation view: output column name (branch 0's select aliases,
/// which are the view's visible columns) -> the *positionally matching*
/// select expression of branch `branch_idx`. Branches may use different
/// aliases; set-op outputs align by position.
std::map<std::string, const Expr*> BranchColumnMap(const QueryBlock& setop,
                                                   size_t branch_idx);

/// True if every outer reference of `sub` resolves to a FROM alias of
/// `parent` itself — the paper's "correlated to parent only" unnesting
/// precondition (§2.1.1).
bool CorrelatedOnlyToParent(const QueryBlock& sub, const QueryBlock& parent);

/// True if `sub` has any outer reference at all.
bool IsCorrelated(const QueryBlock& sub);

/// Splits `sub`'s WHERE conjuncts into correlated equalities (local = outer
/// w.r.t. `parent`) and the rest. Returns false (leaving `sub` untouched)
/// if some correlated conjunct is not a plain equality with a local column
/// side — those subqueries are not unnestable by view generation.
bool ExtractCorrelatedEqualities(QueryBlock* sub, const QueryBlock& parent,
                                 std::vector<CorrelatedEq>* eqs,
                                 std::vector<ExprPtr>* rest);

/// Number of references to alias `a` anywhere under `root`, excluding the
/// expressions in `exclude`.
int CountAliasUses(const QueryBlock& root, const std::string& a,
                   const std::set<const Expr*>& exclude);

/// True if the view block is a "simple SPJ" mergeable view: regular block,
/// no DISTINCT/GROUP BY/HAVING/set-op/window/ROWNUM/ORDER BY, and select
/// items free of aggregates and subqueries.
bool IsSpjView(const QueryBlock& view);

/// Applies the full heuristic (imperative) transformation battery to the
/// tree, bottom-up, repeating to fixpoint: SPJ view merging, join
/// elimination, heuristic subquery unnesting (merge into semi/antijoin),
/// group pruning, and filter predicate move-around (paper §2.1).
/// `enable_unnest` disables the unnesting step (Figure 3's baseline).
/// Re-binding is the caller's responsibility.
struct HeuristicOptions {
  bool view_merge = true;
  bool join_elimination = true;
  bool subquery_unnest = true;
  bool group_pruning = true;
  bool predicate_moveround = true;
  bool outer_join_simplification = true;
  bool distinct_elimination = true;
};
Status ApplyHeuristicTransformations(TransformContext& ctx,
                                     const HeuristicOptions& opts);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_TRANSFORM_UTIL_H_
