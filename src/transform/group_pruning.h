#ifndef CBQT_TRANSFORM_GROUP_PRUNING_H_
#define CBQT_TRANSFORM_GROUP_PRUNING_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Group pruning (paper §2.1.4, imperative): removes from ROLLUP /
/// GROUPING SETS views the grouping sets that outer filter predicates
/// reject. A non-IS-NULL predicate on a grouping column evaluates to
/// UNKNOWN for every row of a grouping set that does not include that
/// column (the key is NULL there), so such sets produce no output and can
/// be pruned (paper Q9). Runs after predicate move-around so pruning
/// predicates sit next to the group-by view. Returns whether anything
/// changed; caller re-binds.
Result<bool> PruneGroups(TransformContext& ctx);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_GROUP_PRUNING_H_
