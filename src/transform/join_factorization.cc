#include "transform/join_factorization.h"

#include <algorithm>

#include "transform/transform_util.h"

namespace cbqt {

namespace {

// Canonicalizes expressions for cross-branch comparison by renaming the
// factored table's alias to a placeholder.
ExprPtr CanonicalizeForAlias(const Expr& e, const std::string& alias) {
  ExprPtr copy = e.Clone();
  RewriteColumnRefs(&copy, [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != alias) return nullptr;
    return MakeColumnRef("$t", ref.column_name);
  });
  return copy;
}

// Per-branch description of the factored table's role.
struct BranchRole {
  size_t entry_index;                 // position of the table in branch FROM
  std::vector<size_t> filter_idx;     // single-alias conjuncts on t
  std::vector<ExprPtr> filters_canon; // canonicalized for comparison
  // Join conjuncts `t.c = E` (E free of t): canonical column sequence and
  // the E expressions (branch-local).
  std::vector<size_t> join_idx;
  std::vector<std::string> join_cols;
  std::vector<const Expr*> join_others;
};

bool DescribeBranch(const QueryBlock& branch, const std::string& table_name,
                    BranchRole* role) {
  if (branch.IsSetOp() || branch.distinct || branch.IsAggregating() ||
      branch.rownum_limit >= 0 || !branch.order_by.empty()) {
    return false;
  }
  int found = -1;
  for (size_t i = 0; i < branch.from.size(); ++i) {
    const TableRef& tr = branch.from[i];
    if (tr.IsBaseTable() && tr.table_name == table_name &&
        tr.join == JoinKind::kInner && tr.join_conds.empty()) {
      if (found >= 0) return false;  // ambiguous: appears twice
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return false;
  if (branch.from.size() < 2) return false;  // nothing left to union
  role->entry_index = static_cast<size_t>(found);
  const std::string alias = branch.from[role->entry_index].alias;

  for (size_t i = 0; i < branch.where.size(); ++i) {
    const Expr& w = *branch.where[i];
    if (!ExprUsesAlias(w, alias)) continue;
    if (ContainsSubquery(w) || ContainsRownum(w)) return false;
    std::string filter_alias;
    if (IsSingleTableFilter(w, &filter_alias) && filter_alias == alias) {
      role->filter_idx.push_back(i);
      role->filters_canon.push_back(CanonicalizeForAlias(w, alias));
      continue;
    }
    // Must be t.c = E with E free of t.
    if (w.kind != ExprKind::kBinary || w.bop != BinaryOp::kEq) return false;
    const Expr* l = w.children[0].get();
    const Expr* r = w.children[1].get();
    const Expr* tcol = nullptr;
    const Expr* other = nullptr;
    if (l->kind == ExprKind::kColumnRef && l->table_alias == alias &&
        !ExprUsesAlias(*r, alias)) {
      tcol = l;
      other = r;
    } else if (r->kind == ExprKind::kColumnRef && r->table_alias == alias &&
               !ExprUsesAlias(*l, alias)) {
      tcol = r;
      other = l;
    }
    if (tcol == nullptr) return false;
    if (ContainsSubquery(*other)) return false;
    role->join_idx.push_back(i);
    role->join_cols.push_back(tcol->column_name);
    role->join_others.push_back(other);
  }
  // Select items referencing t must reference ONLY t (they become outer
  // expressions) — mixed expressions cannot be factored.
  for (const auto& item : branch.select) {
    if (!ExprUsesAlias(*item.expr, alias)) continue;
    std::set<std::string> used = CollectLocalAliases(*item.expr);
    if (used.size() != 1) return false;
  }
  return true;
}

struct FactorCandidate {
  QueryBlock* setop;
  std::string table_name;
  /// The paper's §2.2.5 extension ("will be available in the next
  /// release"): the join predicates cannot be pulled out, so they stay
  /// inside the branches — which then reference the hoisted table like a
  /// correlation, making the UNION ALL view lateral (the JPPD technique).
  bool lateral = false;
};

bool CandidateApplies(const QueryBlock& u, const std::string& table_name) {
  if (u.set_op != SetOpKind::kUnionAll || u.branches.size() < 2) return false;
  std::vector<BranchRole> roles(u.branches.size());
  for (size_t b = 0; b < u.branches.size(); ++b) {
    if (!DescribeBranch(*u.branches[b], table_name, &roles[b])) return false;
  }
  // Filters and join-column sequences must match across branches; the
  // t-referencing select items must be identical (modulo alias) and in the
  // same positions.
  const BranchRole& first = roles[0];
  for (size_t b = 1; b < roles.size(); ++b) {
    const BranchRole& r = roles[b];
    if (r.filters_canon.size() != first.filters_canon.size()) return false;
    for (size_t k = 0; k < r.filters_canon.size(); ++k) {
      if (!ExprEquals(*r.filters_canon[k], *first.filters_canon[k])) {
        return false;
      }
    }
    if (r.join_cols != first.join_cols) return false;
  }
  // Positional select compatibility.
  const QueryBlock& b0 = *u.branches[0];
  const std::string a0 = b0.from[first.entry_index].alias;
  for (size_t b = 1; b < u.branches.size(); ++b) {
    const QueryBlock& bb = *u.branches[b];
    const std::string ab = bb.from[roles[b].entry_index].alias;
    if (bb.select.size() != b0.select.size()) return false;
    for (size_t i = 0; i < b0.select.size(); ++i) {
      bool t0 = ExprUsesAlias(*b0.select[i].expr, a0);
      bool tb = ExprUsesAlias(*bb.select[i].expr, ab);
      if (t0 != tb) return false;
      if (t0) {
        auto c0 = CanonicalizeForAlias(*b0.select[i].expr, a0);
        auto cb = CanonicalizeForAlias(*bb.select[i].expr, ab);
        if (!ExprEquals(*c0, *cb)) return false;
      }
    }
  }
  return true;
}

// Lateral variant: the table appears in every branch with matching local
// filters, but its join predicates need not align (they stay inside). All
// conjuncts referencing the table besides the matching filters are allowed
// in any shape, as long as they are subquery-free.
struct LateralRole {
  size_t entry_index = 0;
  std::vector<size_t> filter_idx;
  std::vector<ExprPtr> filters_canon;
};

bool DescribeLateralBranch(const QueryBlock& branch,
                           const std::string& table_name, LateralRole* role) {
  if (branch.IsSetOp() || branch.distinct || branch.IsAggregating() ||
      branch.rownum_limit >= 0 || !branch.order_by.empty()) {
    return false;
  }
  int found = -1;
  for (size_t i = 0; i < branch.from.size(); ++i) {
    const TableRef& tr = branch.from[i];
    if (tr.IsBaseTable() && tr.table_name == table_name &&
        tr.join == JoinKind::kInner && tr.join_conds.empty()) {
      if (found >= 0) return false;
      found = static_cast<int>(i);
    }
  }
  if (found < 0) return false;
  if (branch.from.size() < 2) return false;
  role->entry_index = static_cast<size_t>(found);
  const std::string alias = branch.from[role->entry_index].alias;
  for (size_t i = 0; i < branch.where.size(); ++i) {
    const Expr& w = *branch.where[i];
    if (!ExprUsesAlias(w, alias)) continue;
    if (ContainsSubquery(w) || ContainsRownum(w)) return false;
    std::string filter_alias;
    if (IsSingleTableFilter(w, &filter_alias) && filter_alias == alias) {
      role->filter_idx.push_back(i);
      role->filters_canon.push_back(CanonicalizeForAlias(w, alias));
    }
    // Anything else referencing the table stays inside the branch.
  }
  return true;
}

bool LateralCandidateApplies(const QueryBlock& u,
                             const std::string& table_name) {
  if (u.set_op != SetOpKind::kUnionAll || u.branches.size() < 2) return false;
  std::vector<LateralRole> roles(u.branches.size());
  for (size_t b = 0; b < u.branches.size(); ++b) {
    if (!DescribeLateralBranch(*u.branches[b], table_name, &roles[b])) {
      return false;
    }
  }
  const LateralRole& first = roles[0];
  for (size_t b = 1; b < roles.size(); ++b) {
    const LateralRole& r = roles[b];
    if (r.filters_canon.size() != first.filters_canon.size()) return false;
    for (size_t k = 0; k < r.filters_canon.size(); ++k) {
      if (!ExprEquals(*r.filters_canon[k], *first.filters_canon[k])) {
        return false;
      }
    }
  }
  // Positional select compatibility (same rule as the pull-out variant).
  const QueryBlock& b0 = *u.branches[0];
  const std::string a0 = b0.from[first.entry_index].alias;
  for (size_t b = 1; b < u.branches.size(); ++b) {
    const QueryBlock& bb = *u.branches[b];
    const std::string ab = bb.from[roles[b].entry_index].alias;
    if (bb.select.size() != b0.select.size()) return false;
    for (size_t i = 0; i < b0.select.size(); ++i) {
      bool t0 = ExprUsesAlias(*b0.select[i].expr, a0);
      bool tb = ExprUsesAlias(*bb.select[i].expr, ab);
      if (t0 != tb) return false;
      if (t0) {
        auto c0 = CanonicalizeForAlias(*b0.select[i].expr, a0);
        auto cb = CanonicalizeForAlias(*bb.select[i].expr, ab);
        if (!ExprEquals(*c0, *cb)) return false;
      }
    }
  }
  // Every branch must still be connected to its other tables somehow; with
  // no join predicate at all the lateral rewrite degenerates to a plain
  // pull-out, which CandidateApplies would already accept.
  return true;
}

void ApplyLateralFactorization(TransformContext& ctx, QueryBlock* u,
                               const std::string& table_name) {
  std::vector<LateralRole> roles(u->branches.size());
  for (size_t b = 0; b < u->branches.size(); ++b) {
    DescribeLateralBranch(*u->branches[b], table_name, &roles[b]);
  }
  const std::string outer_alias =
      u->branches[0]->from[roles[0].entry_index].alias;
  std::string valias = GlobalUniqueAlias(*ctx.root, "vw_jf");

  TableRef outer_t = std::move(u->branches[0]->from[roles[0].entry_index]);
  std::vector<ExprPtr> outer_filters;
  for (size_t k : roles[0].filter_idx) {
    outer_filters.push_back(u->branches[0]->where[k]->Clone());
  }

  const QueryBlock& b0 = *u->branches[0];
  std::vector<std::string> out_aliases;
  std::vector<bool> is_t_col;
  std::vector<ExprPtr> t_exprs;
  for (const auto& item : b0.select) {
    out_aliases.push_back(item.alias);
    bool is_t = ExprUsesAlias(*item.expr, outer_alias);
    is_t_col.push_back(is_t);
    t_exprs.push_back(is_t ? item.expr->Clone() : nullptr);
  }

  for (size_t b = 0; b < u->branches.size(); ++b) {
    QueryBlock& branch = *u->branches[b];
    LateralRole& role = roles[b];
    const std::string alias = branch.from[role.entry_index].alias;

    std::set<size_t> drop(role.filter_idx.begin(), role.filter_idx.end());
    std::vector<ExprPtr> kept_where;
    for (size_t i = 0; i < branch.where.size(); ++i) {
      if (drop.count(i) == 0) kept_where.push_back(std::move(branch.where[i]));
    }
    branch.where = std::move(kept_where);
    branch.from.erase(branch.from.begin() +
                      static_cast<long>(role.entry_index));
    // Remaining references to the branch's copy of the table now refer to
    // the hoisted sibling: rename to the common outer alias (for branch 0
    // this is a no-op).
    if (alias != outer_alias) RenameTableAlias(&branch, alias, outer_alias);

    std::vector<SelectItem> new_select;
    for (size_t i = 0; i < branch.select.size(); ++i) {
      if (is_t_col[i]) continue;
      SelectItem item;
      item.alias = out_aliases[i];
      item.expr = std::move(branch.select[i].expr);
      new_select.push_back(std::move(item));
    }
    branch.select = std::move(new_select);
  }

  auto view = std::make_unique<QueryBlock>();
  view->set_op = SetOpKind::kUnionAll;
  view->branches = std::move(u->branches);

  u->set_op = SetOpKind::kNone;
  u->branches.clear();
  u->from.clear();
  u->where.clear();
  u->select.clear();

  u->from.push_back(std::move(outer_t));
  TableRef ventry;
  ventry.alias = valias;
  ventry.derived = std::move(view);
  ventry.lateral = true;  // branches reference the hoisted table
  u->from.push_back(std::move(ventry));
  for (auto& f : outer_filters) u->where.push_back(std::move(f));
  for (size_t i = 0; i < out_aliases.size(); ++i) {
    SelectItem item;
    item.alias = out_aliases[i];
    item.expr = is_t_col[i] ? std::move(t_exprs[i])
                            : MakeColumnRef(valias, out_aliases[i]);
    u->select.push_back(std::move(item));
  }
}

std::vector<FactorCandidate> FindCandidates(QueryBlock* root) {
  std::vector<FactorCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* u) {
    if (u->set_op != SetOpKind::kUnionAll) return;
    // Candidate table names: base tables of the first branch.
    if (u->branches.empty() || u->branches[0]->IsSetOp()) return;
    std::set<std::string> names;
    for (const auto& tr : u->branches[0]->from) {
      if (tr.IsBaseTable()) names.insert(tr.table_name);
    }
    for (const auto& name : names) {
      if (CandidateApplies(*u, name)) {
        out.push_back(FactorCandidate{u, name, false});
      } else if (LateralCandidateApplies(*u, name)) {
        out.push_back(FactorCandidate{u, name, true});
      }
    }
  });
  return out;
}

void ApplyFactorization(TransformContext& ctx, QueryBlock* u,
                        const std::string& table_name) {
  std::vector<BranchRole> roles(u->branches.size());
  for (size_t b = 0; b < u->branches.size(); ++b) {
    DescribeBranch(*u->branches[b], table_name, &roles[b]);
  }
  const std::string outer_alias =
      u->branches[0]->from[roles[0].entry_index].alias;
  std::string valias = GlobalUniqueAlias(*ctx.root, "vw_jf");

  // Salvage branch 0's entry for the outer table and its filters.
  TableRef outer_t =
      std::move(u->branches[0]->from[roles[0].entry_index]);
  std::vector<ExprPtr> outer_filters;
  for (size_t k : roles[0].filter_idx) {
    outer_filters.push_back(u->branches[0]->where[k]->Clone());
  }

  // Output signature of the original UNION ALL (select aliases of branch 0)
  // and which positions reference the factored table.
  const QueryBlock& b0 = *u->branches[0];
  std::vector<std::string> out_aliases;
  std::vector<bool> is_t_col;
  std::vector<ExprPtr> t_exprs;  // outer expressions for t positions
  for (const auto& item : b0.select) {
    out_aliases.push_back(item.alias);
    bool is_t = ExprUsesAlias(*item.expr, outer_alias);
    is_t_col.push_back(is_t);
    t_exprs.push_back(is_t ? item.expr->Clone() : nullptr);
  }
  size_t num_join = roles[0].join_cols.size();

  // Rewrite each branch: drop the t entry, its filters and join conjuncts;
  // drop t-referencing select items; export the join "other sides".
  for (size_t b = 0; b < u->branches.size(); ++b) {
    QueryBlock& branch = *u->branches[b];
    BranchRole& role = roles[b];
    const std::string alias = branch.from[role.entry_index].alias;

    std::set<size_t> drop(role.filter_idx.begin(), role.filter_idx.end());
    drop.insert(role.join_idx.begin(), role.join_idx.end());
    std::vector<ExprPtr> kept_where;
    for (size_t i = 0; i < branch.where.size(); ++i) {
      if (drop.count(i) == 0) kept_where.push_back(std::move(branch.where[i]));
    }
    // Export join columns before clearing (join_others point into the old
    // where list).
    std::vector<ExprPtr> exported;
    for (size_t j = 0; j < num_join; ++j) {
      exported.push_back(role.join_others[j]->Clone());
    }
    branch.where = std::move(kept_where);
    branch.from.erase(branch.from.begin() +
                      static_cast<long>(role.entry_index));

    std::vector<SelectItem> new_select;
    for (size_t i = 0; i < branch.select.size(); ++i) {
      if (is_t_col[i]) continue;
      SelectItem item;
      item.alias = out_aliases[i];
      item.expr = std::move(branch.select[i].expr);
      new_select.push_back(std::move(item));
    }
    for (size_t j = 0; j < num_join; ++j) {
      SelectItem item;
      item.alias = "jc" + std::to_string(j);
      item.expr = std::move(exported[j]);
      new_select.push_back(std::move(item));
    }
    branch.select = std::move(new_select);
    (void)alias;
  }

  // Build the new containing block in place of `u`.
  auto view = std::make_unique<QueryBlock>();
  view->set_op = SetOpKind::kUnionAll;
  view->branches = std::move(u->branches);

  u->set_op = SetOpKind::kNone;
  u->branches.clear();
  u->from.clear();
  u->where.clear();
  u->select.clear();

  u->from.push_back(std::move(outer_t));
  TableRef ventry;
  ventry.alias = valias;
  ventry.derived = std::move(view);
  u->from.push_back(std::move(ventry));
  for (auto& f : outer_filters) u->where.push_back(std::move(f));
  for (size_t j = 0; j < num_join; ++j) {
    u->where.push_back(MakeBinary(
        BinaryOp::kEq, MakeColumnRef(outer_alias, roles[0].join_cols[j]),
        MakeColumnRef(valias, "jc" + std::to_string(j))));
  }
  for (size_t i = 0; i < out_aliases.size(); ++i) {
    SelectItem item;
    item.alias = out_aliases[i];
    item.expr = is_t_col[i] ? std::move(t_exprs[i])
                            : MakeColumnRef(valias, out_aliases[i]);
    u->select.push_back(std::move(item));
  }
}

}  // namespace

int JoinFactorizationTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status JoinFactorizationTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("join factorization object count changed");
  }
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    // Re-validate (an earlier factorization of the same block invalidates
    // the other candidates of that block).
    if (candidates[i].lateral) {
      if (!LateralCandidateApplies(*candidates[i].setop,
                                   candidates[i].table_name)) {
        continue;
      }
      ApplyLateralFactorization(ctx, candidates[i].setop,
                                candidates[i].table_name);
    } else {
      if (!CandidateApplies(*candidates[i].setop, candidates[i].table_name)) {
        continue;
      }
      ApplyFactorization(ctx, candidates[i].setop, candidates[i].table_name);
    }
  }
  return Status::OK();
}

}  // namespace cbqt
