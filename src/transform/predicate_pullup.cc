#include "transform/predicate_pullup.h"

#include "common/str_util.h"
#include "transform/transform_util.h"

namespace cbqt {

namespace {

struct PullupCandidate {
  QueryBlock* block;   // containing block (has the ROWNUM limit)
  size_t from_index;   // the view
  size_t conjunct;     // index into the view's WHERE
};

bool HasExpensiveCall(const Expr& e) {
  bool found = false;
  VisitExprConst(&e, [&](const Expr* x) {
    if (x->kind == ExprKind::kFuncCall &&
        StartsWith(x->func_name, "expensive_")) {
      found = true;
    }
  });
  return found;
}

// Every column ref of `pred` must be exported by the view verbatim (a
// select item that is exactly that column ref), so the predicate can be
// rewritten over the view's outputs.
bool PullableThroughSelect(const QueryBlock& view, const Expr& pred,
                           std::map<std::string, std::string>* reverse_map) {
  for (const Expr* ref : CollectLocalColumnRefs(pred)) {
    bool found = false;
    for (const auto& item : view.select) {
      if (item.expr->kind == ExprKind::kColumnRef &&
          item.expr->table_alias == ref->table_alias &&
          item.expr->column_name == ref->column_name) {
        (*reverse_map)[ref->table_alias + "." + ref->column_name] = item.alias;
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

std::vector<PullupCandidate> FindCandidates(QueryBlock* root) {
  std::vector<PullupCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if (b->IsSetOp() || b->rownum_limit < 0) return;
    for (size_t i = 0; i < b->from.size(); ++i) {
      const TableRef& tr = b->from[i];
      if (tr.IsBaseTable() || tr.lateral) continue;
      if (tr.join != JoinKind::kInner) continue;
      const QueryBlock& v = *tr.derived;
      if (v.IsSetOp()) continue;
      // Blocking operator, but not aggregation (filters do not commute with
      // GROUP BY).
      bool blocking = !v.order_by.empty() || v.distinct;
      if (!blocking || v.IsAggregating()) continue;
      for (size_t p = 0; p < v.where.size(); ++p) {
        const Expr& pred = *v.where[p];
        if (!HasExpensiveCall(pred)) continue;
        if (ContainsSubquery(pred) || ContainsRownum(pred)) continue;
        std::map<std::string, std::string> reverse_map;
        if (!PullableThroughSelect(v, pred, &reverse_map)) continue;
        out.push_back(PullupCandidate{b, i, p});
      }
    }
  });
  return out;
}

void ApplyPullup(QueryBlock* b, size_t from_index, size_t conjunct) {
  TableRef& tr = b->from[from_index];
  QueryBlock& v = *tr.derived;
  ExprPtr pred = std::move(v.where[conjunct]);
  v.where.erase(v.where.begin() + static_cast<long>(conjunct));
  std::map<std::string, std::string> reverse_map;
  PullableThroughSelect(v, *pred, &reverse_map);
  const std::string valias = tr.alias;
  RewriteColumnRefs(&pred, [&](const Expr& ref) -> ExprPtr {
    auto it = reverse_map.find(ref.table_alias + "." + ref.column_name);
    if (it == reverse_map.end()) return nullptr;
    ExprPtr out = MakeColumnRef(valias, it->second);
    out->type = ref.type;
    return out;
  });
  b->where.push_back(std::move(pred));
}

}  // namespace

int PredicatePullupTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status PredicatePullupTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("predicate pullup object count changed");
  }
  // Reverse order keeps smaller conjunct indices of the same view valid.
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    ApplyPullup(candidates[i].block, candidates[i].from_index,
                candidates[i].conjunct);
  }
  return Status::OK();
}

}  // namespace cbqt
