#ifndef CBQT_TRANSFORM_PREDICATE_PULLUP_H_
#define CBQT_TRANSFORM_PREDICATE_PULLUP_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based predicate pullup (paper §2.2.6, Q16 -> Q17): hoists expensive
/// predicates out of a view into the containing query when the containing
/// query has a ROWNUM cutoff and the view contains a blocking operator
/// (ORDER BY / DISTINCT). The expensive predicate is then evaluated lazily
/// under the ROWNUM limit — on roughly `limit / selectivity` rows instead
/// of the full data set.
///
/// Objects: individual expensive predicates eligible for pullup (Q16's two
/// predicates give 3 + 1 = 4 exhaustive states, matching the paper's "three
/// ways ... can be applied" plus the identity). Never applied heuristically
/// (the paper makes this decision purely by cost).
class PredicatePullupTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "predicate-pullup"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override {
    (void)ctx;
    (void)index;
    return false;
  }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_PREDICATE_PULLUP_H_
