#ifndef CBQT_TRANSFORM_GROUPBY_PLACEMENT_H_
#define CBQT_TRANSFORM_GROUPBY_PLACEMENT_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// Cost-based group-by placement / pushdown — eager aggregation (paper
/// §2.2.4, after Chaudhuri & Shim and Yan & Larson): pre-aggregates one
/// table of an aggregating join block inside an inline GROUP BY view,
/// grouped by that table's join and grouping columns, decomposing the outer
/// aggregates (SUM -> SUM of partial sums, COUNT -> SUM of partial counts,
/// MIN/MAX -> MIN/MAX, AVG -> SUM/SUM).
///
/// Objects: (aggregating block, candidate table) pairs where every
/// aggregate argument references only that table and the table's other
/// columns are used only in equality joins / filters / grouping
/// expressions. Never applied heuristically (paper §4.3).
class GroupByPlacementTransformation : public CostBasedTransformation {
 public:
  std::string Name() const override { return "groupby-placement"; }
  int CountObjects(const TransformContext& ctx) const override;
  Status Apply(TransformContext& ctx,
               const std::vector<bool>& bits) const override;
  bool HeuristicDecision(const TransformContext& ctx,
                         int index) const override {
    (void)ctx;
    (void)index;
    return false;  // GBP is never applied by heuristics (paper §4.3)
  }
};

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_GROUPBY_PLACEMENT_H_
