#include "transform/groupby_view_merge.h"

#include "transform/transform_util.h"

namespace cbqt {

namespace {

struct MergeCandidate {
  QueryBlock* block;
  size_t from_index;
  bool distinct_view;  // false: group-by view
};

bool ViewSelectShapeOk(const QueryBlock& view) {
  for (const auto& item : view.select) {
    if (ContainsWindow(*item.expr) || ContainsSubquery(*item.expr) ||
        ContainsRownum(*item.expr)) {
      return false;
    }
    if (item.expr->kind == ExprKind::kAggregate) continue;
    if (ContainsAggregate(*item.expr)) return false;  // agg inside expr: keep
    // Non-aggregate items must be grouping expressions (or arbitrary for
    // distinct views).
    if (!view.group_by.empty()) {
      bool is_key = false;
      for (const auto& g : view.group_by) {
        if (ExprEquals(*g, *item.expr)) is_key = true;
      }
      if (!is_key) return false;
    }
  }
  return true;
}

bool IsMergeableView(const QueryBlock& outer, const TableRef& tr,
                     bool* distinct_view) {
  if (tr.IsBaseTable() || tr.no_merge || tr.lateral) return false;
  if (tr.join != JoinKind::kInner) return false;
  const QueryBlock& v = *tr.derived;
  if (v.IsSetOp() || !v.having.empty() || v.rownum_limit >= 0 ||
      !v.order_by.empty() || !v.grouping_sets.empty()) {
    return false;
  }
  for (const auto& e : v.from) {
    if (e.join != JoinKind::kInner || e.lateral) return false;
  }
  for (const auto& w : v.where) {
    if (ContainsSubquery(*w) || ContainsRownum(*w)) return false;
  }
  if (IsCorrelated(v)) return false;
  // The containing block must not itself aggregate (double aggregation) and
  // all of its other FROM entries must be base tables (their ROWIDs become
  // grouping keys).
  if (outer.IsAggregating() || !outer.grouping_sets.empty()) return false;
  for (const auto& e : outer.from) {
    if (&e == &tr) continue;
    if (!e.IsBaseTable()) return false;
    if (e.join != JoinKind::kInner && e.join != JoinKind::kSemi &&
        e.join != JoinKind::kAnti && e.join != JoinKind::kAntiNA) {
      return false;
    }
    // Join conditions cannot absorb aggregates; if they reference the view
    // they might after rewriting, so reject.
    for (const auto& c : e.join_conds) {
      if (ExprUsesAlias(*c, tr.alias)) return false;
    }
  }
  // Outer expressions that embed a subquery and also reference the view
  // cannot be rewritten soundly: the view's outputs would turn into
  // aggregates (or spliced-table columns) inside the subquery's correlation,
  // which the merged block cannot bind (e.g. a correlated subquery moved to
  // HAVING would need the view's base-table columns as group keys).
  auto subquery_uses_view = [&](const Expr& e) {
    return ContainsSubquery(e) && ExprUsesAlias(e, tr.alias);
  };
  for (const auto& w : outer.where) {
    if (subquery_uses_view(*w)) return false;
  }
  for (const auto& item : outer.select) {
    if (subquery_uses_view(*item.expr)) return false;
  }
  for (const auto& o : outer.order_by) {
    if (subquery_uses_view(*o.expr)) return false;
  }
  if (!v.group_by.empty() && !v.distinct) {
    if (!ViewSelectShapeOk(v)) return false;
    *distinct_view = false;
    return true;
  }
  if (v.distinct && v.group_by.empty()) {
    if (outer.distinct) return false;  // nothing to gain, avoid re-nesting
    if (!ViewSelectShapeOk(v)) return false;
    *distinct_view = true;
    return true;
  }
  return false;
}

std::vector<MergeCandidate> FindCandidates(QueryBlock* root) {
  std::vector<MergeCandidate> out;
  VisitAllBlocks(root, [&](QueryBlock* b) {
    if (b->IsSetOp()) return;
    for (size_t i = 0; i < b->from.size(); ++i) {
      bool distinct_view = false;
      if (IsMergeableView(*b, b->from[i], &distinct_view)) {
        out.push_back(MergeCandidate{b, i, distinct_view});
      }
    }
  });
  return out;
}

// Q10 -> Q11.
void MergeGroupByView(TransformContext& ctx, QueryBlock* qb,
                      size_t from_index) {
  TableRef tr = std::move(qb->from[from_index]);
  qb->from.erase(qb->from.begin() + static_cast<long>(from_index));
  QueryBlock& view = *tr.derived;
  std::string valias = tr.alias;

  // ROWIDs of the other outer tables become grouping keys, preserving the
  // duplicate semantics of the original join.
  std::vector<ExprPtr> new_group;
  for (const auto& e : qb->from) {
    // Semi/anti-joined entries expose no columns and never duplicate left
    // rows, so they contribute no key.
    if (e.join == JoinKind::kSemi || e.join == JoinKind::kAnti ||
        e.join == JoinKind::kAntiNA) {
      continue;
    }
    new_group.push_back(MakeColumnRef(e.alias, "rowid"));
  }
  // The view's own grouping keys.
  for (auto& g : view.group_by) new_group.push_back(std::move(g));

  // Splice tables and predicates.
  for (auto& e : view.from) qb->from.push_back(std::move(e));
  for (auto& w : view.where) qb->where.push_back(std::move(w));

  // Rewrite view-output references: group keys map to their defining
  // expressions, aggregate outputs to the aggregates themselves.
  std::map<std::string, ExprPtr> colmap;
  for (auto& item : view.select) colmap[item.alias] = std::move(item.expr);
  RewriteColumnRefsInBlock(qb, [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != valias) return nullptr;
    auto it = colmap.find(ref.column_name);
    if (it == colmap.end()) return nullptr;
    return it->second->Clone();
  });

  // WHERE conjuncts that referenced the view's aggregate outputs now
  // contain aggregates and must move to HAVING (Q11: `HAVING e1.salary >
  // AVG(e2.salary)`).
  std::vector<ExprPtr> kept_where;
  for (auto& w : qb->where) {
    if (ContainsAggregate(*w)) {
      qb->having.push_back(std::move(w));
    } else {
      kept_where.push_back(std::move(w));
    }
  }
  qb->where = std::move(kept_where);

  // Outer columns used outside aggregates (select/having/order) also become
  // grouping keys so the merged block is a valid aggregate query. Computed
  // *after* the rewrite and the WHERE->HAVING move so that predicates that
  // turned into HAVING contribute their outer columns (Q11 groups by
  // e1.salary for exactly this reason).
  auto add_needed = [&](const Expr* e) {
    std::function<void(const Expr*)> walk = [&](const Expr* x) {
      if (x == nullptr) return;
      if (x->kind == ExprKind::kAggregate) return;  // agg args need no key
      if (x->kind == ExprKind::kColumnRef) {
        if (qb->FindFrom(x->table_alias) < 0) return;  // correlated outward
        for (const auto& g : new_group) {
          if (ExprEquals(*g, *x)) return;
        }
        new_group.push_back(MakeColumnRef(x->table_alias, x->column_name));
        return;
      }
      for (const auto& c : x->children) walk(c.get());
      for (const auto& c : x->partition_by) walk(c.get());
      for (const auto& c : x->win_order_by) walk(c.get());
    };
    walk(e);
  };
  for (const auto& item : qb->select) add_needed(item.expr.get());
  for (const auto& h : qb->having) add_needed(h.get());
  for (const auto& o : qb->order_by) add_needed(o.expr.get());

  qb->group_by = std::move(new_group);
  (void)ctx;
}

// Q12 -> Q18: merge a DISTINCT view by pulling DISTINCT above the joins,
// wrapping the merged block in a derived table that carries the outer
// tables' ROWIDs.
void MergeDistinctView(TransformContext& ctx, QueryBlock* qb,
                       size_t from_index) {
  TableRef tr = std::move(qb->from[from_index]);
  qb->from.erase(qb->from.begin() + static_cast<long>(from_index));
  QueryBlock& view = *tr.derived;
  std::string valias = tr.alias;
  std::string dv_alias = GlobalUniqueAlias(*ctx.root, "vw_dv");

  // Outer tables (before splicing) whose ROWIDs become keys of the new
  // derived table, preserving the outer join's duplicate semantics.
  std::vector<std::string> outer_key_aliases;
  for (const auto& e : qb->from) {
    if (e.join == JoinKind::kSemi || e.join == JoinKind::kAnti ||
        e.join == JoinKind::kAntiNA) {
      continue;
    }
    outer_key_aliases.push_back(e.alias);
  }

  // Build the inner (merged, DISTINCT) block from qb's current content.
  auto inner = std::make_unique<QueryBlock>();
  inner->qb_name = dv_alias;
  inner->distinct = true;
  inner->from = std::move(qb->from);
  for (auto& e : view.from) inner->from.push_back(std::move(e));
  inner->where = std::move(qb->where);
  for (auto& w : view.where) inner->where.push_back(std::move(w));

  // Inner select: the outer block's select expressions plus the ROWIDs of
  // the outer tables (key columns that preserve duplicate semantics).
  std::vector<SelectItem> outer_select = std::move(qb->select);
  std::map<std::string, ExprPtr> colmap;
  for (auto& item : view.select) colmap[item.alias] = std::move(item.expr);

  int key_counter = 0;
  for (const auto& alias : outer_key_aliases) {
    SelectItem key;
    key.expr = MakeColumnRef(alias, "rowid");
    key.alias = "rk" + std::to_string(key_counter++);
    inner->select.push_back(std::move(key));
  }
  size_t num_rowid_keys = inner->select.size();
  for (auto& item : outer_select) {
    SelectItem moved;
    moved.alias = item.alias;
    moved.expr = std::move(item.expr);
    inner->select.push_back(std::move(moved));
  }
  size_t num_outer_items = inner->select.size() - num_rowid_keys;

  // Rewrite view-output references inside the inner block.
  RewriteColumnRefsInBlock(inner.get(), [&](const Expr& ref) -> ExprPtr {
    if (ref.table_alias != valias) return nullptr;
    auto it = colmap.find(ref.column_name);
    if (it == colmap.end()) return nullptr;
    return it->second->Clone();
  });

  // The view's own DISTINCT columns ride along as hidden keys: the original
  // dedups on the full view tuple, so dropping columns the outer does not
  // reference would coarsen the dedup granularity (two view rows differing
  // only in an unreferenced column must still produce two outer rows).
  // Columns whose defining expression already appears as an inner select
  // item (post-rewrite) are covered and need no extra key.
  int vk_counter = 0;
  for (const auto& [col, expr] : colmap) {
    bool covered = false;
    for (const auto& item : inner->select) {
      if (ExprEquals(*item.expr, *expr)) {
        covered = true;
        break;
      }
    }
    if (covered) continue;
    SelectItem vkey;
    vkey.expr = expr->Clone();
    vkey.alias = "vk" + std::to_string(vk_counter++);
    inner->select.push_back(std::move(vkey));
  }

  // The outer block becomes a thin projection over the derived table,
  // keeping ORDER BY / ROWNUM where they were.
  qb->select.clear();
  qb->where.clear();
  for (size_t i = num_rowid_keys; i < num_rowid_keys + num_outer_items; ++i) {
    const SelectItem& item = inner->select[i];
    SelectItem si;
    si.expr = MakeColumnRef(dv_alias, item.alias);
    si.alias = item.alias;
    qb->select.push_back(std::move(si));
  }
  // ORDER BY expressions must reference the derived table's outputs; they
  // were outer expressions, so rewrite by matching inner select items.
  for (auto& o : qb->order_by) {
    for (const auto& item : inner->select) {
      if (ExprEquals(*item.expr, *o.expr)) {
        o.expr = MakeColumnRef(dv_alias, item.alias);
        break;
      }
    }
  }
  TableRef dv;
  dv.alias = dv_alias;
  dv.derived = std::move(inner);
  qb->from.clear();
  qb->from.push_back(std::move(dv));
}

}  // namespace

int GroupByViewMergeTransformation::CountObjects(
    const TransformContext& ctx) const {
  return static_cast<int>(FindCandidates(ctx.root).size());
}

Status GroupByViewMergeTransformation::Apply(
    TransformContext& ctx, const std::vector<bool>& bits) const {
  auto candidates = FindCandidates(ctx.root);
  if (candidates.size() != bits.size()) {
    return Status::Internal("group-by merge object count changed");
  }
  // Reverse order keeps earlier candidates' from-indices valid (merging
  // erases one entry and appends others; distinct merges restructure the
  // whole block, but a block has at most one distinct-view candidate that
  // is then the only candidate of that block we touch — candidates within
  // the same block are applied from the highest index down).
  for (size_t i = candidates.size(); i-- > 0;) {
    if (!bits[i]) continue;
    const MergeCandidate& c = candidates[i];
    // Re-validate: an earlier (higher-index) merge in the same block can
    // invalidate this candidate (e.g. the block now aggregates, or a
    // distinct merge restructured it). Skipping silently collapses the
    // state onto its neighbour, which costs the same and stays correct.
    if (c.from_index >= c.block->from.size()) continue;
    bool distinct_view = false;
    if (!IsMergeableView(*c.block, c.block->from[c.from_index],
                         &distinct_view) ||
        distinct_view != c.distinct_view) {
      continue;
    }
    if (c.distinct_view) {
      MergeDistinctView(ctx, c.block, c.from_index);
    } else {
      MergeGroupByView(ctx, c.block, c.from_index);
    }
  }
  return Status::OK();
}

}  // namespace cbqt
