#ifndef CBQT_TRANSFORM_VIEW_MERGE_H_
#define CBQT_TRANSFORM_VIEW_MERGE_H_

#include "common/status.h"
#include "transform/transformation.h"

namespace cbqt {

/// SPJ view merging (paper §2.1, imperative): splices simple
/// select-project-join views into their containing block, removing
/// restrictions on the join permutations the physical optimizer can
/// consider. Views joined with semi/anti/outer semantics merge only when
/// they contain a single table (paper footnote 3). Returns whether anything
/// changed; caller re-binds.
Result<bool> MergeSpjViews(TransformContext& ctx);

}  // namespace cbqt

#endif  // CBQT_TRANSFORM_VIEW_MERGE_H_
