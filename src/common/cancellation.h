#ifndef CBQT_COMMON_CANCELLATION_H_
#define CBQT_COMMON_CANCELLATION_H_

#include <atomic>
#include <mutex>
#include <string>

#include "common/status.h"

namespace cbqt {

/// Cooperative cancellation signal shared between a query's issuer and the
/// threads working on its behalf (search workers, planner, executor).
///
/// The token never interrupts anything by force: workers poll `cancelled()`
/// at the same quanta where they already poll the BudgetTracker (per
/// transformation state in the search, per block in the planner, per row in
/// the executor), so a cancel lands within one polling quantum and unwinds
/// through the normal error path.
///
/// Cancellation is a *hard* stop, unlike budget exhaustion: the query fails
/// with the token's status (kCancelled by default) instead of degrading to
/// a best-so-far answer. `CancelWith` lets the engine reuse the same
/// plumbing for other hard aborts (kResourceExhausted when a query is
/// chosen as the memory-pressure victim).
///
/// Thread-safe. First cancel wins; later cancels are no-ops (idempotent).
class CancellationToken {
 public:
  CancellationToken() = default;

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token with a plain kCancelled status. Returns true when this
  /// call was the one that tripped it (false: already cancelled).
  bool Cancel() { return CancelWith(Status::Cancelled("query cancelled")); }

  /// Trips the token with an arbitrary non-OK status. Used by the engine's
  /// memory-pressure victim path (kResourceExhausted) and by shutdown.
  bool CancelWith(Status status);

  /// Cheap check for hot loops. Relaxed load on the fast path; the status
  /// itself is published with release/acquire so `status()` after a true
  /// `cancelled()` always sees the final message.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// The status the token was tripped with; kOk when not cancelled.
  Status status() const;

  /// Polling helper: the token's status when tripped, OK otherwise. Lets
  /// call sites write `CBQT_RETURN_IF_ERROR(token->Check())`.
  Status Check() const {
    if (!cancelled()) return Status::OK();
    return status();
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::mutex mu_;
  Status status_;  // guarded by mu_, set once before cancelled_ is released
};

}  // namespace cbqt

#endif  // CBQT_COMMON_CANCELLATION_H_
