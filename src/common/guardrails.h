#ifndef CBQT_COMMON_GUARDRAILS_H_
#define CBQT_COMMON_GUARDRAILS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/memory_tracker.h"

namespace cbqt {

class FaultInjector;

/// Admission-control knobs for QueryEngine. A query that arrives while
/// `max_concurrent` queries are already running waits in a bounded queue;
/// if the queue is full, or the wait exceeds `queue_timeout_ms`, the query
/// is turned away with a fast typed kAdmissionRejected — overload yields
/// cheap rejections instead of memory exhaustion.
///
/// Queueing requires BOTH `max_queued > 0` and `queue_timeout_ms > 0`: the
/// queue bounds how many waiters can exist, the timeout bounds how long each
/// one waits. With `queue_timeout_ms = 0` nothing ever waits — a query
/// arriving while all slots are busy is rejected immediately even when
/// `max_queued > 0` (the rejection message says so explicitly).
struct AdmissionConfig {
  /// 0 = admission control disabled (every query admitted immediately).
  int max_concurrent = 0;
  /// Queries allowed to wait for a slot beyond the concurrent ones.
  /// Effective only together with a positive `queue_timeout_ms`.
  int max_queued = 0;
  /// How long a queued query waits before being rejected. 0 = no wait:
  /// reject immediately when all slots are busy, regardless of
  /// `max_queued`.
  double queue_timeout_ms = 0;

  bool enabled() const { return max_concurrent > 0; }
};

/// One tenant's scheduling contract under the tenant-aware scheduler
/// (cbqt/scheduler.h). Weights buy proportional slot share under
/// saturation; priority classes buy dispatch order (with aging so lower
/// classes are delayed, never starved); quotas cap how much of the engine
/// one tenant can hold at once.
struct TenantSpec {
  std::string name;
  /// Deficit-round-robin weight: under saturation a tenant receives slots
  /// in proportion to its weight within its priority class. Clamped to
  /// >= 1.
  int weight = 1;
  /// Priority class, 0 (highest) .. kNumPriorityClasses-1 (lowest).
  /// Dispatch always prefers the highest non-empty class, except for
  /// waiters promoted by aging (SchedulerConfig::aging_dispatches).
  int priority = 1;
  /// Bounded per-tenant wait queue. A query arriving with the queue full
  /// is shed (or sheds a lower-priority waiter) with a typed
  /// kTenantThrottled carrying a retry-after hint.
  int max_queued = 16;
  /// Per-tenant concurrency quota: this tenant may hold at most this many
  /// of the global slots at once. 0 = bounded only by the global
  /// max_concurrent.
  int max_concurrent = 0;
  /// Per-tenant byte quota: a child MemoryTracker under the engine root;
  /// every query of the tenant charges through it, so one tenant's memory
  /// appetite is capped before it can push the whole engine into
  /// pressure. <= 0 = no tenant-level cap.
  int64_t memory_bytes = 0;
};

/// Number of priority classes the scheduler distinguishes (0 = highest).
inline constexpr int kNumPriorityClasses = 3;

/// Tenant-aware admission scheduling (cbqt/scheduler.h): weighted
/// deficit-round-robin slot dispatch over per-tenant bounded queues, with
/// priority classes, aging, per-tenant quotas, and an overload ladder
/// (queue -> shrink optimizer budget -> shed lowest-priority work with a
/// typed kTenantThrottled + retry-after hint). When enabled it replaces
/// the single global AdmissionConfig queue; a query names its tenant via
/// QueryOptions::tenant (unknown or empty names fall into
/// `default_tenant`).
struct SchedulerConfig {
  bool enabled = false;
  /// Global concurrency ceiling (slots). Must be > 0 when enabled.
  int max_concurrent = 0;
  /// How long a queued query waits for a slot before being throttled.
  /// 0 = no wait: reject immediately when no slot can be granted.
  double queue_timeout_ms = 0;
  /// The configured tenants. Names must be unique.
  std::vector<TenantSpec> tenants;
  /// Global bound on queued waiters across all tenants. When an arrival
  /// would push the total past this bound, the scheduler sheds the
  /// lowest-priority queued waiter (if the arrival outranks it) or turns
  /// the arrival away — overload ladder step 3. 0 = no global bound (the
  /// per-tenant max_queued bounds still apply).
  int max_queued_total = 0;
  /// The catch-all tenant for queries that name no tenant (or an unknown
  /// one). Its `name` field is ignored ("default" in telemetry).
  TenantSpec default_tenant;
  /// Starvation bound: a queued request that has been passed over by this
  /// many dispatches is promoted to the highest priority class for
  /// selection, so low-priority work is delayed but admitted within a
  /// bounded number of dispatches. Clamped to >= 1.
  int aging_dispatches = 32;
  /// Overload ladder, step 2: when a tenant's queue occupancy at arrival
  /// is >= this fraction of its max_queued, the query is admitted with
  /// its optimizer budget scaled by `budget_shrink_factor` (via the
  /// ScaledBudget ladder) — trade plan quality for admission throughput
  /// while the backlog drains. >= 1 disables the step.
  double budget_shrink_occupancy = 0.5;
  double budget_shrink_factor = 0.25;
  /// Base of the retry-after hint carried by kTenantThrottled statuses;
  /// scaled up with the shedding tenant's queue occupancy.
  double retry_after_ms = 25;

  bool enabled_and_valid() const { return enabled && max_concurrent > 0; }
};

/// Engine-level runtime-guardrail configuration: memory budgets plus
/// admission control. All knobs default off so existing single-user
/// embedding (tests, benches, examples) pay nothing.
struct GuardrailConfig {
  /// Engine-wide byte budget (root MemoryTracker limit). <= 0 = unlimited.
  int64_t engine_memory_bytes = 0;
  /// Per-query byte budget (child tracker limit). <= 0 = unlimited.
  int64_t query_memory_bytes = 0;
  /// Single-queue admission control. Ignored when `scheduler` is enabled
  /// (the scheduler subsumes it — internally a legacy AdmissionConfig is
  /// run as a one-tenant scheduler).
  AdmissionConfig admission;
  /// Tenant-aware admission scheduling; replaces `admission` when enabled.
  SchedulerConfig scheduler;

  bool enabled() const {
    return engine_memory_bytes > 0 || query_memory_bytes > 0 ||
           admission.enabled() || scheduler.enabled_and_valid();
  }

  /// True when any tenant (or the default tenant) carries a byte quota —
  /// the engine then needs a root tracker even without engine/query
  /// budgets.
  bool any_tenant_memory_quota() const {
    if (!scheduler.enabled_and_valid()) return false;
    if (scheduler.default_tenant.memory_bytes > 0) return true;
    for (const TenantSpec& t : scheduler.tenants) {
      if (t.memory_bytes > 0) return true;
    }
    return false;
  }
};

/// Per-query guardrail handles threaded through the optimizer, planner and
/// executor alongside the BudgetTracker. All pointers optional (null =
/// that guardrail off); the struct is copied freely — it does not own
/// anything.
struct QueryGuards {
  /// Polled at every BudgetTracker quantum; trips -> hard kCancelled (or
  /// whatever status the token carries).
  CancellationToken* cancel = nullptr;
  /// Per-query memory tracker (child of the engine root). Charged by
  /// pipeline breakers, state clones, memo and cache inserts.
  MemoryTracker* memory = nullptr;
  /// Deterministic fault injection for the guardrail paths themselves
  /// (kMemoryPressure, kCancelAt, kExecBatch, kExecSpillCheck).
  FaultInjector* faults = nullptr;

  bool any() const { return cancel || memory || faults; }

  /// One cooperative poll: fires kCancelAt injection (tripping the token),
  /// then returns the token's status. Call at the same quanta as
  /// BudgetTracker checks.
  Status Poll() const;
};

}  // namespace cbqt

#endif  // CBQT_COMMON_GUARDRAILS_H_
