#ifndef CBQT_COMMON_GUARDRAILS_H_
#define CBQT_COMMON_GUARDRAILS_H_

#include <cstdint>

#include "common/cancellation.h"
#include "common/memory_tracker.h"

namespace cbqt {

class FaultInjector;

/// Admission-control knobs for QueryEngine. A query that arrives while
/// `max_concurrent` queries are already running waits in a bounded queue;
/// if the queue is full, or the wait exceeds `queue_timeout_ms`, the query
/// is turned away with a fast typed kAdmissionRejected — overload yields
/// cheap rejections instead of memory exhaustion.
struct AdmissionConfig {
  /// 0 = admission control disabled (every query admitted immediately).
  int max_concurrent = 0;
  /// Queries allowed to wait for a slot beyond the concurrent ones.
  int max_queued = 0;
  /// How long a queued query waits before being rejected. 0 = reject
  /// immediately when all slots are busy (max_queued still bounds how many
  /// waiters can exist at an instant).
  double queue_timeout_ms = 0;

  bool enabled() const { return max_concurrent > 0; }
};

/// Engine-level runtime-guardrail configuration: memory budgets plus
/// admission control. All knobs default off so existing single-user
/// embedding (tests, benches, examples) pay nothing.
struct GuardrailConfig {
  /// Engine-wide byte budget (root MemoryTracker limit). <= 0 = unlimited.
  int64_t engine_memory_bytes = 0;
  /// Per-query byte budget (child tracker limit). <= 0 = unlimited.
  int64_t query_memory_bytes = 0;
  AdmissionConfig admission;

  bool enabled() const {
    return engine_memory_bytes > 0 || query_memory_bytes > 0 ||
           admission.enabled();
  }
};

/// Per-query guardrail handles threaded through the optimizer, planner and
/// executor alongside the BudgetTracker. All pointers optional (null =
/// that guardrail off); the struct is copied freely — it does not own
/// anything.
struct QueryGuards {
  /// Polled at every BudgetTracker quantum; trips -> hard kCancelled (or
  /// whatever status the token carries).
  CancellationToken* cancel = nullptr;
  /// Per-query memory tracker (child of the engine root). Charged by
  /// pipeline breakers, state clones, memo and cache inserts.
  MemoryTracker* memory = nullptr;
  /// Deterministic fault injection for the guardrail paths themselves
  /// (kMemoryPressure, kCancelAt, kExecBatch, kExecSpillCheck).
  FaultInjector* faults = nullptr;

  bool any() const { return cancel || memory || faults; }

  /// One cooperative poll: fires kCancelAt injection (tripping the token),
  /// then returns the token's status. Call at the same quanta as
  /// BudgetTracker checks.
  Status Poll() const;
};

}  // namespace cbqt

#endif  // CBQT_COMMON_GUARDRAILS_H_
