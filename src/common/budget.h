#ifndef CBQT_COMMON_BUDGET_H_
#define CBQT_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cbqt {

/// Resource limits of one optimization + execution, all disabled (<= 0) by
/// default. The paper's §3.4 bounds the *number* of states via search
/// strategy selection; an industrial deployment additionally needs hard
/// ceilings so that cost-based transformation can never make a query slower
/// than skipping it — when a ceiling is hit the optimizer degrades
/// gracefully (best-so-far state, then heuristic decisions) instead of
/// failing.
struct OptimizerBudget {
  double deadline_ms = 0;     ///< wall-clock ceiling for optimization
  int64_t max_states = 0;     ///< total transformation states costed
  int64_t max_exec_rows = 0;  ///< executor rows processed (hard error)

  bool limited() const {
    return deadline_ms > 0 || max_states > 0 || max_exec_rows > 0;
  }
  /// True when any optimization-phase ceiling is set (the executor row cap
  /// alone does not require a tracker during optimization).
  bool limits_optimization() const {
    return deadline_ms > 0 || max_states > 0;
  }
};

/// Which ceiling tripped first.
enum class BudgetDimension : uint8_t {
  kNone = 0,
  kDeadline,
  kStates,
  kExecRows,
};

const char* BudgetDimensionName(BudgetDimension d);

/// `budget` with its optimization-phase ceilings (deadline, state cap)
/// multiplied by `factor` (> 0), saturating instead of overflowing; a state
/// cap never scales below 1 so a shrunk budget still admits the zero state.
/// The executor row cap is a correctness guard, not an optimization-effort
/// ceiling, and is left unchanged. Climbed upward (factor > 1) by the plan
/// cache's budget-upgrade path, and downward (factor < 1) by the tenant
/// scheduler's overload ladder, which trades optimization effort for
/// admission throughput when queues back up.
OptimizerBudget ScaledBudget(const OptimizerBudget& budget, double factor);

/// Thread-safe cooperative enforcement of an OptimizerBudget. One tracker is
/// created per Optimize() (or Execute()) call and threaded through the
/// search, the state evaluator, the physical optimizer, and the executor;
/// each layer polls at a natural granularity (per state, per planned block,
/// per executor row). Once any dimension trips, `exhausted()` stays true —
/// the flag is sticky, so a cheap relaxed load is enough for workers that
/// only need to stop early.
class BudgetTracker {
 public:
  explicit BudgetTracker(const OptimizerBudget& budget)
      : budget_(budget), start_(std::chrono::steady_clock::now()) {}

  BudgetTracker(const BudgetTracker&) = delete;
  BudgetTracker& operator=(const BudgetTracker&) = delete;

  /// Charges one costed transformation state and checks the state cap and
  /// the deadline. Returns true when the budget is (now) exhausted.
  bool ChargeState();

  /// Checks the wall-clock deadline without charging anything. Returns true
  /// when the budget is (now) exhausted.
  bool CheckDeadline();

  /// Sticky exhaustion flag (relaxed; safe from any thread).
  bool exhausted() const {
    return dimension_.load(std::memory_order_relaxed) !=
           static_cast<uint8_t>(BudgetDimension::kNone);
  }

  /// The first dimension that tripped (kNone while within budget).
  BudgetDimension dimension() const {
    return static_cast<BudgetDimension>(
        dimension_.load(std::memory_order_relaxed));
  }

  void MarkExhausted(BudgetDimension d);

  int64_t states_charged() const {
    return states_.load(std::memory_order_relaxed);
  }

  /// Total time spent inside budget checks (telemetry: the governor's own
  /// overhead, measured with the same clock it polls).
  int64_t check_ns() const { return check_ns_.load(std::memory_order_relaxed); }

  const OptimizerBudget& budget() const { return budget_; }

 private:
  const OptimizerBudget budget_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<int64_t> states_{0};
  std::atomic<int64_t> check_ns_{0};
  std::atomic<uint8_t> dimension_{0};  // BudgetDimension, kNone = in budget
};

}  // namespace cbqt

#endif  // CBQT_COMMON_BUDGET_H_
