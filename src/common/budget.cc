#include "common/budget.h"

namespace cbqt {

const char* BudgetDimensionName(BudgetDimension d) {
  switch (d) {
    case BudgetDimension::kNone:
      return "none";
    case BudgetDimension::kDeadline:
      return "deadline";
    case BudgetDimension::kStates:
      return "states";
    case BudgetDimension::kExecRows:
      return "exec-rows";
  }
  return "?";
}

OptimizerBudget ScaledBudget(const OptimizerBudget& budget, double factor) {
  OptimizerBudget out = budget;
  if (factor <= 0 || factor == 1) return out;
  if (out.deadline_ms > 0) out.deadline_ms *= factor;
  if (out.max_states > 0) {
    double scaled = static_cast<double>(out.max_states) * factor;
    constexpr double kMax = 1e15;  // far beyond any real search space
    if (scaled > kMax) scaled = kMax;
    // A shrunk budget still admits the zero state: never scale below 1.
    out.max_states = static_cast<int64_t>(scaled < 1 ? 1 : scaled);
  }
  return out;
}

void BudgetTracker::MarkExhausted(BudgetDimension d) {
  uint8_t expected = static_cast<uint8_t>(BudgetDimension::kNone);
  // First tripper wins; later dimensions keep the original cause.
  dimension_.compare_exchange_strong(expected, static_cast<uint8_t>(d),
                                     std::memory_order_relaxed);
}

bool BudgetTracker::CheckDeadline() {
  if (exhausted()) return true;
  if (budget_.deadline_ms <= 0) return false;
  auto t0 = std::chrono::steady_clock::now();
  double elapsed_ms =
      std::chrono::duration<double, std::milli>(t0 - start_).count();
  if (elapsed_ms > budget_.deadline_ms) MarkExhausted(BudgetDimension::kDeadline);
  check_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count(),
                      std::memory_order_relaxed);
  return exhausted();
}

bool BudgetTracker::ChargeState() {
  int64_t n = states_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (exhausted()) return true;
  if (budget_.max_states > 0 && n > budget_.max_states) {
    MarkExhausted(BudgetDimension::kStates);
    return true;
  }
  return CheckDeadline();
}

}  // namespace cbqt
