#include "common/memory_tracker.h"

#include <chrono>
#include <thread>
#include <vector>

namespace cbqt {

namespace {
/// How many times a reservation retries after asking the engine to fail a
/// victim query, and how long it waits for the victim to actually unwind
/// and release its bytes. Bounded so a wedged victim cannot hang the
/// requester — after the retries the requester fails itself.
constexpr int kVictimRetries = 3;
constexpr int kVictimWaitMs = 1;
}  // namespace

bool MemoryTracker::TryChargeLocal(int64_t bytes) {
  int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (limit_ > 0 && now > limit_) {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
    return false;
  }
  UpdatePeak(now);
  return true;
}

void MemoryTracker::ChargeLocal(int64_t bytes) {
  int64_t now = used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdatePeak(now);
}

void MemoryTracker::UpdatePeak(int64_t used_now) {
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (used_now > peak &&
         !peak_.compare_exchange_weak(peak, used_now,
                                      std::memory_order_relaxed)) {
  }
}

Status MemoryTracker::TryReserve(int64_t bytes) {
  if (bytes <= 0) return Status::OK();
  // Charge child-to-root so a failure higher up can roll back the charges
  // already applied below without double counting.
  std::vector<MemoryTracker*> charged;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    bool ok = t->TryChargeLocal(bytes);
    if (!ok) {
      // Degradation ladder on the tracker that tripped: shed caches, then
      // ask for a victim, retrying the local charge after each rung.
      int64_t missing = bytes;
      if (t->pressure_cb_) {
        int64_t freed = t->pressure_cb_(missing);
        if (freed > 0) ok = t->TryChargeLocal(bytes);
      }
      if (!ok && t->victim_cb_) {
        for (int attempt = 0; !ok && attempt < kVictimRetries; ++attempt) {
          if (!t->victim_cb_(this, missing)) break;
          std::this_thread::sleep_for(
              std::chrono::milliseconds(kVictimWaitMs));
          ok = t->TryChargeLocal(bytes);
        }
      }
    }
    if (!ok) {
      for (MemoryTracker* c : charged) {
        c->used_.fetch_sub(bytes, std::memory_order_relaxed);
      }
      t->failed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "memory budget exceeded on tracker '" + t->label_ + "' (limit " +
          std::to_string(t->limit_) + " bytes)");
    }
    charged.push_back(t);
  }
  return Status::OK();
}

void MemoryTracker::ForceReserve(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    t->ChargeLocal(bytes);
  }
}

void MemoryTracker::Release(int64_t bytes) {
  if (bytes <= 0) return;
  for (MemoryTracker* t = this; t != nullptr; t = t->parent_) {
    t->used_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

}  // namespace cbqt
