#ifndef CBQT_COMMON_STR_UTIL_H_
#define CBQT_COMMON_STR_UTIL_H_

#include <string>
#include <vector>

namespace cbqt {

/// Lower-cases ASCII. SQL identifiers in this library are case-insensitive
/// and normalized to lower case at parse time.
std::string ToLower(const std::string& s);

/// Upper-cases ASCII (used when unparsing keywords).
std::string ToUpper(const std::string& s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace cbqt

#endif  // CBQT_COMMON_STR_UTIL_H_
