#include "common/result_compare.h"

#include <algorithm>
#include <cmath>

namespace cbqt {

void SortRowsCanonical(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (TotalLess(a[i], b[i])) return true;
      if (TotalLess(b[i], a[i])) return false;
    }
    return a.size() < b.size();
  });
}

std::string RowToString(const Row& row) {
  std::string out = "[";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += "]";
  return out;
}

bool ResultValuesEqual(const Value& a, const Value& b, bool approx_doubles) {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  if (approx_doubles && (a.kind() == ValueKind::kDouble ||
                         b.kind() == ValueKind::kDouble)) {
    if (a.kind() != ValueKind::kInt64 && a.kind() != ValueKind::kDouble) {
      return false;
    }
    if (b.kind() != ValueKind::kInt64 && b.kind() != ValueKind::kDouble) {
      return false;
    }
    double x = a.NumericValue();
    double y = b.NumericValue();
    double scale = std::max({1.0, std::fabs(x), std::fabs(y)});
    return std::fabs(x - y) <= 1e-9 * scale;
  }
  return RowsEqualStructural(Row{a}, Row{b});
}

bool ResultRowsEqual(const Row& a, const Row& b, bool approx_doubles) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!ResultValuesEqual(a[i], b[i], approx_doubles)) return false;
  }
  return true;
}

RowSetDiff CompareRowMultisets(const std::vector<Row>& actual,
                               const std::vector<Row>& expected,
                               bool approx_doubles) {
  RowSetDiff diff;
  std::vector<Row> a = actual;
  std::vector<Row> e = expected;
  SortRowsCanonical(&a);
  SortRowsCanonical(&e);
  if (a.size() != e.size()) {
    diff.message = "row count mismatch: actual " + std::to_string(a.size()) +
                   " vs expected " + std::to_string(e.size());
    size_t n = std::min(a.size(), e.size());
    for (size_t i = 0; i < n; ++i) {
      if (ResultRowsEqual(a[i], e[i], approx_doubles)) continue;
      diff.message += "; first diverging row " + std::to_string(i) +
                      ": actual " + RowToString(a[i]) + " vs expected " +
                      RowToString(e[i]);
      return diff;
    }
    if (n < a.size()) {
      diff.message += "; first extra actual row: " + RowToString(a[n]);
    } else if (n < e.size()) {
      diff.message += "; first missing expected row: " + RowToString(e[n]);
    }
    return diff;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (ResultRowsEqual(a[i], e[i], approx_doubles)) continue;
    diff.message = "first diverging row " + std::to_string(i) + " of " +
                   std::to_string(a.size()) + ": actual " + RowToString(a[i]) +
                   " vs expected " + RowToString(e[i]);
    return diff;
  }
  diff.equal = true;
  return diff;
}

}  // namespace cbqt
