#include "common/guardrails.h"

#include "common/fault_injector.h"

namespace cbqt {

Status QueryGuards::Poll() const {
  if (faults != nullptr && cancel != nullptr &&
      faults->MaybeFire(FaultSite::kCancelAt)) {
    cancel->CancelWith(Status::Cancelled("injected cancel (kCancelAt)"));
  }
  if (cancel != nullptr && cancel->cancelled()) return cancel->status();
  return Status::OK();
}

}  // namespace cbqt
