#include "common/thread_pool.h"

#include <algorithm>

namespace cbqt {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace cbqt
