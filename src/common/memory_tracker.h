#ifndef CBQT_COMMON_MEMORY_TRACKER_H_
#define CBQT_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/status.h"

namespace cbqt {

/// Hierarchical memory accounting, mirroring the tracker trees in serving
/// databases (Impala/ClickHouse style): one engine-wide root with a byte
/// budget, one child per admitted query. A reservation charges the child
/// first and then walks up to the root, so both the per-query and the
/// engine ceilings are enforced by the same call; on failure the partial
/// charge is rolled back and nothing leaks.
///
/// The trackers count *logical* bytes as estimated by the operators that
/// buffer data (hash-join build sides, sort buffers, aggregation tables,
/// materialized subqueries, COW state clones, memo and cache entries) — it
/// is an accounting layer, not a malloc hook, which keeps the hot-path cost
/// to a couple of relaxed atomics.
///
/// Pressure handling hooks (root tracker only):
///   - `pressure_callback`: invoked when a reservation would exceed this
///     tracker's limit, *before* failing it — the engine uses it to shed
///     cache memory (plan/annotation cache eviction). Return the number of
///     bytes freed; the reservation is retried if anything was freed.
///   - `victim_callback`: last resort — asks the engine to fail the largest
///     admitted query (never a bystander smaller than the requester's own
///     query). Returns true when a victim was asked to unwind; the
///     reservation retries a bounded number of times while it does.
///
/// Thread-safe. Callbacks run on the reserving thread and must not call
/// back into the same tracker's Reserve path.
class MemoryTracker {
 public:
  /// `limit_bytes <= 0` means unlimited (tracking only).
  MemoryTracker(std::string label, int64_t limit_bytes,
                MemoryTracker* parent = nullptr)
      : label_(std::move(label)), limit_(limit_bytes), parent_(parent) {}

  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  /// Charges `bytes` to this tracker and every ancestor. On any ceiling
  /// violation, runs the pressure/victim ladder of the tracker that
  /// tripped; if the ladder cannot free the shortfall, rolls back and
  /// returns kResourceExhausted naming the exhausted tracker.
  Status TryReserve(int64_t bytes);

  /// Charges unconditionally (used for small fixed overheads that must not
  /// fail mid-structure; keeps peak numbers honest).
  void ForceReserve(int64_t bytes);

  /// Returns `bytes` to this tracker and every ancestor.
  void Release(int64_t bytes);

  const std::string& label() const { return label_; }
  int64_t limit_bytes() const { return limit_; }
  MemoryTracker* parent() const { return parent_; }

  int64_t used_bytes() const { return used_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  int64_t failed_reservations() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// See class comment. Root-tracker hooks; set before concurrent use.
  void set_pressure_callback(std::function<int64_t(int64_t missing)> cb) {
    pressure_cb_ = std::move(cb);
  }
  void set_victim_callback(
      std::function<bool(const MemoryTracker* requester, int64_t missing)>
          cb) {
    victim_cb_ = std::move(cb);
  }

 private:
  /// Charges `bytes` against this single tracker (no parent walk). Returns
  /// false when the limit would be exceeded; the charge is not applied.
  bool TryChargeLocal(int64_t bytes);
  void ChargeLocal(int64_t bytes);
  void UpdatePeak(int64_t used_now);

  const std::string label_;
  const int64_t limit_;
  MemoryTracker* const parent_;

  std::atomic<int64_t> used_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> failed_{0};

  std::function<int64_t(int64_t)> pressure_cb_;
  std::function<bool(const MemoryTracker*, int64_t)> victim_cb_;
};

/// RAII charge against a tracker: releases whatever is still held on
/// destruction. Operators grow the reservation incrementally as they
/// buffer rows and let the scope unwind it, so error paths (cancel,
/// injected faults, kResourceExhausted itself) can never leak accounting.
///
/// By default every Grow() charges the tracker immediately (exact
/// accounting, limits enforced to the byte). Hot per-row call sites can opt
/// into a *flush quantum*: grown bytes accumulate locally and hit the
/// tracker's atomics only once `quantum` bytes are pending, cutting the
/// per-row cost to an addition at the price of up to one quantum of
/// accounting slack per open reservation.
class ScopedReservation {
 public:
  explicit ScopedReservation(MemoryTracker* tracker) : tracker_(tracker) {}

  ScopedReservation(const ScopedReservation&) = delete;
  ScopedReservation& operator=(const ScopedReservation&) = delete;

  ScopedReservation(ScopedReservation&& other) noexcept
      : tracker_(other.tracker_),
        held_(other.held_),
        pending_(other.pending_),
        quantum_(other.quantum_) {
    other.tracker_ = nullptr;
    other.held_ = 0;
    other.pending_ = 0;
  }

  ~ScopedReservation() { Release(); }

  /// Defers tracker charges until `bytes` of growth are pending. 0 (the
  /// default) charges on every Grow().
  void set_flush_quantum(int64_t bytes) { quantum_ = bytes; }

  /// Grows the reservation by `bytes`. No-op (OK) without a tracker. A
  /// failed flush charges nothing (pending bytes are dropped with it).
  Status Grow(int64_t bytes) {
    if (tracker_ == nullptr || bytes <= 0) return Status::OK();
    pending_ += bytes;
    if (pending_ < quantum_) return Status::OK();
    int64_t flush = pending_;
    pending_ = 0;
    CBQT_RETURN_IF_ERROR(tracker_->TryReserve(flush));
    held_ += flush;
    return Status::OK();
  }

  /// Returns all held bytes now (also done by the destructor). Pending
  /// (never-charged) bytes are simply dropped.
  void Release() {
    if (tracker_ != nullptr && held_ > 0) tracker_->Release(held_);
    held_ = 0;
    pending_ = 0;
  }

  int64_t held_bytes() const { return held_; }

 private:
  MemoryTracker* tracker_;
  int64_t held_ = 0;
  int64_t pending_ = 0;
  int64_t quantum_ = 0;
};

}  // namespace cbqt

#endif  // CBQT_COMMON_MEMORY_TRACKER_H_
