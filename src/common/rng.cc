#include "common/rng.h"

#include <algorithm>
#include <cmath>

namespace cbqt {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  s_[0] = SplitMix64(x);
  s_[1] = SplitMix64(x);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s_[0];
  uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Rng::NextUint(uint64_t n) { return Next() % n; }

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextUint(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

Zipf::Zipf(int64_t n, double theta) {
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[static_cast<size_t>(i)] = sum;
  }
  for (double& v : cdf_) v /= sum;
}

int64_t Zipf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

}  // namespace cbqt
