#ifndef CBQT_COMMON_RNG_H_
#define CBQT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace cbqt {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+).
///
/// Every randomized component of the library (workload generation, the
/// Iterative search strategy's restarts) takes an explicit Rng so runs are
/// reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint(uint64_t n);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

 private:
  uint64_t s_[2];
};

/// Zipf-distributed integer generator over {0, .., n-1} with exponent theta.
/// theta = 0 is uniform; larger theta is more skewed. Uses the standard
/// inverse-CDF-over-precomputed-harmonics method, O(log n) per sample.
class Zipf {
 public:
  Zipf(int64_t n, double theta);

  int64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace cbqt

#endif  // CBQT_COMMON_RNG_H_
