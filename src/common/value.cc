#include "common/value.h"

#include <cmath>
#include <cstdio>
#include <functional>

namespace cbqt {

double Value::NumericValue() const {
  switch (kind()) {
    case ValueKind::kInt64:
      return static_cast<double>(AsInt());
    case ValueKind::kDouble:
      return AsDouble();
    case ValueKind::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNull:
      return "NULL";
    case ValueKind::kInt64:
      return std::to_string(AsInt());
    case ValueKind::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueKind::kString:
      return "'" + AsString() + "'";
    case ValueKind::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueKind::kInt64:
      // Hash through double so Int(2) and Real(2.0) collide on purpose.
      return std::hash<double>()(static_cast<double>(AsInt()));
    case ValueKind::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueKind::kString:
      return std::hash<std::string>()(AsString());
    case ValueKind::kBool:
      return AsBool() ? 0x1234567 : 0x89abcde;
  }
  return 0;
}

namespace {

bool IsNumeric(const Value& v) {
  return v.kind() == ValueKind::kInt64 || v.kind() == ValueKind::kDouble;
}

}  // namespace

Ordering CompareValues(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Ordering::kUnknown;
  if (IsNumeric(a) && IsNumeric(b)) {
    double x = a.NumericValue();
    double y = b.NumericValue();
    if (x < y) return Ordering::kLess;
    if (x > y) return Ordering::kGreater;
    return Ordering::kEqual;
  }
  if (a.kind() != b.kind()) return Ordering::kUnknown;
  switch (a.kind()) {
    case ValueKind::kString: {
      int c = a.AsString().compare(b.AsString());
      if (c < 0) return Ordering::kLess;
      if (c > 0) return Ordering::kGreater;
      return Ordering::kEqual;
    }
    case ValueKind::kBool: {
      int x = a.AsBool() ? 1 : 0;
      int y = b.AsBool() ? 1 : 0;
      if (x < y) return Ordering::kLess;
      if (x > y) return Ordering::kGreater;
      return Ordering::kEqual;
    }
    default:
      return Ordering::kUnknown;
  }
}

bool NullSafeEqual(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return true;
  if (a.is_null() || b.is_null()) return false;
  return CompareValues(a, b) == Ordering::kEqual;
}

bool TotalLess(const Value& a, const Value& b) {
  // NULLs sort last, matching Oracle's default NULLS LAST for ascending.
  if (a.is_null()) return false;
  if (b.is_null()) return true;
  Ordering ord = CompareValues(a, b);
  if (ord == Ordering::kLess) return true;
  if (ord == Ordering::kGreater || ord == Ordering::kEqual) return false;
  // Incomparable kinds: order by kind index to keep the order total.
  return static_cast<int>(a.kind()) < static_cast<int>(b.kind());
}

bool RowsEqualStructural(const Row& a, const Row& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_null() && b[i].is_null()) continue;
    if (a[i].is_null() || b[i].is_null()) return false;
    Ordering ord = CompareValues(a[i], b[i]);
    if (ord == Ordering::kEqual) continue;
    if (ord != Ordering::kUnknown) return false;
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

size_t HashRow(const Row& row) {
  size_t h = 14695981039346656037ULL;
  for (const Value& v : row) {
    h ^= v.Hash();
    h *= 1099511628211ULL;
  }
  return h;
}

int64_t EstimateValueBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.kind() == ValueKind::kString) {
    // Strings beyond the small-string buffer own a heap allocation.
    bytes += static_cast<int64_t>(v.AsString().capacity());
  }
  return bytes;
}

int64_t EstimateRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row) bytes += EstimateValueBytes(v);
  return bytes;
}

}  // namespace cbqt
