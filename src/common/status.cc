#include "common/status.h"

namespace cbqt {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCostCutoff:
      return "CostCutoff";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cbqt
