#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace cbqt {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCostCutoff:
      return "CostCutoff";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAdmissionRejected:
      return "AdmissionRejected";
    case StatusCode::kTenantThrottled:
      return "TenantThrottled";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
  }
  return "Unknown";
}

}  // namespace

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "FATAL: Result::value() called on failed Result: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace cbqt
