#ifndef CBQT_COMMON_STATUS_H_
#define CBQT_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace cbqt {

/// Error categories used across the library. Mirrors the usual
/// database-system convention (RocksDB/Arrow-style Status) of returning
/// explicit status objects instead of throwing exceptions across API
/// boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kBindError,
  kNotSupported,
  kInternal,
  /// Physical optimization was aborted because accumulated cost exceeded
  /// the best transformation state found so far (paper §3.4.1).
  kCostCutoff,
  /// Work was abandoned because the optimization resource budget
  /// (OptimizerBudget: deadline / state cap / executor row cap) tripped.
  /// During the search this is a cooperative stop signal, not an error: the
  /// framework degrades to its best-so-far answer instead of failing.
  kBudgetExhausted,
  /// The query was cancelled (CancellationToken tripped). Unlike
  /// kBudgetExhausted this is a hard stop: every layer unwinds and the
  /// query fails — there is no best-so-far degradation for a cancel.
  kCancelled,
  /// A memory reservation against a MemoryTracker budget failed (per-query
  /// or engine-wide) after the degradation ladder (cache eviction, largest-
  /// query victim selection) could not free enough. Hard stop, like
  /// kCancelled.
  kResourceExhausted,
  /// Admission control turned the query away before any work was done:
  /// the engine is at its concurrency ceiling and the admission queue is
  /// full (or the queue deadline expired). Cheap, typed, retryable.
  kAdmissionRejected,
  /// The tenant-aware scheduler shed this query under overload: its
  /// tenant's queue was full (or its wait timed out) and it was the
  /// lowest-priority work available to drop. The message carries a
  /// `retry-after-ms=N` hint (see cbqt/scheduler.h RetryAfterMs) that
  /// well-behaved clients honor with jittered backoff. Cheap, typed,
  /// retryable — the multi-tenant sibling of kAdmissionRejected.
  kTenantThrottled,
  /// Serialized bytes (plan snapshot, shared plan store record) failed
  /// structural validation: bad magic, version skew, checksum mismatch,
  /// truncation, or an out-of-range enum/count. The reader guarantees a
  /// typed error for arbitrary malformed input — never UB — so callers
  /// treat the artifact as absent and re-optimize from scratch.
  kDataCorruption,
};

/// True for the runtime-guardrail codes that must abort a whole query
/// instead of being fault-isolated per transformation state or degraded to
/// a best-so-far answer: cancellation, memory exhaustion, admission
/// rejection. The search and executor propagate these verbatim.
inline bool IsGuardrailAbort(StatusCode code) {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted ||
         code == StatusCode::kAdmissionRejected ||
         code == StatusCode::kTenantThrottled;
}

/// Result of an operation: either OK or an error code plus message.
///
/// `Status` is cheap to copy in the OK case (empty message) and is used as
/// the return type of every fallible public function in the library.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status CostCutoff() {
    return Status(StatusCode::kCostCutoff, "cost cutoff exceeded");
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status AdmissionRejected(std::string msg) {
    return Status(StatusCode::kAdmissionRejected, std::move(msg));
  }
  static Status TenantThrottled(std::string msg) {
    return Status(StatusCode::kTenantThrottled, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token ')'".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

namespace internal {
/// Prints the status and aborts — value access on a failed Result is a
/// programming error and must die loudly in every build type rather than
/// silently handing out a default-constructed value.
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

/// A value-or-error holder, analogous to absl::StatusOr.
///
/// Access the value only after checking `ok()`; accessing the value of a
/// failed Result aborts with the status message in all build types.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { EnsureOk(); return value_; }
  const T& value() const& { EnsureOk(); return value_; }
  T&& value() && { EnsureOk(); return std::move(value_); }

  T& operator*() { EnsureOk(); return value_; }
  const T& operator*() const { EnsureOk(); return value_; }
  T* operator->() { EnsureOk(); return &value_; }
  const T* operator->() const { EnsureOk(); return &value_; }

 private:
  void EnsureOk() const {
    if (!status_.ok()) internal::DieOnBadResultAccess(status_);
  }

  Status status_;
  T value_{};
};

/// Propagates a non-OK Status from an expression. Usable only in functions
/// returning Status.
#define CBQT_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::cbqt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace cbqt

#endif  // CBQT_COMMON_STATUS_H_
