#include "common/cancellation.h"

#include <utility>

namespace cbqt {

bool CancellationToken::CancelWith(Status status) {
  if (status.ok()) return false;  // tripping with OK would wedge pollers
  std::lock_guard<std::mutex> lock(mu_);
  if (cancelled_.load(std::memory_order_relaxed)) return false;
  status_ = std::move(status);
  // Release so any thread that observes cancelled()==true also sees status_.
  cancelled_.store(true, std::memory_order_release);
  return true;
}

Status CancellationToken::status() const {
  if (!cancelled_.load(std::memory_order_acquire)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace cbqt
