#ifndef CBQT_COMMON_VALUE_H_
#define CBQT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace cbqt {

/// Runtime value kinds. SQL NULL is a distinct kind rather than a flag so a
/// Value is always exactly one of these.
enum class ValueKind { kNull = 0, kInt64, kDouble, kString, kBool };

/// A dynamically typed SQL value.
///
/// Values implement SQL three-valued comparison semantics through the free
/// functions below: any comparison involving NULL yields "unknown", which the
/// expression evaluator maps onto a NULL boolean. `operator==` on Value
/// itself is *structural* equality (NULL == NULL is true); it is used by
/// containers and tests, never by SQL predicate evaluation.
class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Str(std::string v) { return Value(Payload(std::move(v))); }
  static Value Boolean(bool v) { return Value(Payload(v)); }

  ValueKind kind() const { return static_cast<ValueKind>(data_.index()); }
  bool is_null() const { return kind() == ValueKind::kNull; }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: int64 and double both render as double; other kinds
  /// return 0 (callers must check kind first).
  double NumericValue() const;

  /// Structural equality (NULL equals NULL). For SQL comparison use
  /// CompareValues.
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Renders the value for debugging and result printing ("NULL", 42,
  /// 3.5, 'abc', TRUE).
  std::string ToString() const;

  /// Hash for hash-join/aggregation keys. NULLs hash to a fixed value;
  /// int64 and double with the same numeric value hash identically so mixed
  /// numeric joins work.
  size_t Hash() const;

 private:
  using Payload =
      std::variant<std::monostate, int64_t, double, std::string, bool>;
  explicit Value(Payload data) : data_(std::move(data)) {}
  Payload data_;
};

/// Three-valued comparison result.
enum class Ordering { kLess, kEqual, kGreater, kUnknown };

/// SQL comparison: returns kUnknown if either side is NULL; numeric kinds
/// compare numerically; strings lexicographically; bools false < true.
/// Cross-kind non-numeric comparisons return kUnknown.
Ordering CompareValues(const Value& a, const Value& b);

/// Null-safe equality (SQL "IS NOT DISTINCT FROM"): NULLs match each other.
/// Used by INTERSECT/MINUS conversion where the paper notes nulls match.
bool NullSafeEqual(const Value& a, const Value& b);

/// Total order for sorting: NULLs sort last (Oracle default), otherwise
/// CompareValues order; cross-kind falls back to kind index so the order is
/// total.
bool TotalLess(const Value& a, const Value& b);

/// A row of values. Rows are plain data; operators copy or move them freely.
using Row = std::vector<Value>;

/// Hash of a key row (for hash joins / aggregation).
size_t HashRow(const Row& row);

/// Approximate in-memory footprint of a value / row, used by the memory
/// accounting layer (MemoryTracker) when pipeline-breaking operators buffer
/// rows. Logical estimate (container header + payload), not a malloc audit.
int64_t EstimateValueBytes(const Value& v);
int64_t EstimateRowBytes(const Row& row);

struct RowHasher {
  size_t operator()(const Row& r) const { return HashRow(r); }
};

/// Structural row equality (NULLs match; numeric kinds compare by value so
/// Int(2) == Real(2.0) for hashing consistency).
bool RowsEqualStructural(const Row& a, const Row& b);

struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    return RowsEqualStructural(a, b);
  }
};

}  // namespace cbqt

#endif  // CBQT_COMMON_VALUE_H_
