#include "common/fault_injector.h"

#include <chrono>
#include <string>
#include <thread>

namespace cbqt {

namespace {

// splitmix64: a tiny stateless mixer — deterministic per (seed, site, index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kStateEval:
      return "state-eval";
    case FaultSite::kPlanner:
      return "planner";
    case FaultSite::kSlowState:
      return "slow-state";
    case FaultSite::kExecBatch:
      return "exec-batch";
    case FaultSite::kExecSpillCheck:
      return "exec-spill-check";
    case FaultSite::kMemoryPressure:
      return "memory-pressure";
    case FaultSite::kCancelAt:
      return "cancel-at";
    case FaultSite::kExecSpillWrite:
      return "exec-spill-write";
    case FaultSite::kExecSpillRead:
      return "exec-spill-read";
  }
  return "?";
}

void FaultInjector::Arm(FaultSite site, FaultSpec spec) {
  specs_[static_cast<size_t>(site)] = std::move(spec);
}

bool FaultInjector::Fires(FaultSite site, int64_t index) const {
  const FaultSpec& spec = specs_[static_cast<size_t>(site)];
  for (int64_t i : spec.indices) {
    if (i == index) return true;
  }
  if (spec.every_n > 0 && (index + 1) % spec.every_n == 0) return true;
  if (spec.probability > 0) {
    uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(site) << 56) ^
                     static_cast<uint64_t>(index));
    double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < spec.probability) return true;
  }
  return false;
}

bool FaultInjector::NextHitFires(FaultSite site) {
  size_t s = static_cast<size_t>(site);
  if (!specs_[s].armed()) return false;
  int64_t index = hits_[s].fetch_add(1, std::memory_order_relaxed);
  if (!Fires(site, index)) return false;
  injected_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::MaybeFail(FaultSite site) {
  if (!NextHitFires(site)) return Status::OK();
  return Status::Internal(std::string("injected fault at ") +
                          FaultSiteName(site));
}

void FaultInjector::MaybeDelay(FaultSite site) {
  if (!NextHitFires(site)) return;
  double ms = specs_[static_cast<size_t>(site)].delay_ms;
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace cbqt
