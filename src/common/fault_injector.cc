#include "common/fault_injector.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

namespace cbqt {

namespace {

// splitmix64: a tiny stateless mixer — deterministic per (seed, site, index).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kStateEval:
      return "state-eval";
    case FaultSite::kPlanner:
      return "planner";
    case FaultSite::kSlowState:
      return "slow-state";
    case FaultSite::kExecBatch:
      return "exec-batch";
    case FaultSite::kExecSpillCheck:
      return "exec-spill-check";
    case FaultSite::kMemoryPressure:
      return "memory-pressure";
    case FaultSite::kCancelAt:
      return "cancel-at";
    case FaultSite::kExecSpillWrite:
      return "exec-spill-write";
    case FaultSite::kExecSpillRead:
      return "exec-spill-read";
    case FaultSite::kAdmit:
      return "admit";
  }
  return "?";
}

bool FaultSiteFromName(const std::string& name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultSite s = static_cast<FaultSite>(i);
    if (name == FaultSiteName(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

void FaultInjector::Arm(FaultSite site, FaultSpec spec) {
  specs_[static_cast<size_t>(site)] = std::move(spec);
}

namespace {

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    std::string piece = s.substr(start, end - start);
    if (!piece.empty()) out.push_back(std::move(piece));
    start = end + 1;
  }
  return out;
}

}  // namespace

Result<std::shared_ptr<FaultInjector>> FaultInjector::Parse(
    const std::string& sites, uint64_t seed) {
  auto injector = std::make_shared<FaultInjector>(seed);
  // Clauses for the same site accumulate into one spec, so a delay and an
  // index list can be given as separate clauses.
  std::array<FaultSpec, kNumFaultSites> specs;
  for (const std::string& clause : SplitOn(sites, ';')) {
    size_t colon = clause.find(':');
    size_t eq = clause.find('=');
    if (colon == std::string::npos || eq == std::string::npos || eq < colon) {
      return Status::InvalidArgument("fault clause not <site>:<key>=<value>: " +
                                     clause);
    }
    std::string site_name = clause.substr(0, colon);
    std::string key = clause.substr(colon + 1, eq - colon - 1);
    std::string value = clause.substr(eq + 1);
    FaultSite site;
    if (!FaultSiteFromName(site_name, &site)) {
      return Status::InvalidArgument("unknown fault site: " + site_name);
    }
    FaultSpec& spec = specs[static_cast<size_t>(site)];
    char* end = nullptr;
    if (key == "every") {
      spec.every_n = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || spec.every_n <= 0) {
        return Status::InvalidArgument("bad every=N in fault clause: " +
                                       clause);
      }
    } else if (key == "p") {
      spec.probability = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || spec.probability <= 0 ||
          spec.probability > 1) {
        return Status::InvalidArgument("bad p=X in fault clause: " + clause);
      }
    } else if (key == "at") {
      for (const std::string& idx : SplitOn(value, '|')) {
        int64_t i = std::strtoll(idx.c_str(), &end, 10);
        if (end == idx.c_str() || *end != '\0' || i < 0) {
          return Status::InvalidArgument("bad at=I|J in fault clause: " +
                                         clause);
        }
        spec.indices.push_back(i);
      }
      if (spec.indices.empty()) {
        return Status::InvalidArgument("empty at= in fault clause: " + clause);
      }
    } else if (key == "delay") {
      spec.delay_ms = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || spec.delay_ms < 0) {
        return Status::InvalidArgument("bad delay=MS in fault clause: " +
                                       clause);
      }
    } else {
      return Status::InvalidArgument("unknown fault clause key: " + key);
    }
  }
  bool any = false;
  for (int i = 0; i < kNumFaultSites; ++i) {
    if (!specs[static_cast<size_t>(i)].armed()) continue;
    injector->Arm(static_cast<FaultSite>(i),
                  std::move(specs[static_cast<size_t>(i)]));
    any = true;
  }
  if (!any) {
    return Status::InvalidArgument("fault spec arms no site: " + sites);
  }
  return injector;
}

Result<std::shared_ptr<FaultInjector>> FaultInjector::FromEnv() {
  const char* sites = std::getenv("CBQT_FAULT_SITES");
  if (sites == nullptr || *sites == '\0') {
    return std::shared_ptr<FaultInjector>();
  }
  uint64_t seed = 0;
  if (const char* seed_env = std::getenv("CBQT_FAULT_SEED")) {
    char* end = nullptr;
    seed = std::strtoull(seed_env, &end, 10);
    if (end == seed_env || *end != '\0') {
      return Status::InvalidArgument(std::string("bad CBQT_FAULT_SEED: ") +
                                     seed_env);
    }
  }
  return Parse(sites, seed);
}

bool FaultInjector::Fires(FaultSite site, int64_t index) const {
  const FaultSpec& spec = specs_[static_cast<size_t>(site)];
  for (int64_t i : spec.indices) {
    if (i == index) return true;
  }
  if (spec.every_n > 0 && (index + 1) % spec.every_n == 0) return true;
  if (spec.probability > 0) {
    uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(site) << 56) ^
                     static_cast<uint64_t>(index));
    double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
    if (u < spec.probability) return true;
  }
  return false;
}

bool FaultInjector::NextHitFires(FaultSite site) {
  size_t s = static_cast<size_t>(site);
  if (!specs_[s].armed()) return false;
  int64_t index = hits_[s].fetch_add(1, std::memory_order_relaxed);
  if (!Fires(site, index)) return false;
  injected_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status FaultInjector::MaybeFail(FaultSite site) {
  if (!NextHitFires(site)) return Status::OK();
  return Status::Internal(std::string("injected fault at ") +
                          FaultSiteName(site));
}

void FaultInjector::MaybeDelay(FaultSite site) {
  if (!NextHitFires(site)) return;
  double ms = specs_[static_cast<size_t>(site)].delay_ms;
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace cbqt
