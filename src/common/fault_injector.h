#ifndef CBQT_COMMON_FAULT_INJECTOR_H_
#define CBQT_COMMON_FAULT_INJECTOR_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace cbqt {

/// Places in the pipeline where faults can be injected.
enum class FaultSite : int {
  kStateEval = 0,  ///< evaluation of one transformation state (framework)
  kPlanner = 1,    ///< one physical optimization (PhysicalOptimizer)
  kSlowState = 2,  ///< simulated slow state: a deterministic stall
  kExecBatch = 3,  ///< executor row-production loop (per CountRow poll)
  kExecSpillCheck = 4,   ///< executor pipeline-breaker memory charge
  kMemoryPressure = 5,   ///< simulated memory-reservation failure
  kCancelAt = 6,         ///< trips the query's CancellationToken at a poll
  kExecSpillWrite = 7,   ///< one row appended to a spill temp file
  kExecSpillRead = 8,    ///< one row read back from a spill temp file
  kAdmit = 9,            ///< admission/dispatch path (tenant scheduler)
};

inline constexpr int kNumFaultSites = 10;

const char* FaultSiteName(FaultSite site);

/// Inverse of FaultSiteName; false when `name` matches no site.
bool FaultSiteFromName(const std::string& name, FaultSite* out);

/// What fires at one site. A site's hits are numbered 0, 1, 2, ... in
/// process order (the counter is atomic, so every hit gets a unique index
/// even under the parallel search); a hit fires when its index is listed in
/// `indices`, when `every_n > 0` and (index + 1) % every_n == 0, or when the
/// seeded per-index hash falls below `probability`. All three criteria are
/// pure functions of (seed, site, index), so the *set* of firing indices is
/// deterministic regardless of thread interleaving.
struct FaultSpec {
  std::vector<int64_t> indices;
  int64_t every_n = 0;
  double probability = 0;
  /// kSlowState only: how long a firing hit stalls.
  double delay_ms = 0;

  bool armed() const {
    return !indices.empty() || every_n > 0 || probability > 0;
  }
};

/// Deterministic fault injection for robustness tests: proves that the CBQT
/// pipeline isolates per-state failures, degrades under budget pressure, and
/// never crashes on an injected error — including under the parallel search
/// with TSan. Wired through CbqtConfig::fault_injector; production configs
/// leave it null and pay nothing.
///
/// Thread-safe: hit counters are atomics, specs are immutable after Arm()
/// (arm all sites before handing the injector to an optimizer).
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 0) : seed_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void Arm(FaultSite site, FaultSpec spec);

  /// Builds an armed injector from a textual site spec — semicolon-separated
  /// clauses of `<site>:<key>=<value>` where `<site>` is a FaultSiteName
  /// string and `<key>` is one of `every` (fire every Nth hit), `p` (firing
  /// probability per hit), `at` (explicit hit indices, '|'-separated), or
  /// `delay` (stall milliseconds, for slow-state sites). Clauses for the
  /// same site merge into one FaultSpec. Example:
  ///   "exec-batch:p=0.001;planner:every=50;slow-state:at=0|3;slow-state:delay=20"
  static Result<std::shared_ptr<FaultInjector>> Parse(
      const std::string& sites, uint64_t seed);

  /// Reads CBQT_FAULT_SITES / CBQT_FAULT_SEED from the environment so fuzz
  /// sweeps and local repro runs can inject faults without code edits.
  /// Returns OK + nullptr when CBQT_FAULT_SITES is unset or empty, and an
  /// error Status when either variable is malformed.
  static Result<std::shared_ptr<FaultInjector>> FromEnv();

  /// Consumes one hit at `site`; returns an injected kInternal error when it
  /// fires, OK otherwise.
  Status MaybeFail(FaultSite site);

  /// Consumes one hit at `site` (normally kSlowState); stalls the calling
  /// thread for the spec's delay when it fires.
  void MaybeDelay(FaultSite site);

  /// Consumes one hit at `site` and reports whether it fired, leaving the
  /// consequence to the caller — used by sites whose effect is not a plain
  /// error Status (kMemoryPressure fails a reservation, kCancelAt trips the
  /// query's CancellationToken).
  bool MaybeFire(FaultSite site) { return NextHitFires(site); }

  int64_t hits(FaultSite site) const {
    return hits_[static_cast<size_t>(site)].load(std::memory_order_relaxed);
  }
  int64_t injected(FaultSite site) const {
    return injected_[static_cast<size_t>(site)].load(
        std::memory_order_relaxed);
  }

 private:
  /// True when hit `index` at `site` fires (pure function of seed/spec).
  bool Fires(FaultSite site, int64_t index) const;
  /// Claims the next hit index at `site` and reports whether it fires.
  bool NextHitFires(FaultSite site);

  const uint64_t seed_;
  std::array<FaultSpec, kNumFaultSites> specs_;
  std::array<std::atomic<int64_t>, kNumFaultSites> hits_{};
  std::array<std::atomic<int64_t>, kNumFaultSites> injected_{};
};

}  // namespace cbqt

#endif  // CBQT_COMMON_FAULT_INJECTOR_H_
