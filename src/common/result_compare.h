#ifndef CBQT_COMMON_RESULT_COMPARE_H_
#define CBQT_COMMON_RESULT_COMPARE_H_

#include <string>
#include <vector>

#include "common/value.h"

namespace cbqt {

/// Canonical result-set comparison, shared by the equivalence tests, the
/// batch-executor oracle sweep, and the metamorphic fuzzer. SQL result sets
/// are unordered multisets (unless the top-level block orders them), so two
/// plans are equivalent iff their outputs compare equal after canonical
/// sorting, with NULL-aware structural value equality.

/// Sorts rows into a canonical total order: lexicographic TotalLess
/// (NULLs last), shorter rows first on a common prefix.
void SortRowsCanonical(std::vector<Row>* rows);

/// Renders one row for diff messages: [v1, v2, ...] with SQL-ish values.
std::string RowToString(const Row& row);

/// Value equality for result comparison: structural (NULL == NULL,
/// Int(2) == Real(2.0)); when `approx_doubles` is set, doubles compare with
/// a 1e-9 relative tolerance because different plans (and different
/// batch/spill splits) sum doubles in different orders.
bool ResultValuesEqual(const Value& a, const Value& b, bool approx_doubles);

/// Row equality under ResultValuesEqual.
bool ResultRowsEqual(const Row& a, const Row& b, bool approx_doubles);

/// Outcome of a multiset comparison. When the sets differ, `message` pins
/// the first diverging row after canonical sorting (or the size mismatch).
struct RowSetDiff {
  bool equal = false;
  std::string message;

  explicit operator bool() const { return equal; }
};

/// Order-insensitive multiset compare: canonically sorts copies of both
/// sides (inputs untouched) and compares pairwise. On mismatch the message
/// reports sizes and the first diverging row index with both rows rendered.
RowSetDiff CompareRowMultisets(const std::vector<Row>& actual,
                               const std::vector<Row>& expected,
                               bool approx_doubles = true);

/// Convenience predicate form of CompareRowMultisets.
inline bool RowMultisetsEqual(const std::vector<Row>& actual,
                              const std::vector<Row>& expected,
                              bool approx_doubles = true) {
  return CompareRowMultisets(actual, expected, approx_doubles).equal;
}

}  // namespace cbqt

#endif  // CBQT_COMMON_RESULT_COMPARE_H_
