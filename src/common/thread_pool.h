#ifndef CBQT_COMMON_THREAD_POOL_H_
#define CBQT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cbqt {

/// A fixed-size thread pool with a single shared FIFO queue (deliberately no
/// work stealing: tasks in this codebase are coarse — one physical
/// optimization of a whole transformation state each — so a contended deque
/// would buy nothing and cost determinism-debugging pain).
///
/// Usage: Submit() closures, then Wait() for the queue to drain. Submit/Wait
/// are safe to call from multiple threads; Wait returns once every task
/// submitted before the call has finished executing.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // workers wait here
  std::condition_variable all_done_;     // Wait() waits here
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace cbqt

#endif  // CBQT_COMMON_THREAD_POOL_H_
