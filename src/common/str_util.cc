#include "common/str_util.h"

#include <cstdarg>
#include <cstdio>

namespace cbqt {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace cbqt
