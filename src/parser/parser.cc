#include "parser/parser.h"

#include <vector>

#include "common/str_util.h"
#include "parser/lexer.h"
#include "sql/expr_util.h"

namespace cbqt {

namespace {

/// Recursive-descent parser over the token stream. Methods set `error_` and
/// return null on failure; the top level converts that into a Status.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<QueryBlock>> ParseStatement() {
    auto qb = ParseSelect();
    if (!ok()) return error_;
    AcceptSymbol(";");
    if (Cur().kind != TokenKind::kEof) {
      return Status::ParseError("trailing input after statement: '" +
                                Cur().text + "'");
    }
    return qb;
  }

 private:
  // ---- token helpers ----
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek(size_t k = 1) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool ok() const { return error_.ok(); }
  void Fail(const std::string& msg) {
    if (error_.ok()) {
      error_ = Status::ParseError(msg + " (near offset " +
                                  std::to_string(Cur().offset) + ")");
    }
  }

  // Robustness guard: the parser is recursive-descent, so adversarially
  // nested input (parentheses, subqueries) would otherwise overflow the
  // stack. Every recursion entry point bumps the depth; past the limit the
  // parse fails with a clean Status instead of crashing.
  static constexpr int kMaxNestingDepth = 200;
  bool EnterNesting() {
    if (++depth_ > kMaxNestingDepth) {
      Fail("query nesting exceeds depth limit of " +
           std::to_string(kMaxNestingDepth));
      return false;
    }
    return true;
  }
  void LeaveNesting() { --depth_; }

  bool AtKeyword(const std::string& kw) const {
    return Cur().kind == TokenKind::kIdent && Cur().text == kw;
  }
  bool AtSymbol(const std::string& sym) const {
    return Cur().kind == TokenKind::kSymbol && Cur().text == sym;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (AtKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const std::string& sym) {
    if (AtSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  void ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) Fail("expected '" + ToUpper(kw) + "'");
  }
  void ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) Fail("expected '" + sym + "'");
  }
  std::string ExpectIdent() {
    if (Cur().kind != TokenKind::kIdent) {
      Fail("expected identifier");
      return "";
    }
    std::string name = Cur().text;
    Advance();
    return name;
  }

  static bool IsReserved(const std::string& w) {
    static const char* kReserved[] = {
        "select", "distinct", "from",  "where",   "group", "by",    "having",
        "order",  "union",    "all",   "intersect", "minus", "join", "inner",
        "left",   "outer",    "on",    "as",      "and",   "or",    "not",
        "exists", "in",       "is",    "null",    "between", "any", "case",
        "when",   "then",     "else",  "end",     "asc",   "desc",  "over",
        "lateral"};
    for (const char* r : kReserved) {
      if (w == r) return true;
    }
    return false;
  }

  // ---- grammar ----

  std::unique_ptr<QueryBlock> ParseSelect() {
    auto left = ParseSelectBlock();
    if (!ok()) return nullptr;
    // Set operators, left-associative; same-kind UNION ALL chains flatten
    // into one multi-branch compound block (join factorization needs that).
    while (ok()) {
      SetOpKind op = SetOpKind::kNone;
      if (AtKeyword("union")) {
        Advance();
        op = AcceptKeyword("all") ? SetOpKind::kUnionAll : SetOpKind::kUnion;
      } else if (AtKeyword("intersect")) {
        Advance();
        op = SetOpKind::kIntersect;
      } else if (AtKeyword("minus")) {
        Advance();
        op = SetOpKind::kMinus;
      } else {
        break;
      }
      auto right = ParseSelectBlock();
      if (!ok()) return nullptr;
      if (left->set_op == op && op == SetOpKind::kUnionAll) {
        left->branches.push_back(std::move(right));
      } else {
        auto compound = std::make_unique<QueryBlock>();
        compound->set_op = op;
        compound->branches.push_back(std::move(left));
        compound->branches.push_back(std::move(right));
        left = std::move(compound);
      }
    }
    return left;
  }

  std::unique_ptr<QueryBlock> ParseSelectBlock() {
    if (!EnterNesting()) return nullptr;
    auto qb = ParseSelectBlockInner();
    LeaveNesting();
    return qb;
  }

  std::unique_ptr<QueryBlock> ParseSelectBlockInner() {
    if (AcceptSymbol("(")) {
      auto qb = ParseSelect();
      if (!ok()) return nullptr;
      ExpectSymbol(")");
      return qb;
    }
    ExpectKeyword("select");
    if (!ok()) return nullptr;
    auto qb = std::make_unique<QueryBlock>();
    std::vector<std::string> no_merge_aliases;
    if (Cur().kind == TokenKind::kHint) {
      ParseHints(Cur().text, &no_merge_aliases);
      Advance();
    }
    qb->distinct = AcceptKeyword("distinct");
    // Select list.
    if (AcceptSymbol("*")) {
      // '*' expands during binding; represent as a single item with a star
      // marker column ref.
      SelectItem item;
      item.expr = MakeColumnRef("", "*");
      qb->select.push_back(std::move(item));
    } else {
      do {
        SelectItem item;
        item.expr = ParseExpr();
        if (!ok()) return nullptr;
        if (AcceptKeyword("as")) {
          item.alias = ExpectIdent();
        } else if (Cur().kind == TokenKind::kIdent && !IsReserved(Cur().text)) {
          item.alias = Cur().text;
          Advance();
        }
        qb->select.push_back(std::move(item));
      } while (AcceptSymbol(","));
    }
    // FROM.
    if (AcceptKeyword("from")) {
      ParseFromList(qb.get());
      if (!ok()) return nullptr;
    }
    // WHERE.
    if (AcceptKeyword("where")) {
      ExprPtr cond = ParseExpr();
      if (!ok()) return nullptr;
      SplitConjuncts(std::move(cond), &qb->where);
    }
    // GROUP BY.
    if (AtKeyword("group")) {
      Advance();
      ExpectKeyword("by");
      ParseGroupBy(qb.get());
      if (!ok()) return nullptr;
    }
    // HAVING.
    if (AcceptKeyword("having")) {
      ExprPtr cond = ParseExpr();
      if (!ok()) return nullptr;
      SplitConjuncts(std::move(cond), &qb->having);
    }
    // ORDER BY.
    if (AtKeyword("order")) {
      Advance();
      ExpectKeyword("by");
      do {
        OrderItem oi;
        oi.expr = ParseExpr();
        if (!ok()) return nullptr;
        if (AcceptKeyword("desc")) {
          oi.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        qb->order_by.push_back(std::move(oi));
      } while (AcceptSymbol(","));
    }
    for (const std::string& alias : no_merge_aliases) {
      int idx = qb->FindFrom(alias);
      if (idx >= 0) qb->from[static_cast<size_t>(idx)].no_merge = true;
    }
    return qb;
  }

  void ParseHints(const std::string& hint_text,
                  std::vector<std::string>* no_merge_aliases) {
    // Recognized: no_merge(alias). Everything else is ignored, like a real
    // optimizer would.
    size_t pos = hint_text.find("no_merge");
    while (pos != std::string::npos) {
      size_t open = hint_text.find('(', pos);
      size_t close = hint_text.find(')', pos);
      if (open != std::string::npos && close != std::string::npos &&
          close > open) {
        std::string alias = hint_text.substr(open + 1, close - open - 1);
        // Trim whitespace.
        while (!alias.empty() && std::isspace(static_cast<unsigned char>(
                                     alias.front()))) {
          alias.erase(alias.begin());
        }
        while (!alias.empty() &&
               std::isspace(static_cast<unsigned char>(alias.back()))) {
          alias.pop_back();
        }
        no_merge_aliases->push_back(alias);
      }
      pos = hint_text.find("no_merge", pos + 1);
    }
  }

  void ParseFromList(QueryBlock* qb) {
    ParseFromItem(qb, JoinKind::kInner, /*has_on=*/false);
    if (!ok()) return;
    while (ok()) {
      if (AcceptSymbol(",")) {
        ParseFromItem(qb, JoinKind::kInner, /*has_on=*/false);
        continue;
      }
      if (AtKeyword("join") || AtKeyword("inner") || AtKeyword("left")) {
        JoinKind kind = JoinKind::kInner;
        if (AcceptKeyword("left")) {
          AcceptKeyword("outer");
          kind = JoinKind::kLeftOuter;
        } else {
          AcceptKeyword("inner");
        }
        ExpectKeyword("join");
        if (!ok()) return;
        ParseFromItem(qb, kind, /*has_on=*/true);
        continue;
      }
      break;
    }
  }

  void ParseFromItem(QueryBlock* qb, JoinKind kind, bool has_on) {
    TableRef tr;
    tr.join = kind;
    bool lateral = AcceptKeyword("lateral");
    if (AtSymbol("(")) {
      Advance();
      tr.derived = ParseSelect();
      if (!ok()) return;
      ExpectSymbol(")");
      tr.lateral = lateral;
      if (Cur().kind == TokenKind::kIdent && !IsReserved(Cur().text)) {
        tr.alias = Cur().text;
        Advance();
      } else {
        tr.alias = "dt_" + std::to_string(qb->from.size());
      }
    } else {
      tr.table_name = ExpectIdent();
      if (!ok()) return;
      tr.alias = tr.table_name;
      if (Cur().kind == TokenKind::kIdent && !IsReserved(Cur().text)) {
        tr.alias = Cur().text;
        Advance();
      }
    }
    if (has_on) {
      ExpectKeyword("on");
      if (!ok()) return;
      ExprPtr cond = ParseExpr();
      if (!ok()) return;
      if (kind == JoinKind::kInner) {
        // Inner-join ON conditions are plain WHERE conjuncts in the
        // declarative query tree.
        SplitConjuncts(std::move(cond), &qb->where);
      } else {
        SplitConjuncts(std::move(cond), &tr.join_conds);
      }
    }
    qb->from.push_back(std::move(tr));
  }

  void ParseGroupBy(QueryBlock* qb) {
    if (AtKeyword("rollup")) {
      Advance();
      ExpectSymbol("(");
      do {
        qb->group_by.push_back(ParseExpr());
        if (!ok()) return;
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      // ROLLUP(a,b,c) = GROUPING SETS ((a,b,c),(a,b),(a),())
      int n = static_cast<int>(qb->group_by.size());
      for (int len = n; len >= 0; --len) {
        std::vector<int> set;
        for (int i = 0; i < len; ++i) set.push_back(i);
        qb->grouping_sets.push_back(std::move(set));
      }
      return;
    }
    if (AtKeyword("grouping")) {
      Advance();
      ExpectKeyword("sets");
      ExpectSymbol("(");
      do {
        ExpectSymbol("(");
        std::vector<int> set;
        if (!AtSymbol(")")) {
          do {
            ExprPtr key = ParseExpr();
            if (!ok()) return;
            // Deduplicate identical keys across sets.
            int idx = -1;
            for (size_t i = 0; i < qb->group_by.size(); ++i) {
              if (ExprEquals(*qb->group_by[i], *key)) {
                idx = static_cast<int>(i);
                break;
              }
            }
            if (idx < 0) {
              idx = static_cast<int>(qb->group_by.size());
              qb->group_by.push_back(std::move(key));
            }
            set.push_back(idx);
          } while (AcceptSymbol(","));
        }
        ExpectSymbol(")");
        qb->grouping_sets.push_back(std::move(set));
      } while (AcceptSymbol(","));
      ExpectSymbol(")");
      return;
    }
    do {
      qb->group_by.push_back(ParseExpr());
      if (!ok()) return;
    } while (AcceptSymbol(","));
  }

  // ---- expressions ----

  ExprPtr ParseExpr() {
    if (!EnterNesting()) return nullptr;
    ExprPtr e = ParseOr();
    LeaveNesting();
    return e;
  }

  ExprPtr ParseOr() {
    ExprPtr left = ParseAnd();
    while (ok() && AcceptKeyword("or")) {
      ExprPtr right = ParseAnd();
      if (!ok()) return nullptr;
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr ParseAnd() {
    ExprPtr left = ParseNot();
    while (ok() && AcceptKeyword("and")) {
      ExprPtr right = ParseNot();
      if (!ok()) return nullptr;
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr ParseNot() {
    if (AcceptKeyword("not")) {
      ExprPtr inner = ParseNot();
      if (!ok()) return nullptr;
      // NOT EXISTS / NOT IN become their own subquery kinds.
      if (inner->kind == ExprKind::kSubquery) {
        if (inner->subkind == SubqueryKind::kExists) {
          inner->subkind = SubqueryKind::kNotExists;
          return inner;
        }
        if (inner->subkind == SubqueryKind::kIn) {
          inner->subkind = SubqueryKind::kNotIn;
          return inner;
        }
      }
      return MakeUnary(UnaryOp::kNot, std::move(inner));
    }
    return ParseComparison();
  }

  BinaryOp SymbolToCmp(const std::string& s) {
    if (s == "=") return BinaryOp::kEq;
    if (s == "<>") return BinaryOp::kNe;
    if (s == "<") return BinaryOp::kLt;
    if (s == "<=") return BinaryOp::kLe;
    if (s == ">") return BinaryOp::kGt;
    return BinaryOp::kGe;
  }

  ExprPtr ParseComparison() {
    ExprPtr left = ParseAdditive();
    if (!ok()) return nullptr;
    // IS [NOT] NULL
    if (AtKeyword("is")) {
      Advance();
      bool negated = AcceptKeyword("not");
      ExpectKeyword("null");
      return MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(left));
    }
    // [NOT] BETWEEN a AND b
    bool negated = false;
    if (AtKeyword("not") &&
        (Peek().kind == TokenKind::kIdent &&
         (Peek().text == "between" || Peek().text == "in"))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("between")) {
      ExprPtr lo = ParseAdditive();
      if (!ok()) return nullptr;
      ExpectKeyword("and");
      ExprPtr hi = ParseAdditive();
      if (!ok()) return nullptr;
      ExprPtr ge =
          MakeBinary(BinaryOp::kGe, left->Clone(), std::move(lo));
      ExprPtr le = MakeBinary(BinaryOp::kLe, std::move(left), std::move(hi));
      ExprPtr both = MakeBinary(BinaryOp::kAnd, std::move(ge), std::move(le));
      if (negated) return MakeUnary(UnaryOp::kNot, std::move(both));
      return both;
    }
    if (AcceptKeyword("in")) {
      return ParseInRhs(std::move(left), negated);
    }
    if (Cur().kind == TokenKind::kSymbol &&
        (Cur().text == "=" || Cur().text == "<>" || Cur().text == "<" ||
         Cur().text == "<=" || Cur().text == ">" || Cur().text == ">=")) {
      BinaryOp op = SymbolToCmp(Cur().text);
      Advance();
      // cmp ANY/ALL (subquery)
      if (AtKeyword("any") || AtKeyword("all")) {
        bool is_any = Cur().text == "any";
        Advance();
        ExpectSymbol("(");
        auto sub = ParseSelect();
        if (!ok()) return nullptr;
        ExpectSymbol(")");
        auto e = MakeSubquery(
            is_any ? SubqueryKind::kAnyCmp : SubqueryKind::kAllCmp,
            std::move(sub));
        e->sub_cmp = op;
        e->children.push_back(std::move(left));
        return e;
      }
      ExprPtr right = ParseAdditive();
      if (!ok()) return nullptr;
      return MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr ParseInRhs(ExprPtr left, bool negated) {
    ExpectSymbol("(");
    if (!ok()) return nullptr;
    std::vector<ExprPtr> left_items;
    if (left->kind == ExprKind::kFuncCall && left->func_name == "$row") {
      left_items = std::move(left->children);
    } else {
      left_items.push_back(std::move(left));
    }
    if (AtKeyword("select")) {
      auto sub = ParseSelect();
      if (!ok()) return nullptr;
      ExpectSymbol(")");
      auto e = MakeSubquery(negated ? SubqueryKind::kNotIn : SubqueryKind::kIn,
                            std::move(sub));
      e->children = std::move(left_items);
      return e;
    }
    // IN value list: expand to OR of equalities (no subquery involved).
    if (left_items.size() != 1) {
      Fail("row IN requires a subquery right-hand side");
      return nullptr;
    }
    std::vector<ExprPtr> eqs;
    do {
      ExprPtr v = ParseExpr();
      if (!ok()) return nullptr;
      eqs.push_back(
          MakeBinary(BinaryOp::kEq, left_items[0]->Clone(), std::move(v)));
    } while (AcceptSymbol(","));
    ExpectSymbol(")");
    ExprPtr out = std::move(eqs[0]);
    for (size_t i = 1; i < eqs.size(); ++i) {
      out = MakeBinary(BinaryOp::kOr, std::move(out), std::move(eqs[i]));
    }
    if (negated) return MakeUnary(UnaryOp::kNot, std::move(out));
    return out;
  }

  ExprPtr ParseAdditive() {
    ExprPtr left = ParseMultiplicative();
    while (ok() && (AtSymbol("+") || AtSymbol("-"))) {
      BinaryOp op = AtSymbol("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      ExprPtr right = ParseMultiplicative();
      if (!ok()) return nullptr;
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr left = ParseUnary();
    while (ok() && (AtSymbol("*") || AtSymbol("/"))) {
      BinaryOp op = AtSymbol("*") ? BinaryOp::kMul : BinaryOp::kDiv;
      Advance();
      ExprPtr right = ParseUnary();
      if (!ok()) return nullptr;
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  ExprPtr ParseUnary() {
    if (AcceptSymbol("-")) {
      ExprPtr inner = ParseUnary();
      if (!ok()) return nullptr;
      return MakeUnary(UnaryOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  static bool IsAggName(const std::string& name, AggFunc* out) {
    if (name == "count") {
      *out = AggFunc::kCount;
      return true;
    }
    if (name == "sum") {
      *out = AggFunc::kSum;
      return true;
    }
    if (name == "avg") {
      *out = AggFunc::kAvg;
      return true;
    }
    if (name == "min") {
      *out = AggFunc::kMin;
      return true;
    }
    if (name == "max") {
      *out = AggFunc::kMax;
      return true;
    }
    return false;
  }

  ExprPtr ParsePrimary() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kInt: {
        int64_t v = t.int_val;
        Advance();
        return MakeLiteral(Value::Int(v));
      }
      case TokenKind::kReal: {
        double v = t.real_val;
        Advance();
        return MakeLiteral(Value::Real(v));
      }
      case TokenKind::kString: {
        std::string v = t.text;
        Advance();
        return MakeLiteral(Value::Str(std::move(v)));
      }
      case TokenKind::kSymbol: {
        if (t.text == "(") {
          Advance();
          if (AtKeyword("select")) {
            auto sub = ParseSelect();
            if (!ok()) return nullptr;
            ExpectSymbol(")");
            return MakeSubquery(SubqueryKind::kScalar, std::move(sub));
          }
          ExprPtr first = ParseExpr();
          if (!ok()) return nullptr;
          if (AtSymbol(",")) {
            // Row expression — only legal before IN.
            std::vector<ExprPtr> items;
            items.push_back(std::move(first));
            while (AcceptSymbol(",")) {
              items.push_back(ParseExpr());
              if (!ok()) return nullptr;
            }
            ExpectSymbol(")");
            return MakeFuncCall("$row", std::move(items));
          }
          ExpectSymbol(")");
          return first;
        }
        Fail("unexpected symbol '" + t.text + "'");
        return nullptr;
      }
      case TokenKind::kIdent:
        return ParseIdentExpr();
      default:
        Fail("unexpected token");
        return nullptr;
    }
  }

  ExprPtr ParseIdentExpr() {
    std::string name = Cur().text;
    if (name == "exists") {
      Advance();
      ExpectSymbol("(");
      auto sub = ParseSelect();
      if (!ok()) return nullptr;
      ExpectSymbol(")");
      return MakeSubquery(SubqueryKind::kExists, std::move(sub));
    }
    if (name == "case") {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCase;
      while (AcceptKeyword("when")) {
        e->children.push_back(ParseExpr());
        if (!ok()) return nullptr;
        ExpectKeyword("then");
        e->children.push_back(ParseExpr());
        if (!ok()) return nullptr;
      }
      if (AcceptKeyword("else")) {
        e->children.push_back(ParseExpr());
        if (!ok()) return nullptr;
      }
      ExpectKeyword("end");
      return e;
    }
    if (name == "rownum") {
      Advance();
      return MakeRownum();
    }
    if (name == "null") {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (name == "true") {
      Advance();
      return MakeLiteral(Value::Boolean(true));
    }
    if (name == "false") {
      Advance();
      return MakeLiteral(Value::Boolean(false));
    }
    // Function call or column reference.
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "(") {
      Advance();  // name
      Advance();  // (
      AggFunc agg = AggFunc::kCountStar;
      bool is_agg = IsAggName(name, &agg);
      bool distinct = false;
      std::vector<ExprPtr> args;
      if (is_agg && AtSymbol("*")) {
        Advance();
        agg = AggFunc::kCountStar;
      } else if (!AtSymbol(")")) {
        if (is_agg) distinct = AcceptKeyword("distinct");
        do {
          args.push_back(ParseExpr());
          if (!ok()) return nullptr;
        } while (AcceptSymbol(","));
      }
      ExpectSymbol(")");
      if (!ok()) return nullptr;
      // Window?
      if (AtKeyword("over")) {
        if (!is_agg) {
          Fail("only aggregate window functions are supported");
          return nullptr;
        }
        Advance();
        ExpectSymbol("(");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kWindow;
        e->win_func = agg;
        e->children = std::move(args);
        if (AtKeyword("partition")) {
          Advance();
          ExpectKeyword("by");
          do {
            e->partition_by.push_back(ParseExpr());
            if (!ok()) return nullptr;
          } while (AcceptSymbol(","));
        }
        if (AtKeyword("order")) {
          Advance();
          ExpectKeyword("by");
          do {
            e->win_order_by.push_back(ParseExpr());
            if (!ok()) return nullptr;
          } while (AcceptSymbol(","));
        }
        // Accept and ignore the frame clause; semantics are fixed to RANGE
        // UNBOUNDED PRECEDING .. CURRENT ROW.
        if (AtKeyword("range") || AtKeyword("rows")) {
          while (ok() && !AtSymbol(")")) Advance();
        }
        ExpectSymbol(")");
        return e;
      }
      if (is_agg) {
        if (agg == AggFunc::kCountStar) return MakeCountStar();
        if (args.size() != 1) {
          Fail("aggregate takes exactly one argument");
          return nullptr;
        }
        return MakeAggregate(agg, std::move(args[0]), distinct);
      }
      // LNNVL is an operator internally (or-expansion emits it and the
      // evaluators only know UnaryOp::kLnnvl); map the call syntax so
      // unparsed or-expansion output reparses to the same tree.
      if (name == "lnnvl") {
        if (args.size() != 1) {
          Fail("LNNVL takes exactly one argument");
          return nullptr;
        }
        return MakeUnary(UnaryOp::kLnnvl, std::move(args[0]));
      }
      return MakeFuncCall(name, std::move(args));
    }
    // Column reference: [alias.]column
    Advance();
    if (AtSymbol(".")) {
      Advance();
      if (AtSymbol("*")) {
        Advance();
        return MakeColumnRef(name, "*");
      }
      std::string col = ExpectIdent();
      if (!ok()) return nullptr;
      return MakeColumnRef(name, col);
    }
    return MakeColumnRef("", name);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Status error_;
  int depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<QueryBlock>> ParseSql(const std::string& sql) {
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseStatement();
}

}  // namespace cbqt
