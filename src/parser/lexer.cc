#include "parser/lexer.h"

#include <cctype>

#include "common/str_util.h"

namespace cbqt {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  size_t i = 0;
  size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      bool is_hint = i + 2 < n && sql[i + 2] == '+';
      size_t start = i + (is_hint ? 3 : 2);
      size_t end = sql.find("*/", start);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated comment");
      }
      if (is_hint) {
        Token t;
        t.kind = TokenKind::kHint;
        t.text = ToLower(sql.substr(start, end - start));
        t.offset = i;
        out.push_back(std::move(t));
      }
      i = end + 2;
      continue;
    }
    Token t;
    t.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      t.kind = TokenKind::kIdent;
      t.text = ToLower(sql.substr(start, i - start));
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_real = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(sql[j]))) {
          is_real = true;
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text = sql.substr(start, i - start);
      if (is_real) {
        t.kind = TokenKind::kReal;
        t.real_val = std::stod(text);
      } else {
        t.kind = TokenKind::kInt;
        t.int_val = std::stoll(text);
      }
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text += '\'';
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text += sql[i];
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      t.kind = TokenKind::kString;
      t.text = std::move(text);
      out.push_back(std::move(t));
      continue;
    }
    // Multi-char operators.
    auto push_symbol = [&](const std::string& sym) {
      t.kind = TokenKind::kSymbol;
      t.text = sym;
      out.push_back(t);
      i += sym.size();
    };
    if (c == '<') {
      if (i + 1 < n && sql[i + 1] == '=') {
        push_symbol("<=");
      } else if (i + 1 < n && sql[i + 1] == '>') {
        push_symbol("<>");
      } else {
        push_symbol("<");
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        push_symbol(">=");
      } else {
        push_symbol(">");
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < n && sql[i + 1] == '=') {
        push_symbol("<>");  // normalize != to <>
        continue;
      }
      return Status::ParseError("unexpected character '!'");
    }
    if (std::string("(),.=+-*/;").find(c) != std::string::npos) {
      push_symbol(std::string(1, c));
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  Token eof;
  eof.kind = TokenKind::kEof;
  eof.offset = n;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace cbqt
