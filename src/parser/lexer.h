#ifndef CBQT_PARSER_LEXER_H_
#define CBQT_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace cbqt {

enum class TokenKind {
  kEof,
  kIdent,    ///< identifier or keyword (lower-cased in `text`)
  kInt,      ///< integer literal
  kReal,     ///< floating-point literal
  kString,   ///< 'quoted' string literal (unquoted in `text`)
  kSymbol,   ///< punctuation / operator, in `text`: ( ) , . = <> < <= > >= + - * /
  kHint,     ///< /*+ ... */ optimizer hint, content in `text`
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  int64_t int_val = 0;
  double real_val = 0;
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes `sql`. Identifiers are lower-cased (SQL case-insensitivity);
/// `--` line comments and `/* */` block comments are skipped, except `/*+ */`
/// hint comments which are returned as kHint tokens.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace cbqt

#endif  // CBQT_PARSER_LEXER_H_
