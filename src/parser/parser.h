#ifndef CBQT_PARSER_PARSER_H_
#define CBQT_PARSER_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/query_block.h"

namespace cbqt {

/// Parses a SELECT statement into an (unbound) query-block tree.
///
/// Supported subset (everything the paper's examples Q1–Q18 need):
///   SELECT [DISTINCT] expr [AS alias], ... | *
///   FROM t [alias], ... | (subselect) alias | [LEFT [OUTER]] JOIN ... ON ...
///   WHERE <condition with EXISTS / [NOT] IN / ANY / ALL / scalar subqueries>
///   GROUP BY exprs | ROLLUP(...) | GROUPING SETS ((..), ..)
///   HAVING ... / ORDER BY expr [DESC], ... / ROWNUM predicates
///   set operators UNION [ALL] / INTERSECT / MINUS
///   aggregates COUNT(*)/COUNT/SUM/AVG/MIN/MAX([DISTINCT] x), CASE, BETWEEN,
///   IS [NOT] NULL, window aggregates `agg(x) OVER (PARTITION BY .. ORDER BY
///   ..)` (frame clauses accepted, fixed to RANGE UNBOUNDED PRECEDING ..
///   CURRENT ROW), and `/*+ no_merge(alias) */` hints after SELECT.
Result<std::unique_ptr<QueryBlock>> ParseSql(const std::string& sql);

}  // namespace cbqt

#endif  // CBQT_PARSER_PARSER_H_
