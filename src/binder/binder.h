#ifndef CBQT_BINDER_BINDER_H_
#define CBQT_BINDER_BINDER_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// Output column of a block (what a derived table exposes to its parent).
struct OutputColumn {
  std::string name;
  DataType type = DataType::kUnknown;
};

/// Output columns of a block: the select-list aliases/types for a regular
/// block, or the first branch's for a compound (set-op) block. Valid after
/// binding.
std::vector<OutputColumn> BlockOutputColumns(const QueryBlock& qb);

/// Name resolution and semantic analysis.
///
/// The binder:
///  - enforces globally unique table aliases across the whole query tree
///    (renaming shadowed duplicates), which is the invariant every
///    transformation relies on to move expressions between blocks freely;
///  - resolves column references (qualifying unqualified ones) and computes
///    `corr_depth` — the correlation nesting distance the paper's unnesting
///    legality tests use;
///  - expands `*` / `alias.*`, assigns select-item aliases, derives types;
///  - extracts top-level `ROWNUM < k` / `ROWNUM <= k` conjuncts into
///    `QueryBlock::rownum_limit`;
///  - records the TableDef of base-table FROM entries.
///
/// Binding is idempotent: transformations mutate the tree and simply
/// re-bind.
class Binder {
 public:
  explicit Binder(const Database& db) : db_(db) {}

  /// Binds the whole tree rooted at `root`.
  Status Bind(QueryBlock* root);

 private:
  struct Scope {
    QueryBlock* block;
  };

  Status BindBlock(QueryBlock* qb);
  Status BindRegularBlock(QueryBlock* qb);
  // COW fast path: a structurally shared nested block is an unmodified —
  // and therefore already bound — subtree of the base tree. Records its
  // defined aliases in used_aliases_ and skips the descent (returning true)
  // unless one of them collides with an alias already seen, in which case
  // the subtree must be re-bound (and thawed) the ordinary way.
  bool TrySkipSharedSubtree(CowPtr<QueryBlock>& edge);
  Status EnsureUniqueAliases(QueryBlock* qb);
  Status ExpandStars(QueryBlock* qb);
  Status BindExpr(Expr* e, QueryBlock* qb, bool allow_order_alias);
  Status ResolveColumnRef(Expr* e, QueryBlock* qb, bool allow_order_alias);
  Status DeriveType(Expr* e);
  void ExtractRownumLimit(QueryBlock* qb);

  const Database& db_;
  std::vector<Scope> scopes_;
  std::set<std::string> used_aliases_;
};

/// Convenience: bind `root` against `db`.
Status BindQuery(const Database& db, QueryBlock* root);

}  // namespace cbqt

#endif  // CBQT_BINDER_BINDER_H_
