#include "binder/binder.h"

#include <functional>

#include "common/str_util.h"
#include "sql/expr_util.h"

namespace cbqt {

std::vector<OutputColumn> BlockOutputColumns(const QueryBlock& qb) {
  if (qb.IsSetOp()) {
    if (qb.branches.empty()) return {};
    return BlockOutputColumns(*qb.branches[0]);
  }
  std::vector<OutputColumn> out;
  out.reserve(qb.select.size());
  for (const auto& item : qb.select) {
    out.push_back(OutputColumn{item.alias, item.expr->type});
  }
  return out;
}

namespace {

bool BlockDeclaresAlias(const QueryBlock& qb, const std::string& alias) {
  return qb.FindFrom(alias) >= 0;
}

// Renames references to `old_a` throughout `b`'s expressions and nested
// blocks, stopping at any nested block that redeclares `old_a` (SQL
// shadowing). The caller has already renamed the declaring FROM entry.
void RenameRefsScoped(QueryBlock* b, const std::string& old_a,
                      const std::string& new_a);

void RenameRefsScopedExpr(Expr* e, const std::string& old_a,
                          const std::string& new_a) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kColumnRef && e->table_alias == old_a) {
    e->table_alias = new_a;
  }
  for (auto& c : e->children) RenameRefsScopedExpr(c.get(), old_a, new_a);
  for (auto& c : e->partition_by) RenameRefsScopedExpr(c.get(), old_a, new_a);
  for (auto& c : e->win_order_by) RenameRefsScopedExpr(c.get(), old_a, new_a);
  if (e->subquery != nullptr && !BlockDeclaresAlias(*e->subquery.peek(), old_a)) {
    RenameRefsScoped(e->subquery.get(), old_a, new_a);
  }
}

void RenameRefsScoped(QueryBlock* b, const std::string& old_a,
                      const std::string& new_a) {
  for (auto& item : b->select) RenameRefsScopedExpr(item.expr.get(), old_a, new_a);
  for (auto& tr : b->from) {
    for (auto& c : tr.join_conds) RenameRefsScopedExpr(c.get(), old_a, new_a);
    if (tr.derived != nullptr && !BlockDeclaresAlias(*tr.derived.peek(), old_a)) {
      RenameRefsScoped(tr.derived.get(), old_a, new_a);
    }
  }
  for (auto& w : b->where) RenameRefsScopedExpr(w.get(), old_a, new_a);
  for (auto& g : b->group_by) RenameRefsScopedExpr(g.get(), old_a, new_a);
  for (auto& h : b->having) RenameRefsScopedExpr(h.get(), old_a, new_a);
  for (auto& o : b->order_by) RenameRefsScopedExpr(o.expr.get(), old_a, new_a);
  for (auto& br : b->branches) {
    if (!BlockDeclaresAlias(*br.peek(), old_a)) {
      RenameRefsScoped(br.get(), old_a, new_a);
    }
  }
}

}  // namespace

Status BindQuery(const Database& db, QueryBlock* root) {
  Binder binder(db);
  return binder.Bind(root);
}

Status Binder::Bind(QueryBlock* root) {
  scopes_.clear();
  used_aliases_.clear();
  return BindBlock(root);
}

bool Binder::TrySkipSharedSubtree(CowPtr<QueryBlock>& edge) {
  if (!edge.shared()) return false;
  std::set<std::string> defined;
  CollectDefinedAliases(*edge.peek(), &defined);
  for (const auto& a : defined) {
    if (used_aliases_.count(a) > 0) return false;
  }
  used_aliases_.insert(defined.begin(), defined.end());
  return true;
}

Status Binder::BindBlock(QueryBlock* qb) {
  if (qb->IsSetOp()) {
    if (qb->branches.size() < 2) {
      return Status::BindError("set operation requires at least two branches");
    }
    size_t arity = 0;
    for (size_t i = 0; i < qb->branches.size(); ++i) {
      if (!TrySkipSharedSubtree(qb->branches[i])) {
        CBQT_RETURN_IF_ERROR(BindBlock(qb->branches[i].get()));
      }
      size_t n = BlockOutputColumns(*qb->branches[i].peek()).size();
      if (i == 0) {
        arity = n;
      } else if (n != arity) {
        return Status::BindError("set operation branches differ in arity");
      }
    }
    return Status::OK();
  }
  return BindRegularBlock(qb);
}

Status Binder::EnsureUniqueAliases(QueryBlock* qb) {
  for (auto& tr : qb->from) {
    if (used_aliases_.count(tr.alias) > 0) {
      std::string fresh;
      for (int i = 2;; ++i) {
        fresh = tr.alias + "_" + std::to_string(i);
        if (used_aliases_.count(fresh) == 0) break;
      }
      std::string old = tr.alias;
      tr.alias = fresh;
      RenameRefsScoped(qb, old, fresh);
    }
    used_aliases_.insert(tr.alias);
  }
  return Status::OK();
}

Status Binder::ExpandStars(QueryBlock* qb) {
  std::vector<SelectItem> expanded;
  for (auto& item : qb->select) {
    Expr* e = item.expr.get();
    if (e->kind != ExprKind::kColumnRef || e->column_name != "*") {
      expanded.push_back(std::move(item));
      continue;
    }
    auto expand_ref = [&](const TableRef& tr) -> Status {
      if (tr.IsBaseTable()) {
        if (tr.table_def == nullptr) {
          return Status::BindError("unbound table in star expansion");
        }
        for (const auto& col : tr.table_def->columns) {
          SelectItem si;
          si.expr = MakeColumnRef(tr.alias, col.name);
          si.alias = col.name;
          expanded.push_back(std::move(si));
        }
      } else {
        for (const auto& col : BlockOutputColumns(*tr.derived)) {
          SelectItem si;
          si.expr = MakeColumnRef(tr.alias, col.name);
          si.alias = col.name;
          expanded.push_back(std::move(si));
        }
      }
      return Status::OK();
    };
    if (e->table_alias.empty()) {
      for (const auto& tr : qb->from) CBQT_RETURN_IF_ERROR(expand_ref(tr));
    } else {
      int idx = qb->FindFrom(e->table_alias);
      if (idx < 0) {
        return Status::BindError("unknown alias in star expansion: " +
                                 e->table_alias);
      }
      CBQT_RETURN_IF_ERROR(expand_ref(qb->from[static_cast<size_t>(idx)]));
    }
  }
  qb->select = std::move(expanded);
  return Status::OK();
}

Status Binder::BindRegularBlock(QueryBlock* qb) {
  CBQT_RETURN_IF_ERROR(EnsureUniqueAliases(qb));
  scopes_.push_back(Scope{qb});
  Status st = Status::OK();

  // 1. FROM entries, in order (lateral views may reference earlier ones).
  for (auto& tr : qb->from) {
    if (tr.IsBaseTable()) {
      tr.table_def = db_.catalog().FindTable(tr.table_name);
      if (tr.table_def == nullptr) {
        st = Status::BindError("no such table: " + tr.table_name);
        break;
      }
    } else if (!TrySkipSharedSubtree(tr.derived)) {
      st = BindBlock(tr.derived.get());
      if (!st.ok()) break;
    }
  }

  // 2. Star expansion (needs bound FROM).
  if (st.ok()) st = ExpandStars(qb);

  // 3. Expressions.
  if (st.ok()) {
    for (auto& tr : qb->from) {
      for (auto& c : tr.join_conds) {
        st = BindExpr(c.get(), qb, false);
        if (!st.ok()) break;
      }
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    for (auto& w : qb->where) {
      st = BindExpr(w.get(), qb, false);
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    for (auto& g : qb->group_by) {
      st = BindExpr(g.get(), qb, false);
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    for (auto& item : qb->select) {
      st = BindExpr(item.expr.get(), qb, false);
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    for (auto& h : qb->having) {
      st = BindExpr(h.get(), qb, false);
      if (!st.ok()) break;
    }
  }
  if (st.ok()) {
    for (auto& o : qb->order_by) {
      st = BindExpr(o.expr.get(), qb, true);
      if (!st.ok()) break;
    }
  }

  // 4. Select-item aliases (unique within the block).
  if (st.ok()) {
    std::set<std::string> used;
    int counter = 0;
    for (auto& item : qb->select) {
      std::string base = item.alias;
      if (base.empty()) {
        if (item.expr->kind == ExprKind::kColumnRef) {
          base = item.expr->column_name;
        } else {
          base = "c" + std::to_string(counter);
        }
      }
      std::string name = base;
      int suffix = 2;
      while (used.count(name) > 0) {
        name = base + "_" + std::to_string(suffix++);
      }
      item.alias = name;
      used.insert(name);
      ++counter;
    }
  }

  if (st.ok()) ExtractRownumLimit(qb);

  scopes_.pop_back();
  return st;
}

Status Binder::BindExpr(Expr* e, QueryBlock* qb, bool allow_order_alias) {
  if (e == nullptr) return Status::OK();
  if (e->kind == ExprKind::kColumnRef) {
    CBQT_RETURN_IF_ERROR(ResolveColumnRef(e, qb, allow_order_alias));
    // ResolveColumnRef may have replaced the node with a select-item copy;
    // if it is no longer a column ref, bind the replacement.
    if (e->kind != ExprKind::kColumnRef) {
      return BindExpr(e, qb, false);
    }
    return Status::OK();
  }
  for (auto& c : e->children) {
    CBQT_RETURN_IF_ERROR(BindExpr(c.get(), qb, allow_order_alias));
  }
  for (auto& c : e->partition_by) {
    CBQT_RETURN_IF_ERROR(BindExpr(c.get(), qb, false));
  }
  for (auto& c : e->win_order_by) {
    CBQT_RETURN_IF_ERROR(BindExpr(c.get(), qb, false));
  }
  if (e->kind == ExprKind::kSubquery) {
    if (!TrySkipSharedSubtree(e->subquery)) {
      CBQT_RETURN_IF_ERROR(BindBlock(e->subquery.get()));
    }
    size_t out_cols = BlockOutputColumns(*e->subquery.peek()).size();
    if ((e->subkind == SubqueryKind::kIn ||
         e->subkind == SubqueryKind::kNotIn) &&
        e->children.size() != out_cols) {
      return Status::BindError("IN operand count does not match subquery");
    }
    if ((e->subkind == SubqueryKind::kAnyCmp ||
         e->subkind == SubqueryKind::kAllCmp ||
         e->subkind == SubqueryKind::kScalar) &&
        out_cols != 1) {
      return Status::BindError("subquery must return exactly one column");
    }
  }
  return DeriveType(e);
}

Status Binder::ResolveColumnRef(Expr* e, QueryBlock* qb,
                                bool allow_order_alias) {
  if (e->column_name == "*") {
    return Status::BindError("'*' in an invalid position");
  }
  auto column_in_ref = [&](const TableRef& tr, const std::string& col,
                           DataType* type) -> bool {
    if (tr.IsBaseTable()) {
      if (tr.table_def == nullptr) return false;
      if (col == "rowid") {
        *type = DataType::kInt64;
        return true;
      }
      int idx = tr.table_def->FindColumn(col);
      if (idx < 0) return false;
      *type = tr.table_def->columns[static_cast<size_t>(idx)].type;
      return true;
    }
    for (const auto& oc : BlockOutputColumns(*tr.derived)) {
      if (oc.name == col) {
        *type = oc.type;
        return true;
      }
    }
    return false;
  };

  if (!e->table_alias.empty()) {
    for (int d = static_cast<int>(scopes_.size()) - 1; d >= 0; --d) {
      QueryBlock* b = scopes_[static_cast<size_t>(d)].block;
      int idx = b->FindFrom(e->table_alias);
      if (idx < 0) continue;
      DataType type = DataType::kUnknown;
      if (!column_in_ref(b->from[static_cast<size_t>(idx)], e->column_name,
                         &type)) {
        return Status::BindError("no column " + e->column_name + " in " +
                                 e->table_alias);
      }
      e->corr_depth = static_cast<int>(scopes_.size()) - 1 - d;
      e->type = type;
      return Status::OK();
    }
    return Status::BindError("unknown table alias: " + e->table_alias);
  }

  // Unqualified: ORDER BY may reference a select-item alias first.
  if (allow_order_alias) {
    int si = qb->FindSelectItem(e->column_name);
    if (si >= 0) {
      ExprPtr copy = qb->select[static_cast<size_t>(si)].expr->Clone();
      *e = std::move(*copy);
      return Status::OK();
    }
  }
  for (int d = static_cast<int>(scopes_.size()) - 1; d >= 0; --d) {
    QueryBlock* b = scopes_[static_cast<size_t>(d)].block;
    int matches = 0;
    const TableRef* found = nullptr;
    DataType found_type = DataType::kUnknown;
    for (const auto& tr : b->from) {
      DataType type = DataType::kUnknown;
      if (column_in_ref(tr, e->column_name, &type)) {
        ++matches;
        found = &tr;
        found_type = type;
      }
    }
    if (matches > 1) {
      return Status::BindError("ambiguous column: " + e->column_name);
    }
    if (matches == 1) {
      e->table_alias = found->alias;
      e->corr_depth = static_cast<int>(scopes_.size()) - 1 - d;
      e->type = found_type;
      return Status::OK();
    }
  }
  // Last resort: a select-item alias used in HAVING/GROUP BY position.
  int si = qb->FindSelectItem(e->column_name);
  if (si >= 0) {
    ExprPtr copy = qb->select[static_cast<size_t>(si)].expr->Clone();
    *e = std::move(*copy);
    return Status::OK();
  }
  return Status::BindError("unknown column: " + e->column_name);
}

Status Binder::DeriveType(Expr* e) {
  switch (e->kind) {
    case ExprKind::kColumnRef:
      break;  // set during resolution
    case ExprKind::kLiteral:
      switch (e->literal.kind()) {
        case ValueKind::kInt64:
          e->type = DataType::kInt64;
          break;
        case ValueKind::kDouble:
          e->type = DataType::kDouble;
          break;
        case ValueKind::kString:
          e->type = DataType::kString;
          break;
        case ValueKind::kBool:
          e->type = DataType::kBool;
          break;
        case ValueKind::kNull:
          e->type = DataType::kUnknown;
          break;
      }
      break;
    case ExprKind::kBinary:
      if (IsComparisonOp(e->bop) || e->bop == BinaryOp::kAnd ||
          e->bop == BinaryOp::kOr || e->bop == BinaryOp::kNullSafeEq) {
        e->type = DataType::kBool;
      } else {
        e->type = ArithmeticResultType(e->children[0]->type,
                                       e->children[1]->type);
        if (e->bop == BinaryOp::kDiv) e->type = DataType::kDouble;
      }
      break;
    case ExprKind::kUnary:
      if (e->uop == UnaryOp::kNeg) {
        e->type = e->children[0]->type;
      } else {
        e->type = DataType::kBool;
      }
      break;
    case ExprKind::kAggregate:
      switch (e->agg) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          e->type = DataType::kInt64;
          break;
        case AggFunc::kAvg:
          e->type = DataType::kDouble;
          break;
        case AggFunc::kSum:
        case AggFunc::kMin:
        case AggFunc::kMax:
          e->type = e->children[0]->type;
          break;
      }
      break;
    case ExprKind::kFuncCall:
      // All registered scalar functions return DOUBLE except the string
      // helpers.
      if (e->func_name == "upper" || e->func_name == "lower") {
        e->type = DataType::kString;
      } else {
        e->type = DataType::kDouble;
      }
      break;
    case ExprKind::kSubquery:
      if (e->subkind == SubqueryKind::kScalar) {
        auto cols = BlockOutputColumns(*e->subquery.peek());
        e->type = cols.empty() ? DataType::kUnknown : cols[0].type;
      } else {
        e->type = DataType::kBool;
      }
      break;
    case ExprKind::kWindow:
      switch (e->win_func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          e->type = DataType::kInt64;
          break;
        case AggFunc::kAvg:
          e->type = DataType::kDouble;
          break;
        default:
          e->type = e->children.empty() ? DataType::kDouble
                                        : e->children[0]->type;
          break;
      }
      break;
    case ExprKind::kRownum:
      e->type = DataType::kInt64;
      break;
    case ExprKind::kCase:
      if (e->children.size() >= 2) e->type = e->children[1]->type;
      break;
  }
  return Status::OK();
}

void Binder::ExtractRownumLimit(QueryBlock* qb) {
  std::vector<ExprPtr> remaining;
  for (auto& w : qb->where) {
    Expr* e = w.get();
    int64_t limit = -1;
    if (e->kind == ExprKind::kBinary && IsComparisonOp(e->bop)) {
      Expr* l = e->children[0].get();
      Expr* r = e->children[1].get();
      BinaryOp op = e->bop;
      if (r->kind == ExprKind::kRownum && l->kind == ExprKind::kLiteral) {
        std::swap(l, r);
        op = SwapComparison(op);
      }
      if (l->kind == ExprKind::kRownum && r->kind == ExprKind::kLiteral &&
          r->literal.kind() == ValueKind::kInt64) {
        int64_t k = r->literal.AsInt();
        if (op == BinaryOp::kLt) limit = k - 1;
        if (op == BinaryOp::kLe) limit = k;
      }
    }
    if (limit >= 0) {
      if (qb->rownum_limit < 0 || limit < qb->rownum_limit) {
        qb->rownum_limit = limit;
      }
    } else {
      remaining.push_back(std::move(w));
    }
  }
  qb->where = std::move(remaining);
}

}  // namespace cbqt
