#ifndef CBQT_OPTIMIZER_JOIN_ORDER_H_
#define CBQT_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "optimizer/plan.h"

namespace cbqt {

/// One step of a join order being built: a plan fragment plus its estimates.
struct JoinStepPlan {
  std::unique_ptr<PlanNode> plan;
  double rows = 0;
  double cost = 0;
};

/// Cost callbacks implemented by the planner: the enumerator drives the
/// search, the coster knows scans, join methods and predicates.
class JoinCoster {
 public:
  virtual ~JoinCoster() = default;

  /// Best standalone access plan for relation `rel` (best scan, derived
  /// plan, ...).
  virtual Result<JoinStepPlan> BaseRel(int rel) = 0;

  /// Cheapest join of `left` (covering the relations in `left_mask`) with
  /// relation `rel` on the right, over all join methods.
  virtual Result<JoinStepPlan> Join(const JoinStepPlan& left,
                                    uint64_t left_mask, int rel) = 0;
};

/// Join-order search with non-commutative-join partial orders (paper
/// §2.1.1/§2.2.3): `deps[i]` is the bitmask of relations that must precede
/// relation i (semijoin/antijoin/outer-join right sides and JPPD lateral
/// views). Exhaustive dynamic programming over subsets for small FROM lists,
/// greedy otherwise (left-deep trees only, per the traditional optimizer the
/// paper describes).
///
/// `cutoff`: partial plans costing more than this are pruned; if nothing
/// survives, Enumerate returns StatusCode::kCostCutoff (paper §3.4.1).
class JoinOrderEnumerator {
 public:
  JoinOrderEnumerator(std::vector<uint64_t> deps, JoinCoster* coster,
                      double cutoff, int dp_threshold = 10);

  Result<JoinStepPlan> Enumerate();

 private:
  Result<JoinStepPlan> EnumerateDp();
  Result<JoinStepPlan> EnumerateGreedy();

  std::vector<uint64_t> deps_;
  JoinCoster* coster_;
  double cutoff_;
  int dp_threshold_;
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_JOIN_ORDER_H_
