#ifndef CBQT_OPTIMIZER_JOIN_ORDER_H_
#define CBQT_OPTIMIZER_JOIN_ORDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "optimizer/plan.h"

namespace cbqt {

/// One step of a join order being built: a plan fragment plus its estimates.
///
/// The fragment is either owned (freshly built by a coster) or borrowed
/// read-only from a memo/cache entry that the shared_ptr keeps alive.
/// Borrowing lets a memo hit or a cached base-relation plan be used as a
/// join input — which only ever reads and Clone()s it — without paying a
/// deep copy per use; the one place that needs ownership (the completed
/// enumeration result) materializes it via TakePlan().
struct JoinStepPlan {
  std::unique_ptr<PlanNode> plan;          // owned fragment, or
  std::shared_ptr<const PlanNode> shared;  // borrowed immutable fragment
  double rows = 0;
  double cost = 0;

  const PlanNode* node() const {
    return plan != nullptr ? plan.get() : shared.get();
  }
  /// Owned plan: moves the owned fragment out, or deep-copies the borrowed
  /// one (so callers may mutate the result freely).
  std::unique_ptr<PlanNode> TakePlan() {
    if (plan != nullptr) return std::move(plan);
    return shared->Clone();
  }
};

/// Cost callbacks implemented by the planner: the enumerator drives the
/// search, the coster knows scans, join methods and predicates.
class JoinCoster {
 public:
  virtual ~JoinCoster() = default;

  /// Best standalone access plan for relation `rel` (best scan, derived
  /// plan, ...).
  virtual Result<JoinStepPlan> BaseRel(int rel) = 0;

  /// Cheapest join of `left` (covering the relations in `left_mask`) with
  /// relation `rel` on the right, over all join methods.
  virtual Result<JoinStepPlan> Join(const JoinStepPlan& left,
                                    uint64_t left_mask, int rel) = 0;
};

/// Cross-state memo for join-order subproblems. The caller (the planner)
/// owns key construction: a subset `mask` of this enumeration is translated
/// into a canonical fingerprint of the member relations and the predicates
/// that apply within the subset, so byte-identical subproblems arising in
/// different transformation states share results.
///
/// Contract (relies on join-cost monotonicity, joined.cost >= left.cost,
/// which every coster here satisfies): a stored entry is the
/// cutoff-independent best plan for its subset. Lookup must fill `out` only
/// when returning kHit, and may fill it with a borrowed (shared) plan — the
/// enumerator only reads and Clone()s hit plans, never mutates them.
class JoinOrderMemo {
 public:
  virtual ~JoinOrderMemo() = default;

  enum class Probe {
    kMiss,    ///< nothing memoized for this subset
    kHit,     ///< `out` filled with the best plan, cost <= cutoff
    kPruned,  ///< memoized best exceeds cutoff: subset is pruned
  };

  virtual Probe Lookup(uint64_t mask, double cutoff, JoinStepPlan* out) = 0;
  virtual void Store(uint64_t mask, const JoinStepPlan& step) = 0;
};

/// Join-order search with non-commutative-join partial orders (paper
/// §2.1.1/§2.2.3): `deps[i]` is the bitmask of relations that must precede
/// relation i (semijoin/antijoin/outer-join right sides and JPPD lateral
/// views). Exhaustive dynamic programming over subsets for small FROM lists,
/// greedy otherwise (left-deep trees only, per the traditional optimizer the
/// paper describes).
///
/// `cutoff`: partial plans costing more than this are pruned; if nothing
/// survives, Enumerate returns StatusCode::kCostCutoff (paper §3.4.1).
///
/// `memo`: optional cross-state subproblem memo. Memoized subsets are
/// settled without re-costing; every freshly computed valid subset is
/// stored. With the monotonicity contract above, a subset is valid under a
/// cutoff iff its unconstrained best cost is within the cutoff — so hits
/// from states searched under different cutoffs are exact, and a hit whose
/// cost exceeds the current cutoff is exactly a pruned subset.
class JoinOrderEnumerator {
 public:
  JoinOrderEnumerator(std::vector<uint64_t> deps, JoinCoster* coster,
                      double cutoff, int dp_threshold = 10,
                      JoinOrderMemo* memo = nullptr);

  Result<JoinStepPlan> Enumerate();

 private:
  Result<JoinStepPlan> EnumerateDp();
  Result<JoinStepPlan> EnumerateGreedy();

  std::vector<uint64_t> deps_;
  JoinCoster* coster_;
  double cutoff_;
  int dp_threshold_;
  JoinOrderMemo* memo_;
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_JOIN_ORDER_H_
