#include "optimizer/plan_serde.h"

#include <cstring>

namespace cbqt {

namespace {

// Inclusive upper bounds of the serialized enums, asserted on read. Keep in
// sync with the enum definitions; adding a member without bumping the bound
// makes new plans unreadable (typed error), never misread.
constexpr uint8_t kMaxValueKind = static_cast<uint8_t>(ValueKind::kBool);
constexpr uint8_t kMaxDataType = static_cast<uint8_t>(DataType::kBool);
constexpr uint8_t kMaxExprKind = static_cast<uint8_t>(ExprKind::kCase);
constexpr uint8_t kMaxBinaryOp = static_cast<uint8_t>(BinaryOp::kNullSafeEq);
constexpr uint8_t kMaxUnaryOp = static_cast<uint8_t>(UnaryOp::kLnnvl);
constexpr uint8_t kMaxAggFunc = static_cast<uint8_t>(AggFunc::kMax);
constexpr uint8_t kMaxSubqueryKind = static_cast<uint8_t>(SubqueryKind::kScalar);
constexpr uint8_t kMaxJoinKind = static_cast<uint8_t>(JoinKind::kAntiNA);
constexpr uint8_t kMaxSetOpKind = static_cast<uint8_t>(SetOpKind::kMinus);
constexpr uint8_t kMaxPlanOp = static_cast<uint8_t>(PlanOp::kSubqueryFilter);

Status DepthCheck(ByteReader* r, int depth) {
  if (depth > kSerdeMaxDepth) {
    return r->Fail("nesting depth exceeds " +
                   std::to_string(kSerdeMaxDepth));
  }
  return Status::OK();
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- ByteWriter ----------------------------------------------------------

void ByteWriter::U32(uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 4);
}

void ByteWriter::U64(uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  buf_.append(b, 8);
}

void ByteWriter::F64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

// ---- ByteReader ----------------------------------------------------------

Status ByteReader::Fail(const std::string& what) {
  if (error_.ok()) {
    error_ = Status::DataCorruption("plan serde: " + what + " (offset " +
                                    std::to_string(pos_) + " of " +
                                    std::to_string(data_.size()) + ")");
  }
  return error_;
}

Status ByteReader::Raw(void* out, size_t n) {
  if (!error_.ok()) return error_;
  if (data_.size() - pos_ < n) {
    return Fail("truncated: need " + std::to_string(n) + " bytes, have " +
                std::to_string(data_.size() - pos_));
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::U8(uint8_t* out) { return Raw(out, 1); }

Status ByteReader::Bool(bool* out) {
  uint8_t v = 0;
  CBQT_RETURN_IF_ERROR(U8(&v));
  if (v > 1) return Fail("bool byte " + std::to_string(v));
  *out = v != 0;
  return Status::OK();
}

Status ByteReader::U32(uint32_t* out) {
  uint8_t b[4];
  CBQT_RETURN_IF_ERROR(Raw(b, 4));
  *out = 0;
  for (int i = 0; i < 4; ++i) *out |= static_cast<uint32_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status ByteReader::U64(uint64_t* out) {
  uint8_t b[8];
  CBQT_RETURN_IF_ERROR(Raw(b, 8));
  *out = 0;
  for (int i = 0; i < 8; ++i) *out |= static_cast<uint64_t>(b[i]) << (8 * i);
  return Status::OK();
}

Status ByteReader::I32(int32_t* out) {
  uint32_t v = 0;
  CBQT_RETURN_IF_ERROR(U32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

Status ByteReader::I64(int64_t* out) {
  uint64_t v = 0;
  CBQT_RETURN_IF_ERROR(U64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ByteReader::F64(double* out) {
  uint64_t bits = 0;
  CBQT_RETURN_IF_ERROR(U64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status ByteReader::Str(std::string* out) {
  uint32_t len = 0;
  CBQT_RETURN_IF_ERROR(U32(&len));
  if (len > remaining()) {
    return Fail("string length " + std::to_string(len) + " exceeds " +
                std::to_string(remaining()) + " remaining bytes");
  }
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

Status ByteReader::Count(uint32_t* out) {
  CBQT_RETURN_IF_ERROR(U32(out));
  if (*out > remaining()) {
    return Fail("element count " + std::to_string(*out) + " exceeds " +
                std::to_string(remaining()) + " remaining bytes");
  }
  return Status::OK();
}

// ---- Value ---------------------------------------------------------------

void WriteValue(const Value& v, ByteWriter* w) {
  w->Enum(v.kind());
  switch (v.kind()) {
    case ValueKind::kNull:
      break;
    case ValueKind::kInt64:
      w->I64(v.AsInt());
      break;
    case ValueKind::kDouble:
      w->F64(v.AsDouble());
      break;
    case ValueKind::kString:
      w->Str(v.AsString());
      break;
    case ValueKind::kBool:
      w->Bool(v.AsBool());
      break;
  }
}

Status ReadValue(ByteReader* r, Value* out) {
  ValueKind kind = ValueKind::kNull;
  CBQT_RETURN_IF_ERROR(r->Enum(&kind, kMaxValueKind));
  switch (kind) {
    case ValueKind::kNull:
      *out = Value::Null();
      return Status::OK();
    case ValueKind::kInt64: {
      int64_t v = 0;
      CBQT_RETURN_IF_ERROR(r->I64(&v));
      *out = Value::Int(v);
      return Status::OK();
    }
    case ValueKind::kDouble: {
      double v = 0;
      CBQT_RETURN_IF_ERROR(r->F64(&v));
      *out = Value::Real(v);
      return Status::OK();
    }
    case ValueKind::kString: {
      std::string v;
      CBQT_RETURN_IF_ERROR(r->Str(&v));
      *out = Value::Str(std::move(v));
      return Status::OK();
    }
    case ValueKind::kBool: {
      bool v = false;
      CBQT_RETURN_IF_ERROR(r->Bool(&v));
      *out = Value::Boolean(v);
      return Status::OK();
    }
  }
  return r->Fail("unreachable value kind");
}

// ---- Expr ----------------------------------------------------------------

namespace {

void WriteExprVec(const std::vector<ExprPtr>& exprs, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(exprs.size()));
  for (const auto& e : exprs) {
    w->Bool(e != nullptr);
    if (e != nullptr) WriteExpr(*e, w);
  }
}

Status ReadExprVec(ByteReader* r, std::vector<ExprPtr>* out, int depth) {
  uint32_t n = 0;
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    bool present = false;
    CBQT_RETURN_IF_ERROR(r->Bool(&present));
    ExprPtr e;
    if (present) CBQT_RETURN_IF_ERROR(ReadExpr(r, &e, depth));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

void WriteIntSets(const std::vector<std::vector<int>>& sets, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(sets.size()));
  for (const auto& set : sets) {
    w->U32(static_cast<uint32_t>(set.size()));
    for (int v : set) w->I32(v);
  }
}

Status ReadIntSets(ByteReader* r, std::vector<std::vector<int>>* out) {
  uint32_t n = 0;
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    CBQT_RETURN_IF_ERROR(r->Count(&m));
    std::vector<int> set;
    set.reserve(m);
    for (uint32_t j = 0; j < m; ++j) {
      int32_t v = 0;
      CBQT_RETURN_IF_ERROR(r->I32(&v));
      set.push_back(v);
    }
    out->push_back(std::move(set));
  }
  return Status::OK();
}

}  // namespace

void WriteExpr(const Expr& e, ByteWriter* w) {
  w->Enum(e.kind);
  w->Str(e.table_alias);
  w->Str(e.column_name);
  w->I32(e.corr_depth);
  WriteValue(e.literal, w);
  w->I32(e.param_index);
  w->Enum(e.bop);
  w->Enum(e.uop);
  w->Enum(e.agg);
  w->Bool(e.agg_distinct);
  w->Str(e.func_name);
  w->Enum(e.subkind);
  w->Enum(e.sub_cmp);
  w->Bool(e.subquery != nullptr);
  if (e.subquery != nullptr) WriteQueryBlock(*e.subquery, w);
  w->Enum(e.win_func);
  WriteExprVec(e.partition_by, w);
  WriteExprVec(e.win_order_by, w);
  WriteExprVec(e.children, w);
  w->Enum(e.type);
}

Status ReadExpr(ByteReader* r, ExprPtr* out, int depth) {
  CBQT_RETURN_IF_ERROR(DepthCheck(r, depth));
  auto e = std::make_unique<Expr>();
  CBQT_RETURN_IF_ERROR(r->Enum(&e->kind, kMaxExprKind));
  CBQT_RETURN_IF_ERROR(r->Str(&e->table_alias));
  CBQT_RETURN_IF_ERROR(r->Str(&e->column_name));
  CBQT_RETURN_IF_ERROR(r->I32(&e->corr_depth));
  CBQT_RETURN_IF_ERROR(ReadValue(r, &e->literal));
  CBQT_RETURN_IF_ERROR(r->I32(&e->param_index));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->bop, kMaxBinaryOp));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->uop, kMaxUnaryOp));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->agg, kMaxAggFunc));
  CBQT_RETURN_IF_ERROR(r->Bool(&e->agg_distinct));
  CBQT_RETURN_IF_ERROR(r->Str(&e->func_name));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->subkind, kMaxSubqueryKind));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->sub_cmp, kMaxBinaryOp));
  bool has_subquery = false;
  CBQT_RETURN_IF_ERROR(r->Bool(&has_subquery));
  if (has_subquery) {
    std::unique_ptr<QueryBlock> sub;
    CBQT_RETURN_IF_ERROR(ReadQueryBlock(r, &sub, depth + 1));
    e->subquery = std::move(sub);
  }
  CBQT_RETURN_IF_ERROR(r->Enum(&e->win_func, kMaxAggFunc));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &e->partition_by, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &e->win_order_by, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &e->children, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Enum(&e->type, kMaxDataType));
  *out = std::move(e);
  return Status::OK();
}

// ---- QueryBlock ----------------------------------------------------------

void WriteQueryBlock(const QueryBlock& qb, ByteWriter* w) {
  w->Str(qb.qb_name);
  w->Enum(qb.set_op);
  w->U32(static_cast<uint32_t>(qb.branches.size()));
  for (const auto& b : qb.branches) {
    w->Bool(b != nullptr);
    if (b != nullptr) WriteQueryBlock(*b, w);
  }
  w->Bool(qb.distinct);
  w->U32(static_cast<uint32_t>(qb.select.size()));
  for (const auto& item : qb.select) {
    w->Bool(item.expr != nullptr);
    if (item.expr != nullptr) WriteExpr(*item.expr, w);
    w->Str(item.alias);
  }
  w->U32(static_cast<uint32_t>(qb.from.size()));
  for (const auto& ref : qb.from) {
    w->Str(ref.alias);
    w->Str(ref.table_name);
    w->Bool(ref.derived != nullptr);
    if (ref.derived != nullptr) WriteQueryBlock(*ref.derived, w);
    w->Enum(ref.join);
    WriteExprVec(ref.join_conds, w);
    w->Bool(ref.lateral);
    w->Bool(ref.no_merge);
    // table_def is a catalog pointer: not serialized; re-binding restores it.
  }
  WriteExprVec(qb.where, w);
  WriteExprVec(qb.group_by, w);
  WriteIntSets(qb.grouping_sets, w);
  WriteExprVec(qb.having, w);
  w->U32(static_cast<uint32_t>(qb.order_by.size()));
  for (const auto& item : qb.order_by) {
    w->Bool(item.expr != nullptr);
    if (item.expr != nullptr) WriteExpr(*item.expr, w);
    w->Bool(item.ascending);
  }
  w->I64(qb.rownum_limit);
}

Status ReadQueryBlock(ByteReader* r, std::unique_ptr<QueryBlock>* out,
                      int depth) {
  CBQT_RETURN_IF_ERROR(DepthCheck(r, depth));
  auto qb = std::make_unique<QueryBlock>();
  CBQT_RETURN_IF_ERROR(r->Str(&qb->qb_name));
  CBQT_RETURN_IF_ERROR(r->Enum(&qb->set_op, kMaxSetOpKind));
  uint32_t n = 0;
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    bool present = false;
    CBQT_RETURN_IF_ERROR(r->Bool(&present));
    std::unique_ptr<QueryBlock> branch;
    if (present) CBQT_RETURN_IF_ERROR(ReadQueryBlock(r, &branch, depth + 1));
    qb->branches.emplace_back(std::move(branch));
  }
  CBQT_RETURN_IF_ERROR(r->Bool(&qb->distinct));
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    SelectItem item;
    bool present = false;
    CBQT_RETURN_IF_ERROR(r->Bool(&present));
    if (present) CBQT_RETURN_IF_ERROR(ReadExpr(r, &item.expr, depth + 1));
    CBQT_RETURN_IF_ERROR(r->Str(&item.alias));
    qb->select.push_back(std::move(item));
  }
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    TableRef ref;
    CBQT_RETURN_IF_ERROR(r->Str(&ref.alias));
    CBQT_RETURN_IF_ERROR(r->Str(&ref.table_name));
    bool present = false;
    CBQT_RETURN_IF_ERROR(r->Bool(&present));
    if (present) {
      std::unique_ptr<QueryBlock> derived;
      CBQT_RETURN_IF_ERROR(ReadQueryBlock(r, &derived, depth + 1));
      ref.derived = std::move(derived);
    }
    CBQT_RETURN_IF_ERROR(r->Enum(&ref.join, kMaxJoinKind));
    CBQT_RETURN_IF_ERROR(ReadExprVec(r, &ref.join_conds, depth + 1));
    CBQT_RETURN_IF_ERROR(r->Bool(&ref.lateral));
    CBQT_RETURN_IF_ERROR(r->Bool(&ref.no_merge));
    qb->from.push_back(std::move(ref));
  }
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &qb->where, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &qb->group_by, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadIntSets(r, &qb->grouping_sets));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &qb->having, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    OrderItem item;
    bool present = false;
    CBQT_RETURN_IF_ERROR(r->Bool(&present));
    if (present) CBQT_RETURN_IF_ERROR(ReadExpr(r, &item.expr, depth + 1));
    CBQT_RETURN_IF_ERROR(r->Bool(&item.ascending));
    qb->order_by.push_back(std::move(item));
  }
  CBQT_RETURN_IF_ERROR(r->I64(&qb->rownum_limit));
  *out = std::move(qb);
  return Status::OK();
}

// ---- PlanNode ------------------------------------------------------------

void WritePlanNode(const PlanNode& node, ByteWriter* w) {
  w->Enum(node.op);
  w->U32(static_cast<uint32_t>(node.children.size()));
  for (const auto& c : node.children) WritePlanNode(*c, w);
  w->U32(static_cast<uint32_t>(node.output.size()));
  for (const auto& slot : node.output) {
    w->Str(slot.alias);
    w->Str(slot.name);
    w->Enum(slot.type);
  }
  w->Str(node.table_name);
  w->Str(node.table_alias);
  w->Str(node.index_name);
  WriteExprVec(node.probes, w);
  WriteExprVec(node.filter, w);
  w->Enum(node.join_kind);
  WriteExprVec(node.join_conds, w);
  WriteExprVec(node.hash_left_keys, w);
  WriteExprVec(node.hash_right_keys, w);
  w->Bool(node.null_aware);
  w->Bool(node.rescan_right);
  WriteExprVec(node.group_keys, w);
  WriteExprVec(node.agg_exprs, w);
  WriteIntSets(node.grouping_sets, w);
  WriteExprVec(node.projections, w);
  WriteExprVec(node.sort_keys, w);
  w->U32(static_cast<uint32_t>(node.sort_ascending.size()));
  for (bool asc : node.sort_ascending) w->Bool(asc);
  w->Enum(node.set_op);
  w->I64(node.limit);
  WriteExprVec(node.window_exprs, w);
  w->U32(static_cast<uint32_t>(node.subplans.size()));
  for (const auto& s : node.subplans) WritePlanNode(*s, w);
  w->U32(static_cast<uint32_t>(node.subplan_corr_keys.size()));
  for (const auto& keys : node.subplan_corr_keys) WriteExprVec(keys, w);
  w->F64(node.est_rows);
  w->F64(node.est_cost);
}

Status ReadPlanNode(ByteReader* r, std::unique_ptr<PlanNode>* out,
                    int depth) {
  CBQT_RETURN_IF_ERROR(DepthCheck(r, depth));
  auto node = std::make_unique<PlanNode>();
  CBQT_RETURN_IF_ERROR(r->Enum(&node->op, kMaxPlanOp));
  uint32_t n = 0;
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::unique_ptr<PlanNode> child;
    CBQT_RETURN_IF_ERROR(ReadPlanNode(r, &child, depth + 1));
    node->children.push_back(std::move(child));
  }
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    ColumnSlot slot;
    CBQT_RETURN_IF_ERROR(r->Str(&slot.alias));
    CBQT_RETURN_IF_ERROR(r->Str(&slot.name));
    CBQT_RETURN_IF_ERROR(r->Enum(&slot.type, kMaxDataType));
    node->output.push_back(std::move(slot));
  }
  CBQT_RETURN_IF_ERROR(r->Str(&node->table_name));
  CBQT_RETURN_IF_ERROR(r->Str(&node->table_alias));
  CBQT_RETURN_IF_ERROR(r->Str(&node->index_name));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->probes, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->filter, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Enum(&node->join_kind, kMaxJoinKind));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->join_conds, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->hash_left_keys, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->hash_right_keys, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Bool(&node->null_aware));
  CBQT_RETURN_IF_ERROR(r->Bool(&node->rescan_right));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->group_keys, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->agg_exprs, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadIntSets(r, &node->grouping_sets));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->projections, depth + 1));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->sort_keys, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    bool asc = true;
    CBQT_RETURN_IF_ERROR(r->Bool(&asc));
    node->sort_ascending.push_back(asc);
  }
  CBQT_RETURN_IF_ERROR(r->Enum(&node->set_op, kMaxSetOpKind));
  CBQT_RETURN_IF_ERROR(r->I64(&node->limit));
  CBQT_RETURN_IF_ERROR(ReadExprVec(r, &node->window_exprs, depth + 1));
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::unique_ptr<PlanNode> sub;
    CBQT_RETURN_IF_ERROR(ReadPlanNode(r, &sub, depth + 1));
    node->subplans.push_back(std::move(sub));
  }
  CBQT_RETURN_IF_ERROR(r->Count(&n));
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<ExprPtr> keys;
    CBQT_RETURN_IF_ERROR(ReadExprVec(r, &keys, depth + 1));
    node->subplan_corr_keys.push_back(std::move(keys));
  }
  CBQT_RETURN_IF_ERROR(r->F64(&node->est_rows));
  CBQT_RETURN_IF_ERROR(r->F64(&node->est_cost));
  *out = std::move(node);
  return Status::OK();
}

// ---- framing -------------------------------------------------------------

std::string FramePayload(uint32_t magic, std::string payload) {
  ByteWriter w;
  w.U32(magic);
  w.U32(kPlanSerdeVersion);
  w.U64(payload.size());
  w.U64(Fnv1a64(payload));
  std::string out = w.Take();
  out += payload;
  return out;
}

Result<std::string_view> UnframePayload(uint32_t magic,
                                        std::string_view bytes) {
  ByteReader r(bytes);
  uint32_t got_magic = 0, version = 0;
  uint64_t size = 0, checksum = 0;
  CBQT_RETURN_IF_ERROR(r.U32(&got_magic));
  if (got_magic != magic) {
    return Status::DataCorruption("plan serde: bad magic");
  }
  CBQT_RETURN_IF_ERROR(r.U32(&version));
  if (version != kPlanSerdeVersion) {
    return Status::DataCorruption(
        "plan serde: version " + std::to_string(version) +
        " does not match " + std::to_string(kPlanSerdeVersion));
  }
  CBQT_RETURN_IF_ERROR(r.U64(&size));
  CBQT_RETURN_IF_ERROR(r.U64(&checksum));
  if (size != r.remaining()) {
    return Status::DataCorruption(
        "plan serde: payload size " + std::to_string(size) +
        " does not match " + std::to_string(r.remaining()) +
        " bytes present");
  }
  std::string_view payload = bytes.substr(bytes.size() - size);
  if (Fnv1a64(payload) != checksum) {
    return Status::DataCorruption("plan serde: checksum mismatch");
  }
  return payload;
}

std::string SerializePlan(const PlanNode& plan) {
  ByteWriter w;
  WritePlanNode(plan, &w);
  return FramePayload(kPlanBlobMagic, w.Take());
}

Result<std::unique_ptr<PlanNode>> DeserializePlan(std::string_view bytes) {
  auto payload = UnframePayload(kPlanBlobMagic, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r(*payload);
  std::unique_ptr<PlanNode> plan;
  CBQT_RETURN_IF_ERROR(ReadPlanNode(&r, &plan));
  if (!r.exhausted()) {
    return r.Fail(std::to_string(r.remaining()) +
                  " trailing bytes after plan tree");
  }
  return plan;
}

}  // namespace cbqt
