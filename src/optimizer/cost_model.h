#ifndef CBQT_OPTIMIZER_COST_MODEL_H_
#define CBQT_OPTIMIZER_COST_MODEL_H_

#include <cmath>

namespace cbqt {

/// Cost-model constants, in abstract cost units (1.0 ~ one sequential block
/// read). The executor's work tracks these shapes: operators touch rows,
/// index probes descend a sorted structure, expensive functions spin.
struct CostParams {
  double cpu_tuple = 0.01;      ///< per row flowing through an operator
  double cpu_pred = 0.004;      ///< per predicate evaluation per row
  double seq_block = 1.0;       ///< sequential block read
  double index_probe = 2.0;     ///< one index descent
  double index_row = 0.05;      ///< per row fetched via index
  double hash_build = 0.02;     ///< per build-side row
  double hash_probe = 0.012;    ///< per probe-side row
  double sort_factor = 0.004;   ///< * n * log2(n)
  double agg_row = 0.02;        ///< per input row of aggregation
  double expensive_call = 25.0; ///< per expensive-function invocation
  double rescan_row = 0.005;    ///< per row re-read from a materialized input

  double SortCost(double n) const {
    if (n < 2) return cpu_tuple;
    return sort_factor * n * std::log2(n);
  }
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_COST_MODEL_H_
