#include "optimizer/plan.h"

#include "common/str_util.h"
#include "sql/unparser.h"

namespace cbqt {

int FindSlot(const Schema& schema, const std::string& alias,
             const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name != name) continue;
    if (alias.empty() || schema[i].alias == alias) return static_cast<int>(i);
  }
  return -1;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto out = std::make_unique<PlanNode>(op);
  for (const auto& c : children) out->children.push_back(c->Clone());
  out->output = output;
  out->table_name = table_name;
  out->table_alias = table_alias;
  out->index_name = index_name;
  for (const auto& e : probes) out->probes.push_back(e->Clone());
  for (const auto& e : filter) out->filter.push_back(e->Clone());
  out->join_kind = join_kind;
  for (const auto& e : join_conds) out->join_conds.push_back(e->Clone());
  for (const auto& e : hash_left_keys) out->hash_left_keys.push_back(e->Clone());
  for (const auto& e : hash_right_keys) {
    out->hash_right_keys.push_back(e->Clone());
  }
  out->null_aware = null_aware;
  out->rescan_right = rescan_right;
  for (const auto& e : group_keys) out->group_keys.push_back(e->Clone());
  for (const auto& e : agg_exprs) out->agg_exprs.push_back(e->Clone());
  out->grouping_sets = grouping_sets;
  for (const auto& e : projections) out->projections.push_back(e->Clone());
  for (const auto& e : sort_keys) out->sort_keys.push_back(e->Clone());
  out->sort_ascending = sort_ascending;
  out->set_op = set_op;
  out->limit = limit;
  for (const auto& e : window_exprs) out->window_exprs.push_back(e->Clone());
  for (const auto& s : subplans) out->subplans.push_back(s->Clone());
  for (const auto& keys : subplan_corr_keys) {
    std::vector<ExprPtr> copy;
    for (const auto& k : keys) copy.push_back(k->Clone());
    out->subplan_corr_keys.push_back(std::move(copy));
  }
  out->est_rows = est_rows;
  out->est_cost = est_cost;
  return out;
}

int64_t PlanNode::EstimateBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(PlanNode));
  for (const auto& slot : output) {
    bytes += static_cast<int64_t>(sizeof(ColumnSlot) + slot.alias.capacity() +
                                  slot.name.capacity());
  }
  bytes += static_cast<int64_t>(table_name.capacity() +
                                table_alias.capacity() +
                                index_name.capacity());
  auto exprs = [&bytes](const std::vector<ExprPtr>& list) {
    for (const auto& e : list) bytes += e->EstimateBytes();
  };
  exprs(probes);
  exprs(filter);
  exprs(join_conds);
  exprs(hash_left_keys);
  exprs(hash_right_keys);
  exprs(group_keys);
  exprs(agg_exprs);
  for (const auto& set : grouping_sets) {
    bytes += static_cast<int64_t>(set.size() * sizeof(int));
  }
  exprs(projections);
  exprs(sort_keys);
  exprs(window_exprs);
  for (const auto& keys : subplan_corr_keys) exprs(keys);
  for (const auto& c : children) bytes += c->EstimateBytes();
  for (const auto& s : subplans) bytes += s->EstimateBytes();
  return bytes;
}

namespace {

const char* OpName(PlanOp op) {
  switch (op) {
    case PlanOp::kTableScan:
      return "TableScan";
    case PlanOp::kIndexScan:
      return "IndexScan";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kMergeJoin:
      return "MergeJoin";
    case PlanOp::kAggregate:
      return "Aggregate";
    case PlanOp::kSort:
      return "Sort";
    case PlanOp::kDistinct:
      return "Distinct";
    case PlanOp::kSetOp:
      return "SetOp";
    case PlanOp::kLimit:
      return "Limit";
    case PlanOp::kWindow:
      return "Window";
    case PlanOp::kSubqueryFilter:
      return "SubqueryFilter";
  }
  return "?";
}

const char* JoinName(JoinKind k) {
  switch (k) {
    case JoinKind::kInner:
      return "inner";
    case JoinKind::kLeftOuter:
      return "left";
    case JoinKind::kSemi:
      return "semi";
    case JoinKind::kAnti:
      return "anti";
    case JoinKind::kAntiNA:
      return "anti-na";
  }
  return "?";
}

std::string NodeLabel(const PlanNode& node, bool with_costs) {
  std::string out = OpName(node.op);
  switch (node.op) {
    case PlanOp::kTableScan:
      out += " " + node.table_name + " as " + node.table_alias;
      break;
    case PlanOp::kIndexScan: {
      out += " " + node.table_name + " as " + node.table_alias + " via " +
             node.index_name + " (";
      std::vector<std::string> probes;
      for (const auto& p : node.probes) probes.push_back(ExprToSql(*p));
      out += JoinStrings(probes, ", ") + ")";
      break;
    }
    case PlanOp::kNestedLoopJoin:
    case PlanOp::kHashJoin:
    case PlanOp::kMergeJoin:
      out += std::string(" [") + JoinName(node.join_kind) +
             (node.null_aware ? ",null-aware" : "") + "]";
      break;
    case PlanOp::kSetOp:
      switch (node.set_op) {
        case SetOpKind::kUnionAll:
          out += " UNION ALL";
          break;
        case SetOpKind::kUnion:
          out += " UNION";
          break;
        case SetOpKind::kIntersect:
          out += " INTERSECT";
          break;
        case SetOpKind::kMinus:
          out += " MINUS";
          break;
        default:
          break;
      }
      break;
    case PlanOp::kLimit:
      out += " " + std::to_string(node.limit);
      break;
    case PlanOp::kAggregate:
      if (!node.grouping_sets.empty()) {
        out += " [" + std::to_string(node.grouping_sets.size()) + " sets]";
      }
      break;
    default:
      break;
  }
  if (!node.filter.empty()) {
    std::vector<std::string> preds;
    for (const auto& f : node.filter) preds.push_back(ExprToSql(*f));
    out += " filter(" + JoinStrings(preds, " AND ") + ")";
  }
  if ((node.op == PlanOp::kHashJoin || node.op == PlanOp::kMergeJoin) &&
      !node.hash_left_keys.empty()) {
    std::vector<std::string> keys;
    for (size_t i = 0; i < node.hash_left_keys.size(); ++i) {
      keys.push_back(ExprToSql(*node.hash_left_keys[i]) + "=" +
                     ExprToSql(*node.hash_right_keys[i]));
    }
    out += " on(" + JoinStrings(keys, ",") + ")";
  }
  if (node.op == PlanOp::kNestedLoopJoin && !node.join_conds.empty()) {
    std::vector<std::string> keys;
    for (const auto& c : node.join_conds) keys.push_back(ExprToSql(*c));
    out += " on(" + JoinStrings(keys, " AND ") + ")";
  }
  if (with_costs) {
    out += StrFormat("  {rows=%.0f cost=%.1f}", node.est_rows, node.est_cost);
  }
  return out;
}

void PlanToStringRec(const PlanNode& node, int indent, bool with_costs,
                     std::string* out) {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(NodeLabel(node, with_costs));
  out->append("\n");
  for (const auto& c : node.children) {
    PlanToStringRec(*c, indent + 1, with_costs, out);
  }
  for (const auto& s : node.subplans) {
    out->append(static_cast<size_t>(indent + 1) * 2, ' ');
    out->append("[subplan]\n");
    PlanToStringRec(*s, indent + 2, with_costs, out);
  }
}

}  // namespace

std::string PlanToString(const PlanNode& node, int indent) {
  std::string out;
  PlanToStringRec(node, indent, /*with_costs=*/true, &out);
  return out;
}

std::string PlanShape(const PlanNode& node) {
  std::string out;
  PlanToStringRec(node, 0, /*with_costs=*/false, &out);
  return out;
}

}  // namespace cbqt
