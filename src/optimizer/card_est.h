#ifndef CBQT_OPTIMIZER_CARD_EST_H_
#define CBQT_OPTIMIZER_CARD_EST_H_

#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/statistics.h"
#include "sql/expr.h"

namespace cbqt {
struct QueryBlock;
}

namespace cbqt {

/// Statistics of one relation (base table or derived view output) as seen by
/// the planner of a block.
struct RelStats {
  double rows = 0;
  std::map<std::string, ColumnStats> columns;  ///< by column name
};

/// Per-block estimation context: alias -> RelStats for every FROM entry.
/// Column refs with corr_depth > 0 (or whose alias is absent) are treated as
/// bound constants, which is exactly the TIS view of a correlated predicate.
class StatsContext {
 public:
  void AddRelation(const std::string& alias, RelStats stats);

  const RelStats* FindRelation(const std::string& alias) const;

  /// Column stats of `alias`.`column`, or nullptr.
  const ColumnStats* FindColumn(const std::string& alias,
                                const std::string& column) const;

 private:
  std::map<std::string, RelStats> rels_;
};

/// Estimated fraction of rows satisfying the predicate `e`, given `ctx`.
/// Standard System-R-style rules: 1/NDV for equalities, min/max
/// interpolation for ranges, independence for AND, inclusion-exclusion for
/// OR, null fractions for IS [NOT] NULL; defaults where stats are missing.
double Selectivity(const Expr& e, const StatsContext& ctx);

/// Estimated number of distinct values of `e` over `current_rows` input
/// rows: column NDV (capped) for refs, heuristic fractions otherwise.
double EstimateNdv(const Expr& e, const StatsContext& ctx,
                   double current_rows);

/// For an equi condition `left_col = right_col`, the fraction of *left*
/// rows having at least one match on the right (semijoin selectivity).
/// `right_alias` identifies which side of the condition is the right input.
double SemiJoinSelectivity(const Expr& cond, const StatsContext& ctx,
                           const std::string& right_alias);

/// Half-decade log10 bucket of a selectivity: band 0 covers [10^-0.5, 1],
/// band 1 covers [10^-1, 10^-0.5), and so on down to the 1e-9 clamp. Two
/// literals whose predicates land in the same band are "close enough" for a
/// cached plan to be reused; a band change is the cardinality-aware
/// re-binding trigger on the plan-cache hit path.
int SelectivityBand(double sel);

/// Per-parameter selectivity bands of a parameterized statement, computed on
/// the (possibly unbound) parsed tree: for every simple comparison
/// `column <op> $k` found anywhere in the block tree, slot k records
/// SelectivityBand of that predicate under the base-table statistics.
/// Slots whose parameter never appears in such a comparison stay -1
/// (band-insensitive: any value matches). Equality predicates cost 1/NDV
/// regardless of the value, so bands move mainly on range predicates —
/// exactly the ones where a literal at the other end of the domain deserves
/// a different plan.
std::vector<int> ComputeParamBands(const QueryBlock& qb, size_t num_params,
                                   const Catalog& catalog,
                                   const StatsRegistry& stats);

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_CARD_EST_H_
