#ifndef CBQT_OPTIMIZER_CARD_EST_H_
#define CBQT_OPTIMIZER_CARD_EST_H_

#include <map>
#include <string>

#include "catalog/statistics.h"
#include "sql/expr.h"

namespace cbqt {

/// Statistics of one relation (base table or derived view output) as seen by
/// the planner of a block.
struct RelStats {
  double rows = 0;
  std::map<std::string, ColumnStats> columns;  ///< by column name
};

/// Per-block estimation context: alias -> RelStats for every FROM entry.
/// Column refs with corr_depth > 0 (or whose alias is absent) are treated as
/// bound constants, which is exactly the TIS view of a correlated predicate.
class StatsContext {
 public:
  void AddRelation(const std::string& alias, RelStats stats);

  const RelStats* FindRelation(const std::string& alias) const;

  /// Column stats of `alias`.`column`, or nullptr.
  const ColumnStats* FindColumn(const std::string& alias,
                                const std::string& column) const;

 private:
  std::map<std::string, RelStats> rels_;
};

/// Estimated fraction of rows satisfying the predicate `e`, given `ctx`.
/// Standard System-R-style rules: 1/NDV for equalities, min/max
/// interpolation for ranges, independence for AND, inclusion-exclusion for
/// OR, null fractions for IS [NOT] NULL; defaults where stats are missing.
double Selectivity(const Expr& e, const StatsContext& ctx);

/// Estimated number of distinct values of `e` over `current_rows` input
/// rows: column NDV (capped) for refs, heuristic fractions otherwise.
double EstimateNdv(const Expr& e, const StatsContext& ctx,
                   double current_rows);

/// For an equi condition `left_col = right_col`, the fraction of *left*
/// rows having at least one match on the right (semijoin selectivity).
/// `right_alias` identifies which side of the condition is the right input.
double SemiJoinSelectivity(const Expr& cond, const StatsContext& ctx,
                           const std::string& right_alias);

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_CARD_EST_H_
