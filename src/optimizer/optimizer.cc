#include "optimizer/optimizer.h"

namespace cbqt {

Result<PhysicalOptimization> PhysicalOptimizer::Optimize(
    const QueryBlock& qb, const PhysicalOptimizeOptions& options) const {
  if (options.faults != nullptr) {
    CBQT_RETURN_IF_ERROR(options.faults->MaybeFail(FaultSite::kPlanner));
  }
  if (options.budget != nullptr && options.budget->CheckDeadline()) {
    return Status::BudgetExhausted(
        "optimization deadline exceeded before planning");
  }
  if (options.guards.any()) {
    CBQT_RETURN_IF_ERROR(options.guards.Poll());
  }
  Planner planner(db_, params_, options.cache, options.cost_cutoff,
                  options.budget, options.join_memo, options.guards,
                  options.relaxed_annotation_reuse);
  auto block = planner.PlanBlock(qb);
  if (!block.ok()) return block.status();
  PhysicalOptimization out;
  out.cost = block->plan->est_cost;
  out.rows = block->plan->est_rows;
  out.blocks_planned = planner.blocks_planned();
  out.plan = std::move(block->plan);
  return out;
}

}  // namespace cbqt
