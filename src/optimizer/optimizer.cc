#include "optimizer/optimizer.h"

namespace cbqt {

Result<PhysicalOptimization> PhysicalOptimizer::Optimize(
    const QueryBlock& qb, AnnotationCache* cache, double cost_cutoff) const {
  Planner planner(db_, params_, cache, cost_cutoff);
  auto block = planner.PlanBlock(qb);
  if (!block.ok()) return block.status();
  PhysicalOptimization out;
  out.cost = block->plan->est_cost;
  out.rows = block->plan->est_rows;
  out.blocks_planned = planner.blocks_planned();
  out.plan = std::move(block->plan);
  return out;
}

}  // namespace cbqt
