#ifndef CBQT_OPTIMIZER_PLANNER_H_
#define CBQT_OPTIMIZER_PLANNER_H_

#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cbqt/annotation_cache.h"
#include "common/budget.h"
#include "common/guardrails.h"
#include "common/status.h"
#include "optimizer/card_est.h"
#include "optimizer/cost_model.h"
#include "optimizer/join_order.h"
#include "optimizer/plan.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// A planned query block: physical plan plus output statistics (used when
/// the block is a derived table of some outer block).
struct BlockPlan {
  std::unique_ptr<PlanNode> plan;
  RelStats out_stats;
};

/// The traditional physical optimizer: plans one (bound) query block tree
/// bottom-up — access paths, join order (DP with partial-order constraints,
/// greedy fallback), join methods (hash / merge / nested-loop / index
/// nested-loop, with semi/anti/outer/null-aware variants), aggregation,
/// windows, set operations, ROWNUM limits, and TIS subquery-filter costing
/// with correlation-value caching.
///
/// The CBQT framework invokes this as its "cost estimation technique"
/// (paper §3.1, Figure 1): each transformation state is deep-copied and
/// handed here for costing. `cost_cutoff` implements §3.4.1; `cache`
/// implements §3.4.2 (sub-tree cost-annotation reuse); `budget` is the
/// optimization resource governor, polled once per planned block — when the
/// deadline trips mid-plan the planner aborts with kBudgetExhausted and the
/// caller degrades to its best-so-far answer.
class Planner {
 public:
  Planner(const Database& db, const CostParams& params,
          AnnotationCache* cache = nullptr,
          double cost_cutoff = std::numeric_limits<double>::infinity(),
          BudgetTracker* budget = nullptr,
          AnnotationCache* join_memo = nullptr, QueryGuards guards = {},
          bool relaxed_reuse = false)
      : db_(db),
        params_(params),
        cache_(cache),
        cutoff_(cost_cutoff),
        budget_(budget),
        join_memo_(join_memo),
        guards_(guards),
        relaxed_reuse_(relaxed_reuse) {}

  /// Plans a bound query block (and, recursively, all nested blocks).
  Result<BlockPlan> PlanBlock(const QueryBlock& qb);

  /// Number of blocks fully optimized by this planner instance (annotation
  /// cache hits excluded) — the unit Table 1 counts.
  int64_t blocks_planned() const { return blocks_planned_; }

 private:
  Result<BlockPlan> PlanRegular(const QueryBlock& qb);
  Result<BlockPlan> PlanSetOp(const QueryBlock& qb);

  /// Best standalone scan of a base table `tr` with `filters` applied:
  /// chooses a full scan or an index scan driven by constant/bound equality
  /// predicates. `extra_probes` (column-name, probe-expr) adds join-derived
  /// equalities for index nested-loop planning. When `used_extra_probes` is
  /// non-null it receives the probe-expr of every extra probe the chosen
  /// index actually consumed — the caller must keep re-checking the rest.
  Result<JoinStepPlan> BuildScan(
      const TableRef& tr, const std::vector<const Expr*>& filters,
      const std::vector<std::pair<std::string, const Expr*>>& extra_probes,
      const StatsContext& ctx,
      std::set<const Expr*>* used_extra_probes = nullptr);

  friend class BlockJoinCoster;

  const Database& db_;
  CostParams params_;
  AnnotationCache* cache_;
  double cutoff_;
  BudgetTracker* budget_;
  /// Cross-state join-order memo: subset-granularity DP results keyed by
  /// canonical relation/predicate fingerprints (see SubsetJoinMemo in
  /// planner.cc). Shared by the CBQT framework across transformation states
  /// alongside the block-level annotation cache.
  AnnotationCache* join_memo_;
  /// Runtime guardrails, polled at the same per-block quantum as the
  /// budget: a tripped CancellationToken aborts planning with kCancelled.
  QueryGuards guards_;
  /// Accept annotation hits from any member of the signature's canonical
  /// equivalence class (MQO cross-query sharing); default false requires an
  /// exact unparsing match (bit-identical plan determinism).
  bool relaxed_reuse_;
  int64_t blocks_planned_ = 0;
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_PLANNER_H_
