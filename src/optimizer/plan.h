#ifndef CBQT_OPTIMIZER_PLAN_H_
#define CBQT_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/query_block.h"

namespace cbqt {

/// One output column of a plan operator. Expressions reference slots by
/// (alias, name); an empty slot alias matches refs with empty alias.
struct ColumnSlot {
  std::string alias;
  std::string name;
  DataType type = DataType::kUnknown;
};

using Schema = std::vector<ColumnSlot>;

/// Index of the slot matching (alias, name); alias "" in the ref matches any
/// slot with that name. Returns -1 if absent.
int FindSlot(const Schema& schema, const std::string& alias,
             const std::string& name);

/// Physical operator kinds.
enum class PlanOp {
  kTableScan,       ///< full scan of a base table (+ pushed filter)
  kIndexScan,       ///< index probe on a base table (+ residual filter)
  kFilter,          ///< predicate on child rows
  kProject,         ///< computes select expressions
  kNestedLoopJoin,  ///< left outer loop; right re-evaluated per row
  kHashJoin,        ///< equi-join; builds on the right child
  kMergeJoin,       ///< sorts both inputs on the equi keys
  kAggregate,       ///< hash aggregation (plain or grouping sets)
  kSort,
  kDistinct,
  kSetOp,           ///< UNION ALL / UNION / INTERSECT / MINUS over children
  kLimit,           ///< ROWNUM cutoff with optional lazy filter
  kWindow,          ///< window aggregates over partitions
  kSubqueryFilter,  ///< TIS evaluation of subquery predicates, with caching
};

/// A node of the physical plan tree. Expressions inside a node reference
/// the node's *input* schema (its children's concatenated output for joins)
/// at corr_depth 0, and enclosing TIS/lateral frames at higher depths.
struct PlanNode {
  PlanOp op;
  std::vector<std::unique_ptr<PlanNode>> children;
  Schema output;

  // kTableScan / kIndexScan
  std::string table_name;
  std::string table_alias;
  std::string index_name;
  /// Probe expressions for kIndexScan (equality on the index's leading
  /// key columns, in index order). May reference outer frames.
  std::vector<ExprPtr> probes;

  /// Residual predicate evaluated on this node's produced rows (scans,
  /// joins, filter nodes, lazy limit filter).
  std::vector<ExprPtr> filter;

  // joins
  JoinKind join_kind = JoinKind::kInner;
  /// Generic join conditions evaluated on the combined row (NL join), or
  /// the non-equi residuals for hash/merge joins.
  std::vector<ExprPtr> join_conds;
  /// Equi-key pairs for hash/merge joins (parallel vectors; left keys
  /// reference the left child, right keys the right child).
  std::vector<ExprPtr> hash_left_keys;
  std::vector<ExprPtr> hash_right_keys;
  /// Null-aware antijoin (NOT IN semantics).
  bool null_aware = false;
  /// Nested-loop joins only: re-execute the right child once per left row
  /// (index probes / lateral views referencing the left row). When false the
  /// right child is materialized once and rescanned.
  bool rescan_right = false;

  // kAggregate
  std::vector<ExprPtr> group_keys;
  std::vector<ExprPtr> agg_exprs;  ///< kAggregate-kind expressions
  std::vector<std::vector<int>> grouping_sets;  ///< indices into group_keys

  // kProject
  std::vector<ExprPtr> projections;

  // kSort
  std::vector<ExprPtr> sort_keys;
  std::vector<bool> sort_ascending;

  // kSetOp
  SetOpKind set_op = SetOpKind::kNone;

  // kLimit
  int64_t limit = -1;

  // kWindow: each expression is a kWindow expr computing one new slot.
  std::vector<ExprPtr> window_exprs;

  // kSubqueryFilter: `filter` holds the predicates; `subplans[i]` is the
  // plan of the i-th kSubquery node in pre-order over `filter` (and
  // `projections` for scalar subqueries in the select list).
  std::vector<std::unique_ptr<PlanNode>> subplans;
  /// Per subplan: expressions over the outer row forming the TIS cache key
  /// (the correlated outer columns, paper §3.4.4 caching / §2.2.1 TIS).
  std::vector<std::vector<ExprPtr>> subplan_corr_keys;

  // Optimizer annotations.
  double est_rows = 0;
  double est_cost = 0;

  PlanNode() : op(PlanOp::kTableScan) {}
  explicit PlanNode(PlanOp o) : op(o) {}
  PlanNode(const PlanNode&) = delete;
  PlanNode& operator=(const PlanNode&) = delete;

  std::unique_ptr<PlanNode> Clone() const;

  /// Approximate in-memory footprint of this plan tree (node structs,
  /// strings, expressions, subplans), for the memory accounting layer —
  /// plan-cache entries are charged by this estimate.
  int64_t EstimateBytes() const;
};

/// One-line-per-node rendering of a plan tree with cost annotations, for
/// EXPLAIN-style output and plan-diff experiments (Figure 2 counts plan
/// changes).
std::string PlanToString(const PlanNode& node, int indent = 0);

/// A canonical structural string of the plan *shape* (operators, join
/// methods, access paths, join order) without cost annotations — two plans
/// with equal shape strings are "the same execution plan" for Figure 2's
/// plan-change accounting.
std::string PlanShape(const PlanNode& node);

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_PLAN_H_
