#ifndef CBQT_OPTIMIZER_PLAN_SERDE_H_
#define CBQT_OPTIMIZER_PLAN_SERDE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/value.h"
#include "optimizer/plan.h"
#include "sql/query_block.h"

namespace cbqt {

/// Compact binary (de)serialization for physical plans and the query trees
/// that carry their CBQT provenance — the layer underneath the persistent
/// plan-cache snapshot and the cross-instance shared plan store.
///
/// Wire format: little-endian fixed-width scalars, length-prefixed strings
/// and vectors, a one-byte tag per enum, and a presence byte per optional
/// pointer. Every field of every node is written unconditionally, in
/// declaration order, so serialization is a pure function of the tree:
/// serialize(deserialize(bytes)) == bytes (bit identity), which the
/// round-trip tests and the warm-start bench gate rely on.
///
/// The reader is strict and bounds-checked: any truncation, out-of-range
/// enum tag, over-long count, or excessive nesting depth yields a typed
/// Status::DataCorruption — never UB, never a crash — so arbitrary bytes
/// (bit flips, version skew, hostile files) degrade to "artifact absent,
/// re-optimize". Catalog pointers (TableRef::table_def) are deliberately
/// NOT serialized: a deserialized query tree is unbound, which is exactly
/// what CbqtOptimizer::Optimize expects (it clones and re-binds), and a
/// deserialized PlanNode references tables/indexes by name only.

/// Version stamped into every framed blob; a mismatch is a typed error so
/// old snapshots are discarded rather than misread.
inline constexpr uint32_t kPlanSerdeVersion = 1;

/// Nesting-depth ceiling for recursive readers (expressions, blocks,
/// plans). Legitimate trees are tens deep; malformed bytes claiming more
/// fail typed instead of overflowing the stack.
inline constexpr int kSerdeMaxDepth = 200;

/// FNV-1a 64-bit over `bytes` — the payload checksum of framed blobs and of
/// shared-store records.
uint64_t Fnv1a64(std::string_view bytes);

/// Append-only encoder. Never fails; the buffer grows as needed.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v);
  /// Length-prefixed (u32) raw bytes.
  void Str(std::string_view s);
  template <typename E>
  void Enum(E v) {
    U8(static_cast<uint8_t>(v));
  }

  const std::string& buffer() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Strict bounds-checked decoder over a borrowed byte range. Every accessor
/// returns Status; after the first error the reader is poisoned and all
/// further reads fail with the same error.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status U8(uint8_t* out);
  Status Bool(bool* out);
  Status U32(uint32_t* out);
  Status U64(uint64_t* out);
  Status I32(int32_t* out);
  Status I64(int64_t* out);
  Status F64(double* out);
  Status Str(std::string* out);

  /// Reads a u8 enum tag and validates it against [0, max_inclusive].
  template <typename E>
  Status Enum(E* out, uint8_t max_inclusive) {
    uint8_t tag = 0;
    CBQT_RETURN_IF_ERROR(U8(&tag));
    if (tag > max_inclusive) {
      return Fail("enum tag " + std::to_string(tag) + " out of range");
    }
    *out = static_cast<E>(tag);
    return Status::OK();
  }

  /// Reads a u32 element count and sanity-checks it against the remaining
  /// bytes (every element costs >= 1 byte), so a malformed count cannot
  /// drive a multi-gigabyte allocation.
  Status Count(uint32_t* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

  /// Records and returns a DataCorruption error; poisons the reader.
  Status Fail(const std::string& what);

 private:
  Status Raw(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  Status error_;  ///< sticky first error
};

// ---- node-level serde ----------------------------------------------------

void WriteValue(const Value& v, ByteWriter* w);
Status ReadValue(ByteReader* r, Value* out);

void WriteExpr(const Expr& e, ByteWriter* w);
Status ReadExpr(ByteReader* r, ExprPtr* out, int depth = 0);

void WriteQueryBlock(const QueryBlock& qb, ByteWriter* w);
Status ReadQueryBlock(ByteReader* r, std::unique_ptr<QueryBlock>* out,
                      int depth = 0);

void WritePlanNode(const PlanNode& node, ByteWriter* w);
Status ReadPlanNode(ByteReader* r, std::unique_ptr<PlanNode>* out,
                    int depth = 0);

// ---- framing -------------------------------------------------------------

/// Wraps `payload` in the common frame: magic, kPlanSerdeVersion, payload
/// size, FNV-1a checksum, payload bytes. The snapshot file, shared-store
/// records, and plan_dump blobs all share this frame (different magics).
std::string FramePayload(uint32_t magic, std::string payload);

/// Validates magic / version / size / checksum and returns a view of the
/// payload. Typed DataCorruption on any mismatch.
Result<std::string_view> UnframePayload(uint32_t magic,
                                        std::string_view bytes);

/// Magic of a standalone framed plan blob ("CBQP"), as written by
/// SerializePlan and the plan_dump tool.
inline constexpr uint32_t kPlanBlobMagic = 0x50514243u;  // "CBQP" LE

/// A self-contained framed blob of one physical plan tree.
std::string SerializePlan(const PlanNode& plan);

/// Inverse of SerializePlan. Typed DataCorruption for malformed bytes
/// (including trailing garbage after the tree).
Result<std::unique_ptr<PlanNode>> DeserializePlan(std::string_view bytes);

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_PLAN_SERDE_H_
