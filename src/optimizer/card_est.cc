#include "optimizer/card_est.h"

#include <algorithm>
#include <cmath>

namespace cbqt {

namespace {

constexpr double kDefaultEqSel = 0.01;
constexpr double kDefaultRangeSel = 1.0 / 3.0;
constexpr double kDefaultSel = 0.25;

double Clamp01(double s) { return std::min(1.0, std::max(1e-9, s)); }

/// True if `e` acts as a bound value in this block: a literal, a correlated
/// column ref, or any expression without local (depth-0) column refs.
bool IsBoundValue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return e.corr_depth > 0;
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kFuncCall:
      for (const auto& c : e.children) {
        if (!IsBoundValue(*c)) return false;
      }
      return true;
    default:
      return false;
  }
}

/// Fraction of a numeric column's [min,max] domain selected by `col op lit`.
double RangeFraction(const ColumnStats& cs, BinaryOp op, const Value& lit) {
  if (cs.min.is_null() || cs.max.is_null()) return kDefaultRangeSel;
  bool numeric = (cs.min.kind() == ValueKind::kInt64 ||
                  cs.min.kind() == ValueKind::kDouble) &&
                 (lit.kind() == ValueKind::kInt64 ||
                  lit.kind() == ValueKind::kDouble);
  if (!numeric) return kDefaultRangeSel;
  double lo = cs.min.NumericValue();
  double hi = cs.max.NumericValue();
  double v = lit.NumericValue();
  if (hi <= lo) return kDefaultRangeSel;
  double frac_below = (v - lo) / (hi - lo);
  frac_below = std::min(1.0, std::max(0.0, frac_below));
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return Clamp01(frac_below);
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return Clamp01(1.0 - frac_below);
    default:
      return kDefaultRangeSel;
  }
}

}  // namespace

void StatsContext::AddRelation(const std::string& alias, RelStats stats) {
  rels_[alias] = std::move(stats);
}

const RelStats* StatsContext::FindRelation(const std::string& alias) const {
  auto it = rels_.find(alias);
  if (it == rels_.end()) return nullptr;
  return &it->second;
}

const ColumnStats* StatsContext::FindColumn(const std::string& alias,
                                            const std::string& column) const {
  const RelStats* rel = FindRelation(alias);
  if (rel == nullptr) return nullptr;
  auto it = rel->columns.find(column);
  if (it == rel->columns.end()) return nullptr;
  return &it->second;
}

double Selectivity(const Expr& e, const StatsContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.kind() == ValueKind::kBool) {
        return e.literal.AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kBinary: {
      const Expr& l = *e.children[0];
      const Expr& r = *e.children[1];
      switch (e.bop) {
        case BinaryOp::kAnd:
          return Clamp01(Selectivity(l, ctx) * Selectivity(r, ctx));
        case BinaryOp::kOr: {
          double sl = Selectivity(l, ctx);
          double sr = Selectivity(r, ctx);
          return Clamp01(sl + sr - sl * sr);
        }
        case BinaryOp::kEq:
        case BinaryOp::kNullSafeEq: {
          // col = bound-value
          const Expr* col = nullptr;
          const Expr* other = nullptr;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) {
            col = &l;
            other = &r;
          } else if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) {
            col = &r;
            other = &l;
          }
          if (col != nullptr && IsBoundValue(*other)) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr && cs->ndv > 0) {
              return Clamp01((1.0 - cs->null_frac) / cs->ndv);
            }
            return kDefaultEqSel;
          }
          // col = col (join-style equality evaluated as a filter)
          if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
            const ColumnStats* cl =
                ctx.FindColumn(l.table_alias, l.column_name);
            const ColumnStats* cr =
                ctx.FindColumn(r.table_alias, r.column_name);
            double ndv = 0;
            if (cl != nullptr) ndv = std::max(ndv, cl->ndv);
            if (cr != nullptr) ndv = std::max(ndv, cr->ndv);
            if (ndv > 0) return Clamp01(1.0 / ndv);
            return kDefaultEqSel;
          }
          return kDefaultEqSel;
        }
        case BinaryOp::kNe: {
          Expr eq;  // cheap structural reuse: sel(<>) = 1 - sel(=)
          double s_eq = kDefaultEqSel;
          const Expr* col = nullptr;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) col = &l;
          if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) col = &r;
          if (col != nullptr) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr && cs->ndv > 0) s_eq = 1.0 / cs->ndv;
          }
          (void)eq;
          return Clamp01(1.0 - s_eq);
        }
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const Expr* col = nullptr;
          const Expr* other = nullptr;
          BinaryOp op = e.bop;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) {
            col = &l;
            other = &r;
          } else if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) {
            col = &r;
            other = &l;
            op = SwapComparison(op);
          }
          if (col != nullptr && other != nullptr &&
              other->kind == ExprKind::kLiteral) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr) return RangeFraction(*cs, op, other->literal);
          }
          return kDefaultRangeSel;
        }
        default:
          return kDefaultSel;
      }
    }
    case ExprKind::kUnary:
      switch (e.uop) {
        case UnaryOp::kNot:
          return Clamp01(1.0 - Selectivity(*e.children[0], ctx));
        case UnaryOp::kLnnvl:
          // LNNVL(p) = p IS FALSE OR UNKNOWN.
          return Clamp01(1.0 - Selectivity(*e.children[0], ctx));
        case UnaryOp::kIsNull: {
          const Expr& c = *e.children[0];
          if (c.kind == ExprKind::kColumnRef && c.corr_depth == 0) {
            const ColumnStats* cs =
                ctx.FindColumn(c.table_alias, c.column_name);
            if (cs != nullptr) return Clamp01(std::max(cs->null_frac, 1e-4));
          }
          return 0.05;
        }
        case UnaryOp::kIsNotNull: {
          const Expr& c = *e.children[0];
          if (c.kind == ExprKind::kColumnRef && c.corr_depth == 0) {
            const ColumnStats* cs =
                ctx.FindColumn(c.table_alias, c.column_name);
            if (cs != nullptr) return Clamp01(1.0 - cs->null_frac);
          }
          return 0.95;
        }
        default:
          return kDefaultSel;
      }
    case ExprKind::kSubquery:
      // TIS predicates: EXISTS/IN-style default.
      return 0.5;
    case ExprKind::kFuncCall:
      return 0.5;
    default:
      return kDefaultSel;
  }
}

double EstimateNdv(const Expr& e, const StatsContext& ctx,
                   double current_rows) {
  if (e.kind == ExprKind::kColumnRef && e.corr_depth == 0) {
    const ColumnStats* cs = ctx.FindColumn(e.table_alias, e.column_name);
    if (cs != nullptr && cs->ndv > 0) {
      return std::min(cs->ndv, std::max(1.0, current_rows));
    }
  }
  if (e.kind == ExprKind::kLiteral) return 1.0;
  return std::max(1.0, current_rows / 10.0);
}

double SemiJoinSelectivity(const Expr& cond, const StatsContext& ctx,
                           const std::string& right_alias) {
  if (cond.kind != ExprKind::kBinary || cond.bop != BinaryOp::kEq) return 0.5;
  const Expr& l = *cond.children[0];
  const Expr& r = *cond.children[1];
  if (l.kind != ExprKind::kColumnRef || r.kind != ExprKind::kColumnRef) {
    return 0.5;
  }
  const Expr* left_col = &l;
  const Expr* right_col = &r;
  if (l.table_alias == right_alias) std::swap(left_col, right_col);
  const ColumnStats* cl =
      ctx.FindColumn(left_col->table_alias, left_col->column_name);
  const ColumnStats* cr =
      ctx.FindColumn(right_col->table_alias, right_col->column_name);
  if (cl == nullptr || cr == nullptr || cl->ndv <= 0) return 0.5;
  return std::min(1.0, cr->ndv / cl->ndv);
}

}  // namespace cbqt
