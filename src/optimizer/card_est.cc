#include "optimizer/card_est.h"

#include <algorithm>
#include <cmath>

#include "sql/query_block.h"

namespace cbqt {

namespace {

constexpr double kDefaultEqSel = 0.01;
constexpr double kDefaultRangeSel = 1.0 / 3.0;
constexpr double kDefaultSel = 0.25;

double Clamp01(double s) { return std::min(1.0, std::max(1e-9, s)); }

/// True if `e` acts as a bound value in this block: a literal, a correlated
/// column ref, or any expression without local (depth-0) column refs.
bool IsBoundValue(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return true;
    case ExprKind::kColumnRef:
      return e.corr_depth > 0;
    case ExprKind::kBinary:
    case ExprKind::kUnary:
    case ExprKind::kFuncCall:
      for (const auto& c : e.children) {
        if (!IsBoundValue(*c)) return false;
      }
      return true;
    default:
      return false;
  }
}

/// Fraction of a numeric column's [min,max] domain selected by `col op lit`.
double RangeFraction(const ColumnStats& cs, BinaryOp op, const Value& lit) {
  if (cs.min.is_null() || cs.max.is_null()) return kDefaultRangeSel;
  bool numeric = (cs.min.kind() == ValueKind::kInt64 ||
                  cs.min.kind() == ValueKind::kDouble) &&
                 (lit.kind() == ValueKind::kInt64 ||
                  lit.kind() == ValueKind::kDouble);
  if (!numeric) return kDefaultRangeSel;
  double lo = cs.min.NumericValue();
  double hi = cs.max.NumericValue();
  double v = lit.NumericValue();
  if (hi <= lo) return kDefaultRangeSel;
  double frac_below = (v - lo) / (hi - lo);
  frac_below = std::min(1.0, std::max(0.0, frac_below));
  switch (op) {
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return Clamp01(frac_below);
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return Clamp01(1.0 - frac_below);
    default:
      return kDefaultRangeSel;
  }
}

}  // namespace

void StatsContext::AddRelation(const std::string& alias, RelStats stats) {
  rels_[alias] = std::move(stats);
}

const RelStats* StatsContext::FindRelation(const std::string& alias) const {
  auto it = rels_.find(alias);
  if (it == rels_.end()) return nullptr;
  return &it->second;
}

const ColumnStats* StatsContext::FindColumn(const std::string& alias,
                                            const std::string& column) const {
  const RelStats* rel = FindRelation(alias);
  if (rel == nullptr) return nullptr;
  auto it = rel->columns.find(column);
  if (it == rel->columns.end()) return nullptr;
  return &it->second;
}

double Selectivity(const Expr& e, const StatsContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.kind() == ValueKind::kBool) {
        return e.literal.AsBool() ? 1.0 : 0.0;
      }
      return 1.0;
    case ExprKind::kBinary: {
      const Expr& l = *e.children[0];
      const Expr& r = *e.children[1];
      switch (e.bop) {
        case BinaryOp::kAnd:
          return Clamp01(Selectivity(l, ctx) * Selectivity(r, ctx));
        case BinaryOp::kOr: {
          double sl = Selectivity(l, ctx);
          double sr = Selectivity(r, ctx);
          return Clamp01(sl + sr - sl * sr);
        }
        case BinaryOp::kEq:
        case BinaryOp::kNullSafeEq: {
          // col = bound-value
          const Expr* col = nullptr;
          const Expr* other = nullptr;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) {
            col = &l;
            other = &r;
          } else if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) {
            col = &r;
            other = &l;
          }
          if (col != nullptr && IsBoundValue(*other)) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr && cs->ndv > 0) {
              return Clamp01((1.0 - cs->null_frac) / cs->ndv);
            }
            return kDefaultEqSel;
          }
          // col = col (join-style equality evaluated as a filter)
          if (l.kind == ExprKind::kColumnRef && r.kind == ExprKind::kColumnRef) {
            const ColumnStats* cl =
                ctx.FindColumn(l.table_alias, l.column_name);
            const ColumnStats* cr =
                ctx.FindColumn(r.table_alias, r.column_name);
            double ndv = 0;
            if (cl != nullptr) ndv = std::max(ndv, cl->ndv);
            if (cr != nullptr) ndv = std::max(ndv, cr->ndv);
            if (ndv > 0) return Clamp01(1.0 / ndv);
            return kDefaultEqSel;
          }
          return kDefaultEqSel;
        }
        case BinaryOp::kNe: {
          Expr eq;  // cheap structural reuse: sel(<>) = 1 - sel(=)
          double s_eq = kDefaultEqSel;
          const Expr* col = nullptr;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) col = &l;
          if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) col = &r;
          if (col != nullptr) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr && cs->ndv > 0) s_eq = 1.0 / cs->ndv;
          }
          (void)eq;
          return Clamp01(1.0 - s_eq);
        }
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          const Expr* col = nullptr;
          const Expr* other = nullptr;
          BinaryOp op = e.bop;
          if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0) {
            col = &l;
            other = &r;
          } else if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0) {
            col = &r;
            other = &l;
            op = SwapComparison(op);
          }
          if (col != nullptr && other != nullptr &&
              other->kind == ExprKind::kLiteral) {
            const ColumnStats* cs =
                ctx.FindColumn(col->table_alias, col->column_name);
            if (cs != nullptr) return RangeFraction(*cs, op, other->literal);
          }
          return kDefaultRangeSel;
        }
        default:
          return kDefaultSel;
      }
    }
    case ExprKind::kUnary:
      switch (e.uop) {
        case UnaryOp::kNot:
          return Clamp01(1.0 - Selectivity(*e.children[0], ctx));
        case UnaryOp::kLnnvl:
          // LNNVL(p) = p IS FALSE OR UNKNOWN.
          return Clamp01(1.0 - Selectivity(*e.children[0], ctx));
        case UnaryOp::kIsNull: {
          const Expr& c = *e.children[0];
          if (c.kind == ExprKind::kColumnRef && c.corr_depth == 0) {
            const ColumnStats* cs =
                ctx.FindColumn(c.table_alias, c.column_name);
            if (cs != nullptr) return Clamp01(std::max(cs->null_frac, 1e-4));
          }
          return 0.05;
        }
        case UnaryOp::kIsNotNull: {
          const Expr& c = *e.children[0];
          if (c.kind == ExprKind::kColumnRef && c.corr_depth == 0) {
            const ColumnStats* cs =
                ctx.FindColumn(c.table_alias, c.column_name);
            if (cs != nullptr) return Clamp01(1.0 - cs->null_frac);
          }
          return 0.95;
        }
        default:
          return kDefaultSel;
      }
    case ExprKind::kSubquery:
      // TIS predicates: EXISTS/IN-style default.
      return 0.5;
    case ExprKind::kFuncCall:
      return 0.5;
    default:
      return kDefaultSel;
  }
}

double EstimateNdv(const Expr& e, const StatsContext& ctx,
                   double current_rows) {
  if (e.kind == ExprKind::kColumnRef && e.corr_depth == 0) {
    const ColumnStats* cs = ctx.FindColumn(e.table_alias, e.column_name);
    if (cs != nullptr && cs->ndv > 0) {
      return std::min(cs->ndv, std::max(1.0, current_rows));
    }
  }
  if (e.kind == ExprKind::kLiteral) return 1.0;
  return std::max(1.0, current_rows / 10.0);
}

double SemiJoinSelectivity(const Expr& cond, const StatsContext& ctx,
                           const std::string& right_alias) {
  if (cond.kind != ExprKind::kBinary || cond.bop != BinaryOp::kEq) return 0.5;
  const Expr& l = *cond.children[0];
  const Expr& r = *cond.children[1];
  if (l.kind != ExprKind::kColumnRef || r.kind != ExprKind::kColumnRef) {
    return 0.5;
  }
  const Expr* left_col = &l;
  const Expr* right_col = &r;
  if (l.table_alias == right_alias) std::swap(left_col, right_col);
  const ColumnStats* cl =
      ctx.FindColumn(left_col->table_alias, left_col->column_name);
  const ColumnStats* cr =
      ctx.FindColumn(right_col->table_alias, right_col->column_name);
  if (cl == nullptr || cr == nullptr || cl->ndv <= 0) return 0.5;
  return std::min(1.0, cr->ndv / cl->ndv);
}

int SelectivityBand(double sel) {
  sel = Clamp01(sel);
  // log10(sel) in [-9, 0]; half-decade buckets -> bands 0..18.
  return static_cast<int>(std::floor(-std::log10(sel) * 2.0 + 1e-9));
}

namespace {

/// Shared walk state for ComputeParamBands.
struct BandWalk {
  const Catalog* catalog;
  const StatsRegistry* stats;
  std::vector<int>* bands;
};

RelStats TableRelStats(const TableDef& def, const TableStats* ts) {
  RelStats rel;
  if (ts == nullptr) return rel;
  rel.rows = ts->rows;
  for (size_t i = 0; i < def.columns.size() && i < ts->columns.size(); ++i) {
    rel.columns[def.columns[i].name] = ts->columns[i];
  }
  return rel;
}

/// True if `e` is `colref <cmp> literal` (either order) where the literal is
/// a parameter slot; the colref must be local to the block.
bool ParamComparison(const Expr& e, const Expr** col, const Expr** lit) {
  if (e.kind != ExprKind::kBinary) return false;
  switch (e.bop) {
    case BinaryOp::kEq:
    case BinaryOp::kNullSafeEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      break;
    default:
      return false;
  }
  const Expr& l = *e.children[0];
  const Expr& r = *e.children[1];
  if (l.kind == ExprKind::kColumnRef && l.corr_depth == 0 &&
      r.kind == ExprKind::kLiteral && r.param_index >= 0) {
    *col = &l;
    *lit = &r;
    return true;
  }
  if (r.kind == ExprKind::kColumnRef && r.corr_depth == 0 &&
      l.kind == ExprKind::kLiteral && l.param_index >= 0) {
    *col = &r;
    *lit = &l;
    return true;
  }
  return false;
}

void WalkBlockForBands(const QueryBlock& qb, const BandWalk& walk);

void WalkExprForBands(const Expr& e, const StatsContext& ctx,
                      const BandWalk& walk) {
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  if (ParamComparison(e, &col, &lit)) {
    size_t slot = static_cast<size_t>(lit->param_index);
    if (slot < walk.bands->size()) {
      (*walk.bands)[slot] = SelectivityBand(Selectivity(e, ctx));
    }
  }
  for (const auto& c : e.children) {
    if (c != nullptr) WalkExprForBands(*c, ctx, walk);
  }
  for (const auto& c : e.partition_by) {
    if (c != nullptr) WalkExprForBands(*c, ctx, walk);
  }
  for (const auto& c : e.win_order_by) {
    if (c != nullptr) WalkExprForBands(*c, ctx, walk);
  }
  if (e.subquery != nullptr) WalkBlockForBands(*e.subquery, walk);
}

void WalkBlockForBands(const QueryBlock& qb, const BandWalk& walk) {
  for (const auto& b : qb.branches) {
    if (b != nullptr) WalkBlockForBands(*b, walk);
  }
  // Per-block context over its base tables. The tree may be unbound (bands
  // are computed straight off the parse, before the optimizer re-binds), so
  // unqualified column refs are resolved through a merged empty-alias
  // relation: first table wins, which matches binder behavior for
  // unambiguous names and is merely a heuristic band for ambiguous ones.
  StatsContext ctx;
  RelStats merged;
  for (const auto& ref : qb.from) {
    if (ref.table_name.empty()) continue;
    const TableDef* def = walk.catalog->FindTable(ref.table_name);
    if (def == nullptr) continue;
    RelStats rel = TableRelStats(*def, walk.stats->Find(def->name));
    for (const auto& [name, cs] : rel.columns) {
      merged.columns.emplace(name, cs);  // keeps the first occurrence
    }
    merged.rows = std::max(merged.rows, rel.rows);
    ctx.AddRelation(ref.alias.empty() ? ref.table_name : ref.alias,
                    std::move(rel));
  }
  ctx.AddRelation("", std::move(merged));

  auto walk_vec = [&](const std::vector<ExprPtr>& exprs) {
    for (const auto& e : exprs) {
      if (e != nullptr) WalkExprForBands(*e, ctx, walk);
    }
  };
  for (const auto& item : qb.select) {
    if (item.expr != nullptr) WalkExprForBands(*item.expr, ctx, walk);
  }
  for (const auto& ref : qb.from) {
    walk_vec(ref.join_conds);
    if (ref.derived != nullptr) WalkBlockForBands(*ref.derived, walk);
  }
  walk_vec(qb.where);
  walk_vec(qb.group_by);
  walk_vec(qb.having);
  for (const auto& item : qb.order_by) {
    if (item.expr != nullptr) WalkExprForBands(*item.expr, ctx, walk);
  }
}

}  // namespace

std::vector<int> ComputeParamBands(const QueryBlock& qb, size_t num_params,
                                   const Catalog& catalog,
                                   const StatsRegistry& stats) {
  std::vector<int> bands(num_params, -1);
  if (num_params == 0) return bands;
  BandWalk walk{&catalog, &stats, &bands};
  WalkBlockForBands(qb, walk);
  return bands;
}

}  // namespace cbqt
