#ifndef CBQT_OPTIMIZER_OPTIMIZER_H_
#define CBQT_OPTIMIZER_OPTIMIZER_H_

#include <limits>
#include <memory>

#include "cbqt/annotation_cache.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "optimizer/planner.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// Result of physically optimizing a query tree.
struct PhysicalOptimization {
  std::unique_ptr<PlanNode> plan;
  double cost = 0;
  double rows = 0;
  /// Query blocks fully optimized during this call (cache hits excluded) —
  /// the quantity Table 1 accounts for.
  int64_t blocks_planned = 0;
};

/// Facade over the Planner: the "physical optimizer" box of the paper's
/// Figure 1. Stateless; each call may share an AnnotationCache to reuse
/// sub-tree cost annotations across transformation states (§3.4.2) and a
/// cost cutoff (§3.4.1).
class PhysicalOptimizer {
 public:
  explicit PhysicalOptimizer(const Database& db, CostParams params = {})
      : db_(db), params_(params) {}

  Result<PhysicalOptimization> Optimize(
      const QueryBlock& qb, AnnotationCache* cache = nullptr,
      double cost_cutoff = std::numeric_limits<double>::infinity()) const;

  const CostParams& params() const { return params_; }

 private:
  const Database& db_;
  CostParams params_;
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_OPTIMIZER_H_
