#ifndef CBQT_OPTIMIZER_OPTIMIZER_H_
#define CBQT_OPTIMIZER_OPTIMIZER_H_

#include <limits>
#include <memory>

#include "cbqt/annotation_cache.h"
#include "common/budget.h"
#include "common/fault_injector.h"
#include "common/guardrails.h"
#include "common/status.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "optimizer/planner.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// Result of physically optimizing a query tree.
struct PhysicalOptimization {
  std::unique_ptr<PlanNode> plan;
  double cost = 0;
  double rows = 0;
  /// Query blocks fully optimized during this call (cache hits excluded) —
  /// the quantity Table 1 accounts for.
  int64_t blocks_planned = 0;
};

/// Per-call knobs of one physical optimization.
struct PhysicalOptimizeOptions {
  AnnotationCache* cache = nullptr;  ///< §3.4.2 sub-tree annotation reuse
  double cost_cutoff =
      std::numeric_limits<double>::infinity();  ///< §3.4.1 cut-off
  /// When non-null, the planner polls the optimization deadline per planned
  /// block and aborts with kBudgetExhausted once it trips — the caller
  /// (search / framework) degrades to its best-so-far answer.
  BudgetTracker* budget = nullptr;
  /// Testing only: deterministic fault injection (FaultSite::kPlanner fires
  /// once per Optimize call).
  FaultInjector* faults = nullptr;
  /// When non-null, cross-state join-order memoization: finished DP
  /// subproblems (per subset of a block's FROM list) are keyed by canonical
  /// fingerprints of the member relations and applicable predicates, so
  /// byte-identical join problems recurring across transformation states
  /// skip re-enumeration. Results are bit-identical with and without it.
  AnnotationCache* join_memo = nullptr;
  /// Runtime guardrails (cancellation token, per-query memory tracker,
  /// guardrail fault sites), polled at the per-block budget quantum.
  QueryGuards guards;
  /// MQO batch sharing: accept annotation-cache hits from any member of the
  /// signature's canonical equivalence class instead of requiring an exact
  /// unparsing match. Row-identical results; plan text may follow the
  /// cached member's free orderings. See Planner::relaxed_reuse_.
  bool relaxed_annotation_reuse = false;
};

/// Facade over the Planner: the "physical optimizer" box of the paper's
/// Figure 1. Stateless; each call may share an AnnotationCache to reuse
/// sub-tree cost annotations across transformation states (§3.4.2), a cost
/// cutoff (§3.4.1), and a resource budget (governor).
class PhysicalOptimizer {
 public:
  explicit PhysicalOptimizer(const Database& db, CostParams params = {})
      : db_(db), params_(params) {}

  Result<PhysicalOptimization> Optimize(
      const QueryBlock& qb, const PhysicalOptimizeOptions& options = {}) const;

  /// Convenience overload predating PhysicalOptimizeOptions.
  Result<PhysicalOptimization> Optimize(
      const QueryBlock& qb, AnnotationCache* cache,
      double cost_cutoff = std::numeric_limits<double>::infinity()) const {
    PhysicalOptimizeOptions options;
    options.cache = cache;
    options.cost_cutoff = cost_cutoff;
    return Optimize(qb, options);
  }

  const CostParams& params() const { return params_; }

 private:
  const Database& db_;
  CostParams params_;
};

}  // namespace cbqt

#endif  // CBQT_OPTIMIZER_OPTIMIZER_H_
