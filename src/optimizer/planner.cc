#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <set>

#include "common/str_util.h"
#include "sql/expr_util.h"
#include "sql/signature.h"
#include "sql/unparser.h"

namespace cbqt {

namespace {

// ---------------------------------------------------------------------------
// small helpers
// ---------------------------------------------------------------------------

int CountExpensiveCalls(const Expr& e) {
  int n = 0;
  VisitExprConst(&e, [&n](const Expr* x) {
    if (x->kind == ExprKind::kFuncCall && StartsWith(x->func_name, "expensive_")) {
      ++n;
    }
  });
  return n;
}

// Per-row evaluation cost of a set of predicates.
double PredEvalCost(const std::vector<const Expr*>& preds,
                    const CostParams& P) {
  double cost = 0;
  for (const Expr* p : preds) {
    cost += P.cpu_pred;
    cost += CountExpensiveCalls(*p) * P.expensive_call;
  }
  return cost;
}

double ConjSelectivity(const std::vector<const Expr*>& preds,
                       const StatsContext& ctx) {
  double s = 1.0;
  for (const Expr* p : preds) s *= Selectivity(*p, ctx);
  return std::max(s, 1e-9);
}

Schema SchemaForTable(const TableRef& tr) {
  Schema schema;
  for (const auto& col : tr.table_def->columns) {
    schema.push_back(ColumnSlot{tr.alias, col.name, col.type});
  }
  schema.push_back(ColumnSlot{tr.alias, "rowid", DataType::kInt64});
  return schema;
}

RelStats StatsForTable(const Database& db, const TableRef& tr) {
  RelStats rel;
  const TableStats* ts = db.stats().Find(tr.table_name);
  if (ts == nullptr) {
    rel.rows = 1000;  // dynamic-sampling default for unanalyzed tables
    return rel;
  }
  rel.rows = ts->rows;
  for (size_t i = 0; i < tr.table_def->columns.size() && i < ts->columns.size();
       ++i) {
    rel.columns[tr.table_def->columns[i].name] = ts->columns[i];
  }
  ColumnStats rowid;
  rowid.ndv = ts->rows;
  rowid.null_frac = 0;
  rel.columns["rowid"] = rowid;
  return rel;
}

// Replaces, in-place, any subtree of *e structurally equal to patterns[k]
// with a column ref ("", names[k]). Does not descend into subquery blocks.
void SubstituteSlots(ExprPtr* e, const std::vector<const Expr*>& patterns,
                     const std::vector<std::string>& names) {
  if (*e == nullptr) return;
  for (size_t k = 0; k < patterns.size(); ++k) {
    if (ExprEquals(**e, *patterns[k])) {
      auto ref = MakeColumnRef("", names[k]);
      ref->type = (*e)->type;
      *e = std::move(ref);
      return;
    }
  }
  for (auto& c : (*e)->children) SubstituteSlots(&c, patterns, names);
  for (auto& c : (*e)->partition_by) SubstituteSlots(&c, patterns, names);
  for (auto& c : (*e)->win_order_by) SubstituteSlots(&c, patterns, names);
}

// Collects kSubquery nodes in `e` in pre-order (not descending into nested
// subquery blocks). The executor uses the same traversal order to pair
// subquery expressions with their planned subplans.
void CollectSubqueryNodes(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kSubquery) {
    out->push_back(e);
    // IN/ANY left operands cannot contain further subqueries in our subset.
    return;
  }
  for (const auto& c : e->children) CollectSubqueryNodes(c.get(), out);
  for (const auto& c : e->partition_by) CollectSubqueryNodes(c.get(), out);
  for (const auto& c : e->win_order_by) CollectSubqueryNodes(c.get(), out);
}

// Outer column references of a (sub)query block: refs whose alias is not
// defined anywhere inside the block tree.
std::vector<std::pair<std::string, std::string>> CollectOuterRefs(
    const QueryBlock& qb) {
  std::set<std::string> inner;
  CollectDefinedAliases(qb, &inner);
  std::set<std::pair<std::string, std::string>> seen;
  std::vector<std::pair<std::string, std::string>> out;
  VisitAllExprsConst(&qb, [&](const Expr* e) {
    if (e->kind == ExprKind::kColumnRef && inner.count(e->table_alias) == 0 &&
        !e->table_alias.empty()) {
      auto key = std::make_pair(e->table_alias, e->column_name);
      if (seen.insert(key).second) out.push_back(key);
    }
  });
  return out;
}

double GroupOutputRows(const std::vector<ExprPtr>& keys,
                       const std::vector<int>* set, const StatsContext& ctx,
                       double input_rows) {
  if (keys.empty()) return 1;
  double prod = 1;
  if (set == nullptr) {
    for (const auto& k : keys) prod *= EstimateNdv(*k, ctx, input_rows);
  } else {
    if (set->empty()) return 1;
    for (int i : *set) {
      prod *= EstimateNdv(*keys[static_cast<size_t>(i)], ctx, input_rows);
    }
  }
  return std::min(std::max(1.0, input_rows), prod);
}

}  // namespace

// ---------------------------------------------------------------------------
// BuildScan: access-path selection for one base table
// ---------------------------------------------------------------------------

Result<JoinStepPlan> Planner::BuildScan(
    const TableRef& tr, const std::vector<const Expr*>& filters,
    const std::vector<std::pair<std::string, const Expr*>>& extra_probes,
    const StatsContext& ctx, std::set<const Expr*>* used_extra_probes) {
  const CostParams& P = params_;
  const RelStats* rel = ctx.FindRelation(tr.alias);
  double base_rows = rel != nullptr ? rel->rows : 1000;
  const TableStats* ts = db_.stats().Find(tr.table_name);
  double blocks = ts != nullptr ? ts->blocks : std::max(1.0, base_rows / 100);

  // Candidate equality probes: filter conjuncts `col = bound-value` plus
  // join-derived probes handed in by the join coster.
  struct Probe {
    std::string column;
    const Expr* value;       // expression producing the probe value
    const Expr* source;      // original predicate (to exclude from residual)
    double sel;
  };
  std::vector<Probe> probes;
  for (const Expr* f : filters) {
    if (f->kind != ExprKind::kBinary || f->bop != BinaryOp::kEq) continue;
    const Expr* l = f->children[0].get();
    const Expr* r = f->children[1].get();
    const Expr* col = nullptr;
    const Expr* val = nullptr;
    if (l->kind == ExprKind::kColumnRef && l->corr_depth == 0 &&
        l->table_alias == tr.alias) {
      col = l;
      val = r;
    } else if (r->kind == ExprKind::kColumnRef && r->corr_depth == 0 &&
               r->table_alias == tr.alias) {
      col = r;
      val = l;
    }
    if (col == nullptr) continue;
    // The probe value must not depend on this table.
    if (ExprUsesAlias(*val, tr.alias)) continue;
    double sel = Selectivity(*f, ctx);
    probes.push_back(Probe{col->column_name, val, f, sel});
  }
  for (const auto& [col, val] : extra_probes) {
    const ColumnStats* cs = ctx.FindColumn(tr.alias, col);
    double sel = (cs != nullptr && cs->ndv > 0) ? 1.0 / cs->ndv : 0.01;
    probes.push_back(Probe{col, val, nullptr, sel});
  }

  // Full-scan option.
  double full_sel = ConjSelectivity(filters, ctx);
  double full_rows = std::max(base_rows * full_sel, 0.0);
  double full_cost = blocks * P.seq_block + base_rows * P.cpu_tuple +
                     base_rows * PredEvalCost(filters, P);

  // Best index option.
  double best_cost = full_cost;
  double best_rows = full_rows;
  const IndexDef* best_index = nullptr;
  std::vector<const Probe*> best_used;
  for (const auto& idx : tr.table_def->indexes) {
    std::vector<const Probe*> used;
    for (const auto& key_col : idx.columns) {
      const Probe* found = nullptr;
      for (const auto& p : probes) {
        bool already = false;
        for (const Probe* u : used) {
          if (u == &p) already = true;
        }
        if (!already && p.column == key_col) {
          found = &p;
          break;
        }
      }
      if (found == nullptr) break;
      used.push_back(found);
    }
    if (used.empty()) continue;
    double probe_sel = 1.0;
    std::set<const Expr*> used_sources;
    for (const Probe* u : used) {
      probe_sel *= u->sel;
      if (u->source != nullptr) used_sources.insert(u->source);
    }
    double match_rows = std::max(base_rows * probe_sel, 0.0);
    std::vector<const Expr*> residual;
    for (const Expr* f : filters) {
      if (used_sources.count(f) == 0) residual.push_back(f);
    }
    double out_rows = match_rows * ConjSelectivity(residual, ctx);
    double cost = P.index_probe + match_rows * P.index_row +
                  match_rows * PredEvalCost(residual, P);
    if (cost < best_cost) {
      best_cost = cost;
      best_rows = out_rows;
      best_index = &idx;
      best_used = used;
    }
  }

  JoinStepPlan step;
  if (best_index == nullptr) {
    auto node = std::make_unique<PlanNode>(PlanOp::kTableScan);
    node->table_name = tr.table_name;
    node->table_alias = tr.alias;
    node->output = SchemaForTable(tr);
    for (const Expr* f : filters) node->filter.push_back(f->Clone());
    node->est_rows = full_rows;
    node->est_cost = full_cost;
    step.plan = std::move(node);
    step.rows = full_rows;
    step.cost = full_cost;
    return step;
  }
  auto node = std::make_unique<PlanNode>(PlanOp::kIndexScan);
  node->table_name = tr.table_name;
  node->table_alias = tr.alias;
  node->index_name = best_index->name;
  node->output = SchemaForTable(tr);
  std::set<const Expr*> used_sources;
  for (const Probe* u : best_used) {
    node->probes.push_back(u->value->Clone());
    if (u->source != nullptr) used_sources.insert(u->source);
    if (u->source == nullptr && used_extra_probes != nullptr) {
      used_extra_probes->insert(u->value);
    }
  }
  for (const Expr* f : filters) {
    if (used_sources.count(f) == 0) node->filter.push_back(f->Clone());
  }
  node->est_rows = best_rows;
  node->est_cost = best_cost;
  step.plan = std::move(node);
  step.rows = best_rows;
  step.cost = best_cost;
  return step;
}

// ---------------------------------------------------------------------------
// BlockJoinCoster: join-method and join-step costing for one block
// ---------------------------------------------------------------------------

namespace {

struct RelEntry {
  const TableRef* tr = nullptr;
  std::vector<const Expr*> filters;          // single-alias predicates
  std::unique_ptr<PlanNode> derived_plan;    // planned view (cloned on use)
  double derived_cost = 0;
  double derived_rows = 0;
  bool lateral = false;
  uint64_t deps = 0;
};

struct WherePred {
  const Expr* expr;
  uint64_t mask;  // relations referenced
};

}  // namespace

class BlockJoinCoster : public JoinCoster {
 public:
  BlockJoinCoster(Planner* planner, const CostParams& P,
                  const StatsContext& ctx, std::vector<RelEntry> rels,
                  std::vector<WherePred> preds,
                  const std::map<std::string, int>& alias_to_rel)
      : planner_(planner),
        P_(P),
        ctx_(ctx),
        rels_(std::move(rels)),
        preds_(std::move(preds)),
        alias_to_rel_(alias_to_rel) {}

  Result<JoinStepPlan> BaseRel(int rel) override {
    RelEntry& r = rels_[static_cast<size_t>(rel)];
    if (r.tr->IsBaseTable()) {
      return planner_->BuildScan(*r.tr, r.filters, {}, ctx_);
    }
    // Derived table: clone the pre-planned view, apply its filters.
    JoinStepPlan step;
    step.plan = r.derived_plan->Clone();
    step.rows = r.derived_rows;
    step.cost = r.derived_cost;
    if (!r.filters.empty()) {
      auto filter = std::make_unique<PlanNode>(PlanOp::kFilter);
      filter->output = step.plan->output;
      for (const Expr* f : r.filters) filter->filter.push_back(f->Clone());
      step.rows *= ConjSelectivity(r.filters, ctx_);
      step.cost += r.derived_rows * PredEvalCost(r.filters, P_);
      filter->est_rows = step.rows;
      filter->est_cost = step.cost;
      filter->children.push_back(std::move(step.plan));
      step.plan = std::move(filter);
    }
    return step;
  }

  Result<JoinStepPlan> Join(const JoinStepPlan& left, uint64_t left_mask,
                            int rel) override {
    RelEntry& r = rels_[static_cast<size_t>(rel)];
    uint64_t bit = 1ULL << rel;
    uint64_t new_mask = left_mask | bit;

    JoinKind kind = r.tr->join;
    bool null_aware = kind == JoinKind::kAntiNA;

    // Applicable predicates: WHERE join predicates completed by adding
    // `rel`, plus the relation's own ON/unnesting conditions. WHERE
    // predicates completed at an outer join must NOT become part of the
    // join condition (that would re-admit null-extended rows the WHERE
    // clause rejects); they are applied as a filter above the join.
    std::vector<const Expr*> conds;
    std::vector<const Expr*> post_conds;
    for (const auto& p : preds_) {
      if ((p.mask & ~new_mask) == 0 && (p.mask & bit) != 0) {
        if (kind == JoinKind::kLeftOuter) {
          post_conds.push_back(p.expr);
        } else {
          conds.push_back(p.expr);
        }
      }
    }
    for (const auto& c : r.tr->join_conds) conds.push_back(c.get());

    // Equi conditions usable as hash keys / index probes: one side only
    // references `rel`, the other only relations in left_mask.
    struct EquiCond {
      const Expr* pred;
      const Expr* left_side;   // refers to left_mask relations
      const Expr* right_side;  // refers to rel
    };
    std::vector<EquiCond> equis;
    for (const Expr* c : conds) {
      if (c->kind != ExprKind::kBinary || c->bop != BinaryOp::kEq) continue;
      const Expr* a = c->children[0].get();
      const Expr* b = c->children[1].get();
      uint64_t am = AliasMask(*a);
      uint64_t bm = AliasMask(*b);
      if (am != 0 && (am & ~left_mask) == 0 && bm == bit) {
        equis.push_back(EquiCond{c, a, b});
      } else if (bm != 0 && (bm & ~left_mask) == 0 && am == bit) {
        equis.push_back(EquiCond{c, b, a});
      }
    }

    // Output cardinality estimates.
    double conds_sel = ConjSelectivity(conds, ctx_);
    double right_rows_base = RightRows(rel);
    double inner_rows =
        std::max(left.rows * right_rows_base * conds_sel, 0.0);
    double semi_sel = 0.5;
    if (!equis.empty()) {
      semi_sel = SemiJoinSelectivity(*equis[0].pred, ctx_, r.tr->alias);
    }
    double out_rows;
    switch (kind) {
      case JoinKind::kSemi:
        out_rows = std::max(1.0, left.rows * semi_sel);
        break;
      case JoinKind::kAnti:
      case JoinKind::kAntiNA:
        out_rows = std::max(1.0, left.rows * (1.0 - semi_sel));
        break;
      case JoinKind::kLeftOuter:
        out_rows = std::max(left.rows, inner_rows);
        break;
      default:
        out_rows = inner_rows;
        break;
    }

    // ---- candidate methods ----
    struct Option {
      double cost = 0;
      PlanOp op = PlanOp::kNestedLoopJoin;
      bool use_index = false;
      bool valid = false;
    };
    Option best;
    best.cost = std::numeric_limits<double>::infinity();

    Result<JoinStepPlan> right_base = BaseRightPlan(rel);
    if (!right_base.ok()) return right_base.status();

    if (r.lateral) {
      // JPPD views must be joined by nested loop after their referenced
      // tables (paper §2.2.3).
      double cost = left.cost + left.rows * r.derived_cost +
                    out_rows * P_.cpu_tuple;
      best = Option{cost, PlanOp::kNestedLoopJoin, false, true};
      // The lateral view's internal predicates already account for the
      // correlation; per execution it returns derived_rows rows.
      out_rows = std::max(1.0, left.rows * r.derived_rows * conds_sel);
      if (kind == JoinKind::kSemi) {
        out_rows = std::max(1.0, left.rows * std::min(1.0, r.derived_rows));
      }
    } else {
      // Hash join.
      if (!equis.empty()) {
        double penalty = null_aware ? 1.6 : 1.0;
        double cost = left.cost + right_base->cost +
                      right_base->rows * P_.hash_build * penalty +
                      left.rows * P_.hash_probe * penalty +
                      out_rows * P_.cpu_tuple;
        if (cost < best.cost) best = Option{cost, PlanOp::kHashJoin, false, true};
      }
      // Merge join (inner only).
      if (!equis.empty() && kind == JoinKind::kInner) {
        double cost = left.cost + right_base->cost + P_.SortCost(left.rows) +
                      P_.SortCost(right_base->rows) +
                      (left.rows + right_base->rows) * P_.cpu_tuple +
                      out_rows * P_.cpu_tuple;
        if (cost < best.cost) {
          best = Option{cost, PlanOp::kMergeJoin, false, true};
        }
      }
      // Index nested loop (base tables with a usable index).
      if (r.tr->IsBaseTable() && !equis.empty()) {
        std::vector<std::pair<std::string, const Expr*>> extra;
        for (const auto& eq : equis) {
          if (eq.right_side->kind == ExprKind::kColumnRef) {
            extra.push_back({eq.right_side->column_name, eq.left_side});
          }
        }
        if (!extra.empty()) {
          auto probe_scan = planner_->BuildScan(*r.tr, r.filters, extra, ctx_);
          if (probe_scan.ok() &&
              probe_scan->plan->op == PlanOp::kIndexScan) {
            double per_exec = probe_scan->cost;
            double cost = left.cost + left.rows * per_exec +
                          out_rows * P_.cpu_tuple;
            if (cost < best.cost) {
              best = Option{cost, PlanOp::kNestedLoopJoin, true, true};
            }
          }
        }
      }
      // Plain nested loop over the materialized right input.
      {
        double pair_cost = PredEvalCost(conds, P_) + P_.rescan_row;
        double cost = left.cost + right_base->cost +
                      left.rows * right_base->rows * pair_cost +
                      out_rows * P_.cpu_tuple;
        if (cost < best.cost) {
          best = Option{cost, PlanOp::kNestedLoopJoin, false, true};
        }
      }
    }

    if (!best.valid) return Status::CostCutoff();

    // ---- build the chosen node ----
    auto node = std::make_unique<PlanNode>(best.op);
    node->join_kind = kind;
    node->null_aware = null_aware;
    node->children.push_back(left.node()->Clone());

    if (best.op == PlanOp::kHashJoin || best.op == PlanOp::kMergeJoin) {
      node->children.push_back(right_base->node()->Clone());
      std::set<const Expr*> used;
      for (const auto& eq : equis) {
        node->hash_left_keys.push_back(eq.left_side->Clone());
        node->hash_right_keys.push_back(eq.right_side->Clone());
        used.insert(eq.pred);
      }
      for (const Expr* c : conds) {
        if (used.count(c) == 0) node->join_conds.push_back(c->Clone());
      }
    } else if (r.lateral) {
      node->rescan_right = true;
      std::unique_ptr<PlanNode> right = r.derived_plan->Clone();
      if (!r.filters.empty()) {
        // Single-alias WHERE predicates on the lateral view apply to its
        // output on every rescan.
        auto filter = std::make_unique<PlanNode>(PlanOp::kFilter);
        filter->output = right->output;
        for (const Expr* f : r.filters) filter->filter.push_back(f->Clone());
        filter->est_rows =
            std::max(right->est_rows * ConjSelectivity(r.filters, ctx_), 0.0);
        filter->est_cost =
            right->est_cost + right->est_rows * PredEvalCost(r.filters, P_);
        filter->children.push_back(std::move(right));
        right = std::move(filter);
      }
      node->children.push_back(std::move(right));
      for (const Expr* c : conds) node->join_conds.push_back(c->Clone());
    } else if (best.use_index) {
      node->rescan_right = true;
      std::vector<std::pair<std::string, const Expr*>> extra;
      for (const auto& eq : equis) {
        if (eq.right_side->kind == ExprKind::kColumnRef) {
          extra.push_back({eq.right_side->column_name, eq.left_side});
        }
      }
      std::set<const Expr*> used_values;
      auto probe_scan =
          planner_->BuildScan(*r.tr, r.filters, extra, ctx_, &used_values);
      if (!probe_scan.ok()) return probe_scan.status();
      node->children.push_back(std::move(probe_scan->plan));
      // Only conditions whose probe the chosen index actually consumed are
      // guaranteed by the scan; everything else — including equis on columns
      // the index does not cover — must still be evaluated at the join.
      std::set<const Expr*> probe_preds;
      for (const auto& eq : equis) {
        if (used_values.count(eq.left_side) != 0) probe_preds.insert(eq.pred);
      }
      for (const Expr* c : conds) {
        if (probe_preds.count(c) == 0) node->join_conds.push_back(c->Clone());
      }
    } else {
      node->children.push_back(right_base->node()->Clone());
      for (const Expr* c : conds) node->join_conds.push_back(c->Clone());
    }

    // Output schema: left ⊕ right for inner/outer, left only for semi/anti.
    node->output = node->children[0]->output;
    if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter) {
      const Schema& right_schema = node->children[1]->output;
      node->output.insert(node->output.end(), right_schema.begin(),
                          right_schema.end());
    }
    node->est_rows = out_rows;
    node->est_cost = best.cost;

    double step_cost = best.cost;
    if (!post_conds.empty()) {
      auto filter = std::make_unique<PlanNode>(PlanOp::kFilter);
      filter->output = node->output;
      for (const Expr* c : post_conds) filter->filter.push_back(c->Clone());
      step_cost += out_rows * PredEvalCost(post_conds, P_);
      out_rows = std::max(out_rows * ConjSelectivity(post_conds, ctx_), 0.0);
      filter->est_rows = out_rows;
      filter->est_cost = step_cost;
      filter->children.push_back(std::move(node));
      node = std::move(filter);
    }

    JoinStepPlan step;
    step.plan = std::move(node);
    step.rows = out_rows;
    step.cost = step_cost;
    return step;
  }

 private:
  uint64_t AliasMask(const Expr& e) const {
    uint64_t mask = 0;
    bool unknown = false;
    VisitExprConst(&e, [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef) {
        auto it = alias_to_rel_.find(x->table_alias);
        if (it != alias_to_rel_.end() && x->corr_depth == 0) {
          mask |= 1ULL << it->second;
        } else if (x->corr_depth == 0) {
          unknown = true;
        }
      }
    });
    if (unknown) return ~0ULL;  // refuses to classify — never matches a side
    return mask;
  }

  double RightRows(int rel) {
    RelEntry& r = rels_[static_cast<size_t>(rel)];
    if (r.tr->IsBaseTable()) {
      const RelStats* rs = ctx_.FindRelation(r.tr->alias);
      double rows = rs != nullptr ? rs->rows : 1000;
      return std::max(rows * ConjSelectivity(r.filters, ctx_), 0.0);
    }
    return std::max(r.derived_rows * ConjSelectivity(r.filters, ctx_), 0.0);
  }

  Result<JoinStepPlan> BaseRightPlan(int rel) {
    auto it = base_cache_.find(rel);
    if (it == base_cache_.end()) {
      auto base = BaseRel(rel);
      if (!base.ok()) return base.status();
      it = base_cache_.emplace(rel, std::move(base.value())).first;
    }
    JoinStepPlan copy;
    // Borrow the cached scan: Join() only reads and Clone()s the right
    // input, and the cache entry (a stable map node) outlives every
    // borrower, all of which die with the enumeration.
    copy.shared = std::shared_ptr<const PlanNode>(std::shared_ptr<void>(),
                                                  it->second.plan.get());
    copy.rows = it->second.rows;
    copy.cost = it->second.cost;
    return copy;
  }

  Planner* planner_;
  const CostParams& P_;
  const StatsContext& ctx_;
  std::vector<RelEntry> rels_;
  std::vector<WherePred> preds_;
  std::map<std::string, int> alias_to_rel_;
  std::map<int, JoinStepPlan> base_cache_;
};

// ---------------------------------------------------------------------------
// SubsetJoinMemo: cross-state join-order memoization
// ---------------------------------------------------------------------------

namespace {

// Keys one block's join-order DP subproblems so their results transfer
// across transformation states. A subset mask is fingerprinted by its member
// relations in FROM order — alias, content (table name or the derived
// block's structural signature), join kind, laterality, ON conditions,
// single-relation filters (including the constant predicates attached to
// relation 0), dependency aliases — plus every WHERE join predicate falling
// entirely within the subset, in WHERE order. Everything the DP value of a
// subset depends on is covered: selectivities resolve through the member
// aliases only, derived-table stats are functions of the block signature,
// and correlated references degrade to defaults deterministically.
//
// Serialization keeps relative FROM / WHERE order (rather than sorting) so
// the enumerator's tie-break order is identical whenever fingerprints
// match — a hit returns exactly what this state's own DP would have built.
class SubsetJoinMemo : public JoinOrderMemo {
 public:
  SubsetJoinMemo(AnnotationCache* cache, std::vector<std::string> rel_fps,
                 std::vector<std::pair<uint64_t, std::string>> pred_fps) {
    cache_ = cache;
    // Hash every fingerprint string once up front; per-mask keys are then
    // order-dependent 128-bit combinations rendered as 32 hex chars. The
    // enumerator probes the memo for every subset of every state, so key
    // construction must not re-serialize the (view-signature-sized)
    // fingerprint strings per probe.
    rel_h_.reserve(rel_fps.size());
    for (const std::string& fp : rel_fps) {
      rel_h_.push_back({Fnv1a(fp, kSeedLo), Fnv1a(fp, kSeedHi)});
    }
    pred_h_.reserve(pred_fps.size());
    for (const auto& [pmask, fp] : pred_fps) {
      pred_h_.push_back({pmask, {Fnv1a(fp, kSeedLo), Fnv1a(fp, kSeedHi)}});
    }
  }

  Probe Lookup(uint64_t mask, double cutoff, JoinStepPlan* out) override {
    char key[kKeyLen];
    KeyFor(mask, key);
    std::shared_ptr<const CostAnnotation> hit =
        cache_->Find(std::string_view(key, kKeyLen));
    if (hit == nullptr) return Probe::kMiss;
    // The stored entry is the subset's cutoff-independent best (see
    // join_order.h): a best above the cutoff means the subset is pruned
    // under it, exactly as a from-scratch DP would conclude.
    if (hit->cost > cutoff) return Probe::kPruned;
    // Borrow the memoized plan: the aliasing shared_ptr pins the cache
    // entry (Find hands out ownership), so the hit stays valid even if the
    // entry is evicted mid-enumeration. No per-hit deep copy.
    out->plan.reset();
    out->shared = std::shared_ptr<const PlanNode>(hit, hit->plan.get());
    out->rows = hit->rows;
    out->cost = hit->cost;
    return Probe::kHit;
  }

  void Store(uint64_t mask, const JoinStepPlan& step) override {
    CostAnnotation ann;
    ann.cost = step.cost;
    ann.rows = step.rows;
    ann.plan = step.node()->Clone();
    char key[kKeyLen];
    KeyFor(mask, key);
    cache_->Put(std::string_view(key, kKeyLen), std::move(ann));
  }

 private:
  struct Hash128 {
    uint64_t lo;
    uint64_t hi;
  };
  static constexpr uint64_t kSeedLo = 14695981039346656037ULL;  // FNV offset
  static constexpr uint64_t kSeedHi = 0x9e3779b97f4a7c15ULL;
  static constexpr size_t kKeyLen = 3 + 32;  // "jo:" + 2x16 hex chars

  static uint64_t Fnv1a(std::string_view s, uint64_t h) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    return h;
  }
  static void Mix(Hash128* acc, const Hash128& v) {
    // Order-dependent combine (serialization order carries the tie-break
    // identity argument, so the key must not be commutative).
    acc->lo = (acc->lo ^ v.lo) * 1099511628211ULL + (acc->lo << 7);
    acc->hi = (acc->hi ^ v.hi) * 0xc2b2ae3d27d4eb4fULL + (acc->hi >> 9);
  }

  void KeyFor(uint64_t mask, char out[kKeyLen]) const {
    Hash128 acc{kSeedLo, kSeedHi};
    for (size_t i = 0; i < rel_h_.size(); ++i) {
      if (mask & (1ULL << i)) Mix(&acc, rel_h_[i]);
    }
    Mix(&acc, {0x50u, 0x50u});  // relation/predicate section separator
    for (const auto& [pmask, h] : pred_h_) {
      if ((pmask & ~mask) == 0) Mix(&acc, h);
    }
    std::memcpy(out, "jo:", 3);
    static const char* hex = "0123456789abcdef";
    for (int i = 0; i < 16; ++i) {
      out[3 + i] = hex[(acc.lo >> (60 - 4 * i)) & 0xf];
      out[19 + i] = hex[(acc.hi >> (60 - 4 * i)) & 0xf];
    }
  }

  AnnotationCache* cache_;
  std::vector<Hash128> rel_h_;
  std::vector<std::pair<uint64_t, Hash128>> pred_h_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

Result<BlockPlan> Planner::PlanBlock(const QueryBlock& qb) {
  // Cooperative governor poll: one cheap deadline check per planned block,
  // so a runaway optimization of a deeply nested query cancels mid-plan.
  if (budget_ != nullptr && budget_->CheckDeadline()) {
    return Status::BudgetExhausted(
        "optimization deadline exceeded while planning");
  }
  // Same quantum, harder stop: a tripped cancellation token fails the
  // query outright instead of degrading it.
  if (guards_.any()) CBQT_RETURN_IF_ERROR(guards_.Poll());
  std::string sig;
  std::string exact;
  if (cache_ != nullptr) {
    sig = BlockSignature(qb);
    exact = BlockToSql(qb);
    std::shared_ptr<const CostAnnotation> hit = cache_->Find(sig);
    // The canonical signature keys a whole equivalence class of blocks
    // (conjunct order, commuted operands, inner FROM order). Default reuse
    // additionally requires the exact unparsing to match, so a hit is
    // guaranteed bit-identical to what planning this block would produce —
    // parallel state evaluation stays deterministic no matter which class
    // member reached the cache first. Relaxed reuse (MQO batch sharing)
    // accepts any class member: row-identical results, possibly different
    // plan text (tie-breaks followed the cached member's orderings).
    if (hit != nullptr && (relaxed_reuse_ || hit->exact_sql == exact)) {
      BlockPlan out;
      out.plan = hit->plan->Clone();
      out.out_stats = hit->out_stats;
      return out;
    }
  }
  Result<BlockPlan> result =
      qb.IsSetOp() ? PlanSetOp(qb) : PlanRegular(qb);
  if (!result.ok()) return result;
  ++blocks_planned_;
  if (cache_ != nullptr) {
    CostAnnotation ann;
    ann.cost = result->plan->est_cost;
    ann.rows = result->plan->est_rows;
    ann.out_stats = result->out_stats;
    ann.plan = result->plan->Clone();
    ann.exact_sql = std::move(exact);
    cache_->Put(sig, std::move(ann));
  }
  return result;
}

Result<BlockPlan> Planner::PlanSetOp(const QueryBlock& qb) {
  auto node = std::make_unique<PlanNode>(PlanOp::kSetOp);
  node->set_op = qb.set_op;
  double rows = 0;
  double cost = 0;
  RelStats first_stats;
  for (size_t i = 0; i < qb.branches.size(); ++i) {
    auto branch = PlanBlock(*qb.branches[i]);
    if (!branch.ok()) return branch.status();
    if (i == 0) first_stats = branch->out_stats;
    double brows = branch->plan->est_rows;
    double bcost = branch->plan->est_cost;
    switch (qb.set_op) {
      case SetOpKind::kUnionAll:
      case SetOpKind::kUnion:
        rows += brows;
        break;
      case SetOpKind::kIntersect:
        rows = (i == 0) ? brows : std::min(rows, brows) * 0.5;
        break;
      case SetOpKind::kMinus:
        rows = (i == 0) ? brows : rows * 0.5;
        break;
      default:
        break;
    }
    cost += bcost;
    if (qb.set_op != SetOpKind::kUnionAll) cost += brows * params_.agg_row;
    node->children.push_back(std::move(branch->plan));
  }
  if (qb.set_op == SetOpKind::kUnion) rows *= 0.8;
  node->output = node->children[0]->output;
  node->est_rows = std::max(rows, 0.0);
  node->est_cost = cost;
  if (node->est_cost > cutoff_) return Status::CostCutoff();

  std::unique_ptr<PlanNode> top = std::move(node);
  if (qb.rownum_limit >= 0) {
    auto limit = std::make_unique<PlanNode>(PlanOp::kLimit);
    limit->limit = qb.rownum_limit;
    limit->output = top->output;
    limit->est_rows = std::min(static_cast<double>(qb.rownum_limit),
                               top->est_rows);
    limit->est_cost = top->est_cost;
    limit->children.push_back(std::move(top));
    top = std::move(limit);
  }

  BlockPlan out;
  out.out_stats = first_stats;
  out.out_stats.rows = top->est_rows;
  out.plan = std::move(top);
  return out;
}

Result<BlockPlan> Planner::PlanRegular(const QueryBlock& qb) {
  const CostParams& P = params_;

  // ---- 0. No-FROM block: a single synthetic row. ----
  if (qb.from.empty()) {
    auto node = std::make_unique<PlanNode>(PlanOp::kProject);
    for (const auto& item : qb.select) {
      node->projections.push_back(item.expr->Clone());
      node->output.push_back(ColumnSlot{"", item.alias, item.expr->type});
    }
    node->est_rows = 1;
    node->est_cost = P.cpu_tuple;
    BlockPlan out;
    out.out_stats.rows = 1;
    out.plan = std::move(node);
    return out;
  }

  // ---- 1. Classify WHERE conjuncts. ----
  bool lazy_limit_ok = qb.rownum_limit >= 0 && !qb.IsAggregating() &&
                       !qb.distinct && qb.order_by.empty();
  std::vector<const Expr*> tis_preds;
  std::map<std::string, std::vector<const Expr*>> rel_filters;
  std::vector<WherePred> join_preds;
  std::vector<const Expr*> deferred_preds;  // lazy under ROWNUM
  std::vector<const Expr*> const_preds;

  std::map<std::string, int> alias_to_rel;
  for (size_t i = 0; i < qb.from.size(); ++i) {
    alias_to_rel[qb.from[i].alias] = static_cast<int>(i);
  }
  auto alias_mask_of = [&](const Expr& e) {
    uint64_t mask = 0;
    VisitExprDeepConst(&e, [&](const Expr* x) {
      if (x->kind == ExprKind::kColumnRef) {
        auto it = alias_to_rel.find(x->table_alias);
        if (it != alias_to_rel.end()) mask |= 1ULL << it->second;
      }
    });
    return mask;
  };

  for (const auto& w : qb.where) {
    if (ContainsSubquery(*w)) {
      tis_preds.push_back(w.get());
      continue;
    }
    if (lazy_limit_ok && ContainsExpensivePredicate(*w)) {
      deferred_preds.push_back(w.get());
      continue;
    }
    std::set<std::string> aliases = CollectLocalAliases(*w);
    // Only aliases of this block count (correlated refs are bound values).
    std::set<std::string> local;
    for (const auto& a : aliases) {
      if (alias_to_rel.count(a) > 0) local.insert(a);
    }
    if (local.empty()) {
      const_preds.push_back(w.get());
    } else if (local.size() == 1 &&
               qb.from[static_cast<size_t>(
                           alias_to_rel[*local.begin()])].join !=
                   JoinKind::kLeftOuter) {
      rel_filters[*local.begin()].push_back(w.get());
    } else {
      // Multi-relation predicates, plus single-relation predicates on the
      // nullable side of an outer join: the latter must not be pushed below
      // the join (WHERE filters after null-extension), so they stay join
      // predicates and BlockJoinCoster applies them above the outer join.
      join_preds.push_back(WherePred{w.get(), alias_mask_of(*w)});
    }
  }

  // ---- 2. Relations + stats context. ----
  StatsContext ctx;
  std::vector<RelEntry> rels;
  rels.reserve(qb.from.size());
  for (size_t i = 0; i < qb.from.size(); ++i) {
    const TableRef& tr = qb.from[i];
    RelEntry entry;
    entry.tr = &tr;
    auto fit = rel_filters.find(tr.alias);
    if (fit != rel_filters.end()) entry.filters = fit->second;
    if (i == 0) {
      // Constant predicates: evaluate once at the driving relation.
      for (const Expr* c : const_preds) entry.filters.push_back(c);
    }
    if (tr.IsBaseTable()) {
      if (tr.table_def == nullptr) {
        return Status::Internal("unbound table ref: " + tr.alias);
      }
      ctx.AddRelation(tr.alias, StatsForTable(db_, tr));
    } else {
      auto sub = PlanBlock(*tr.derived);
      if (!sub.ok()) return sub.status();
      // Re-tag the view's output schema with the view alias.
      for (auto& slot : sub->plan->output) slot.alias = tr.alias;
      entry.derived_rows = sub->plan->est_rows;
      entry.derived_cost = sub->plan->est_cost;
      entry.lateral = tr.lateral;
      RelStats vstats = sub->out_stats;
      vstats.rows = entry.derived_rows;
      ctx.AddRelation(tr.alias, std::move(vstats));
      entry.derived_plan = std::move(sub->plan);
    }
    rels.push_back(std::move(entry));
  }

  // Dependencies (partial join orders).
  std::vector<uint64_t> deps(rels.size(), 0);
  for (size_t i = 0; i < rels.size(); ++i) {
    const TableRef& tr = qb.from[i];
    uint64_t self = 1ULL << i;
    for (const auto& c : tr.join_conds) {
      deps[i] |= alias_mask_of(*c) & ~self;
    }
    if (tr.lateral && tr.derived != nullptr) {
      for (const auto& [alias, col] : CollectOuterRefs(*tr.derived)) {
        auto it = alias_to_rel.find(alias);
        if (it != alias_to_rel.end()) deps[i] |= 1ULL << it->second;
      }
    }
  }

  // ---- 3. Join order search. ----
  std::unique_ptr<SubsetJoinMemo> memo;
  if (join_memo_ != nullptr && qb.from.size() >= 2 && qb.from.size() <= 64) {
    std::vector<std::string> rel_fps;
    rel_fps.reserve(qb.from.size());
    for (size_t i = 0; i < qb.from.size(); ++i) {
      const TableRef& tr = qb.from[i];
      std::string fp = tr.alias;
      fp += '=';
      if (tr.IsBaseTable()) {
        fp += "T:";
        fp += tr.table_name;
      } else {
        fp += "V:";
        // Exact unparsing, not the canonical BlockSignature: the memo's
        // contract is that a key collision implies the DP would re-run with
        // the same inputs in the same order (tie-break identity), which
        // canonicalized view signatures would weaken.
        fp += BlockToSql(*tr.derived);
      }
      fp += ";k";
      fp += std::to_string(static_cast<int>(tr.join));
      if (tr.lateral) fp += ";lat";
      for (const auto& c : tr.join_conds) {
        fp += ";on:";
        fp += ExprToSql(*c);
      }
      for (const Expr* f : rels[i].filters) {
        fp += ";f:";
        fp += ExprToSql(*f);
      }
      // Dependencies as alias names, so the fingerprint is independent of
      // absolute FROM positions (masks are not transferable across blocks).
      fp += ";d:";
      for (size_t j = 0; j < qb.from.size(); ++j) {
        if (deps[i] & (1ULL << j)) {
          fp += qb.from[j].alias;
          fp += ',';
        }
      }
      rel_fps.push_back(std::move(fp));
    }
    std::vector<std::pair<uint64_t, std::string>> pred_fps;
    pred_fps.reserve(join_preds.size());
    for (const auto& p : join_preds) {
      pred_fps.emplace_back(p.mask, ExprToSql(*p.expr));
    }
    memo = std::make_unique<SubsetJoinMemo>(join_memo_, std::move(rel_fps),
                                            std::move(pred_fps));
  }
  BlockJoinCoster coster(this, P, ctx, std::move(rels), join_preds,
                         alias_to_rel);
  JoinOrderEnumerator enumerator(deps, &coster, cutoff_,
                                 /*dp_threshold=*/10, memo.get());
  auto joined = enumerator.Enumerate();
  if (!joined.ok()) return joined.status();
  std::unique_ptr<PlanNode> top = joined->TakePlan();
  double rows = joined->rows;
  double cost = joined->cost;

  // ---- 4. TIS subquery filter. ----
  if (!tis_preds.empty()) {
    auto node = std::make_unique<PlanNode>(PlanOp::kSubqueryFilter);
    node->output = top->output;
    double sel = 1.0;
    for (const Expr* p : tis_preds) {
      node->filter.push_back(p->Clone());
      sel *= Selectivity(*p, ctx);
      std::vector<const Expr*> subs;
      CollectSubqueryNodes(p, &subs);
      for (const Expr* s : subs) {
        auto subplan = PlanBlock(*s->subquery);
        if (!subplan.ok()) return subplan.status();
        // TIS execution count: one evaluation per distinct correlation
        // value (the engine caches results, paper §2.1.1/§3.4.4).
        auto outer_refs = CollectOuterRefs(*s->subquery);
        double distinct_keys = 1;
        std::vector<ExprPtr> keys;
        for (const auto& [alias, col] : outer_refs) {
          auto ref = MakeColumnRef(alias, col);
          const ColumnStats* cs = ctx.FindColumn(alias, col);
          distinct_keys *= (cs != nullptr && cs->ndv > 0) ? cs->ndv : rows;
          keys.push_back(std::move(ref));
        }
        double nexec = outer_refs.empty()
                           ? 1.0
                           : std::min(rows, std::max(1.0, distinct_keys));
        cost += nexec * subplan->plan->est_cost + rows * P.cpu_pred;
        node->subplans.push_back(std::move(subplan->plan));
        node->subplan_corr_keys.push_back(std::move(keys));
      }
      cost += rows * PredEvalCost({p}, P);
    }
    rows = std::max(rows * sel, 0.0);
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
    if (cost > cutoff_) return Status::CostCutoff();
  }

  // ---- 5. Lazy ROWNUM limit (before projection; the deferred predicates
  // reference FROM columns). ----
  if (lazy_limit_ok && qb.rownum_limit >= 0) {
    auto node = std::make_unique<PlanNode>(PlanOp::kLimit);
    node->limit = qb.rownum_limit;
    node->output = top->output;
    double sel = std::max(ConjSelectivity(deferred_preds, ctx), 1e-6);
    double scanned =
        std::min(rows, static_cast<double>(qb.rownum_limit) / sel);
    for (const Expr* p : deferred_preds) node->filter.push_back(p->Clone());
    cost += scanned * PredEvalCost(deferred_preds, P) + scanned * P.cpu_tuple;
    rows = std::min(static_cast<double>(qb.rownum_limit), rows * sel);
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  // Prepare (cloned) upper expressions for substitution.
  std::vector<ExprPtr> sel_exprs;
  for (const auto& item : qb.select) sel_exprs.push_back(item.expr->Clone());
  std::vector<ExprPtr> having_exprs;
  for (const auto& h : qb.having) having_exprs.push_back(h->Clone());
  std::vector<ExprPtr> order_exprs;
  for (const auto& o : qb.order_by) order_exprs.push_back(o.expr->Clone());

  // ---- 6. Aggregation. ----
  if (qb.IsAggregating()) {
    std::vector<const Expr*> agg_nodes;
    auto collect_aggs = [&](const ExprPtr& e) {
      VisitExprConst(e.get(), [&](const Expr* x) {
        if (x->kind != ExprKind::kAggregate) return;
        for (const Expr* seen : agg_nodes) {
          if (ExprEquals(*seen, *x)) return;
        }
        agg_nodes.push_back(x);
      });
    };
    for (const auto& e : sel_exprs) collect_aggs(e);
    for (const auto& e : having_exprs) collect_aggs(e);
    for (const auto& e : order_exprs) collect_aggs(e);

    auto node = std::make_unique<PlanNode>(PlanOp::kAggregate);
    // Patterns must be owned clones: the raw nodes live inside the very
    // expressions SubstituteSlots rewrites, and would dangle after the
    // first replacement.
    std::vector<ExprPtr> pattern_storage;
    std::vector<const Expr*> patterns;
    std::vector<std::string> names;
    for (size_t j = 0; j < agg_nodes.size(); ++j) {
      node->agg_exprs.push_back(agg_nodes[j]->Clone());
      pattern_storage.push_back(agg_nodes[j]->Clone());
      names.push_back("$a" + std::to_string(j));
    }
    for (size_t g = 0; g < qb.group_by.size(); ++g) {
      node->group_keys.push_back(qb.group_by[g]->Clone());
      pattern_storage.push_back(qb.group_by[g]->Clone());
      names.push_back("$g" + std::to_string(g));
    }
    for (const auto& pat : pattern_storage) patterns.push_back(pat.get());
    node->grouping_sets = qb.grouping_sets;
    // Output schema: group keys then aggregates.
    Schema schema;
    for (size_t g = 0; g < qb.group_by.size(); ++g) {
      schema.push_back(ColumnSlot{"", "$g" + std::to_string(g),
                                  qb.group_by[g]->type});
    }
    for (size_t j = 0; j < agg_nodes.size(); ++j) {
      schema.push_back(ColumnSlot{"", "$a" + std::to_string(j),
                                  agg_nodes[j]->type});
    }
    node->output = std::move(schema);

    double out_rows = 0;
    int num_sets = 1;
    if (qb.grouping_sets.empty()) {
      out_rows = GroupOutputRows(qb.group_by, nullptr, ctx, rows);
    } else {
      num_sets = static_cast<int>(qb.grouping_sets.size());
      for (const auto& set : qb.grouping_sets) {
        out_rows += GroupOutputRows(qb.group_by, &set, ctx, rows);
      }
    }
    cost += rows * P.agg_row * num_sets + out_rows * P.cpu_tuple;
    rows = std::max(1.0, out_rows);
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
    if (cost > cutoff_) return Status::CostCutoff();

    for (auto& e : sel_exprs) SubstituteSlots(&e, patterns, names);
    for (auto& e : having_exprs) SubstituteSlots(&e, patterns, names);
    for (auto& e : order_exprs) SubstituteSlots(&e, patterns, names);
  }

  // ---- 7. HAVING. ----
  if (!having_exprs.empty()) {
    std::vector<const Expr*> plain;
    std::vector<const Expr*> with_sub;
    for (const auto& h : having_exprs) {
      if (ContainsSubquery(*h)) {
        with_sub.push_back(h.get());
      } else {
        plain.push_back(h.get());
      }
    }
    if (!plain.empty()) {
      auto node = std::make_unique<PlanNode>(PlanOp::kFilter);
      node->output = top->output;
      for (const Expr* p : plain) node->filter.push_back(p->Clone());
      rows = std::max(rows * ConjSelectivity(plain, ctx), 0.0);
      cost += top->est_rows * PredEvalCost(plain, P);
      node->est_rows = rows;
      node->est_cost = cost;
      node->children.push_back(std::move(top));
      top = std::move(node);
    }
    if (!with_sub.empty()) {
      auto node = std::make_unique<PlanNode>(PlanOp::kSubqueryFilter);
      node->output = top->output;
      for (const Expr* p : with_sub) {
        node->filter.push_back(p->Clone());
        std::vector<const Expr*> subs;
        CollectSubqueryNodes(p, &subs);
        for (const Expr* s : subs) {
          auto subplan = PlanBlock(*s->subquery);
          if (!subplan.ok()) return subplan.status();
          auto outer_refs = CollectOuterRefs(*s->subquery);
          std::vector<ExprPtr> keys;
          for (const auto& [alias, col] : outer_refs) {
            keys.push_back(MakeColumnRef(alias, col));
          }
          cost += std::max(1.0, rows) * subplan->plan->est_cost * 0.5;
          node->subplans.push_back(std::move(subplan->plan));
          node->subplan_corr_keys.push_back(std::move(keys));
        }
        rows = std::max(rows * Selectivity(*p, ctx), 0.0);
      }
      node->est_rows = rows;
      node->est_cost = cost;
      node->children.push_back(std::move(top));
      top = std::move(node);
    }
  }

  // ---- 8. Window functions. ----
  {
    std::vector<const Expr*> win_nodes;
    auto collect_wins = [&](const ExprPtr& e) {
      VisitExprConst(e.get(), [&](const Expr* x) {
        if (x->kind != ExprKind::kWindow) return;
        for (const Expr* seen : win_nodes) {
          if (ExprEquals(*seen, *x)) return;
        }
        win_nodes.push_back(x);
      });
    };
    for (const auto& e : sel_exprs) collect_wins(e);
    for (const auto& e : order_exprs) collect_wins(e);
    if (!win_nodes.empty()) {
      auto node = std::make_unique<PlanNode>(PlanOp::kWindow);
      node->output = top->output;
      std::vector<ExprPtr> pattern_storage;
      std::vector<const Expr*> patterns;
      std::vector<std::string> names;
      for (size_t j = 0; j < win_nodes.size(); ++j) {
        node->window_exprs.push_back(win_nodes[j]->Clone());
        std::string name = "$w" + std::to_string(j);
        node->output.push_back(ColumnSlot{"", name, win_nodes[j]->type});
        pattern_storage.push_back(win_nodes[j]->Clone());
        names.push_back(name);
      }
      for (const auto& pat : pattern_storage) patterns.push_back(pat.get());
      cost += P.SortCost(rows) + rows * P.cpu_tuple;
      node->est_rows = rows;
      node->est_cost = cost;
      node->children.push_back(std::move(top));
      top = std::move(node);
      for (auto& e : sel_exprs) SubstituteSlots(&e, patterns, names);
      for (auto& e : order_exprs) SubstituteSlots(&e, patterns, names);
    }
  }

  // ---- 9. Projection. ----
  {
    auto node = std::make_unique<PlanNode>(PlanOp::kProject);
    double proj_cost = rows * P.cpu_tuple;
    for (size_t i = 0; i < qb.select.size(); ++i) {
      proj_cost += rows * CountExpensiveCalls(*sel_exprs[i]) * P.expensive_call;
      node->output.push_back(
          ColumnSlot{"", qb.select[i].alias, sel_exprs[i]->type});
      node->projections.push_back(std::move(sel_exprs[i]));
    }
    cost += proj_cost;
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  // ---- 10. DISTINCT. ----
  if (qb.distinct) {
    auto node = std::make_unique<PlanNode>(PlanOp::kDistinct);
    node->output = top->output;
    double ndv = 1;
    for (const auto& item : qb.select) {
      ndv *= EstimateNdv(*item.expr, ctx, rows);
    }
    double out_rows = std::min(rows, std::max(1.0, ndv));
    cost += rows * P.agg_row;
    rows = out_rows;
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  // ---- 11. ORDER BY (above the projection; keys referencing select items
  // are substituted, others are appended as hidden projection slots). ----
  bool added_hidden = false;
  if (!qb.order_by.empty()) {
    std::vector<const Expr*> patterns;
    std::vector<std::string> names;
    for (size_t i = 0; i < qb.select.size(); ++i) {
      patterns.push_back(qb.select[i].expr.get());
      names.push_back(qb.select[i].alias);
    }
    // NOTE: sel_exprs were consumed by the projection; match against the
    // original select expressions (identical pre-substitution structure
    // only when no aggregation happened; after aggregation order_exprs were
    // substituted the same way the select exprs were, so matching against
    // the *projected* expressions is done via the projection node).
    PlanNode* proj = top.get();
    while (proj != nullptr && proj->op != PlanOp::kProject) {
      proj = proj->children.empty() ? nullptr : proj->children[0].get();
    }
    auto node = std::make_unique<PlanNode>(PlanOp::kSort);
    node->output = top->output;
    for (size_t i = 0; i < qb.order_by.size(); ++i) {
      ExprPtr key = std::move(order_exprs[i]);
      // Try to match a projected expression.
      int match = -1;
      if (proj != nullptr) {
        for (size_t j = 0; j < proj->projections.size(); ++j) {
          if (ExprEquals(*proj->projections[j], *key)) {
            match = static_cast<int>(j);
            break;
          }
        }
      }
      if (match >= 0) {
        auto ref = MakeColumnRef("", proj->output[static_cast<size_t>(match)].name);
        ref->type = key->type;
        key = std::move(ref);
      } else if (proj != nullptr) {
        // Hidden sort column.
        std::string name = "$ord" + std::to_string(i);
        proj->output.push_back(ColumnSlot{"", name, key->type});
        proj->projections.push_back(std::move(key));
        auto ref = MakeColumnRef("", name);
        key = std::move(ref);
        added_hidden = true;
        // Propagate the widened schema up to `top`.
        PlanNode* n = top.get();
        while (n != nullptr && n != proj) {
          n->output = proj->output;
          n = n->children.empty() ? nullptr : n->children[0].get();
        }
        node->output = top->output;
      }
      node->sort_keys.push_back(std::move(key));
      node->sort_ascending.push_back(qb.order_by[i].ascending);
    }
    cost += P.SortCost(rows);
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  // ---- 12. Plain ROWNUM limit. ----
  if (qb.rownum_limit >= 0 && !lazy_limit_ok) {
    auto node = std::make_unique<PlanNode>(PlanOp::kLimit);
    node->limit = qb.rownum_limit;
    node->output = top->output;
    rows = std::min(static_cast<double>(qb.rownum_limit), rows);
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  // ---- 13. Trim hidden sort columns for clean block output. ----
  if (added_hidden) {
    auto node = std::make_unique<PlanNode>(PlanOp::kProject);
    for (const auto& item : qb.select) {
      auto ref = MakeColumnRef("", item.alias);
      ref->type = item.expr->type;
      node->output.push_back(ColumnSlot{"", item.alias, item.expr->type});
      node->projections.push_back(std::move(ref));
    }
    node->est_rows = rows;
    node->est_cost = cost;
    node->children.push_back(std::move(top));
    top = std::move(node);
  }

  if (cost > cutoff_) return Status::CostCutoff();

  // ---- Output stats for the enclosing block. ----
  BlockPlan out;
  out.out_stats.rows = rows;
  for (const auto& item : qb.select) {
    ColumnStats cs;
    const Expr& e = *item.expr;
    if (e.kind == ExprKind::kColumnRef && e.corr_depth == 0) {
      const ColumnStats* base = ctx.FindColumn(e.table_alias, e.column_name);
      if (base != nullptr) {
        cs = *base;
        cs.ndv = std::min(cs.ndv, std::max(1.0, rows));
      } else {
        cs.ndv = std::max(1.0, rows / 10);
      }
    } else if (e.kind == ExprKind::kAggregate || e.kind == ExprKind::kWindow) {
      cs.ndv = std::max(1.0, rows * 0.9);
    } else {
      cs.ndv = std::max(1.0, rows / 10);
    }
    out.out_stats.columns[item.alias] = cs;
  }
  out.plan = std::move(top);
  return out;
}

}  // namespace cbqt
