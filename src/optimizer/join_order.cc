#include "optimizer/join_order.h"

#include <limits>

namespace cbqt {

JoinOrderEnumerator::JoinOrderEnumerator(std::vector<uint64_t> deps,
                                         JoinCoster* coster, double cutoff,
                                         int dp_threshold, JoinOrderMemo* memo)
    : deps_(std::move(deps)),
      coster_(coster),
      cutoff_(cutoff),
      dp_threshold_(dp_threshold),
      memo_(memo) {}

Result<JoinStepPlan> JoinOrderEnumerator::Enumerate() {
  if (deps_.empty()) {
    return Status::InvalidArgument("no relations to join");
  }
  if (deps_.size() == 1) {
    auto base = coster_->BaseRel(0);
    if (!base.ok()) return base.status();
    if (base->cost > cutoff_) return Status::CostCutoff();
    return base;
  }
  if (static_cast<int>(deps_.size()) <= dp_threshold_) return EnumerateDp();
  return EnumerateGreedy();
}

// Pull-style subset DP: each target mask is settled in a single visit —
// memo lookup first, otherwise the best of Join(dp[mask \ i], i) over the
// member relations i. This is the same recurrence as the classic
// source-major ("push") formulation, restructured so a memo hit skips every
// join costing for that subset, not just the final comparison.
//
// Tie-breaks match the push formulation exactly: there, sources were
// visited in ascending mask order and a target kept its first-written plan
// among equal costs, and for a fixed target the source mask ascends as the
// removed bit descends. Hence candidates here run from the highest member
// bit down with a strict `<` replacement.
Result<JoinStepPlan> JoinOrderEnumerator::EnumerateDp() {
  const int n = static_cast<int>(deps_.size());
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  struct Entry {
    bool valid = false;
    JoinStepPlan step;
  };
  std::vector<Entry> dp(static_cast<size_t>(full) + 1);

  for (uint64_t mask = 1; mask <= full; ++mask) {
    Entry& e = dp[mask];
    if (memo_ != nullptr) {
      switch (memo_->Lookup(mask, cutoff_, &e.step)) {
        case JoinOrderMemo::Probe::kHit:
          e.valid = true;
          continue;
        case JoinOrderMemo::Probe::kPruned:
          continue;
        case JoinOrderMemo::Probe::kMiss:
          break;
      }
    }
    if ((mask & (mask - 1)) == 0) {
      // Singleton: a relation with deps can never start a left-deep order.
      int i = 0;
      while ((mask >> i) != 1) ++i;
      if (deps_[static_cast<size_t>(i)] != 0) continue;
      auto base = coster_->BaseRel(i);
      if (!base.ok()) {
        if (base.status().code() == StatusCode::kCostCutoff) continue;
        return base.status();
      }
      if (base->cost > cutoff_) continue;
      e.valid = true;
      e.step = std::move(base.value());
    } else {
      for (int i = n - 1; i >= 0; --i) {
        uint64_t bit = 1ULL << i;
        if (!(mask & bit)) continue;
        uint64_t sub = mask & ~bit;
        if (!dp[sub].valid) continue;
        if ((deps_[static_cast<size_t>(i)] & ~sub) != 0) continue;
        auto joined = coster_->Join(dp[sub].step, sub, i);
        if (!joined.ok()) {
          if (joined.status().code() == StatusCode::kCostCutoff) continue;
          return joined.status();
        }
        if (joined->cost > cutoff_) continue;
        if (!e.valid || joined->cost < e.step.cost) {
          e.valid = true;
          e.step = std::move(joined.value());
        }
      }
    }
    if (e.valid && memo_ != nullptr) memo_->Store(mask, e.step);
  }

  if (!dp[full].valid) return Status::CostCutoff();
  return std::move(dp[full].step);
}

Result<JoinStepPlan> JoinOrderEnumerator::EnumerateGreedy() {
  const int n = static_cast<int>(deps_.size());
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  // The greedy choice sequence is cutoff-independent (candidates are never
  // filtered by the cutoff, and cost grows monotonically along the order),
  // so the completed result is memoizable at full-set granularity.
  JoinStepPlan memoized;
  if (memo_ != nullptr) {
    switch (memo_->Lookup(full, cutoff_, &memoized)) {
      case JoinOrderMemo::Probe::kHit:
        return memoized;
      case JoinOrderMemo::Probe::kPruned:
        return Status::CostCutoff();
      case JoinOrderMemo::Probe::kMiss:
        break;
    }
  }
  // Start from the cheapest dependency-free base relation.
  JoinStepPlan current;
  uint64_t mask = 0;
  {
    double best_cost = std::numeric_limits<double>::infinity();
    int best = -1;
    JoinStepPlan best_step;
    for (int i = 0; i < n; ++i) {
      if (deps_[static_cast<size_t>(i)] != 0) continue;
      auto base = coster_->BaseRel(i);
      if (!base.ok()) {
        if (base.status().code() == StatusCode::kCostCutoff) continue;
        return base.status();
      }
      // Prefer the smallest relation as the driving table.
      if (base->rows < best_cost) {
        best_cost = base->rows;
        best = i;
        best_step = std::move(base.value());
      }
    }
    if (best < 0) return Status::CostCutoff();
    current = std::move(best_step);
    mask = 1ULL << best;
  }
  for (int step = 1; step < n; ++step) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best = -1;
    JoinStepPlan best_step;
    for (int i = 0; i < n; ++i) {
      uint64_t bit = 1ULL << i;
      if (mask & bit) continue;
      if ((deps_[static_cast<size_t>(i)] & ~mask) != 0) continue;
      auto joined = coster_->Join(current, mask, i);
      if (!joined.ok()) {
        if (joined.status().code() == StatusCode::kCostCutoff) continue;
        return joined.status();
      }
      if (joined->cost < best_cost) {
        best_cost = joined->cost;
        best = i;
        best_step = std::move(joined.value());
      }
    }
    if (best < 0) return Status::CostCutoff();
    current = std::move(best_step);
    mask |= 1ULL << best;
    if (current.cost > cutoff_) return Status::CostCutoff();
  }
  if (current.cost > cutoff_) return Status::CostCutoff();
  if (memo_ != nullptr) memo_->Store(full, current);
  return current;
}

}  // namespace cbqt
