#include "optimizer/join_order.h"

#include <limits>

namespace cbqt {

JoinOrderEnumerator::JoinOrderEnumerator(std::vector<uint64_t> deps,
                                         JoinCoster* coster, double cutoff,
                                         int dp_threshold)
    : deps_(std::move(deps)),
      coster_(coster),
      cutoff_(cutoff),
      dp_threshold_(dp_threshold) {}

Result<JoinStepPlan> JoinOrderEnumerator::Enumerate() {
  if (deps_.empty()) {
    return Status::InvalidArgument("no relations to join");
  }
  if (deps_.size() == 1) {
    auto base = coster_->BaseRel(0);
    if (!base.ok()) return base.status();
    if (base->cost > cutoff_) return Status::CostCutoff();
    return base;
  }
  if (static_cast<int>(deps_.size()) <= dp_threshold_) return EnumerateDp();
  return EnumerateGreedy();
}

Result<JoinStepPlan> JoinOrderEnumerator::EnumerateDp() {
  const int n = static_cast<int>(deps_.size());
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  struct Entry {
    bool valid = false;
    JoinStepPlan step;
  };
  std::vector<Entry> dp(static_cast<size_t>(full) + 1);

  // Seed singletons whose dependencies are empty (a relation with deps can
  // never start a left-deep order).
  for (int i = 0; i < n; ++i) {
    if (deps_[static_cast<size_t>(i)] != 0) continue;
    auto base = coster_->BaseRel(i);
    if (!base.ok()) {
      if (base.status().code() == StatusCode::kCostCutoff) continue;
      return base.status();
    }
    if (base->cost > cutoff_) continue;
    Entry& e = dp[1ULL << i];
    e.valid = true;
    e.step = std::move(base.value());
  }

  // Extend subsets in increasing population order. Iterating masks in
  // numeric order suffices: mask' = mask | bit > mask.
  for (uint64_t mask = 1; mask <= full; ++mask) {
    if (!dp[mask].valid) continue;
    for (int i = 0; i < n; ++i) {
      uint64_t bit = 1ULL << i;
      if (mask & bit) continue;
      if ((deps_[static_cast<size_t>(i)] & ~mask) != 0) continue;
      auto joined = coster_->Join(dp[mask].step, mask, i);
      if (!joined.ok()) {
        if (joined.status().code() == StatusCode::kCostCutoff) continue;
        return joined.status();
      }
      if (joined->cost > cutoff_) continue;
      Entry& target = dp[mask | bit];
      if (!target.valid || joined->cost < target.step.cost) {
        target.valid = true;
        target.step = std::move(joined.value());
      }
    }
  }

  if (!dp[full].valid) return Status::CostCutoff();
  return std::move(dp[full].step);
}

Result<JoinStepPlan> JoinOrderEnumerator::EnumerateGreedy() {
  const int n = static_cast<int>(deps_.size());
  // Start from the cheapest dependency-free base relation.
  JoinStepPlan current;
  uint64_t mask = 0;
  {
    double best_cost = std::numeric_limits<double>::infinity();
    int best = -1;
    JoinStepPlan best_step;
    for (int i = 0; i < n; ++i) {
      if (deps_[static_cast<size_t>(i)] != 0) continue;
      auto base = coster_->BaseRel(i);
      if (!base.ok()) {
        if (base.status().code() == StatusCode::kCostCutoff) continue;
        return base.status();
      }
      // Prefer the smallest relation as the driving table.
      if (base->rows < best_cost) {
        best_cost = base->rows;
        best = i;
        best_step = std::move(base.value());
      }
    }
    if (best < 0) return Status::CostCutoff();
    current = std::move(best_step);
    mask = 1ULL << best;
  }
  for (int step = 1; step < n; ++step) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best = -1;
    JoinStepPlan best_step;
    for (int i = 0; i < n; ++i) {
      uint64_t bit = 1ULL << i;
      if (mask & bit) continue;
      if ((deps_[static_cast<size_t>(i)] & ~mask) != 0) continue;
      auto joined = coster_->Join(current, mask, i);
      if (!joined.ok()) {
        if (joined.status().code() == StatusCode::kCostCutoff) continue;
        return joined.status();
      }
      if (joined->cost < best_cost) {
        best_cost = joined->cost;
        best = i;
        best_step = std::move(joined.value());
      }
    }
    if (best < 0) return Status::CostCutoff();
    current = std::move(best_step);
    mask |= 1ULL << best;
    if (current.cost > cutoff_) return Status::CostCutoff();
  }
  if (current.cost > cutoff_) return Status::CostCutoff();
  return current;
}

}  // namespace cbqt
