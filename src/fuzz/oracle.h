#ifndef CBQT_FUZZ_ORACLE_H_
#define CBQT_FUZZ_ORACLE_H_

#include <memory>
#include <string>
#include <vector>

#include "cbqt/engine.h"
#include "common/result_compare.h"
#include "common/status.h"
#include "storage/database.h"

namespace cbqt {

/// One divergence found by the differential oracle.
struct DiffFailure {
  std::string config_name;  ///< deck entry that diverged
  std::string sql;          ///< query text (original or mutant)
  std::string message;      ///< comparator diff or unexpected error
};

/// Counters of one Check() sweep.
struct OracleOutcome {
  int executions = 0;        ///< engine runs whose rows were compared
  int guardrail_aborts = 0;  ///< typed aborts (kCancelled/kResourceExhausted/
                             ///< kAdmissionRejected/kBudgetExhausted): the
                             ///< run is skipped, not compared
  int injected_faults = 0;   ///< "injected fault" kInternal errors — clean
                             ///< degradation under a fault sweep
  int serde_roundtrips = 0;  ///< chosen plans round-tripped through the
                             ///< binary serde (set_serde_roundtrip)
  std::vector<DiffFailure> failures;
};

/// Differential oracle: executes a query through a deck of differently
/// configured QueryEngines (search strategies × thread counts × transform
/// masks × executor batch/spill settings) and compares every result against
/// the reference interpreter's rows (order-insensitive multiset compare,
/// NULL-aware, doubles with relative tolerance).
///
/// Error policy: a typed guardrail abort is an acceptable outcome (that
/// configuration declined the query; nothing to compare). An "injected
/// fault" kInternal error is acceptable when the deck was armed with a
/// FaultInjector (the fault-sweep property: injected faults may degrade or
/// error a query but must never produce wrong rows). Any other error, and
/// any row mismatch, is a DiffFailure.
class DifferentialOracle {
 public:
  struct Entry {
    std::string name;
    CbqtConfig config;
  };

  /// The default deck: 4 search strategies, 1- and 4-thread evaluation,
  /// heuristic-only mode, a reduced transform mask with batch size 1, and a
  /// spill-forced configuration with a small per-query memory budget.
  static std::vector<Entry> DefaultDeck();

  /// `canary`: test-only seeded bug — the first deck entry silently drops
  /// the last result row for queries touching >= 2 base relations. Used to
  /// prove the fuzzer catches (and the shrinker minimizes) a real wrong-rows
  /// defect.
  DifferentialOracle(const Database& db, std::vector<Entry> deck,
                     bool canary = false);

  /// Reference-interpreter rows for `sql` (parse + bind + naive execute).
  Result<std::vector<Row>> Reference(const std::string& sql);

  /// Runs `sql` through every deck entry and compares against
  /// `expected_sorted` (reference rows, canonically sorted). Appends to
  /// `out`'s counters and failure list.
  void Check(const std::string& sql, const std::vector<Row>& expected_sorted,
             OracleOutcome* out);

  /// When on, every deck engine's chosen plan is additionally round-tripped
  /// through the binary plan serde (optimizer/plan_serde.h): the re-serialized
  /// bytes must be bit-identical and the rendered plan unchanged. Any
  /// divergence is a DiffFailure — the fuzz deck doubles as the serde
  /// round-trip corpus.
  void set_serde_roundtrip(bool on) { serde_roundtrip_ = on; }

  const std::vector<Entry>& deck() const { return deck_; }

 private:
  const Database& db_;
  std::vector<Entry> deck_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  bool canary_ = false;
  bool serde_roundtrip_ = false;
};

/// True when `sql` references at least `n` base relations (counting every
/// FROM entry with a table name, at any block depth). Parse/bind failures
/// count as false. Used by the canary and its shrinker test.
bool ReferencesAtLeastNBaseRelations(const Database& db,
                                     const std::string& sql, int n);

}  // namespace cbqt

#endif  // CBQT_FUZZ_ORACLE_H_
