#include "fuzz/shrinker.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/value.h"
#include "parser/parser.h"
#include "sql/expr_util.h"
#include "sql/query_block.h"
#include "sql/unparser.h"

namespace cbqt {

namespace {

// Candidates address blocks by their VisitAllBlocks pre-order ordinal so an
// enumeration over one tree can be applied to a fresh clone of it.
std::vector<QueryBlock*> CollectBlocks(QueryBlock* root) {
  std::vector<QueryBlock*> out;
  VisitAllBlocks(root, [&](QueryBlock* qb) { out.push_back(qb); });
  return out;
}

enum class CandKind {
  kPromoteBlock,   // nested block `block` becomes the whole query
  kDropFrom,       // from[a] plus every expr referencing its alias
  kDropWhere,      // where[a]
  kDropHaving,     // having[a]
  kDropSelect,     // select[a] (keeps at least one item)
  kDropGroupBy,    // group_by[a]
  kDropOrderBy,    // order_by[a]
  kClearDistinct,
  kOrToLeft,       // where[a] = (p OR q) -> p
  kOrToRight,      // where[a] = (p OR q) -> q
  kUnwrapConjunct, // where[a]: NOT(NOT p) -> p, CASE WHEN p THEN x END -> p
};

struct Cand {
  CandKind kind;
  int block = 0;
  int a = 0;
};

bool IsOr(const Expr& e) {
  return e.kind == ExprKind::kBinary && e.bop == BinaryOp::kOr;
}

bool IsDoubleNot(const Expr& e) {
  return e.kind == ExprKind::kUnary && e.uop == UnaryOp::kNot &&
         e.children.size() == 1 && e.children[0]->kind == ExprKind::kUnary &&
         e.children[0]->uop == UnaryOp::kNot;
}

bool IsCaseWrap(const Expr& e) {
  return e.kind == ExprKind::kCase && e.children.size() == 2;
}

// Bigger reductions enumerate first; greedy acceptance restarts after each
// hit, so the order doubles as a priority.
std::vector<Cand> Enumerate(QueryBlock* root) {
  std::vector<Cand> out;
  std::vector<QueryBlock*> blocks = CollectBlocks(root);
  for (size_t b = 1; b < blocks.size(); ++b) {
    out.push_back({CandKind::kPromoteBlock, static_cast<int>(b), 0});
  }
  for (size_t b = 0; b < blocks.size(); ++b) {
    QueryBlock* qb = blocks[b];
    int bi = static_cast<int>(b);
    if (qb->from.size() >= 2) {
      for (size_t i = 0; i < qb->from.size(); ++i) {
        out.push_back({CandKind::kDropFrom, bi, static_cast<int>(i)});
      }
    }
    for (size_t i = 0; i < qb->where.size(); ++i) {
      out.push_back({CandKind::kDropWhere, bi, static_cast<int>(i)});
    }
    for (size_t i = 0; i < qb->having.size(); ++i) {
      out.push_back({CandKind::kDropHaving, bi, static_cast<int>(i)});
    }
    if (qb->select.size() >= 2) {
      for (size_t i = 0; i < qb->select.size(); ++i) {
        out.push_back({CandKind::kDropSelect, bi, static_cast<int>(i)});
      }
    }
    for (size_t i = 0; i < qb->group_by.size(); ++i) {
      out.push_back({CandKind::kDropGroupBy, bi, static_cast<int>(i)});
    }
    for (size_t i = 0; i < qb->order_by.size(); ++i) {
      out.push_back({CandKind::kDropOrderBy, bi, static_cast<int>(i)});
    }
    if (qb->distinct) out.push_back({CandKind::kClearDistinct, bi, 0});
    for (size_t i = 0; i < qb->where.size(); ++i) {
      const Expr& e = *qb->where[i];
      if (IsOr(e)) {
        out.push_back({CandKind::kOrToLeft, bi, static_cast<int>(i)});
        out.push_back({CandKind::kOrToRight, bi, static_cast<int>(i)});
      }
      if (IsDoubleNot(e) || IsCaseWrap(e)) {
        out.push_back({CandKind::kUnwrapConjunct, bi, static_cast<int>(i)});
      }
    }
  }
  return out;
}

// Removes from[a] of `qb` and every expression (anywhere in the tree) that
// references its alias. Sloppy on purpose: the property check decides
// whether the result is still interesting.
void DropFromEntry(QueryBlock* root, QueryBlock* qb, size_t a) {
  std::string alias = qb->from[a].alias;
  qb->from.erase(qb->from.begin() + static_cast<long>(a));
  if (!qb->from.empty() && qb->from[0].join != JoinKind::kInner) {
    // The first FROM entry cannot carry an ON clause; fold it to inner and
    // let the conds become WHERE conjuncts.
    qb->from[0].join = JoinKind::kInner;
    for (auto& c : qb->from[0].join_conds) {
      qb->where.push_back(std::move(c));
    }
    qb->from[0].join_conds.clear();
  }
  VisitAllBlocks(root, [&](QueryBlock* b) {
    auto drop_refs = [&](std::vector<ExprPtr>* list) {
      list->erase(std::remove_if(list->begin(), list->end(),
                                 [&](const ExprPtr& e) {
                                   return ExprUsesAlias(*e, alias);
                                 }),
                  list->end());
    };
    drop_refs(&b->where);
    drop_refs(&b->having);
    drop_refs(&b->group_by);
    for (auto& tr : b->from) drop_refs(&tr.join_conds);
    b->select.erase(std::remove_if(b->select.begin(), b->select.end(),
                                   [&](const SelectItem& it) {
                                     return ExprUsesAlias(*it.expr, alias);
                                   }),
                    b->select.end());
    b->order_by.erase(std::remove_if(b->order_by.begin(), b->order_by.end(),
                                     [&](const OrderItem& it) {
                                       return ExprUsesAlias(*it.expr, alias);
                                     }),
                      b->order_by.end());
    if (b->select.empty() && !b->IsSetOp()) {
      SelectItem one;
      one.expr = MakeLiteral(Value::Int(1));
      b->select.push_back(std::move(one));
    }
  });
}

bool Apply(QueryBlock* root, const Cand& c) {
  std::vector<QueryBlock*> blocks = CollectBlocks(root);
  if (c.block < 0 || static_cast<size_t>(c.block) >= blocks.size()) {
    return false;
  }
  QueryBlock* qb = blocks[static_cast<size_t>(c.block)];
  size_t a = static_cast<size_t>(c.a);
  switch (c.kind) {
    case CandKind::kPromoteBlock: {
      auto promoted = qb->Clone();
      *root = std::move(*promoted);
      return true;
    }
    case CandKind::kDropFrom:
      if (a >= qb->from.size() || qb->from.size() < 2) return false;
      DropFromEntry(root, qb, a);
      return true;
    case CandKind::kDropWhere:
      if (a >= qb->where.size()) return false;
      qb->where.erase(qb->where.begin() + static_cast<long>(a));
      return true;
    case CandKind::kDropHaving:
      if (a >= qb->having.size()) return false;
      qb->having.erase(qb->having.begin() + static_cast<long>(a));
      return true;
    case CandKind::kDropSelect:
      if (a >= qb->select.size() || qb->select.size() < 2) return false;
      qb->select.erase(qb->select.begin() + static_cast<long>(a));
      return true;
    case CandKind::kDropGroupBy:
      if (a >= qb->group_by.size()) return false;
      qb->group_by.erase(qb->group_by.begin() + static_cast<long>(a));
      qb->grouping_sets.clear();
      return true;
    case CandKind::kDropOrderBy:
      if (a >= qb->order_by.size()) return false;
      qb->order_by.erase(qb->order_by.begin() + static_cast<long>(a));
      return true;
    case CandKind::kClearDistinct:
      if (!qb->distinct) return false;
      qb->distinct = false;
      return true;
    case CandKind::kOrToLeft:
    case CandKind::kOrToRight: {
      if (a >= qb->where.size() || !IsOr(*qb->where[a])) return false;
      size_t side = c.kind == CandKind::kOrToLeft ? 0 : 1;
      qb->where[a] = std::move(qb->where[a]->children[side]);
      return true;
    }
    case CandKind::kUnwrapConjunct: {
      if (a >= qb->where.size()) return false;
      Expr& e = *qb->where[a];
      if (IsDoubleNot(e)) {
        qb->where[a] = std::move(e.children[0]->children[0]);
        return true;
      }
      if (IsCaseWrap(e)) {
        qb->where[a] = std::move(e.children[0]);
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

ShrinkResult ShrinkQuery(const std::string& sql,
                         const FailureProperty& still_fails, int max_evals) {
  ShrinkResult result;
  result.sql = sql;
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return result;
  std::unique_ptr<QueryBlock> current = std::move(parsed.value());

  bool progress = true;
  while (progress && result.candidates_tried < max_evals) {
    progress = false;
    for (const Cand& c : Enumerate(current.get())) {
      if (result.candidates_tried >= max_evals) break;
      auto trial = current->Clone();
      if (!Apply(trial.get(), c)) continue;
      std::string trial_sql = BlockToSql(*trial);
      if (trial_sql == result.sql) continue;
      // Unparse -> reparse keeps `current` in parser normal form so ordinals
      // stay meaningful across rounds.
      auto reparsed = ParseSql(trial_sql);
      if (!reparsed.ok()) continue;
      ++result.candidates_tried;
      if (!still_fails(trial_sql)) continue;
      current = std::move(reparsed.value());
      result.sql = std::move(trial_sql);
      ++result.accepted;
      progress = true;
      break;
    }
  }
  return result;
}

}  // namespace cbqt
