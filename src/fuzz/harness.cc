#include "fuzz/harness.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "binder/binder.h"
#include "common/result_compare.h"
#include "common/str_util.h"
#include "fuzz/mutator.h"
#include "fuzz/shrinker.h"
#include "parser/parser.h"
#include "sql/signature.h"
#include "sql/unparser.h"
#include "workload/runner.h"

namespace cbqt {

namespace {

uint64_t MixSeed(uint64_t seed, uint64_t i) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (i + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Parse + bind + signature, or empty on failure.
std::string BoundSignature(const Database& db, const std::string& sql) {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return "";
  if (!BindQuery(db, parsed.value().get()).ok()) return "";
  return BlockSignature(*parsed.value());
}

}  // namespace

SchemaConfig FuzzSchemaConfig() {
  SchemaConfig cfg;
  // Small enough for thousands of naive reference executions, big enough
  // that joins produce rows, group-bys have groups, and the spill deck
  // entry actually spills.
  cfg.locations = 12;
  cfg.departments = 20;
  cfg.jobs = 10;
  cfg.employees = 120;
  cfg.job_history = 150;
  cfg.customers = 40;
  cfg.orders = 150;
  cfg.order_items = 300;
  cfg.products = 25;
  cfg.accounts = 8;
  cfg.months = 12;
  cfg.seed = 20260809;
  return cfg;
}

Status BuildFuzzDatabase(Database* db) {
  return BuildHrDatabase(FuzzSchemaConfig(), db);
}

std::string FuzzReport::Summary() const {
  std::ostringstream os;
  os << "fuzz: " << queries << " queries + " << mutants << " mutants, "
     << executions << " differential executions in "
     << static_cast<int64_t>(elapsed_ms) << " ms; " << guardrail_aborts
     << " guardrail aborts, " << injected_faults << " injected faults, "
     << parse_rejects << " parse rejects, " << roundtrip_failures
     << " round-trip failures, " << mutant_invalid << " invalid mutants, "
     << ref_errors << " reference errors, " << failures.size()
     << " divergences";
  if (serde_roundtrips > 0) {
    os << ", " << serde_roundtrips << " plan serde round-trips";
  }
  for (const auto& f : failures) {
    os << "\n  [" << f.config_name << "] " << f.message << "\n    "
       << f.shrunk_sql;
    if (!f.file.empty()) os << "\n    dumped: " << f.file;
  }
  return os.str();
}

FuzzReport RunFuzz(const Database& db, const FuzzOptions& options) {
  FuzzReport report;
  double start = NowMs();

  std::vector<DifferentialOracle::Entry> deck =
      DifferentialOracle::DefaultDeck();
  if (!options.fault_sites.empty()) {
    auto injector = FaultInjector::Parse(options.fault_sites,
                                         options.fault_seed);
    if (!injector.ok()) {
      FuzzRepro bad;
      bad.config_name = "fault-spec";
      bad.message = injector.status().ToString();
      report.failures.push_back(std::move(bad));
      return report;
    }
    for (auto& e : deck) e.config.fault_injector = injector.value();
  }
  DifferentialOracle oracle(db, std::move(deck), options.canary);
  oracle.set_serde_roundtrip(options.serde_roundtrip);

  // Minimizes `failing_sql` (when shrinking is on), dumps the repro, and
  // appends it to the report. Shrinking re-runs the whole deck per
  // candidate, so only the first few failures pay for it.
  int shrunk_count = 0;
  auto record_failure = [&](uint64_t round_seed, const DiffFailure& f) {
    FuzzRepro repro;
    repro.seed = round_seed;
    repro.original_sql = f.sql;
    repro.shrunk_sql = f.sql;
    repro.config_name = f.config_name;
    repro.message = f.message;
    if (options.shrink && shrunk_count < 5) {
      ++shrunk_count;
      auto still_fails = [&](const std::string& cand) {
        auto ref = oracle.Reference(cand);
        if (!ref.ok()) return false;
        std::vector<Row> expected = std::move(ref.value());
        SortRowsCanonical(&expected);
        OracleOutcome o;
        oracle.Check(cand, expected, &o);
        return !o.failures.empty();
      };
      ShrinkResult shrunk = ShrinkQuery(f.sql, still_fails, /*max_evals=*/150);
      repro.shrunk_sql = shrunk.sql;
    }
    if (!options.corpus_dir.empty()) {
      std::string path = options.corpus_dir + "/repro_" +
                         std::to_string(round_seed) + "_" +
                         std::to_string(report.failures.size()) + ".sql";
      std::ofstream out(path);
      if (out) {
        out << "-- cbqt fuzz repro\n";
        out << "-- seed: " << round_seed << "\n";
        out << "-- config: " << repro.config_name << "\n";
        out << "-- diff: " << repro.message << "\n";
        out << repro.shrunk_sql << "\n";
        repro.file = path;
      }
    }
    report.failures.push_back(std::move(repro));
  };

  for (int round = 0; round < options.rounds; ++round) {
    double elapsed = NowMs() - start;
    if (options.time_box_ms > 0 && elapsed >= options.time_box_ms) break;

    uint64_t round_seed = MixSeed(options.seed, static_cast<uint64_t>(round));
    std::string sql = GenerateFuzzQuery(round_seed, FuzzSchemaConfig(),
                                        options.gen);

    // Leg 1: every generated query parses and binds.
    auto parsed = ParseSql(sql);
    if (!parsed.ok() ||
        !BindQuery(db, parsed.value().get()).ok()) {
      ++report.parse_rejects;
      record_failure(round_seed,
                     {"generator", sql,
                      parsed.ok() ? "generated query failed to bind"
                                  : "generated query failed to parse: " +
                                        parsed.status().ToString()});
      continue;
    }

    // Leg 2: unparser round-trip — Parse(BlockToSql(q)) re-binds to an
    // equal block signature.
    std::string sig1 = BlockSignature(*parsed.value());
    std::string rendered = BlockToSql(*parsed.value());
    std::string sig2 = BoundSignature(db, rendered);
    if (sig1.empty() || sig1 != sig2) {
      ++report.roundtrip_failures;
      record_failure(round_seed,
                     {"roundtrip", sql,
                      "unparse->reparse signature mismatch; rendered: " +
                          rendered});
      continue;
    }

    // Leg 3: reference execution of the original.
    auto ref = oracle.Reference(sql);
    if (!ref.ok()) {
      ++report.ref_errors;
      record_failure(round_seed,
                     {"reference", sql,
                      "reference error: " + ref.status().ToString()});
      continue;
    }
    std::vector<Row> expected = std::move(ref.value());
    SortRowsCanonical(&expected);
    ++report.queries;

    // Leg 4: metamorphic mutants must agree with the original on the
    // reference interpreter before they are worth differencing.
    std::vector<std::string> mutants = GenerateEquivalentMutants(
        sql, options.mutants_per_query, MixSeed(round_seed, 0x6d7574));
    std::vector<std::string> to_check{sql};
    for (auto& m : mutants) {
      auto mref = oracle.Reference(m);
      if (!mref.ok()) {
        ++report.mutant_invalid;
        record_failure(round_seed,
                       {"mutant-reference", m,
                        "mutant reference error (original ok): " +
                            mref.status().ToString()});
        continue;
      }
      std::vector<Row> mrows = std::move(mref.value());
      SortRowsCanonical(&mrows);
      RowSetDiff diff = CompareRowMultisets(mrows, expected);
      if (!diff.equal) {
        ++report.mutant_invalid;
        record_failure(round_seed,
                       {"mutant-reference", m,
                        "mutant reference rows diverge from original: " +
                            diff.message});
        continue;
      }
      ++report.mutants;
      to_check.push_back(std::move(m));
    }

    // Leg 5: the differential deck.
    for (const auto& q : to_check) {
      OracleOutcome outcome;
      oracle.Check(q, expected, &outcome);
      report.executions += outcome.executions;
      report.guardrail_aborts += outcome.guardrail_aborts;
      report.injected_faults += outcome.injected_faults;
      report.serde_roundtrips += outcome.serde_roundtrips;
      for (const auto& f : outcome.failures) record_failure(round_seed, f);
    }
  }

  report.elapsed_ms = NowMs() - start;
  return report;
}

Status ReplayCorpusFile(const Database& db, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("corpus file not readable: " + path);
  std::string line, sql;
  while (std::getline(in, line)) {
    if (StartsWith(line, "--")) continue;
    if (!sql.empty()) sql += " ";
    sql += line;
  }
  while (!sql.empty() && (sql.back() == ' ' || sql.back() == '\n')) {
    sql.pop_back();
  }
  if (sql.empty()) return Status::InvalidArgument("empty corpus file: " + path);

  DifferentialOracle oracle(db, DifferentialOracle::DefaultDeck());
  auto ref = oracle.Reference(sql);
  if (!ref.ok()) {
    return Status::Internal("corpus reference error (" + path +
                            "): " + ref.status().ToString());
  }
  std::vector<Row> expected = std::move(ref.value());
  SortRowsCanonical(&expected);
  OracleOutcome outcome;
  oracle.Check(sql, expected, &outcome);
  if (!outcome.failures.empty()) {
    const DiffFailure& f = outcome.failures.front();
    return Status::Internal("corpus repro still diverges (" + path + ") [" +
                            f.config_name + "]: " + f.message);
  }
  return Status::OK();
}

}  // namespace cbqt
