#include "fuzz/mutator.h"

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/value.h"
#include "parser/parser.h"
#include "sql/expr_util.h"
#include "sql/query_block.h"
#include "sql/unparser.h"

namespace cbqt {

namespace {

// All mutations run on freshly parsed (unbound, un-shared) trees, so plain
// mutable visits are fine — there is nothing COW-shared to thaw.

ExprPtr MakeTrueConjunct() {
  return MakeBinary(BinaryOp::kEq, MakeLiteral(Value::Int(1)),
                    MakeLiteral(Value::Int(1)));
}

// Conjunct lists we may mutate: WHERE and HAVING of every block. ROWNUM
// conjuncts are left alone by the structural mutations — the binder only
// recognizes a bare `ROWNUM <= k` comparison when turning it into a limit,
// so wrapping one would change semantics.
struct ConjunctSlot {
  std::vector<ExprPtr>* list;
  size_t index;
};

void CollectConjunctSlots(QueryBlock* root, bool skip_rownum,
                          std::vector<ConjunctSlot>* out) {
  VisitAllBlocks(root, [&](QueryBlock* qb) {
    for (auto* list : {&qb->where, &qb->having}) {
      for (size_t i = 0; i < list->size(); ++i) {
        if (skip_rownum && ContainsRownum(*(*list)[i])) continue;
        out->push_back({list, i});
      }
    }
  });
}

bool PickSlot(QueryBlock* root, Rng& rng, ConjunctSlot* out) {
  std::vector<ConjunctSlot> slots;
  CollectConjunctSlots(root, /*skip_rownum=*/true, &slots);
  if (slots.empty()) return false;
  *out = slots[rng.NextUint(slots.size())];
  return true;
}

template <typename T>
void Shuffle(std::vector<T>* v, Rng& rng) {
  for (size_t i = v->size(); i > 1; --i) {
    std::swap((*v)[i - 1], (*v)[rng.NextUint(i)]);
  }
}

// ---- the catalog ----------------------------------------------------------

bool MutShuffleConjuncts(QueryBlock* root, Rng& rng) {
  std::vector<std::vector<ExprPtr>*> lists;
  VisitAllBlocks(root, [&](QueryBlock* qb) {
    if (qb->where.size() >= 2) lists.push_back(&qb->where);
    if (qb->having.size() >= 2) lists.push_back(&qb->having);
  });
  if (lists.empty()) return false;
  Shuffle(lists[rng.NextUint(lists.size())], rng);
  return true;
}

bool MutDoubleNegate(QueryBlock* root, Rng& rng) {
  ConjunctSlot s;
  if (!PickSlot(root, rng, &s)) return false;
  ExprPtr& p = (*s.list)[s.index];
  p = MakeUnary(UnaryOp::kNot, MakeUnary(UnaryOp::kNot, std::move(p)));
  return true;
}

// p AND q -> NOT (NOT p OR NOT q); p OR q -> NOT (NOT p AND NOT q).
// Exact under three-valued logic (NOT UNKNOWN = UNKNOWN both sides).
bool MutDeMorgan(QueryBlock* root, Rng& rng) {
  std::vector<Expr*> ands;
  VisitAllExprs(root, [&](Expr* e) {
    if (e->kind == ExprKind::kBinary &&
        (e->bop == BinaryOp::kAnd || e->bop == BinaryOp::kOr) &&
        !ContainsRownum(*e)) {
      ands.push_back(e);
    }
  });
  if (ands.empty()) return false;
  Expr* e = ands[rng.NextUint(ands.size())];
  BinaryOp dual = e->bop == BinaryOp::kAnd ? BinaryOp::kOr : BinaryOp::kAnd;
  ExprPtr inner = MakeBinary(
      dual, MakeUnary(UnaryOp::kNot, std::move(e->children[0])),
      MakeUnary(UnaryOp::kNot, std::move(e->children[1])));
  ExprPtr wrapped = MakeUnary(UnaryOp::kNot, std::move(inner));
  *e = std::move(*wrapped);
  return true;
}

bool MutAppendTrue(QueryBlock* root, Rng& rng) {
  std::vector<QueryBlock*> blocks;
  VisitAllBlocks(root, [&](QueryBlock* qb) {
    if (!qb->IsSetOp()) blocks.push_back(qb);
  });
  if (blocks.empty()) return false;
  blocks[rng.NextUint(blocks.size())]->where.push_back(MakeTrueConjunct());
  return true;
}

bool MutSwapComparison(QueryBlock* root, Rng& rng) {
  std::vector<Expr*> cmps;
  VisitAllExprs(root, [&](Expr* e) {
    if (e->kind == ExprKind::kBinary && IsComparisonOp(e->bop) &&
        e->children.size() == 2) {
      cmps.push_back(e);
    }
  });
  if (cmps.empty()) return false;
  Expr* e = cmps[rng.NextUint(cmps.size())];
  e->bop = SwapComparison(e->bop);
  std::swap(e->children[0], e->children[1]);
  return true;
}

// Permute a comma-join FROM list. Inner joins keep their predicates in
// WHERE (alias-qualified), so entry order carries no semantics; skip blocks
// with outer/semi/anti entries (ON conds reference "entries before me") and
// lateral views.
bool MutCommuteFrom(QueryBlock* root, Rng& rng) {
  std::vector<QueryBlock*> blocks;
  VisitAllBlocks(root, [&](QueryBlock* qb) {
    if (qb->from.size() < 2) return;
    for (const auto& tr : qb->from) {
      if (tr.join != JoinKind::kInner || !tr.join_conds.empty() ||
          tr.lateral) {
        return;
      }
    }
    blocks.push_back(qb);
  });
  if (blocks.empty()) return false;
  Shuffle(&blocks[rng.NextUint(blocks.size())]->from, rng);
  return true;
}

bool MutDuplicateDisjunct(QueryBlock* root, Rng& rng) {
  ConjunctSlot s;
  if (!PickSlot(root, rng, &s)) return false;
  ExprPtr& p = (*s.list)[s.index];
  // Subquery conjuncts stay single (cloning one doubles reference-executor
  // cost for nothing and defeats unnesting on both copies).
  if (ContainsSubquery(*p)) return false;
  ExprPtr copy = p->Clone();
  p = MakeBinary(BinaryOp::kOr, std::move(p), std::move(copy));
  return true;
}

// p -> CASE WHEN p THEN TRUE END. The CASE yields NULL where p is FALSE or
// UNKNOWN — interchangeable with p at conjunct position (both filter the
// row), though not inside a NOT, so this only ever wraps whole conjuncts.
bool MutCaseWrap(QueryBlock* root, Rng& rng) {
  ConjunctSlot s;
  if (!PickSlot(root, rng, &s)) return false;
  ExprPtr& p = (*s.list)[s.index];
  auto c = std::make_unique<Expr>();
  c->kind = ExprKind::kCase;
  c->children.push_back(std::move(p));
  c->children.push_back(MakeLiteral(Value::Boolean(true)));
  p = std::move(c);
  return true;
}

// x IN (SELECT c FROM ...) -> EXISTS (SELECT ... WHERE c = x). Equivalent
// at conjunct position (IN's UNKNOWN collapses to EXISTS's FALSE — both
// reject the row). Guards keep it syntactic: plain column operand, simple
// non-aggregating non-compound subquery selecting a plain column.
bool MutInToExists(QueryBlock* root, Rng& rng) {
  std::vector<ConjunctSlot> slots;
  CollectConjunctSlots(root, /*skip_rownum=*/true, &slots);
  std::vector<ConjunctSlot> cands;
  for (const auto& s : slots) {
    const Expr& e = *(*s.list)[s.index];
    if (e.kind != ExprKind::kSubquery || e.subkind != SubqueryKind::kIn) {
      continue;
    }
    if (e.children.size() != 1 ||
        e.children[0]->kind != ExprKind::kColumnRef) {
      continue;
    }
    const QueryBlock* sub = e.subquery.get();
    if (sub == nullptr || sub->IsSetOp() || sub->IsAggregating() ||
        !sub->group_by.empty() || !sub->having.empty() ||
        sub->rownum_limit >= 0 || sub->distinct) {
      continue;
    }
    if (sub->select.size() != 1 ||
        sub->select[0].expr->kind != ExprKind::kColumnRef) {
      continue;
    }
    cands.push_back(s);
  }
  if (cands.empty()) return false;
  const ConjunctSlot& s = cands[rng.NextUint(cands.size())];
  ExprPtr& slot = (*s.list)[s.index];
  Expr* e = slot.get();
  QueryBlock* sub = e->subquery.write();
  ExprPtr inner_col = sub->select[0].expr->Clone();
  sub->where.push_back(MakeBinary(BinaryOp::kEq, std::move(inner_col),
                                  std::move(e->children[0])));
  e->children.clear();
  e->subkind = SubqueryKind::kExists;
  return true;
}

using MutFn = bool (*)(QueryBlock*, Rng&);

const MutFn kMutations[] = {
    MutShuffleConjuncts, MutDoubleNegate,      MutDeMorgan,
    MutAppendTrue,       MutSwapComparison,    MutCommuteFrom,
    MutDuplicateDisjunct, MutCaseWrap,         MutInToExists,
};

}  // namespace

std::vector<std::string> GenerateEquivalentMutants(const std::string& sql,
                                                   int count, uint64_t seed) {
  std::vector<std::string> out;
  Rng rng(seed);
  constexpr int kMaxAttempts = 4;
  for (int m = 0; m < count; ++m) {
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
      auto parsed = ParseSql(sql);
      if (!parsed.ok()) return out;  // not our bug to mask — caller checks
      QueryBlock* root = parsed.value().get();
      int nmut = 1 + static_cast<int>(rng.NextUint(3));
      int applied = 0;
      for (int i = 0; i < nmut; ++i) {
        constexpr size_t kNum = sizeof(kMutations) / sizeof(kMutations[0]);
        if (kMutations[rng.NextUint(kNum)](root, rng)) ++applied;
      }
      if (applied == 0) continue;
      std::string mutant = BlockToSql(*root);
      if (mutant == sql) continue;
      // A mutant that fails to re-parse would crash the oracle with a
      // confusing error; drop it here (the harness's round-trip leg catches
      // genuine unparser bugs on the original query).
      if (!ParseSql(mutant).ok()) continue;
      out.push_back(std::move(mutant));
      break;
    }
  }
  return out;
}

}  // namespace cbqt
