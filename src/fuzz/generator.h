#ifndef CBQT_FUZZ_GENERATOR_H_
#define CBQT_FUZZ_GENERATOR_H_

#include <cstdint>
#include <string>

#include "workload/schema_gen.h"

namespace cbqt {

/// Knobs for the random query generator. Probabilities are per-query shape
/// decisions; the cross-row caps bound the reference interpreter's cost
/// (it materializes the full cross product of comma-joined tables before
/// WHERE, so the product of joined cardinalities is the cost driver).
struct FuzzGenConfig {
  int max_relations = 4;       ///< joined relations per block
  double view_prob = 0.30;     ///< wrap a relation in a derived view
  double subquery_prob = 0.30; ///< add a correlated/uncorrelated subquery
  double setop_prob = 0.12;    ///< whole query is a set operation
  double rownum_prob = 0.08;   ///< pullup shape: ordered view + outer ROWNUM
  double window_prob = 0.06;   ///< window-view shape over accounts
  double groupby_prob = 0.22;  ///< block aggregates (GROUP BY [+ HAVING])
  double distinct_prob = 0.10; ///< SELECT DISTINCT (when not grouping)
  double left_join_prob = 0.18;///< render a join as LEFT OUTER JOIN ... ON
  double disjunct_prob = 0.30; ///< OR across two filters
  int64_t max_cross_rows = 400000;
  int64_t max_cross_rows_with_subquery = 25000;
};

/// Generates one random SQL query over the HR schema — a pure function of
/// (seed, schema cardinalities, cfg). Unlike workload/query_gen (fixed
/// per-family templates with random literals), structure is random too:
/// which tables join, join shape (comma vs LEFT OUTER JOIN), derived views
/// (filtered / DISTINCT / GROUP BY / UNION ALL), subquery forms
/// (EXISTS / NOT EXISTS / IN / NOT IN / scalar aggregate), grouping,
/// disjunctions, IN-lists, IS NULL, set operations, ROWNUM-limited ordered
/// views, and window views. Every generated query parses and binds against
/// a database built from the same SchemaConfig.
std::string GenerateFuzzQuery(uint64_t seed, const SchemaConfig& schema,
                              const FuzzGenConfig& cfg = {});

}  // namespace cbqt

#endif  // CBQT_FUZZ_GENERATOR_H_
