#ifndef CBQT_FUZZ_HARNESS_H_
#define CBQT_FUZZ_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "storage/database.h"
#include "workload/schema_gen.h"

namespace cbqt {

/// The scaled-down HR schema the fuzzer runs against: big enough that
/// joins, spills and group-bys do real work, small enough that the naive
/// reference interpreter stays fast under thousands of executions.
SchemaConfig FuzzSchemaConfig();

/// Builds a database from FuzzSchemaConfig (tables, data, indexes, stats).
Status BuildFuzzDatabase(Database* db);

struct FuzzOptions {
  uint64_t seed = 7;
  int rounds = 1000000;       ///< generated queries (time box usually stops first)
  double time_box_ms = 60000; ///< wall-clock stop; <= 0 means rounds only
  int mutants_per_query = 2;
  bool canary = false;        ///< seed the deliberate wrong-rows bug (tests)
  /// Fault-injection sweep: arms every deck engine with this site spec (see
  /// FaultInjector::Parse) under `fault_seed`. Injected faults may error or
  /// degrade queries but any wrong rows still fail the run.
  std::string fault_sites;
  uint64_t fault_seed = 0;
  bool shrink = true;         ///< minimize failing queries before reporting
  std::string corpus_dir;     ///< non-empty: dump shrunk repros as .sql files
  /// Round-trip every deck engine's chosen plan through the binary plan
  /// serde (serialize -> deserialize -> re-serialize must be bit-identical);
  /// any divergence is a failure. See DifferentialOracle::set_serde_roundtrip.
  bool serde_roundtrip = false;
  FuzzGenConfig gen;
};

/// One minimized failure, as dumped into the corpus.
struct FuzzRepro {
  uint64_t seed = 0;          ///< per-round seed that produced the query
  std::string original_sql;   ///< the query (or mutant) that first diverged
  std::string shrunk_sql;     ///< after ShrinkQuery (== original if shrink off)
  std::string config_name;    ///< deck entry that diverged
  std::string message;        ///< first comparator diff / error
  std::string file;           ///< corpus path when dumped, else empty
};

struct FuzzReport {
  int queries = 0;            ///< generated queries executed
  int mutants = 0;            ///< equivalent mutants executed
  int executions = 0;         ///< engine runs compared against the reference
  int parse_rejects = 0;      ///< generated queries that failed parse/bind
  int roundtrip_failures = 0; ///< unparse->reparse signature mismatches
  int mutant_invalid = 0;     ///< mutants whose reference rows diverged
  int ref_errors = 0;         ///< reference interpreter errors
  int guardrail_aborts = 0;   ///< typed aborts, skipped (not compared)
  int injected_faults = 0;    ///< clean injected-fault errors (fault sweep)
  int serde_roundtrips = 0;   ///< chosen plans that round-tripped bit-identical
  double elapsed_ms = 0;
  std::vector<FuzzRepro> failures;

  bool ok() const {
    return failures.empty() && parse_rejects == 0 &&
           roundtrip_failures == 0 && mutant_invalid == 0 && ref_errors == 0;
  }
  /// One-paragraph summary for logs / CI output.
  std::string Summary() const;
};

/// Runs the metamorphic differential fuzz loop: generate a seeded random
/// query, prove the unparser round-trip, execute it on the reference
/// interpreter, derive equivalence-preserving mutants (whose reference rows
/// must match the original's), then run query and mutants through the
/// differential oracle deck. Failures are shrunk and (optionally) dumped to
/// `corpus_dir` as self-contained .sql repro files.
FuzzReport RunFuzz(const Database& db, const FuzzOptions& options);

/// Replays one corpus .sql file (as written by RunFuzz: `-- seed:` header
/// comments followed by the query) against the full default deck, returning
/// an error Status describing the divergence if it still reproduces.
Status ReplayCorpusFile(const Database& db, const std::string& path);

}  // namespace cbqt

#endif  // CBQT_FUZZ_HARNESS_H_
