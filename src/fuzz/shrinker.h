#ifndef CBQT_FUZZ_SHRINKER_H_
#define CBQT_FUZZ_SHRINKER_H_

#include <functional>
#include <string>

namespace cbqt {

/// Predicate over candidate SQL texts: true when the candidate still
/// reproduces the failure being minimized. Implementations must treat
/// unparseable / unbindable candidates as "does not fail" (return false)
/// rather than erroring.
using FailureProperty = std::function<bool(const std::string& sql)>;

struct ShrinkResult {
  std::string sql;          ///< smallest failing query found
  int candidates_tried = 0; ///< property evaluations spent
  int accepted = 0;         ///< reduction steps that kept the failure
};

/// Greedily minimizes a failing query: repeatedly tries structural
/// reductions (promote a nested block to the whole query, drop a FROM entry
/// together with every expression referencing it, drop WHERE/HAVING
/// conjuncts, select/group/order items, clear DISTINCT, collapse OR to one
/// side, unwrap NOT(NOT p) and CASE WHEN p THEN TRUE END) and keeps the
/// first candidate for which `still_fails` holds, restarting until a fixed
/// point or `max_evals` property evaluations. Candidates are sloppy — they
/// need not preserve semantics, only the failure — which is what lets the
/// shrinker cut relations out of a join.
ShrinkResult ShrinkQuery(const std::string& sql,
                         const FailureProperty& still_fails,
                         int max_evals = 400);

}  // namespace cbqt

#endif  // CBQT_FUZZ_SHRINKER_H_
