#ifndef CBQT_FUZZ_MUTATOR_H_
#define CBQT_FUZZ_MUTATOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cbqt {

/// Produces up to `count` semantically equivalent variants of `sql` by
/// applying 1–3 random equivalence-preserving AST mutations and unparsing.
/// The mutation catalog (all exact under SQL's three-valued logic at the
/// positions where they are applied):
///   - shuffle the WHERE/HAVING conjunct list of a random block
///   - double negation: p -> NOT (NOT p)
///   - De Morgan on an AND/OR node under a NOT, or introduced with one
///   - append a redundant TRUE conjunct ((1 = 1))
///   - swap comparison operands: a < b -> b > a
///   - commute comma-joined FROM entries (inner joins carry their
///     predicates in WHERE, so order is semantics-free)
///   - duplicate a disjunct: p -> (p OR p)
///   - wrap a top-level WHERE/HAVING conjunct as CASE WHEN p THEN TRUE END
///     (FALSE and UNKNOWN are interchangeable at conjunct position)
///   - rewrite `x IN (SELECT c FROM ...)` at conjunct position into a
///     correlated EXISTS (guarded: simple column operand, non-aggregating
///     non-compound subquery)
/// Variants that fail to re-parse are dropped (that would be a bug the
/// harness reports separately via the round-trip check), so the result may
/// have fewer than `count` entries. Deterministic in (sql, count, seed).
std::vector<std::string> GenerateEquivalentMutants(const std::string& sql,
                                                   int count, uint64_t seed);

}  // namespace cbqt

#endif  // CBQT_FUZZ_MUTATOR_H_
