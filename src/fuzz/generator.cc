#include "fuzz/generator.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/str_util.h"

namespace cbqt {

namespace {

// ---- schema catalog -------------------------------------------------------

enum class ColType { kId, kInt, kReal, kDate, kEnum, kName };

const char* const kCountries[] = {"US", "UK", "DE", "JP",
                                  "IN", "BR", "FR", "CA"};
const char* const kStatuses[] = {"OPEN", "SHIPPED", "CLOSED", "CANCELLED"};
const char* const kSegments[] = {"RETAIL", "CORP", "GOV", "SMB"};

struct GenCol {
  std::string name;
  ColType type = ColType::kInt;
  double lo = 0, hi = 0;       // kInt / kReal value range
  int id_range = 0;            // kId: ids are uniform in [0, id_range)
  int enum_set = 0;            // kEnum: 0 countries, 1 statuses, 2 segments
  std::string name_prefix;     // kName: values are "<prefix><i>"
  int name_range = 0;
  bool nullable = false;
};

struct TableDef {
  std::string name;
  int64_t card = 0;
  std::vector<GenCol> cols;
};

// A relation instance in the block being generated: a base table or a
// derived view, with the columns it exposes to the enclosing block.
struct GenRel {
  std::string alias;
  std::string text;  // "employees" or "(SELECT ... ) " (no alias)
  std::vector<GenCol> cols;
  int64_t card = 1;
  int table = -1;
  bool left_joined = false;
};

struct JoinEdge {
  int ta;
  const char* ca;
  int tb;
  const char* cb;
};

// Table indices (order matters for the edge list below).
enum : int {
  kLocations = 0,
  kDepartments,
  kJobs,
  kEmployees,
  kJobHistory,
  kCustomers,
  kProducts,
  kOrders,
  kOrderItems,
  kAccounts,
  kNumTables,
};

const JoinEdge kEdges[] = {
    {kEmployees, "dept_id", kDepartments, "dept_id"},
    {kDepartments, "loc_id", kLocations, "loc_id"},
    {kJobHistory, "emp_id", kEmployees, "emp_id"},
    {kEmployees, "job_id", kJobs, "job_id"},
    {kJobHistory, "dept_id", kDepartments, "dept_id"},
    {kJobHistory, "job_id", kJobs, "job_id"},
    {kOrders, "cust_id", kCustomers, "cust_id"},
    {kOrders, "emp_id", kEmployees, "emp_id"},
    {kOrderItems, "order_id", kOrders, "order_id"},
    {kOrderItems, "product_id", kProducts, "product_id"},
};

GenCol IdCol(const char* name, int range, bool nullable = false) {
  GenCol c;
  c.name = name;
  c.type = ColType::kId;
  c.id_range = range;
  c.nullable = nullable;
  return c;
}

GenCol IntCol(const char* name, double lo, double hi) {
  GenCol c;
  c.name = name;
  c.type = ColType::kInt;
  c.lo = lo;
  c.hi = hi;
  return c;
}

GenCol RealCol(const char* name, double lo, double hi,
               bool nullable = false) {
  GenCol c;
  c.name = name;
  c.type = ColType::kReal;
  c.lo = lo;
  c.hi = hi;
  c.nullable = nullable;
  return c;
}

GenCol DateCol(const char* name) {
  GenCol c;
  c.name = name;
  c.type = ColType::kDate;
  return c;
}

GenCol EnumCol(const char* name, int set) {
  GenCol c;
  c.name = name;
  c.type = ColType::kEnum;
  c.enum_set = set;
  return c;
}

GenCol NameCol(const char* name, const char* prefix, int range) {
  GenCol c;
  c.name = name;
  c.type = ColType::kName;
  c.name_prefix = prefix;
  c.name_range = range;
  return c;
}

std::vector<TableDef> BuildCatalog(const SchemaConfig& s) {
  std::vector<TableDef> t(kNumTables);
  t[kLocations] = {"locations",
                   s.locations,
                   {IdCol("loc_id", s.locations),
                    NameCol("city", "city_", s.locations),
                    EnumCol("country_id", 0)}};
  t[kDepartments] = {"departments",
                     s.departments,
                     {IdCol("dept_id", s.departments),
                      NameCol("dept_name", "dept_", s.departments),
                      IdCol("loc_id", s.locations),
                      RealCol("budget", 1e5, 1e6, /*nullable=*/true)}};
  t[kJobs] = {"jobs",
              s.jobs,
              {IdCol("job_id", s.jobs), NameCol("job_title", "title_", s.jobs),
               RealCol("min_salary", 30000, 30000 + 1000.0 * s.jobs)}};
  t[kEmployees] = {"employees",
                   s.employees,
                   {IdCol("emp_id", s.employees),
                    NameCol("employee_name", "emp_", s.employees),
                    IdCol("dept_id", s.departments),
                    RealCol("salary", 30000, 150000),
                    IdCol("mgr_id", s.employees, /*nullable=*/true),
                    IdCol("job_id", s.jobs), DateCol("hire_date")}};
  t[kJobHistory] = {"job_history",
                    s.job_history,
                    {IdCol("emp_id", s.employees), IdCol("job_id", s.jobs),
                     NameCol("job_title", "title_", s.jobs),
                     IdCol("dept_id", s.departments),
                     DateCol("start_date")}};
  t[kCustomers] = {"customers",
                   s.customers,
                   {IdCol("cust_id", s.customers),
                    NameCol("cust_name", "cust_", s.customers),
                    EnumCol("country_id", 0), EnumCol("segment", 2)}};
  t[kProducts] = {"products",
                  s.products,
                  {IdCol("product_id", s.products),
                   NameCol("product_name", "prod_", s.products),
                   IntCol("category_id", 0, 39),
                   RealCol("list_price", 5, 1000)}};
  t[kOrders] = {"orders",
                s.orders,
                {IdCol("order_id", s.orders), IdCol("cust_id", s.customers),
                 IdCol("emp_id", s.employees, /*nullable=*/true),
                 DateCol("order_date"), EnumCol("status", 1),
                 RealCol("total", 10, 5000)}};
  t[kOrderItems] = {"order_items",
                    s.order_items,
                    {IdCol("order_id", s.orders),
                     IdCol("product_id", s.products),
                     IntCol("quantity", 1, 9), RealCol("price", 5, 500)}};
  t[kAccounts] = {"accounts",
                  static_cast<int64_t>(s.accounts) * s.months,
                  {IdCol("acct_id", s.accounts),
                   IntCol("time", 1, s.months),
                   RealCol("balance", 800, 11000)}};
  return t;
}

// ---- generator ------------------------------------------------------------

class FuzzGen {
 public:
  FuzzGen(uint64_t seed, const SchemaConfig& schema, const FuzzGenConfig& cfg)
      : rng_(seed), cfg_(cfg), tables_(BuildCatalog(schema)) {}

  std::string Generate() {
    double shape = rng_.NextDouble();
    if (shape < cfg_.window_prob) return WindowShape();
    shape -= cfg_.window_prob;
    if (shape < cfg_.rownum_prob) return RownumShape();
    shape -= cfg_.rownum_prob;
    if (shape < cfg_.setop_prob) return SetOpShape();
    return PlainBlock(/*allow_subquery=*/true);
  }

 private:
  std::string FreshAlias(const char* prefix) {
    return std::string(prefix) + std::to_string(alias_counter_++);
  }

  const GenCol* FindCol(const GenRel& rel, const std::string& name) const {
    for (const auto& c : rel.cols) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }

  std::string DateLiteral() {
    int64_t day = static_cast<int64_t>(rng_.NextUint(360 * 12));
    int64_t year = 1995 + day / 360;
    int64_t month = 1 + (day % 360) / 30;
    int64_t dd = 1 + (day % 30);
    return StrFormat("'%04d%02d%02d'", static_cast<int>(year),
                     static_cast<int>(month), static_cast<int>(dd));
  }

  std::string Literal(const GenCol& col) {
    switch (col.type) {
      case ColType::kId:
        return std::to_string(
            rng_.NextUint(static_cast<uint64_t>(std::max(col.id_range, 1))));
      case ColType::kInt:
        return std::to_string(static_cast<int64_t>(
            col.lo + rng_.NextDouble() * (col.hi - col.lo)));
      case ColType::kReal: {
        double v = col.lo + rng_.NextDouble() * (col.hi - col.lo);
        // Occasionally a full-precision literal to stress unparser
        // round-tripping of doubles.
        if (rng_.NextBool(0.15)) return StrFormat("%.13f", v);
        return StrFormat("%.2f", v);
      }
      case ColType::kDate:
        return DateLiteral();
      case ColType::kEnum: {
        const char* const* set = col.enum_set == 0   ? kCountries
                                 : col.enum_set == 1 ? kStatuses
                                                     : kSegments;
        int n = col.enum_set == 0 ? 8 : 4;
        return std::string("'") + set[rng_.NextUint(n)] + "'";
      }
      case ColType::kName:
        // Mostly a value that exists; sometimes a quote/comment-stress
        // literal that matches nothing but must survive unparse → reparse.
        if (rng_.NextBool(0.12)) return "'O''Brien; -- '";
        return "'" + col.name_prefix +
               std::to_string(rng_.NextUint(
                   static_cast<uint64_t>(std::max(col.name_range, 1)))) +
               "'";
    }
    return "0";
  }

  const char* CmpOp() {
    switch (rng_.NextUint(6)) {
      case 0: return "=";
      case 1: return "<>";
      case 2: return "<";
      case 3: return "<=";
      case 4: return ">";
      default: return ">=";
    }
  }

  // One single-relation predicate over `rel` (qualified by its alias).
  std::string FilterPred(const GenRel& rel) {
    // Prefer typed columns a comparison makes sense on.
    std::vector<const GenCol*> cands;
    for (const auto& c : rel.cols) cands.push_back(&c);
    const GenCol& col = *cands[rng_.NextUint(cands.size())];
    std::string ref = rel.alias + "." + col.name;
    if (col.nullable && rng_.NextBool(0.25)) {
      return "(" + ref + (rng_.NextBool(0.5) ? " IS NULL)" : " IS NOT NULL)");
    }
    switch (col.type) {
      case ColType::kEnum:
      case ColType::kName:
        if (rng_.NextBool(0.3) && col.type == ColType::kEnum) {
          // IN-list (the parser expands it to an OR chain).
          std::string a = Literal(col);
          std::string b = Literal(col);
          return ref + " IN (" + a + ", " + b + ")";
        }
        return "(" + ref + (rng_.NextBool(0.7) ? " = " : " <> ") +
               Literal(col) + ")";
      case ColType::kId:
      case ColType::kInt:
        if (rng_.NextBool(0.2)) {
          std::string a = Literal(col);
          std::string b = Literal(col);
          std::string c = Literal(col);
          return ref + " IN (" + a + ", " + b + ", " + c + ")";
        }
        return "(" + ref + " " + CmpOp() + " " + Literal(col) + ")";
      case ColType::kReal:
      case ColType::kDate: {
        if (rng_.NextBool(0.2)) {
          std::string lo = Literal(col);
          std::string hi = Literal(col);
          return "(" + ref + " BETWEEN " + lo + " AND " + hi + ")";
        }
        return "(" + ref + " " + CmpOp() + " " + Literal(col) + ")";
      }
    }
    return "(1 = 1)";
  }

  // A filterable (non-left-joined) relation index, or -1.
  int PickFilterRel(const std::vector<GenRel>& rels) {
    std::vector<int> c;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (!rels[i].left_joined) c.push_back(static_cast<int>(i));
    }
    if (c.empty()) return -1;
    return c[rng_.NextUint(c.size())];
  }

  // ---- derived views ----

  // A view over base table `t` that must export column `need` (join key).
  GenRel ViewRel(int t, const std::string& need) {
    const TableDef& td = tables_[static_cast<size_t>(t)];
    GenRel base;
    base.alias = FreshAlias("i");
    base.text = td.name;
    base.cols = td.cols;
    base.card = td.card;
    base.table = t;

    GenRel view;
    view.table = t;
    view.alias = FreshAlias("v");
    double kind = rng_.NextDouble();
    if (kind < 0.3) {
      // GROUP BY view: the join key is the group key.
      const GenCol* key = FindCol(base, need);
      std::vector<const GenCol*> nums;
      for (const auto& c : base.cols) {
        if ((c.type == ColType::kReal || c.type == ColType::kInt) &&
            !c.nullable) {
          nums.push_back(&c);
        }
      }
      std::string agg_arg = nums.empty()
                                ? base.alias + "." + need
                                : base.alias + "." +
                                      nums[rng_.NextUint(nums.size())]->name;
      const char* agg = rng_.NextBool(0.5) ? "SUM" : "MAX";
      std::string sql = "SELECT " + base.alias + "." + need + " AS " + need +
                        ", " + agg + "(" + agg_arg + ") AS agg_0, COUNT(*) " +
                        "AS cnt_0 FROM " + td.name + " " + base.alias;
      if (rng_.NextBool(0.5)) sql += " WHERE " + FilterPred(base);
      sql += " GROUP BY " + base.alias + "." + need;
      view.text = "(" + sql + ")";
      view.cols = {*key, RealCol("agg_0", 0, 1e7), IntCol("cnt_0", 0, 1e5)};
      view.card = std::min<int64_t>(base.card, key->id_range + 1);
      return view;
    }
    // Filtered / DISTINCT / UNION ALL view exporting all columns.
    std::vector<std::string> items;
    for (const auto& c : base.cols) {
      items.push_back(base.alias + "." + c.name + " AS " + c.name);
    }
    std::string select = JoinStrings(items, ", ");
    std::string sql = "SELECT ";
    if (kind < 0.5) sql += "DISTINCT ";
    sql += select + " FROM " + td.name + " " + base.alias;
    if (rng_.NextBool(0.7)) sql += " WHERE " + FilterPred(base);
    if (kind >= 0.8) {
      // UNION ALL view: second branch over the same table, different filter.
      GenRel b2 = base;
      b2.alias = FreshAlias("i");
      std::vector<std::string> items2;
      for (const auto& c : b2.cols) {
        items2.push_back(b2.alias + "." + c.name);
      }
      sql += " UNION ALL SELECT " + JoinStrings(items2, ", ") + " FROM " +
             td.name + " " + b2.alias + " WHERE " + FilterPred(b2);
    }
    view.text = "(" + sql + ")";
    view.cols = base.cols;
    view.card = base.card;
    return view;
  }

  // ---- subqueries ----

  // One subquery predicate correlated (or not) with `outer` via a join edge.
  std::string SubqueryPred(const std::vector<GenRel>& rels) {
    // Candidate (outer rel, edge, direction) pairs where the outer side's
    // join column is exported.
    struct Cand {
      int rel;
      int inner_table;
      const char* outer_col;
      const char* inner_col;
    };
    std::vector<Cand> cands;
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i].table < 0) continue;
      for (const auto& e : kEdges) {
        if (e.ta == rels[i].table && FindCol(rels[i], e.ca) != nullptr) {
          cands.push_back({static_cast<int>(i), e.tb, e.ca, e.cb});
        }
        if (e.tb == rels[i].table && FindCol(rels[i], e.cb) != nullptr) {
          cands.push_back({static_cast<int>(i), e.ta, e.cb, e.ca});
        }
      }
    }
    if (cands.empty()) return "";
    const Cand& c = cands[rng_.NextUint(cands.size())];
    const GenRel& outer = rels[static_cast<size_t>(c.rel)];
    const TableDef& inner = tables_[static_cast<size_t>(c.inner_table)];
    GenRel in;
    in.alias = FreshAlias("s");
    in.text = inner.name;
    in.cols = inner.cols;
    in.card = inner.card;
    in.table = c.inner_table;
    std::string corr = in.alias + "." + c.inner_col + " = " + outer.alias +
                       "." + c.outer_col;
    switch (rng_.NextUint(5)) {
      case 0:
        return "EXISTS (SELECT 1 FROM " + inner.name + " " + in.alias +
               " WHERE " + corr + " AND " + FilterPred(in) + ")";
      case 1:
        return "NOT EXISTS (SELECT 1 FROM " + inner.name + " " + in.alias +
               " WHERE " + corr + " AND " + FilterPred(in) + ")";
      case 2:
        return outer.alias + "." + c.outer_col + " IN (SELECT " + in.alias +
               "." + c.inner_col + " FROM " + inner.name + " " + in.alias +
               " WHERE " + FilterPred(in) + ")";
      case 3:
        return outer.alias + "." + c.outer_col + " NOT IN (SELECT " +
               in.alias + "." + c.inner_col + " FROM " + inner.name + " " +
               in.alias + " WHERE " + FilterPred(in) + ")";
      default: {
        // Correlated scalar aggregate comparison on a numeric column.
        std::vector<const GenCol*> outs;
        for (const auto& col : outer.cols) {
          if (col.type == ColType::kReal && !col.nullable) outs.push_back(&col);
        }
        std::vector<const GenCol*> ins;
        for (const auto& col : in.cols) {
          if ((col.type == ColType::kReal || col.type == ColType::kInt) &&
              !col.nullable) {
            ins.push_back(&col);
          }
        }
        if (outs.empty() || ins.empty()) {
          return "EXISTS (SELECT 1 FROM " + inner.name + " " + in.alias +
                 " WHERE " + corr + ")";
        }
        std::string lhs = outer.alias + "." +
                          outs[rng_.NextUint(outs.size())]->name;
        std::string arg = in.alias + "." +
                          ins[rng_.NextUint(ins.size())]->name;
        const char* agg = rng_.NextBool(0.6) ? "AVG" : "MIN";
        return lhs + " " + (rng_.NextBool(0.5) ? ">" : "<=") + " (SELECT " +
               agg + "(" + arg + ") FROM " + inner.name + " " + in.alias +
               " WHERE " + corr + ")";
      }
    }
  }

  // ---- block shapes ----

  // Chooses 1..max_relations connected relations under the cross-row cap.
  // Returns rels plus join predicate texts (comma-join form) and the FROM
  // clause text (which may embed LEFT OUTER JOIN ... ON for some rels).
  void PickRelations(bool has_subquery, std::vector<GenRel>* rels,
                     std::vector<std::string>* join_preds, std::string* from) {
    int64_t cap = has_subquery ? cfg_.max_cross_rows_with_subquery
                               : cfg_.max_cross_rows;
    int want = 1 + static_cast<int>(rng_.NextUint(
                       static_cast<uint64_t>(cfg_.max_relations)));
    // Start anywhere but accounts (no join edges).
    int first = static_cast<int>(rng_.NextUint(kNumTables - 1));
    GenRel r0;
    const TableDef& t0 = tables_[static_cast<size_t>(first)];
    r0.alias = FreshAlias("f");
    r0.text = t0.name;
    r0.cols = t0.cols;
    r0.card = t0.card;
    r0.table = first;
    int64_t product = std::max<int64_t>(r0.card, 1);
    *from = r0.text + " " + r0.alias;
    rels->push_back(std::move(r0));

    for (int k = 1; k < want; ++k) {
      // Edges touching exactly the chosen set on one side, where the
      // existing rel still exports the join column.
      struct Cand {
        int rel;
        const char* have_col;
        int new_table;
        const char* new_col;
      };
      std::vector<Cand> cands;
      for (size_t i = 0; i < rels->size(); ++i) {
        const GenRel& rel = (*rels)[i];
        if (rel.table < 0) continue;
        for (const auto& e : kEdges) {
          if (e.ta == rel.table && FindCol(rel, e.ca) != nullptr) {
            cands.push_back({static_cast<int>(i), e.ca, e.tb, e.cb});
          }
          if (e.tb == rel.table && FindCol(rel, e.cb) != nullptr) {
            cands.push_back({static_cast<int>(i), e.cb, e.ta, e.ca});
          }
        }
      }
      // Drop candidates that blow the reference-cost cap.
      std::vector<Cand> ok;
      for (const auto& c : cands) {
        int64_t card = tables_[static_cast<size_t>(c.new_table)].card;
        if (product * std::max<int64_t>(card, 1) <= cap) ok.push_back(c);
      }
      if (ok.empty()) break;
      const Cand& c = ok[rng_.NextUint(ok.size())];
      GenRel nr;
      if (rng_.NextBool(cfg_.view_prob)) {
        nr = ViewRel(c.new_table, c.new_col);
      } else {
        const TableDef& td = tables_[static_cast<size_t>(c.new_table)];
        nr.alias = FreshAlias("f");
        nr.text = td.name;
        nr.cols = td.cols;
        nr.card = td.card;
        nr.table = c.new_table;
      }
      product *= std::max<int64_t>(nr.card, 1);
      std::string pred = "(" + (*rels)[static_cast<size_t>(c.rel)].alias +
                         "." + c.have_col + " = " + nr.alias + "." +
                         c.new_col + ")";
      if (rng_.NextBool(cfg_.left_join_prob)) {
        nr.left_joined = true;
        std::string on = pred;
        if (rng_.NextBool(0.4)) on += " AND " + FilterPred(nr);
        *from += " LEFT OUTER JOIN " + nr.text + " " + nr.alias + " ON " + on;
      } else {
        *from += ", " + nr.text + " " + nr.alias;
        join_preds->push_back(std::move(pred));
      }
      rels->push_back(std::move(nr));
    }
  }

  std::string PlainBlock(bool allow_subquery) {
    bool want_subquery = allow_subquery && rng_.NextBool(cfg_.subquery_prob);
    std::vector<GenRel> rels;
    std::vector<std::string> join_preds;
    std::string from;
    PickRelations(want_subquery, &rels, &join_preds, &from);

    // WHERE: join predicates first (the reference evaluates conjuncts in
    // order with early exit, so this keeps the naive cost sane), then
    // filters, then subqueries.
    std::vector<std::string> where = join_preds;
    int nfilters = static_cast<int>(rng_.NextUint(3));
    for (int i = 0; i < nfilters; ++i) {
      int r = PickFilterRel(rels);
      if (r < 0) break;
      std::string p = FilterPred(rels[static_cast<size_t>(r)]);
      if (rng_.NextBool(cfg_.disjunct_prob)) {
        int r2 = PickFilterRel(rels);
        if (r2 >= 0) {
          p = "(" + p + " OR " + FilterPred(rels[static_cast<size_t>(r2)]) +
              ")";
        }
      }
      if (rng_.NextBool(0.1)) p = "(NOT " + p + ")";
      where.push_back(std::move(p));
    }
    // The classic left-join anti pattern: IS NULL on the nullable side.
    for (const auto& rel : rels) {
      if (rel.left_joined && rng_.NextBool(0.2) && !rel.cols.empty()) {
        where.push_back("(" + rel.alias + "." + rel.cols[0].name +
                        " IS NULL)");
        break;
      }
    }
    if (want_subquery) {
      std::string sq = SubqueryPred(rels);
      if (!sq.empty()) where.push_back(std::move(sq));
    }

    std::string sql = "SELECT ";
    bool grouped = rng_.NextBool(cfg_.groupby_prob);
    if (grouped) {
      // Keys from filterable relations; aggregates over numeric columns.
      std::vector<std::string> keys;
      int nkeys = 1 + static_cast<int>(rng_.NextUint(2));
      for (int i = 0; i < nkeys; ++i) {
        int r = PickFilterRel(rels);
        if (r < 0) r = 0;
        const GenRel& rel = rels[static_cast<size_t>(r)];
        const GenCol& c = rel.cols[rng_.NextUint(rel.cols.size())];
        std::string k = rel.alias + "." + c.name;
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
          keys.push_back(std::move(k));
        }
      }
      std::vector<std::string> items = keys;
      std::vector<std::string> numeric;
      for (const auto& rel : rels) {
        for (const auto& c : rel.cols) {
          if (c.type == ColType::kReal || c.type == ColType::kInt) {
            numeric.push_back(rel.alias + "." + c.name);
          }
        }
      }
      int naggs = 1 + static_cast<int>(rng_.NextUint(2));
      for (int i = 0; i < naggs; ++i) {
        if (numeric.empty() || rng_.NextBool(0.3)) {
          items.push_back("COUNT(*) AS cnt_" + std::to_string(i));
          continue;
        }
        const char* agg;
        switch (rng_.NextUint(4)) {
          case 0: agg = "SUM"; break;
          case 1: agg = "AVG"; break;
          case 2: agg = "MIN"; break;
          default: agg = "MAX"; break;
        }
        items.push_back(std::string(agg) + "(" +
                        numeric[rng_.NextUint(numeric.size())] + ") AS agg_" +
                        std::to_string(i));
      }
      sql += JoinStrings(items, ", ") + " FROM " + from;
      if (!where.empty()) sql += " WHERE " + JoinStrings(where, " AND ");
      sql += " GROUP BY " + JoinStrings(keys, ", ");
      if (rng_.NextBool(0.3)) {
        sql += " HAVING COUNT(*) >= " + std::to_string(1 + rng_.NextUint(3));
      }
      return sql;
    }

    if (rng_.NextBool(cfg_.distinct_prob)) sql += "DISTINCT ";
    std::vector<std::string> items;
    int nitems = 1 + static_cast<int>(rng_.NextUint(4));
    for (int i = 0; i < nitems; ++i) {
      const GenRel& rel = rels[rng_.NextUint(rels.size())];
      const GenCol& c = rel.cols[rng_.NextUint(rel.cols.size())];
      std::string item = rel.alias + "." + c.name;
      if ((c.type == ColType::kReal || c.type == ColType::kInt ||
           c.type == ColType::kId) &&
          rng_.NextBool(0.15)) {
        item = "(" + item + (rng_.NextBool(0.5) ? " + " : " * ") +
               std::to_string(1 + rng_.NextUint(5)) + ")";
      } else if (rng_.NextBool(0.08) && !rel.left_joined) {
        item = "CASE WHEN " + FilterPred(rel) + " THEN " + item + " END";
      }
      items.push_back(std::move(item));
    }
    sql += JoinStrings(items, ", ") + " FROM " + from;
    if (!where.empty()) sql += " WHERE " + JoinStrings(where, " AND ");
    return sql;
  }

  std::string SetOpShape() {
    // Branches over the same base table with identical projections and
    // different filters (join-factorization territory for UNION ALL).
    int t = static_cast<int>(rng_.NextUint(kNumTables));
    const TableDef& td = tables_[static_cast<size_t>(t)];
    std::vector<size_t> proj;
    size_t ncols = 1 + rng_.NextUint(std::min<size_t>(td.cols.size(), 3));
    for (size_t i = 0; i < td.cols.size() && proj.size() < ncols; ++i) {
      proj.push_back(i);
    }
    const char* op;
    int branches = 2;
    switch (rng_.NextUint(4)) {
      case 0:
        op = " UNION ALL ";
        branches = 2 + static_cast<int>(rng_.NextUint(2));
        break;
      case 1: op = " UNION "; break;
      case 2: op = " INTERSECT "; break;
      default: op = " MINUS "; break;
    }
    std::vector<std::string> parts;
    for (int b = 0; b < branches; ++b) {
      GenRel rel;
      rel.alias = FreshAlias("f");
      rel.text = td.name;
      rel.cols = td.cols;
      rel.card = td.card;
      rel.table = t;
      std::vector<std::string> items;
      for (size_t i : proj) {
        items.push_back(rel.alias + "." + td.cols[i].name);
      }
      std::string branch = "SELECT " + JoinStrings(items, ", ") + " FROM " +
                           td.name + " " + rel.alias;
      if (rng_.NextBool(0.8)) branch += " WHERE " + FilterPred(rel);
      parts.push_back(std::move(branch));
    }
    return JoinStrings(parts, op);
  }

  std::string RownumShape() {
    // The pullup shape: an ordered (deterministic: ORDER BY every exported
    // column) view under an outer ROWNUM cutoff, sometimes with an
    // expensive predicate the optimizer can pull above the cutoff.
    int t = static_cast<int>(rng_.NextUint(kNumTables));
    const TableDef& td = tables_[static_cast<size_t>(t)];
    GenRel rel;
    rel.alias = FreshAlias("i");
    rel.text = td.name;
    rel.cols = td.cols;
    rel.card = td.card;
    rel.table = t;
    std::vector<std::string> items, order, outer;
    std::string v = FreshAlias("v");
    for (size_t i = 0; i < td.cols.size() && i < 4; ++i) {
      items.push_back(rel.alias + "." + td.cols[i].name + " AS c" +
                      std::to_string(i));
      order.push_back(rel.alias + "." + td.cols[i].name);
      outer.push_back(v + ".c" + std::to_string(i));
    }
    std::string inner = "SELECT " + JoinStrings(items, ", ") + " FROM " +
                        td.name + " " + rel.alias;
    std::vector<std::string> where;
    if (rng_.NextBool(0.4) && td.cols[0].type == ColType::kId) {
      where.push_back("expensive_filter(" + rel.alias + "." +
                      td.cols[0].name + ", " +
                      std::to_string(2 + rng_.NextUint(20)) + ") = 1");
    }
    if (rng_.NextBool(0.6)) where.push_back(FilterPred(rel));
    if (!where.empty()) inner += " WHERE " + JoinStrings(where, " AND ");
    inner += " ORDER BY " + JoinStrings(order, ", ");
    return "SELECT " + JoinStrings(outer, ", ") + " FROM (" + inner + ") " +
           v + " WHERE rownum <= " + std::to_string(1 + rng_.NextUint(30));
  }

  std::string WindowShape() {
    const TableDef& td = tables_[kAccounts];
    GenRel rel;
    rel.alias = FreshAlias("i");
    rel.cols = td.cols;
    rel.table = kAccounts;
    std::string v = FreshAlias("v");
    const char* agg;
    switch (rng_.NextUint(3)) {
      case 0: agg = "AVG"; break;
      case 1: agg = "SUM"; break;
      default: agg = "MIN"; break;
    }
    std::string inner =
        "SELECT " + rel.alias + ".acct_id AS acct_id, " + rel.alias +
        ".time AS t, " + agg + "(" + rel.alias +
        ".balance) OVER (PARTITION BY " + rel.alias + ".acct_id ORDER BY " +
        rel.alias + ".time) AS r FROM accounts " + rel.alias;
    std::string sql = "SELECT " + v + ".acct_id, " + v + ".t, " + v +
                      ".r FROM (" + inner + ") " + v;
    std::vector<std::string> where;
    if (rng_.NextBool(0.7)) {
      where.push_back("(" + v + ".t <= " +
                      std::to_string(1 + rng_.NextUint(12)) + ")");
    }
    if (rng_.NextBool(0.5)) {
      where.push_back("(" + v + ".acct_id = " +
                      std::to_string(rng_.NextUint(static_cast<uint64_t>(
                          std::max(td.cols[0].id_range, 1)))) +
                      ")");
    }
    if (!where.empty()) sql += " WHERE " + JoinStrings(where, " AND ");
    return sql;
  }

  Rng rng_;
  FuzzGenConfig cfg_;
  std::vector<TableDef> tables_;
  int alias_counter_ = 0;
};

}  // namespace

std::string GenerateFuzzQuery(uint64_t seed, const SchemaConfig& schema,
                              const FuzzGenConfig& cfg) {
  FuzzGen gen(seed, schema, cfg);
  return gen.Generate();
}

}  // namespace cbqt
