#include "fuzz/oracle.h"

#include <utility>

#include "binder/binder.h"
#include "cbqt/search.h"
#include "exec/reference.h"
#include "optimizer/plan_serde.h"
#include "parser/parser.h"
#include "sql/expr_util.h"

namespace cbqt {

namespace {

bool IsAcceptableAbort(const Status& st) {
  return IsGuardrailAbort(st.code()) ||
         st.code() == StatusCode::kBudgetExhausted;
}

bool IsInjectedFault(const Status& st) {
  return st.code() == StatusCode::kInternal &&
         st.message().find("injected fault") != std::string::npos;
}

}  // namespace

std::vector<DifferentialOracle::Entry> DifferentialOracle::DefaultDeck() {
  std::vector<Entry> deck;
  auto add = [&deck](const std::string& name, auto mutate) {
    CbqtConfig cfg;
    mutate(cfg);
    deck.push_back({name, std::move(cfg)});
  };
  add("exhaustive-1t", [](CbqtConfig& c) {
    c.strategy_override = SearchStrategy::kExhaustive;
  });
  add("exhaustive-4t", [](CbqtConfig& c) {
    c.strategy_override = SearchStrategy::kExhaustive;
    c.num_threads = 4;
  });
  add("iterative", [](CbqtConfig& c) {
    c.strategy_override = SearchStrategy::kIterative;
  });
  add("linear-4t", [](CbqtConfig& c) {
    c.strategy_override = SearchStrategy::kLinear;
    c.num_threads = 4;
  });
  add("twopass", [](CbqtConfig& c) {
    c.strategy_override = SearchStrategy::kTwoPass;
  });
  add("heuristic", [](CbqtConfig& c) { c.cost_based = false; });
  add("no-unnest-batch1", [](CbqtConfig& c) {
    c.transforms = TransformMask::All()
                       .Without(Transform::kUnnest)
                       .Without(Transform::kOrExpansion);
    c.exec.batch_size = 1;
  });
  add("spill-64k", [](CbqtConfig& c) {
    // A per-query budget small enough that pipeline breakers spill on the
    // fuzz database, with spill enabled so queries still complete (those
    // that overrun anyway abort typed and are skipped, not compared).
    c.guardrails.query_memory_bytes = 64 * 1024;
    c.exec.enable_spill = true;
    c.exec.batch_size = 16;
  });
  add("mqo", [](CbqtConfig& c) {
    // Multi-query optimization on: queries run one-at-a-time here, so each
    // forms its own batch, but the shared-scan interception and relaxed
    // annotation reuse paths are fully exercised — including replay of
    // streams registered by earlier operators inside the same plan.
    c.mqo.enabled = true;
    c.mqo.buffer_memory_bytes = 1 << 20;
  });
  return deck;
}

DifferentialOracle::DifferentialOracle(const Database& db,
                                       std::vector<Entry> deck, bool canary)
    : db_(db), deck_(std::move(deck)), canary_(canary) {
  engines_.reserve(deck_.size());
  for (const auto& e : deck_) {
    engines_.push_back(std::make_unique<QueryEngine>(db_, e.config));
  }
}

Result<std::vector<Row>> DifferentialOracle::Reference(
    const std::string& sql) {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  CBQT_RETURN_IF_ERROR(BindQuery(db_, parsed.value().get()));
  ReferenceExecutor ref(db_);
  return ref.Execute(*parsed.value());
}

void DifferentialOracle::Check(const std::string& sql,
                               const std::vector<Row>& expected_sorted,
                               OracleOutcome* out) {
  bool canary_applies =
      canary_ && ReferencesAtLeastNBaseRelations(db_, sql, 2);
  for (size_t i = 0; i < engines_.size(); ++i) {
    auto result = engines_[i]->Run(sql);
    if (!result.ok()) {
      const Status& st = result.status();
      if (IsAcceptableAbort(st)) {
        ++out->guardrail_aborts;
        continue;
      }
      if (IsInjectedFault(st)) {
        ++out->injected_faults;
        continue;
      }
      out->failures.push_back(
          {deck_[i].name, sql, "unexpected error: " + st.ToString()});
      continue;
    }
    if (serde_roundtrip_ && result.value().prepared.plan != nullptr) {
      const PlanNode& plan = *result.value().prepared.plan;
      std::string bytes = SerializePlan(plan);
      auto restored = DeserializePlan(bytes);
      if (!restored.ok()) {
        out->failures.push_back({deck_[i].name, sql,
                                 "serde: chosen plan failed to deserialize: " +
                                     restored.status().ToString()});
      } else if (SerializePlan(**restored) != bytes) {
        out->failures.push_back(
            {deck_[i].name, sql,
             "serde: re-serialized plan is not bit-identical"});
      } else if (PlanToString(**restored) != PlanToString(plan)) {
        out->failures.push_back(
            {deck_[i].name, sql, "serde: deserialized plan renders differently"});
      } else {
        ++out->serde_roundtrips;
      }
    }
    std::vector<Row> rows = std::move(result.value().rows);
    if (canary_applies && i == 0 && !rows.empty()) {
      rows.pop_back();  // the seeded wrong-rows bug the fuzzer must catch
    }
    SortRowsCanonical(&rows);
    RowSetDiff diff = CompareRowMultisets(rows, expected_sorted);
    ++out->executions;
    if (!diff.equal) {
      out->failures.push_back({deck_[i].name, sql, diff.message});
    }
  }
}

bool ReferencesAtLeastNBaseRelations(const Database& db,
                                     const std::string& sql, int n) {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return false;
  if (!BindQuery(db, parsed.value().get()).ok()) return false;
  int count = 0;
  VisitAllBlocksConst(parsed.value().get(), [&](const QueryBlock* qb) {
    for (const auto& tr : qb->from) {
      if (tr.IsBaseTable()) ++count;
    }
  });
  return count >= n;
}

}  // namespace cbqt
