#include "workload/query_gen.h"

#include "common/str_util.h"

namespace cbqt {

const char* QueryFamilyName(QueryFamily f) {
  switch (f) {
    case QueryFamily::kSpj:
      return "spj";
    case QueryFamily::kAggSubquery:
      return "agg-subquery";
    case QueryFamily::kSemiSubquery:
      return "semi-subquery";
    case QueryFamily::kGbView:
      return "gb-view";
    case QueryFamily::kDistinctView:
      return "distinct-view";
    case QueryFamily::kUnionView:
      return "union-view";
    case QueryFamily::kGbp:
      return "gbp";
    case QueryFamily::kFactorization:
      return "factorization";
    case QueryFamily::kPullup:
      return "pullup";
    case QueryFamily::kSetOp:
      return "setop";
    case QueryFamily::kOrExpansion:
      return "or-expansion";
    case QueryFamily::kWindowView:
      return "window-view";
    case QueryFamily::kPointLookup:
      return "point-lookup";
    case QueryFamily::kShortJoin:
      return "short-join";
  }
  return "?";
}

namespace {

const char* kCountries[] = {"US", "UK", "DE", "JP", "IN", "BR", "FR", "CA"};
const char* kStatuses[] = {"OPEN", "SHIPPED", "CLOSED", "CANCELLED"};
const char* kSegments[] = {"RETAIL", "CORP", "GOV", "SMB"};

// A date string whose selectivity over the uniform 12-year range is
// roughly `keep_fraction` (rows later than the date).
std::string DateCut(double keep_fraction) {
  double frac = 1.0 - keep_fraction;
  int64_t day = static_cast<int64_t>(frac * 360 * 12);
  int64_t year = 1995 + day / 360;
  int64_t month = 1 + (day % 360) / 30;
  int64_t dd = 1 + (day % 30);
  return StrFormat("%04d%02d%02d", static_cast<int>(year),
                   static_cast<int>(month), static_cast<int>(dd));
}

std::string SalaryCut(double keep_fraction) {
  // salary uniform in [30k, 150k].
  double v = 30000 + (1.0 - keep_fraction) * 120000;
  return StrFormat("%.0f", v);
}

std::string SpjQuery(Rng& rng, const SchemaConfig& cfg) {
  switch (rng.NextUint(4)) {
    case 0:
      return StrFormat(
          "SELECT e.employee_name, d.dept_name FROM employees e, departments "
          "d WHERE e.dept_id = d.dept_id AND e.salary > %s AND d.loc_id = %d",
          SalaryCut(rng.NextDouble() * 0.5).c_str(),
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.locations))));
    case 1:
      return StrFormat(
          "SELECT c.cust_name, o.order_id, o.total FROM customers c, orders "
          "o WHERE o.cust_id = c.cust_id AND o.status = '%s' AND "
          "c.country_id = '%s'",
          kStatuses[rng.NextUint(4)], kCountries[rng.NextUint(8)]);
    case 2:
      return StrFormat(
          "SELECT e.employee_name, d.dept_name, l.city FROM employees e, "
          "departments d, locations l WHERE e.dept_id = d.dept_id AND "
          "d.loc_id = l.loc_id AND l.country_id = '%s' AND e.salary > %s",
          kCountries[rng.NextUint(8)],
          SalaryCut(rng.NextDouble() * 0.4).c_str());
    default:
      return StrFormat(
          "SELECT o.order_id, oi.product_id, oi.price FROM orders o, "
          "order_items oi WHERE oi.order_id = o.order_id AND o.order_date > "
          "'%s' AND oi.quantity >= %d",
          DateCut(0.02 + rng.NextDouble() * 0.2).c_str(),
          static_cast<int>(1 + rng.NextUint(8)));
  }
}

std::string AggSubqueryQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  // Outer selectivity varies from very selective (TIS + index wins) to
  // unselective (unnesting wins) — the Q1 trade-off.
  double outer_keep = rng.NextBool(0.4) ? 0.002 + rng.NextDouble() * 0.01
                                        : 0.2 + rng.NextDouble() * 0.6;
  if (rng.NextBool(0.34)) {
    // Correlation on an UNindexed column (orders.emp_id): TIS degenerates
    // to one full scan per distinct correlation value — the unnesting
    // blowout cases behind the paper's 387% Figure 3 number.
    return StrFormat(
        "SELECT e.employee_name FROM employees e WHERE e.salary > %s AND "
        "e.salary / 40 > (SELECT AVG(o.total) FROM orders o WHERE o.emp_id "
        "= e.emp_id)",
        SalaryCut(0.01 + rng.NextDouble() * 0.06).c_str());
  }
  if (rng.NextBool(0.5)) {
    return StrFormat(
        "SELECT e1.employee_name, j.job_title FROM employees e1, job_history "
        "j WHERE e1.emp_id = j.emp_id AND j.start_date > '%s' AND e1.salary "
        "> (SELECT AVG(e2.salary) FROM employees e2 WHERE e2.dept_id = "
        "e1.dept_id)",
        DateCut(outer_keep).c_str());
  }
  return StrFormat(
      "SELECT c.cust_name, o.order_id FROM customers c, orders o WHERE "
      "o.cust_id = c.cust_id AND o.order_date > '%s' AND o.total > (SELECT "
      "AVG(o2.total) FROM orders o2 WHERE o2.cust_id = c.cust_id)",
      DateCut(outer_keep).c_str());
}

std::string SemiSubqueryQuery(Rng& rng, const SchemaConfig& cfg) {
  switch (rng.NextUint(6)) {
    case 5:  // correlated EXISTS on an unindexed column (job_history.dept_id)
      return StrFormat(
          "SELECT d.dept_name FROM departments d WHERE d.budget > %.0f AND "
          "EXISTS (SELECT 1 FROM job_history j WHERE j.dept_id = d.dept_id "
          "AND j.start_date > '%s')",
          1e5 + rng.NextDouble() * 3e5,
          DateCut(0.05 + rng.NextDouble() * 0.5).c_str());
    case 0:  // single-table EXISTS (heuristic merge territory)
      return StrFormat(
          "SELECT d.dept_name FROM departments d WHERE d.budget > %.0f AND "
          "EXISTS (SELECT 1 FROM employees e WHERE e.dept_id = d.dept_id AND "
          "e.salary > %s)",
          1e5 + rng.NextDouble() * 5e5,
          SalaryCut(0.05 + rng.NextDouble() * 0.3).c_str());
    case 1:  // multi-table EXISTS (cost-based view unnesting)
      return StrFormat(
          "SELECT d.dept_name FROM departments d WHERE EXISTS (SELECT 1 FROM "
          "employees e, job_history j WHERE e.emp_id = j.emp_id AND "
          "e.dept_id = d.dept_id AND j.start_date > '%s')",
          DateCut(0.05 + rng.NextDouble() * 0.5).c_str());
    case 2:  // IN with a multi-table subquery
      return StrFormat(
          "SELECT o.order_id, o.total FROM orders o WHERE o.order_date > "
          "'%s' AND o.order_id IN (SELECT oi.order_id FROM order_items oi, "
          "products p WHERE oi.product_id = p.product_id AND p.list_price > "
          "%.0f)",
          DateCut(0.05 + rng.NextDouble() * 0.4).c_str(),
          100 + rng.NextDouble() * 800);
    case 3:  // NOT EXISTS
      return StrFormat(
          "SELECT c.cust_name FROM customers c WHERE c.country_id = '%s' AND "
          "NOT EXISTS (SELECT 1 FROM orders o WHERE o.cust_id = c.cust_id "
          "AND o.status = '%s')",
          kCountries[rng.NextUint(8)], kStatuses[rng.NextUint(4)]);
    default:  // NOT IN over a nullable column: null-aware antijoin
      return StrFormat(
          "SELECT e.employee_name FROM employees e WHERE e.salary > %s AND "
          "e.emp_id NOT IN (SELECT o.emp_id FROM orders o WHERE o.total > "
          "%.0f)",
          SalaryCut(0.02 + rng.NextDouble() * 0.1).c_str(),
          3000 + rng.NextDouble() * 1900);
  }
  (void)cfg;
}

std::string GbViewQuery(Rng& rng, const SchemaConfig& cfg) {
  double inner_keep = 0.2 + rng.NextDouble() * 0.8;
  if (rng.NextBool(0.5)) {
    return StrFormat(
        "SELECT d.dept_name, v.avg_sal FROM departments d, (SELECT e.dept_id "
        "AS dept_id, AVG(e.salary) AS avg_sal FROM employees e WHERE "
        "e.salary > %s GROUP BY e.dept_id) v WHERE v.dept_id = d.dept_id AND "
        "d.loc_id = %d",
        SalaryCut(inner_keep).c_str(),
        static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.locations))));
  }
  return StrFormat(
      "SELECT c.cust_name, v.order_cnt FROM customers c, (SELECT o.cust_id "
      "AS cust_id, COUNT(o.order_id) AS order_cnt FROM orders o WHERE "
      "o.order_date > '%s' GROUP BY o.cust_id) v WHERE v.cust_id = "
      "c.cust_id AND c.segment = '%s'",
      DateCut(inner_keep).c_str(), kSegments[rng.NextUint(4)]);
}

std::string DistinctViewQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  return StrFormat(
      "SELECT e.employee_name, e.salary FROM employees e, (SELECT DISTINCT "
      "j.emp_id AS emp_id FROM job_history j WHERE j.start_date > '%s') v "
      "WHERE v.emp_id = e.emp_id AND e.salary > %s",
      DateCut(0.1 + rng.NextDouble() * 0.8).c_str(),
      SalaryCut(0.01 + rng.NextDouble() * 0.4).c_str());
}

std::string UnionViewQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  return StrFormat(
      "SELECT c.cust_name, v.total FROM customers c, (SELECT o.cust_id AS "
      "cust_id, o.total AS total FROM orders o WHERE o.status = 'OPEN' "
      "UNION ALL SELECT o.cust_id, o.total FROM orders o WHERE o.status = "
      "'SHIPPED' AND o.total > %.0f) v WHERE v.cust_id = c.cust_id AND "
      "c.country_id = '%s' AND c.segment = '%s'",
      500 + rng.NextDouble() * 3000, kCountries[rng.NextUint(8)],
      kSegments[rng.NextUint(4)]);
}

std::string GbpQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  if (rng.NextBool(0.4)) {
    // Pre-aggregating order_items by product collapses ~60k rows to ~800
    // before the join — the eager-aggregation win of Yan & Larson.
    return StrFormat(
        "SELECT p.product_name, SUM(oi.price) AS rev, COUNT(oi.quantity) AS "
        "cnt FROM products p, order_items oi WHERE oi.product_id = "
        "p.product_id AND p.category_id < %d GROUP BY p.product_name",
        static_cast<int>(5 + rng.NextUint(35)));
  }
  if (rng.NextBool(0.5)) {
    return StrFormat(
        "SELECT c.cust_name, SUM(oi.price) AS rev FROM customers c, orders "
        "o, order_items oi WHERE o.cust_id = c.cust_id AND oi.order_id = "
        "o.order_id AND c.segment = '%s' GROUP BY c.cust_name",
        kSegments[rng.NextUint(4)]);
  }
  return StrFormat(
      "SELECT d.dept_name, SUM(e.salary) AS payroll, COUNT(e.emp_id) AS "
      "headcount FROM departments d, employees e WHERE e.dept_id = "
      "d.dept_id AND d.loc_id = %d GROUP BY d.dept_name",
      static_cast<int>(rng.NextUint(50)));
}

std::string FactorizationQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  if (rng.NextBool(0.25)) {
    // Join predicates differ across branches (emp_id vs mgr_id): only the
    // lateral variant of factorization applies (paper §2.2.5 extension).
    std::string cut = SalaryCut(0.05 + rng.NextDouble() * 0.2);
    return StrFormat(
        "SELECT e.employee_name, j.job_title FROM employees e, job_history "
        "j WHERE j.emp_id = e.emp_id AND e.salary > %s UNION ALL SELECT "
        "e.employee_name, j.job_title FROM employees e, job_history j WHERE "
        "j.dept_id = e.dept_id AND e.salary > %s",
        cut.c_str(), cut.c_str());
  }
  if (rng.NextBool(0.5)) {
    // The *large* table (job_history, joined on an unindexed column) is
    // common and filter-free across the branches; factoring it out scans
    // and joins it once instead of per branch (Q14 -> Q15's shape).
    return StrFormat(
        "SELECT j.job_title, d.dept_name FROM job_history j, departments d "
        "WHERE j.dept_id = d.dept_id AND d.loc_id = %d UNION ALL SELECT "
        "j.job_title, d.dept_name FROM job_history j, departments d WHERE "
        "j.dept_id = d.dept_id AND d.budget > %.0f",
        static_cast<int>(rng.NextUint(20)), 7e5 + rng.NextDouble() * 2.5e5);
  }
  // Common small table: factoring buys little — a losing instance the
  // cost-based decision should reject.
  std::string hi = SalaryCut(0.1 + rng.NextDouble() * 0.2);
  std::string lo = SalaryCut(0.7 + rng.NextDouble() * 0.25);
  return StrFormat(
      "SELECT e.employee_name, d.dept_name FROM employees e, departments d "
      "WHERE e.dept_id = d.dept_id AND e.salary > %s UNION ALL SELECT "
      "e.employee_name, d.dept_name FROM employees e, departments d WHERE "
      "e.dept_id = d.dept_id AND e.salary < %s",
      hi.c_str(), lo.c_str());
}

std::string PullupQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  // expensive_filter(x, m) keeps ~1/m of the rows; the optimizer weighs
  // full-set evaluation inside the view against lazy evaluation above the
  // ROWNUM cutoff.
  int m = static_cast<int>(2 + rng.NextUint(30));
  int k = static_cast<int>(5 + rng.NextUint(40));
  return StrFormat(
      "SELECT v.order_id, v.total FROM (SELECT o.order_id AS order_id, "
      "o.total AS total, o.order_date AS order_date FROM orders o WHERE "
      "expensive_filter(o.order_id, %d) = 1 ORDER BY o.order_date) v WHERE "
      "rownum <= %d",
      m, k);
}

std::string SetOpQuery(Rng& rng, const SchemaConfig& cfg) {
  (void)cfg;
  const char* op = rng.NextBool(0.5) ? "INTERSECT" : "MINUS";
  return StrFormat(
      "SELECT o.cust_id FROM orders o WHERE o.status = '%s' %s SELECT "
      "o.cust_id FROM orders o WHERE o.total > %.0f",
      kStatuses[rng.NextUint(4)], op, 1000 + rng.NextDouble() * 3500);
}

std::string OrExpansionQuery(Rng& rng, const SchemaConfig& cfg) {
  return StrFormat(
      "SELECT o.order_id, o.total FROM orders o, customers c WHERE "
      "o.cust_id = c.cust_id AND (o.order_id = %d OR c.cust_id = %d)",
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.orders))),
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.customers))));
}

std::string WindowViewQuery(Rng& rng, const SchemaConfig& cfg) {
  return StrFormat(
      "SELECT v.acct_id, v.time, v.ravg FROM (SELECT a.acct_id AS acct_id, "
      "a.time AS time, AVG(a.balance) OVER (PARTITION BY a.acct_id ORDER BY "
      "a.time) AS ravg FROM accounts a) v WHERE v.acct_id = %d AND v.time "
      "<= %d",
      static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.accounts))),
      static_cast<int>(6 + rng.NextUint(12)));
}

std::string PointLookupQuery(Rng& rng, const SchemaConfig& cfg) {
  switch (rng.NextUint(4)) {
    case 0:
      return StrFormat(
          "SELECT c.cust_name, c.segment FROM customers c WHERE c.cust_id = "
          "%d",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.customers))));
    case 1:
      return StrFormat(
          "SELECT o.status, o.total FROM orders o WHERE o.order_id = %d",
          static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.orders))));
    case 2:
      return StrFormat(
          "SELECT p.product_name, p.list_price FROM products p WHERE "
          "p.product_id = %d",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.products))));
    default:
      return StrFormat(
          "SELECT e.employee_name, e.salary FROM employees e WHERE e.emp_id "
          "= %d",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.employees))));
  }
}

std::string ShortJoinQuery(Rng& rng, const SchemaConfig& cfg) {
  switch (rng.NextUint(4)) {
    case 3:  // one employee's open orders (index probe with oltp_indexes)
      return StrFormat(
          "SELECT o.order_id, o.total FROM orders o, employees e WHERE "
          "o.emp_id = e.emp_id AND e.emp_id = %d AND o.status = '%s'",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.employees))),
          kStatuses[rng.NextUint(4)]);
    case 0:  // order status for one customer
      return StrFormat(
          "SELECT o.order_id, o.status, o.total FROM orders o, customers c "
          "WHERE o.cust_id = c.cust_id AND c.cust_id = %d AND o.total > "
          "%.0f",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.customers))),
          10 + rng.NextDouble() * 500);
    case 1:  // line items of one order
      return StrFormat(
          "SELECT oi.product_id, oi.quantity, oi.price FROM order_items oi, "
          "orders o WHERE oi.order_id = o.order_id AND o.order_id = %d",
          static_cast<int>(rng.NextUint(static_cast<uint64_t>(cfg.orders))));
    default:  // one employee's department
      return StrFormat(
          "SELECT e.employee_name, d.dept_name FROM employees e, "
          "departments d WHERE e.dept_id = d.dept_id AND e.emp_id = %d",
          static_cast<int>(rng.NextUint(
              static_cast<uint64_t>(cfg.employees))));
  }
}

// splitmix64 finalizer: decorrelates per-query seeds derived from
// (workload seed, query id) so neighboring ids don't produce correlated
// literal streams.
uint64_t MixSeed(uint64_t seed, uint64_t id) {
  uint64_t x = seed + 0x9e3779b97f4a7c15ULL * (id + 1);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string GenerateOne(QueryFamily f, Rng& rng, const SchemaConfig& cfg) {
  switch (f) {
    case QueryFamily::kSpj:
      return SpjQuery(rng, cfg);
    case QueryFamily::kAggSubquery:
      return AggSubqueryQuery(rng, cfg);
    case QueryFamily::kSemiSubquery:
      return SemiSubqueryQuery(rng, cfg);
    case QueryFamily::kGbView:
      return GbViewQuery(rng, cfg);
    case QueryFamily::kDistinctView:
      return DistinctViewQuery(rng, cfg);
    case QueryFamily::kUnionView:
      return UnionViewQuery(rng, cfg);
    case QueryFamily::kGbp:
      return GbpQuery(rng, cfg);
    case QueryFamily::kFactorization:
      return FactorizationQuery(rng, cfg);
    case QueryFamily::kPullup:
      return PullupQuery(rng, cfg);
    case QueryFamily::kSetOp:
      return SetOpQuery(rng, cfg);
    case QueryFamily::kOrExpansion:
      return OrExpansionQuery(rng, cfg);
    case QueryFamily::kWindowView:
      return WindowViewQuery(rng, cfg);
    case QueryFamily::kPointLookup:
      return PointLookupQuery(rng, cfg);
    case QueryFamily::kShortJoin:
      return ShortJoinQuery(rng, cfg);
  }
  return "SELECT 1";
}

}  // namespace

std::vector<WorkloadQuery> GenerateFamily(QueryFamily family, int count,
                                          const SchemaConfig& schema,
                                          uint64_t seed) {
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadQuery q;
    q.id = i;
    q.family = family;
    // Fold the family into the per-query seed so different families at the
    // same (seed, id) don't share a literal stream.
    Rng rng(MixSeed(seed ^ (static_cast<uint64_t>(family) << 32),
                    static_cast<uint64_t>(i)));
    q.sql = GenerateOne(family, rng, schema);
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<WorkloadQuery> GenerateMixedWorkloadShard(
    int first_id, int count, double transformable_fraction,
    const SchemaConfig& schema, uint64_t seed) {
  static const QueryFamily kTransformable[] = {
      QueryFamily::kAggSubquery,  QueryFamily::kSemiSubquery,
      QueryFamily::kGbView,       QueryFamily::kDistinctView,
      QueryFamily::kUnionView,    QueryFamily::kGbp,
      QueryFamily::kFactorization, QueryFamily::kPullup,
      QueryFamily::kSetOp,        QueryFamily::kOrExpansion,
      QueryFamily::kWindowView};
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadQuery q;
    q.id = first_id + i;
    Rng rng(MixSeed(seed, static_cast<uint64_t>(q.id)));
    q.family = rng.NextBool(transformable_fraction)
                   ? kTransformable[rng.NextUint(11)]
                   : QueryFamily::kSpj;
    q.sql = GenerateOne(q.family, rng, schema);
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<WorkloadQuery> GenerateMixedWorkload(int count,
                                                 double transformable_fraction,
                                                 const SchemaConfig& schema,
                                                 uint64_t seed) {
  return GenerateMixedWorkloadShard(0, count, transformable_fraction, schema,
                                    seed);
}

std::vector<WorkloadQuery> GenerateOltpWorkloadShard(
    int first_id, int count, const SchemaConfig& schema, uint64_t seed) {
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    WorkloadQuery q;
    q.id = first_id + i;
    // A distinct seed stream from the analytic mix, so an OLTP query and
    // an analytic query at the same (seed, id) don't share literals.
    Rng rng(MixSeed(seed ^ 0x0175c0175c0175c0ULL,
                    static_cast<uint64_t>(q.id)));
    q.family = rng.NextBool(0.7) ? QueryFamily::kPointLookup
                                 : QueryFamily::kShortJoin;
    q.sql = GenerateOne(q.family, rng, schema);
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<WorkloadQuery> GenerateOltpWorkload(int count,
                                                const SchemaConfig& schema,
                                                uint64_t seed) {
  return GenerateOltpWorkloadShard(0, count, schema, seed);
}

std::vector<WorkloadQuery> GenerateTenantWorkload(
    int count, double oltp_fraction, double transformable_fraction,
    const SchemaConfig& schema, uint64_t seed) {
  std::vector<WorkloadQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    // The mix decision gets its own stream so that changing the fractions
    // does not perturb the chosen queries' literals.
    Rng pick(MixSeed(seed ^ 0x7e7a7e7a7e7a7e7aULL,
                     static_cast<uint64_t>(i)));
    std::vector<WorkloadQuery> one =
        pick.NextBool(oltp_fraction)
            ? GenerateOltpWorkloadShard(i, 1, schema, seed)
            : GenerateMixedWorkloadShard(i, 1, transformable_fraction,
                                         schema, seed);
    out.push_back(std::move(one.front()));
  }
  return out;
}

}  // namespace cbqt
