#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "common/rng.h"

namespace cbqt {

namespace {

/// Folds one query's outcome into the report. Single-threaded: concurrent
/// runs collect outcomes first and fold them in input order afterwards.
void FoldOutcome(const WorkloadQuery& q, Result<QueryResult>& result,
                 WorkloadRunReport* report) {
  ++report->attempted;
  if (!result.ok()) {
    ++report->failed;
    switch (result.status().code()) {
      case StatusCode::kCancelled:
        ++report->cancelled;
        break;
      case StatusCode::kResourceExhausted:
        ++report->resource_exhausted;
        break;
      case StatusCode::kAdmissionRejected:
        ++report->admission_rejected;
        break;
      case StatusCode::kTenantThrottled:
        ++report->tenant_throttled;
        break;
      default:
        break;
    }
    if (static_cast<int>(report->error_messages.size()) <
        WorkloadRunReport::kMaxErrorMessages) {
      report->error_messages.push_back(
          "query " + std::to_string(q.id) + " [" + QueryFamilyName(q.family) +
          "]: " + result.status().ToString());
    }
    return;
  }
  ++report->succeeded;
  RunMeasurement m;
  m.opt_ms = result->prepared.optimize_ms;
  m.exec_ms = result->execute_ms;
  m.est_cost = result->prepared.cost;
  m.plan_shape = PlanShape(*result->prepared.plan);
  m.rows_processed = result->rows_processed;
  m.result_rows = result->rows.size();
  m.cbqt = std::move(result->prepared.stats);
  m.from_plan_cache = result->prepared.from_plan_cache;
  if (m.cbqt.budget_exhausted) ++report->budget_exhausted_queries;
  report->searches_degraded += m.cbqt.searches_degraded;
  report->failed_states += m.cbqt.failed_states;
  report->max_query_peak_bytes =
      std::max(report->max_query_peak_bytes, result->peak_memory_bytes);
  if (result->exec.spilled_operators > 0) ++report->spilled_queries;
  report->spill_bytes_written += result->exec.spill.bytes_written;
  report->spill_bytes_read += result->exec.spill.bytes_read;
  report->measurements.push_back(std::move(m));
}

/// Folds the shared engine's end-of-run telemetry (plan cache, guardrails,
/// MQO) into the report.
void FoldEngineStats(const QueryEngine& engine, WorkloadRunReport* report) {
  if (engine.plan_cache_enabled()) {
    PlanCacheStats pcs = engine.plan_cache_stats();
    report->plan_cache_hits = pcs.hits;
    report->plan_cache_misses = pcs.misses;
    report->plan_cache_upgrades = pcs.upgrades;
    report->plan_cache_snapshot_loaded = pcs.snapshot_loaded;
    report->plan_cache_snapshot_stale = pcs.snapshot_stale;
    report->plan_cache_store_imports = pcs.store_imports;
    report->plan_cache_store_publishes = pcs.store_publishes;
    report->plan_cache_store_stale = pcs.store_stale;
    report->plan_cache_rebind_recosts = pcs.rebind_recosts;
  }
  GuardrailStats gs = engine.guardrail_stats();
  report->engine_peak_memory_bytes = gs.engine_peak_bytes;
  report->cache_shed_bytes = gs.cache_shed_bytes;
  report->memory_victims = gs.memory_victims;
  report->scheduler_shed = gs.tenant_shed;
  report->scheduler_budget_shrunk = gs.budget_shrunk;
  report->scheduler_promotions = gs.aging_promotions;
  if (engine.mqo_enabled()) {
    MqoStats ms = engine.mqo_stats();
    report->mqo_batches = ms.batches_formed;
    report->mqo_shared_subplan_hits = ms.shared_subplan_hits;
    report->mqo_scan_streams = ms.scan_streams + ms.materialize_streams;
    report->mqo_scan_consumers = ms.scan_consumers;
    report->mqo_rows_shared = ms.rows_shared;
    report->mqo_bytes_saved = ms.bytes_saved;
    report->mqo_pressure_fallbacks = ms.pressure_fallbacks;
  }
}

}  // namespace

CbqtConfig ConfigForMode(OptimizerMode mode) {
  CbqtConfig cfg;
  switch (mode) {
    case OptimizerMode::kCostBased:
      break;
    case OptimizerMode::kHeuristicOnly:
      cfg.cost_based = false;
      break;
    case OptimizerMode::kUnnestOff:
      cfg.transforms = cfg.transforms.Without(Transform::kUnnest);
      break;
    case OptimizerMode::kJppdOff:
      cfg.transforms = cfg.transforms.Without(Transform::kJppd);
      break;
    case OptimizerMode::kGbpOff:
      cfg.transforms = cfg.transforms.Without(Transform::kGroupByPlacement);
      break;
  }
  return cfg;
}

double NowMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

Result<RunMeasurement> WorkloadRunner::Run(const std::string& sql,
                                           const CbqtConfig& config) const {
  QueryEngine engine(db_, config, params_);
  auto result = engine.Run(sql);
  if (!result.ok()) return result.status();

  RunMeasurement m;
  m.opt_ms = result->prepared.optimize_ms;
  m.exec_ms = result->execute_ms;
  m.est_cost = result->prepared.cost;
  m.plan_shape = PlanShape(*result->prepared.plan);
  m.cbqt = std::move(result->prepared.stats);
  m.rows_processed = result->rows_processed;
  m.result_rows = result->rows.size();
  m.from_plan_cache = result->prepared.from_plan_cache;
  return m;
}

WorkloadRunReport WorkloadRunner::RunAll(
    const std::vector<WorkloadQuery>& queries,
    const CbqtConfig& config) const {
  WorkloadRunReport report;
  QueryEngine engine(db_, config, params_);
  for (const auto& q : queries) {
    auto result = engine.Run(q.sql);
    FoldOutcome(q, result, &report);
  }
  FoldEngineStats(engine, &report);
  return report;
}

WorkloadRunReport WorkloadRunner::RunAllConcurrent(
    const std::vector<WorkloadQuery>& queries, const CbqtConfig& config,
    int sessions) const {
  if (sessions <= 1) return RunAll(queries, config);
  WorkloadRunReport report;
  QueryEngine engine(db_, config, params_);
  // Deterministic round-robin deal: session s owns queries s, s+sessions,
  // ... Each slot is written by exactly one thread, so the collection needs
  // no lock; folding happens serially afterwards, in input order.
  std::vector<std::optional<Result<QueryResult>>> outcomes(queries.size());
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(sessions));
  for (int s = 0; s < sessions; ++s) {
    workers.emplace_back([&, s] {
      for (size_t i = static_cast<size_t>(s); i < queries.size();
           i += static_cast<size_t>(sessions)) {
        outcomes[i].emplace(engine.Run(queries[i].sql));
      }
    });
  }
  for (auto& w : workers) w.join();
  for (size_t i = 0; i < queries.size(); ++i) {
    FoldOutcome(queries[i], *outcomes[i], &report);
  }
  FoldEngineStats(engine, &report);
  return report;
}

WorkloadRunReport WorkloadRunner::RunTenants(
    const std::vector<TenantSession>& tenants, const CbqtConfig& config) const {
  WorkloadRunReport report;
  if (tenants.empty()) return report;
  QueryEngine engine(db_, config, params_);

  // One slot per (tenant, query): written by exactly one session thread
  // (round-robin deal within the tenant, as in RunAllConcurrent), folded
  // serially afterwards in input order.
  struct Slot {
    std::optional<Result<QueryResult>> outcome;
    double start_ms = 0;  ///< first submit (retries included in the span)
    double end_ms = 0;
    int retries = 0;  ///< kTenantThrottled turn-aways retried
  };
  std::vector<std::vector<Slot>> slots(tenants.size());
  for (size_t k = 0; k < tenants.size(); ++k) {
    slots[k].resize(tenants[k].queries.size());
  }

  std::vector<std::thread> workers;
  for (size_t k = 0; k < tenants.size(); ++k) {
    int sessions = std::max(1, tenants[k].sessions);
    for (int s = 0; s < sessions; ++s) {
      workers.emplace_back([&, k, s, sessions] {
        const TenantSession& ts = tenants[k];
        QueryOptions opts;
        opts.tenant = ts.tenant;
        // Deterministic per-thread jitter stream: backoff randomization must
        // not depend on wall clock or thread scheduling.
        Rng rng(0x5eedba5eu ^ (static_cast<uint64_t>(k + 1) << 32) ^
                static_cast<uint64_t>(s));
        for (size_t i = static_cast<size_t>(s); i < ts.queries.size();
             i += static_cast<size_t>(sessions)) {
          Slot& slot = slots[k][i];
          slot.start_ms = NowMs();
          auto result = engine.Run(ts.queries[i].sql, opts);
          while (!result.ok() &&
                 result.status().code() == StatusCode::kTenantThrottled &&
                 slot.retries < ts.max_retries) {
            ++slot.retries;
            // Honor the scheduler's retry-after hint, linearly escalated per
            // attempt with +/-50% jitter so retried floods don't re-arrive in
            // lockstep.
            double hint = RetryAfterMs(result.status());
            if (hint <= 0) hint = 25.0;
            double backoff = hint * slot.retries * (0.5 + rng.NextDouble());
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(backoff));
            result = engine.Run(ts.queries[i].sql, opts);
          }
          slot.end_ms = NowMs();
          slot.outcome.emplace(std::move(result));
          if (ts.pace_ms > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(ts.pace_ms));
          }
        }
      });
    }
  }
  for (auto& w : workers) w.join();

  for (size_t k = 0; k < tenants.size(); ++k) {
    const TenantSession& ts = tenants[k];
    TenantRunReport tr;
    tr.tenant = ts.tenant.empty() ? "(default)" : ts.tenant;
    std::vector<double> latencies;
    latencies.reserve(ts.queries.size());
    double first_start = 0;
    double last_end = 0;
    for (size_t i = 0; i < ts.queries.size(); ++i) {
      Slot& slot = slots[k][i];
      FoldOutcome(ts.queries[i], *slot.outcome, &report);
      ++tr.attempted;
      tr.throttled_retries += slot.retries;
      if (slot.outcome->ok()) {
        ++tr.succeeded;
        latencies.push_back(slot.end_ms - slot.start_ms);
      } else {
        ++tr.failed;
        if (slot.outcome->status().code() == StatusCode::kTenantThrottled) {
          ++tr.gave_up_throttled;
        }
      }
      first_start = (i == 0) ? slot.start_ms
                             : std::min(first_start, slot.start_ms);
      last_end = std::max(last_end, slot.end_ms);
    }
    if (!latencies.empty()) {
      std::sort(latencies.begin(), latencies.end());
      size_t n = latencies.size();
      tr.p50_ms = latencies[n / 2 - (n % 2 == 0 ? 1 : 0)];
      tr.p99_ms = latencies[static_cast<size_t>(0.99 * (n - 1))];
      tr.max_ms = latencies.back();
    }
    tr.wall_ms = last_end - first_start;
    if (tr.wall_ms > 0 && tr.succeeded > 0) {
      tr.qps = tr.succeeded / (tr.wall_ms / 1000.0);
    }
    report.per_tenant.push_back(std::move(tr));
  }
  FoldEngineStats(engine, &report);
  return report;
}

std::string WorkloadRunReport::ErrorSummary() const {
  if (failed == 0) return "";
  std::string out = std::to_string(failed) + " of " +
                    std::to_string(attempted) + " queries failed";
  if (!error_messages.empty()) {
    out += "; first " + std::to_string(error_messages.size()) + ":";
    for (const auto& msg : error_messages) {
      out += "\n  " + msg;
    }
  }
  return out;
}

Result<std::vector<Row>> WorkloadRunner::RunToSortedRows(
    const std::string& sql, const CbqtConfig& config) const {
  QueryEngine engine(db_, config, params_);
  auto result = engine.Run(sql);
  if (!result.ok()) return result.status();
  SortRowsCanonical(&result->rows);
  return std::move(result->rows);
}

}  // namespace cbqt
