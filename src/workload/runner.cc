#include "workload/runner.h"

#include <algorithm>
#include <chrono>

namespace cbqt {

CbqtConfig ConfigForMode(OptimizerMode mode) {
  CbqtConfig cfg;
  switch (mode) {
    case OptimizerMode::kCostBased:
      break;
    case OptimizerMode::kHeuristicOnly:
      cfg.cost_based = false;
      break;
    case OptimizerMode::kUnnestOff:
      cfg.transforms = cfg.transforms.Without(Transform::kUnnest);
      break;
    case OptimizerMode::kJppdOff:
      cfg.transforms = cfg.transforms.Without(Transform::kJppd);
      break;
    case OptimizerMode::kGbpOff:
      cfg.transforms = cfg.transforms.Without(Transform::kGroupByPlacement);
      break;
  }
  return cfg;
}

double NowMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

Result<RunMeasurement> WorkloadRunner::Run(const std::string& sql,
                                           const CbqtConfig& config) const {
  QueryEngine engine(db_, config, params_);
  auto result = engine.Run(sql);
  if (!result.ok()) return result.status();

  RunMeasurement m;
  m.opt_ms = result->prepared.optimize_ms;
  m.exec_ms = result->execute_ms;
  m.est_cost = result->prepared.cost;
  m.plan_shape = PlanShape(*result->prepared.plan);
  m.cbqt = std::move(result->prepared.stats);
  m.rows_processed = result->rows_processed;
  m.result_rows = result->rows.size();
  m.from_plan_cache = result->prepared.from_plan_cache;
  return m;
}

WorkloadRunReport WorkloadRunner::RunAll(
    const std::vector<WorkloadQuery>& queries,
    const CbqtConfig& config) const {
  WorkloadRunReport report;
  QueryEngine engine(db_, config, params_);
  for (const auto& q : queries) {
    ++report.attempted;
    auto result = engine.Run(q.sql);
    if (!result.ok()) {
      ++report.failed;
      switch (result.status().code()) {
        case StatusCode::kCancelled:
          ++report.cancelled;
          break;
        case StatusCode::kResourceExhausted:
          ++report.resource_exhausted;
          break;
        case StatusCode::kAdmissionRejected:
          ++report.admission_rejected;
          break;
        default:
          break;
      }
      if (static_cast<int>(report.error_messages.size()) <
          WorkloadRunReport::kMaxErrorMessages) {
        report.error_messages.push_back(
            "query " + std::to_string(q.id) + " [" + QueryFamilyName(q.family) +
            "]: " + result.status().ToString());
      }
      continue;
    }
    ++report.succeeded;
    RunMeasurement m;
    m.opt_ms = result->prepared.optimize_ms;
    m.exec_ms = result->execute_ms;
    m.est_cost = result->prepared.cost;
    m.plan_shape = PlanShape(*result->prepared.plan);
    m.rows_processed = result->rows_processed;
    m.result_rows = result->rows.size();
    m.cbqt = std::move(result->prepared.stats);
    m.from_plan_cache = result->prepared.from_plan_cache;
    if (m.cbqt.budget_exhausted) ++report.budget_exhausted_queries;
    report.searches_degraded += m.cbqt.searches_degraded;
    report.failed_states += m.cbqt.failed_states;
    report.max_query_peak_bytes =
        std::max(report.max_query_peak_bytes, result->peak_memory_bytes);
    if (result->exec.spilled_operators > 0) ++report.spilled_queries;
    report.spill_bytes_written += result->exec.spill.bytes_written;
    report.spill_bytes_read += result->exec.spill.bytes_read;
    report.measurements.push_back(std::move(m));
  }
  if (engine.plan_cache_enabled()) {
    PlanCacheStats pcs = engine.plan_cache_stats();
    report.plan_cache_hits = pcs.hits;
    report.plan_cache_misses = pcs.misses;
    report.plan_cache_upgrades = pcs.upgrades;
    report.plan_cache_snapshot_loaded = pcs.snapshot_loaded;
    report.plan_cache_snapshot_stale = pcs.snapshot_stale;
    report.plan_cache_store_imports = pcs.store_imports;
    report.plan_cache_store_publishes = pcs.store_publishes;
    report.plan_cache_store_stale = pcs.store_stale;
    report.plan_cache_rebind_recosts = pcs.rebind_recosts;
  }
  GuardrailStats gs = engine.guardrail_stats();
  report.engine_peak_memory_bytes = gs.engine_peak_bytes;
  report.cache_shed_bytes = gs.cache_shed_bytes;
  report.memory_victims = gs.memory_victims;
  return report;
}

std::string WorkloadRunReport::ErrorSummary() const {
  if (failed == 0) return "";
  std::string out = std::to_string(failed) + " of " +
                    std::to_string(attempted) + " queries failed";
  if (!error_messages.empty()) {
    out += "; first " + std::to_string(error_messages.size()) + ":";
    for (const auto& msg : error_messages) {
      out += "\n  " + msg;
    }
  }
  return out;
}

Result<std::vector<Row>> WorkloadRunner::RunToSortedRows(
    const std::string& sql, const CbqtConfig& config) const {
  QueryEngine engine(db_, config, params_);
  auto result = engine.Run(sql);
  if (!result.ok()) return result.status();
  SortRowsCanonical(&result->rows);
  return std::move(result->rows);
}

}  // namespace cbqt
