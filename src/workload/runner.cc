#include "workload/runner.h"

#include <algorithm>
#include <chrono>

#include "parser/parser.h"

namespace cbqt {

CbqtConfig ConfigForMode(OptimizerMode mode) {
  CbqtConfig cfg;
  switch (mode) {
    case OptimizerMode::kCostBased:
      break;
    case OptimizerMode::kHeuristicOnly:
      cfg.cost_based = false;
      break;
    case OptimizerMode::kUnnestOff:
      cfg.enable_unnest = false;
      break;
    case OptimizerMode::kJppdOff:
      cfg.enable_jppd = false;
      break;
    case OptimizerMode::kGbpOff:
      cfg.enable_gbp = false;
      break;
  }
  return cfg;
}

double NowMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

Result<RunMeasurement> WorkloadRunner::Run(const std::string& sql,
                                           const CbqtConfig& config) const {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();

  RunMeasurement m;
  double t0 = NowMs();
  CbqtOptimizer optimizer(db_, config, params_);
  auto optimized = optimizer.Optimize(*parsed.value());
  double t1 = NowMs();
  if (!optimized.ok()) return optimized.status();
  m.opt_ms = t1 - t0;
  m.est_cost = optimized->cost;
  m.plan_shape = PlanShape(*optimized->plan);
  m.cbqt = optimized->stats;

  Executor executor(db_);
  ExecStats stats;
  double t2 = NowMs();
  auto rows = executor.Execute(*optimized->plan, &stats);
  double t3 = NowMs();
  if (!rows.ok()) return rows.status();
  m.exec_ms = t3 - t2;
  m.rows_processed = stats.rows_processed;
  m.result_rows = rows->size();
  return m;
}

Result<std::vector<Row>> WorkloadRunner::RunToSortedRows(
    const std::string& sql, const CbqtConfig& config) const {
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  CbqtOptimizer optimizer(db_, config, params_);
  auto optimized = optimizer.Optimize(*parsed.value());
  if (!optimized.ok()) return optimized.status();
  Executor executor(db_);
  auto rows = executor.Execute(*optimized->plan);
  if (!rows.ok()) return rows.status();
  SortRowsCanonical(&rows.value());
  return std::move(rows.value());
}

void SortRowsCanonical(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (TotalLess(a[i], b[i])) return true;
      if (TotalLess(b[i], a[i])) return false;
    }
    return a.size() < b.size();
  });
}

}  // namespace cbqt
