#ifndef CBQT_WORKLOAD_SCHEMA_GEN_H_
#define CBQT_WORKLOAD_SCHEMA_GEN_H_

#include "common/status.h"
#include "storage/database.h"

namespace cbqt {

/// Sizing and skew knobs for the synthetic "Oracle-Applications-like"
/// schema. The paper's workload came from a 14,000-table ERP install; we
/// substitute a compact HR + order-entry schema whose shapes (normalized
/// dimension chains, skewed foreign keys, selective and unselective
/// filters, indexed and unindexed correlation columns) exercise the same
/// transformation trade-offs (see DESIGN.md, substitution 2).
struct SchemaConfig {
  int locations = 50;
  int departments = 200;
  int employees = 20000;
  int job_history = 30000;
  int jobs = 50;
  int customers = 4000;
  int orders = 30000;
  int order_items = 60000;
  int products = 800;
  int accounts = 400;     ///< accounts
  int months = 48;        ///< balance rows per account (accounts * months)
  double skew = 0.4;      ///< zipf exponent for foreign keys
  uint64_t seed = 7;
  /// When false, employees.dept_id has no index — flips the paper's
  /// pre-10g unnesting heuristic and the TIS cost balance.
  bool index_on_correlations = true;
  /// OLTP serving indexes for the multi-tenant short-query mix: adds
  /// orders(emp_id), so the order-status-by-employee point join is an
  /// index probe instead of a scan. Off by default — the analytic
  /// experiments keep the paper's index layout.
  bool oltp_indexes = false;
};

/// Creates tables, loads generated data, builds indexes and statistics.
Status BuildHrDatabase(const SchemaConfig& config, Database* db);

}  // namespace cbqt

#endif  // CBQT_WORKLOAD_SCHEMA_GEN_H_
