#ifndef CBQT_WORKLOAD_QUERY_GEN_H_
#define CBQT_WORKLOAD_QUERY_GEN_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "workload/schema_gen.h"

namespace cbqt {

/// Query families of the synthetic workload, each exercising one of the
/// paper's transformations (plus plain SPJ filler, which dominates the
/// paper's real workload).
enum class QueryFamily {
  kSpj,            ///< simple select-project-join (the 92% filler)
  kAggSubquery,    ///< Q1-style correlated aggregate subqueries (§2.2.1)
  kSemiSubquery,   ///< EXISTS/IN/NOT EXISTS/NOT IN, single- and multi-table
  kGbView,         ///< joins against GROUP BY views (§2.2.2 + JPPD §2.2.3)
  kDistinctView,   ///< joins against DISTINCT views (Q12 family)
  kUnionView,      ///< joins against UNION ALL views (JPPD)
  kGbp,            ///< aggregation over joins (group-by placement §2.2.4)
  kFactorization,  ///< UNION ALL with common join tables (§2.2.5)
  kPullup,         ///< ROWNUM + blocking view + expensive predicate (§2.2.6)
  kSetOp,          ///< INTERSECT / MINUS (§2.2.7)
  kOrExpansion,    ///< disjunctive predicates (§2.2.8)
  kWindowView,     ///< Q7-style window view (predicate move-around §2.1.3)
  // OLTP-ish short queries (multi-tenant serving mix; the engine is
  // read-only, so these are SELECT-shaped point work, not DML).
  kPointLookup,    ///< single-row primary-key lookup
  kShortJoin,      ///< 2-table indexed-key join (order-status shape)
};

const char* QueryFamilyName(QueryFamily f);

struct WorkloadQuery {
  int id = 0;
  QueryFamily family = QueryFamily::kSpj;
  std::string sql;
};

/// Generates `count` randomized queries of one family. Literal parameters
/// vary widely so that each transformation family contains both winning and
/// losing instances — the property the cost-based-vs-heuristic comparison
/// depends on.
///
/// Every query is a pure function of (seed, family, id): the generator
/// reseeds per query id instead of streaming one RNG across the batch, so
/// the same id yields byte-identical SQL regardless of batch size or shard
/// boundaries.
std::vector<WorkloadQuery> GenerateFamily(QueryFamily family, int count,
                                          const SchemaConfig& schema,
                                          uint64_t seed);

/// Generates a mixed workload with the paper's shape: mostly simple SPJ,
/// with a transformable fraction (paper §4: ~8% of queries have
/// subqueries / GROUP BY / DISTINCT / UNION ALL views). Per-query-id
/// seeding as above: query `id` is identical across any sharding.
std::vector<WorkloadQuery> GenerateMixedWorkload(int count,
                                                 double transformable_fraction,
                                                 const SchemaConfig& schema,
                                                 uint64_t seed);

/// Shard form: generates ids [first_id, first_id + count). Concatenating
/// shards reproduces GenerateMixedWorkload(total, ...) byte-for-byte, so a
/// workload can be split across worker threads or processes.
std::vector<WorkloadQuery> GenerateMixedWorkloadShard(
    int first_id, int count, double transformable_fraction,
    const SchemaConfig& schema, uint64_t seed);

/// OLTP-shaped short-query workload (point lookups + short indexed joins,
/// ~70/30) for the multi-tenant serving experiments: every query touches a
/// handful of rows through a key, so per-query latency is dominated by
/// scheduling, not work. Same per-query-id seeding guarantees as the
/// analytic generators.
std::vector<WorkloadQuery> GenerateOltpWorkload(int count,
                                                const SchemaConfig& schema,
                                                uint64_t seed);
std::vector<WorkloadQuery> GenerateOltpWorkloadShard(
    int first_id, int count, const SchemaConfig& schema, uint64_t seed);

/// Per-tenant mix: `oltp_fraction` of the queries are OLTP-shaped short
/// queries, the rest follow the analytic mixed-workload shape with
/// `transformable_fraction` transformable queries — one tenant's serving
/// traffic with an analytics tail. Per-query-id deterministic.
std::vector<WorkloadQuery> GenerateTenantWorkload(
    int count, double oltp_fraction, double transformable_fraction,
    const SchemaConfig& schema, uint64_t seed);

}  // namespace cbqt

#endif  // CBQT_WORKLOAD_QUERY_GEN_H_
