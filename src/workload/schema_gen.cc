#include "workload/schema_gen.h"

#include "common/rng.h"
#include "common/str_util.h"

namespace cbqt {

namespace {

const char* kCountries[] = {"US", "UK", "DE", "JP", "IN", "BR", "FR", "CA"};
const char* kStatuses[] = {"OPEN", "SHIPPED", "CLOSED", "CANCELLED"};
const char* kSegments[] = {"RETAIL", "CORP", "GOV", "SMB"};

std::string DateString(int64_t day_index) {
  // Dates as sortable strings "YYYYMMDD" starting at 1995-01-01, ~30-day
  // months for simplicity (only ordering matters).
  int64_t year = 1995 + day_index / 360;
  int64_t month = 1 + (day_index % 360) / 30;
  int64_t day = 1 + (day_index % 30);
  return StrFormat("%04d%02d%02d", static_cast<int>(year),
                   static_cast<int>(month), static_cast<int>(day));
}

}  // namespace

Status BuildHrDatabase(const SchemaConfig& cfg, Database* db) {
  Rng rng(cfg.seed);
  Zipf dept_skew(cfg.departments, cfg.skew);
  Zipf cust_skew(cfg.customers, cfg.skew);
  Zipf prod_skew(cfg.products, cfg.skew);

  // ---- locations ----
  {
    TableDef t;
    t.name = "locations";
    t.columns = {{"loc_id", DataType::kInt64, false},
                 {"city", DataType::kString, false},
                 {"country_id", DataType::kString, false}};
    t.primary_key = {"loc_id"};
    t.indexes = {{"loc_pk", {"loc_id"}, true}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.locations; ++i) {
      rows.push_back(Row{Value::Int(i),
                         Value::Str("city_" + std::to_string(i)),
                         Value::Str(kCountries[i % 8])});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("locations", std::move(rows)));
  }

  // ---- departments ----
  {
    TableDef t;
    t.name = "departments";
    t.columns = {{"dept_id", DataType::kInt64, false},
                 {"dept_name", DataType::kString, false},
                 {"loc_id", DataType::kInt64, false},
                 {"budget", DataType::kDouble, true}};
    t.primary_key = {"dept_id"};
    t.foreign_keys = {{{"loc_id"}, "locations", {"loc_id"}}};
    t.indexes = {{"dept_pk", {"dept_id"}, true},
                 {"dept_loc_idx", {"loc_id"}, false}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.departments; ++i) {
      rows.push_back(Row{Value::Int(i),
                         Value::Str("dept_" + std::to_string(i)),
                         Value::Int(static_cast<int64_t>(rng.NextUint(
                             static_cast<uint64_t>(cfg.locations)))),
                         rng.NextBool(0.05)
                             ? Value::Null()
                             : Value::Real(1e5 + rng.NextDouble() * 9e5)});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("departments", std::move(rows)));
  }

  // ---- jobs ----
  {
    TableDef t;
    t.name = "jobs";
    t.columns = {{"job_id", DataType::kInt64, false},
                 {"job_title", DataType::kString, false},
                 {"min_salary", DataType::kDouble, true}};
    t.primary_key = {"job_id"};
    t.indexes = {{"jobs_pk", {"job_id"}, true}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.jobs; ++i) {
      rows.push_back(Row{Value::Int(i),
                         Value::Str("title_" + std::to_string(i)),
                         Value::Real(30000 + 1000.0 * i)});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("jobs", std::move(rows)));
  }

  // ---- employees ----
  {
    TableDef t;
    t.name = "employees";
    t.columns = {{"emp_id", DataType::kInt64, false},
                 {"employee_name", DataType::kString, false},
                 {"dept_id", DataType::kInt64, false},
                 {"salary", DataType::kDouble, false},
                 {"mgr_id", DataType::kInt64, true},
                 {"job_id", DataType::kInt64, false},
                 {"hire_date", DataType::kString, false}};
    t.primary_key = {"emp_id"};
    t.foreign_keys = {{{"dept_id"}, "departments", {"dept_id"}},
                      {{"job_id"}, "jobs", {"job_id"}}};
    t.indexes = {{"emp_pk", {"emp_id"}, true}};
    if (cfg.index_on_correlations) {
      t.indexes.push_back({"emp_dept_idx", {"dept_id"}, false});
    }
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.employees; ++i) {
      int64_t dept = dept_skew.Sample(rng);
      rows.push_back(
          Row{Value::Int(i), Value::Str("emp_" + std::to_string(i)),
              Value::Int(dept),
              Value::Real(30000 + rng.NextDouble() * 120000),
              rng.NextBool(0.1)
                  ? Value::Null()
                  : Value::Int(static_cast<int64_t>(rng.NextUint(
                        static_cast<uint64_t>(cfg.employees)))),
              Value::Int(static_cast<int64_t>(
                  rng.NextUint(static_cast<uint64_t>(cfg.jobs)))),
              Value::Str(DateString(static_cast<int64_t>(
                  rng.NextUint(360 * 12))))});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("employees", std::move(rows)));
  }

  // ---- job_history ----
  {
    TableDef t;
    t.name = "job_history";
    t.columns = {{"emp_id", DataType::kInt64, false},
                 {"job_id", DataType::kInt64, false},
                 {"job_title", DataType::kString, false},
                 {"dept_id", DataType::kInt64, false},
                 {"start_date", DataType::kString, false}};
    t.foreign_keys = {{{"emp_id"}, "employees", {"emp_id"}}};
    t.indexes = {{"jh_emp_idx", {"emp_id"}, false}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.job_history; ++i) {
      int64_t emp = static_cast<int64_t>(
          rng.NextUint(static_cast<uint64_t>(cfg.employees)));
      int64_t job = static_cast<int64_t>(
          rng.NextUint(static_cast<uint64_t>(cfg.jobs)));
      rows.push_back(Row{Value::Int(emp), Value::Int(job),
                         Value::Str("title_" + std::to_string(job)),
                         Value::Int(dept_skew.Sample(rng)),
                         Value::Str(DateString(static_cast<int64_t>(
                             rng.NextUint(360 * 12))))});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("job_history", std::move(rows)));
  }

  // ---- customers ----
  {
    TableDef t;
    t.name = "customers";
    t.columns = {{"cust_id", DataType::kInt64, false},
                 {"cust_name", DataType::kString, false},
                 {"country_id", DataType::kString, false},
                 {"segment", DataType::kString, false}};
    t.primary_key = {"cust_id"};
    t.indexes = {{"cust_pk", {"cust_id"}, true}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.customers; ++i) {
      rows.push_back(Row{Value::Int(i),
                         Value::Str("cust_" + std::to_string(i)),
                         Value::Str(kCountries[rng.NextUint(8)]),
                         Value::Str(kSegments[rng.NextUint(4)])});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("customers", std::move(rows)));
  }

  // ---- products ----
  {
    TableDef t;
    t.name = "products";
    t.columns = {{"product_id", DataType::kInt64, false},
                 {"product_name", DataType::kString, false},
                 {"category_id", DataType::kInt64, false},
                 {"list_price", DataType::kDouble, false}};
    t.primary_key = {"product_id"};
    t.indexes = {{"prod_pk", {"product_id"}, true}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.products; ++i) {
      rows.push_back(Row{Value::Int(i),
                         Value::Str("prod_" + std::to_string(i)),
                         Value::Int(static_cast<int64_t>(rng.NextUint(40))),
                         Value::Real(5 + rng.NextDouble() * 995)});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("products", std::move(rows)));
  }

  // ---- orders ----
  {
    TableDef t;
    t.name = "orders";
    t.columns = {{"order_id", DataType::kInt64, false},
                 {"cust_id", DataType::kInt64, false},
                 {"emp_id", DataType::kInt64, true},
                 {"order_date", DataType::kString, false},
                 {"status", DataType::kString, false},
                 {"total", DataType::kDouble, false}};
    t.primary_key = {"order_id"};
    t.foreign_keys = {{{"cust_id"}, "customers", {"cust_id"}}};
    t.indexes = {{"ord_pk", {"order_id"}, true}};
    if (cfg.index_on_correlations) {
      t.indexes.push_back({"ord_cust_idx", {"cust_id"}, false});
    }
    if (cfg.oltp_indexes) {
      t.indexes.push_back({"ord_emp_idx", {"emp_id"}, false});
    }
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.orders; ++i) {
      rows.push_back(
          Row{Value::Int(i), Value::Int(cust_skew.Sample(rng)),
              rng.NextBool(0.05)
                  ? Value::Null()
                  : Value::Int(static_cast<int64_t>(rng.NextUint(
                        static_cast<uint64_t>(cfg.employees)))),
              Value::Str(DateString(static_cast<int64_t>(
                  rng.NextUint(360 * 12)))),
              Value::Str(kStatuses[rng.NextUint(4)]),
              Value::Real(10 + rng.NextDouble() * 4990)});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("orders", std::move(rows)));
  }

  // ---- order_items ----
  {
    TableDef t;
    t.name = "order_items";
    t.columns = {{"order_id", DataType::kInt64, false},
                 {"product_id", DataType::kInt64, false},
                 {"quantity", DataType::kInt64, false},
                 {"price", DataType::kDouble, false}};
    t.foreign_keys = {{{"order_id"}, "orders", {"order_id"}},
                      {{"product_id"}, "products", {"product_id"}}};
    t.indexes = {{"oi_order_idx", {"order_id"}, false},
                 {"oi_prod_idx", {"product_id"}, false}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int i = 0; i < cfg.order_items; ++i) {
      rows.push_back(Row{Value::Int(static_cast<int64_t>(rng.NextUint(
                             static_cast<uint64_t>(cfg.orders)))),
                         Value::Int(prod_skew.Sample(rng)),
                         Value::Int(1 + static_cast<int64_t>(rng.NextUint(9))),
                         Value::Real(5 + rng.NextDouble() * 495)});
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("order_items", std::move(rows)));
  }

  // ---- accounts (time series for window-function queries, paper Q7) ----
  {
    TableDef t;
    t.name = "accounts";
    t.columns = {{"acct_id", DataType::kInt64, false},
                 {"time", DataType::kInt64, false},
                 {"balance", DataType::kDouble, false}};
    t.indexes = {{"acct_idx", {"acct_id"}, false}};
    CBQT_RETURN_IF_ERROR(db->CreateTable(t));
    std::vector<Row> rows;
    for (int a = 0; a < cfg.accounts; ++a) {
      double balance = 1000 + rng.NextDouble() * 9000;
      for (int m = 1; m <= cfg.months; ++m) {
        balance += rng.NextDouble() * 400 - 180;
        rows.push_back(Row{Value::Int(a), Value::Int(m), Value::Real(balance)});
      }
    }
    CBQT_RETURN_IF_ERROR(db->InsertBulk("accounts", std::move(rows)));
  }

  return db->Analyze();
}

}  // namespace cbqt
