#ifndef CBQT_WORKLOAD_RUNNER_H_
#define CBQT_WORKLOAD_RUNNER_H_

#include <string>
#include <vector>

#include "cbqt/engine.h"
#include "cbqt/framework.h"
#include "common/result_compare.h"
#include "common/status.h"
#include "exec/executor.h"
#include "storage/database.h"
#include "workload/query_gen.h"

namespace cbqt {

/// Optimizer configurations used by the experiments.
enum class OptimizerMode {
  kCostBased,       ///< full CBQT (Figure 2 "on")
  kHeuristicOnly,   ///< transformations by legacy rules (Figure 2 "off")
  kUnnestOff,       ///< all unnesting disabled (Figure 3 baseline)
  kJppdOff,         ///< JPPD disabled (Figure 4 baseline)
  kGbpOff,          ///< group-by placement disabled (§4.3 baseline)
};

CbqtConfig ConfigForMode(OptimizerMode mode);

/// Measurements of one optimization + execution run.
struct RunMeasurement {
  double opt_ms = 0;
  double exec_ms = 0;
  double total_ms() const { return opt_ms + exec_ms; }
  int64_t rows_processed = 0;  ///< deterministic work units
  size_t result_rows = 0;
  double est_cost = 0;
  std::string plan_shape;
  CbqtStats cbqt;
  bool from_plan_cache = false;  ///< plan served from the engine plan cache
};

/// Monotonic wall clock in milliseconds.
double NowMs();

/// Per-tenant digest of one multi-tenant run (RunTenants): user-observed
/// latencies (queue wait + retries included) and throughput.
struct TenantRunReport {
  std::string tenant;
  int attempted = 0;
  int succeeded = 0;
  int failed = 0;
  /// kTenantThrottled turn-aways that were retried after the backoff.
  int throttled_retries = 0;
  /// Queries that stayed throttled through every retry and were dropped.
  int gave_up_throttled = 0;
  double p50_ms = 0;  ///< median end-to-end latency of successful queries
  double p99_ms = 0;
  double max_ms = 0;
  double wall_ms = 0;  ///< this tenant's first-submit-to-last-finish span
  double qps = 0;      ///< succeeded / wall seconds
};

/// Aggregate report of one batch run. A failing query no longer aborts the
/// whole workload: its error is recorded and the run continues, so one
/// pathological query cannot take down a measurement campaign (or, in
/// production terms, one bad tenant query cannot starve the rest).
struct WorkloadRunReport {
  /// Per-query measurements, one per *successful* query, in input order.
  std::vector<RunMeasurement> measurements;
  int attempted = 0;
  int succeeded = 0;
  int failed = 0;
  /// "query <id> [family]: <status>" for the first kMaxErrorMessages
  /// failures (the count above covers the rest).
  std::vector<std::string> error_messages;

  // Guardrail outcome categories (subsets of `failed`): every failure under
  // a configured guardrail should fall into one of these typed buckets —
  // anything left over (failed minus the three) is a process-level failure
  // the robustness acceptance test treats as a bug.
  int cancelled = 0;           ///< queries that unwound with kCancelled
  int resource_exhausted = 0;  ///< ... with kResourceExhausted
  int admission_rejected = 0;  ///< ... turned away by admission control
  int tenant_throttled = 0;    ///< ... shed by the tenant scheduler
  /// failed minus the typed guardrail categories above.
  int untyped_failures() const {
    return failed - cancelled - resource_exhausted - admission_rejected -
           tenant_throttled;
  }

  // Governor telemetry aggregated over the successful queries.
  int budget_exhausted_queries = 0;  ///< queries whose optimizer budget tripped
  int searches_degraded = 0;         ///< searches that fell back to heuristics
  int failed_states = 0;             ///< fault-isolated state evaluations

  // Plan-cache telemetry (all zero when CbqtConfig::plan_cache is off; the
  // cache lives for the duration of one RunAll's shared engine).
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t plan_cache_upgrades = 0;
  // Persistence / sharing counters (zero unless a snapshot path or shared
  // store is configured on the plan cache).
  int64_t plan_cache_snapshot_loaded = 0;  ///< entries warm-started from disk
  int64_t plan_cache_snapshot_stale = 0;   ///< snapshot entries rejected
  int64_t plan_cache_store_imports = 0;    ///< misses served by peer plans
  int64_t plan_cache_store_publishes = 0;  ///< plans shared with peers
  int64_t plan_cache_store_stale = 0;      ///< peer plans rejected
  int64_t plan_cache_rebind_recosts = 0;   ///< hits re-costed on a band move

  // Guardrail telemetry from the shared engine (zero when guardrails off).
  int64_t engine_peak_memory_bytes = 0;  ///< root tracker high-water mark
  int64_t cache_shed_bytes = 0;          ///< plan-cache bytes shed by pressure
  int64_t memory_victims = 0;            ///< queries failed as pressure victims
  /// Largest per-query tracker peak over the successful queries.
  int64_t max_query_peak_bytes = 0;

  // Spill telemetry aggregated over the successful queries: how many
  // completed by degrading a pipeline breaker to disk, and total spill I/O.
  int64_t spilled_queries = 0;
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;

  // Multi-query-optimization telemetry from the shared engine (all zero
  // when CbqtConfig::mqo is off).
  int64_t mqo_batches = 0;              ///< optimization batches formed
  int64_t mqo_shared_subplan_hits = 0;  ///< batch-shared annotation hits
  int64_t mqo_scan_streams = 0;         ///< shared scan+materialize streams
  int64_t mqo_scan_consumers = 0;       ///< consumer attachments
  int64_t mqo_rows_shared = 0;          ///< rows served from shared buffers
  int64_t mqo_bytes_saved = 0;          ///< estimated bytes of those rows
  int64_t mqo_pressure_fallbacks = 0;   ///< streams degraded under memory

  // Tenant-scheduler telemetry from the shared engine (all zero unless
  // GuardrailConfig::scheduler is enabled).
  int64_t scheduler_shed = 0;           ///< queued waiters shed under overload
  int64_t scheduler_budget_shrunk = 0;  ///< admissions with shrunk budgets
  int64_t scheduler_promotions = 0;     ///< aging promotions (anti-starvation)

  /// Per-tenant latency/throughput digests (RunTenants only; empty
  /// otherwise), in the order the TenantSessions were given.
  std::vector<TenantRunReport> per_tenant;

  static constexpr int kMaxErrorMessages = 5;

  /// One-paragraph human-readable error summary (empty when failed == 0).
  std::string ErrorSummary() const;
};

/// Measurement wrapper for the experiments: runs queries through the
/// QueryEngine facade (the single place the pipeline is wired) and shapes
/// the timings/telemetry into RunMeasurement.
class WorkloadRunner {
 public:
  explicit WorkloadRunner(const Database& db, CostParams params = {})
      : db_(db), params_(params) {}

  /// Full pipeline with timing.
  Result<RunMeasurement> Run(const std::string& sql,
                             const CbqtConfig& config) const;

  /// Runs a whole workload under one config, isolating per-query failures:
  /// errors are recorded in the report and the run continues with the next
  /// query. Never fails wholesale.
  WorkloadRunReport RunAll(const std::vector<WorkloadQuery>& queries,
                           const CbqtConfig& config) const;

  /// Concurrent-sessions variant — the MQO measurement axis: `sessions`
  /// threads share one engine, queries are dealt round-robin by input index
  /// (deterministic partition: session s runs queries s, s+sessions, ...),
  /// and the merged report keeps measurements in input order. With
  /// `config.mqo.enabled` the concurrently admitted queries form MQO
  /// batches and share sub-plans and scans; with it off this is a plain
  /// concurrency baseline over the same engine. `sessions <= 1` degenerates
  /// to RunAll.
  WorkloadRunReport RunAllConcurrent(const std::vector<WorkloadQuery>& queries,
                                     const CbqtConfig& config,
                                     int sessions) const;

  /// One tenant's traffic in a multi-tenant run.
  struct TenantSession {
    std::string tenant;  ///< scheduler tenant name ("" = default tenant)
    std::vector<WorkloadQuery> queries;
    int sessions = 1;     ///< concurrent threads submitting this traffic
    int max_retries = 3;  ///< retries after a kTenantThrottled turn-away
    double pace_ms = 0;   ///< think time between queries per session
  };

  /// Multi-tenant variant: every TenantSession's threads run against one
  /// shared engine, each query submitted under its tenant's name
  /// (QueryOptions::tenant). A kTenantThrottled turn-away is retried up to
  /// `max_retries` times with a jittered backoff honoring the status's
  /// retry-after-ms hint (deterministic jitter, seeded per query). The
  /// report's per_tenant digests carry user-observed p50/p99/throughput
  /// per tenant; a query that stays throttled through every retry counts
  /// as one tenant_throttled failure.
  WorkloadRunReport RunTenants(const std::vector<TenantSession>& tenants,
                               const CbqtConfig& config) const;

  /// Executes and returns the result rows, canonically sorted — used by
  /// the correctness tests to prove transformation equivalence across
  /// optimizer modes.
  Result<std::vector<Row>> RunToSortedRows(const std::string& sql,
                                           const CbqtConfig& config) const;

 private:
  const Database& db_;
  CostParams params_;
};

// SortRowsCanonical lives in common/result_compare.h (included above); the
// declaration used to be here and call sites still reach it through this
// header.

}  // namespace cbqt

#endif  // CBQT_WORKLOAD_RUNNER_H_
