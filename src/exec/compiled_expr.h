#ifndef CBQT_EXEC_COMPILED_EXPR_H_
#define CBQT_EXEC_COMPILED_EXPR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/eval.h"
#include "optimizer/plan.h"

namespace cbqt {

/// A plan expression compiled against one input schema for the batch
/// executor's inner loops.
///
/// Compilation resolves column refs to slot indices *once* (FindSlot is a
/// per-frame string comparison in the tree evaluator — the dominant per-row
/// cost of the old executor) and flattens the common scalar subset
/// (literals, column refs, comparisons, arithmetic, AND/OR/NOT, IS [NOT]
/// NULL, LNNVL, CASE, ROWNUM) into a compact node array evaluated by a
/// switch — no string lookups, no frame-stack walk, no Status plumbing,
/// because nothing in the subset can fail.
///
/// Anything outside the subset (function calls, subqueries, column refs
/// that resolve through an *outer* frame) makes the whole program fall back
/// to EvalExpr. The fallback requires the caller to keep a frame with the
/// compiled schema and the current row as the innermost frame — exactly the
/// hoisted batch frame every operator maintains — so both paths see
/// identical resolution order and identical semantics.
class CompiledExpr {
 public:
  /// Compiles `e` against `schema` (the innermost frame's schema at eval
  /// time). Never fails; unsupported shapes compile to a fallback program.
  static CompiledExpr Compile(const Expr* e, const Schema* schema);

  /// True when the fast (no-fallback) path is available.
  bool fast() const { return fast_; }

  /// Fast-path evaluation; only valid when fast(). `rownum` feeds kRownum.
  Value EvalFast(const Row& row, int64_t rownum) const {
    return EvalNode(root_, row, rownum);
  }

  /// Fallback: the tree evaluator under the caller's frame stack (the
  /// innermost frame must hold the compiled schema and current row).
  Result<Value> EvalSlow(EvalContext& ctx) const { return EvalExpr(*expr_, ctx); }

  /// Convenience dispatcher used by non-hot call sites.
  Result<Value> Eval(const Row& row, EvalContext& ctx) const {
    if (fast_) return EvalNode(root_, row, ctx.rownum);
    return EvalExpr(*expr_, ctx);
  }

 private:
  enum class Op : uint8_t {
    kConst,
    kSlot,
    kCmp,        // bop is a comparison
    kArith,      // bop is +,-,*,/
    kNullSafeEq,
    kAnd,
    kOr,
    kNot,
    kNeg,
    kIsNull,
    kIsNotNull,
    kLnnvl,
    kRownum,
    kCase,       // children alternate cond,value[,else]
  };

  struct Node {
    Op op = Op::kConst;
    BinaryOp bop = BinaryOp::kEq;
    int slot = -1;
    int child_begin = 0;
    int child_count = 0;
    Value constant;
  };

  /// Returns the new node's index, or -1 when `e` is outside the subset.
  int CompileNode(const Expr& e, const Schema& schema);

  Value EvalNode(int idx, const Row& row, int64_t rownum) const;

  const Expr* expr_ = nullptr;
  bool fast_ = false;
  int root_ = -1;
  std::vector<Node> nodes_;
  std::vector<int> children_;
};

/// Compiles every expression of `exprs` against `schema`.
std::vector<CompiledExpr> CompileExprList(const std::vector<ExprPtr>& exprs,
                                          const Schema* schema);

/// Conjunct-list evaluation with three-valued semantics (TRUE / FALSE /
/// UNKNOWN-as-NULL), mirroring the tree evaluator's EvalConjuncts. The
/// caller's innermost frame must hold (schema, row) for any fallback
/// member.
Result<Value> EvalCompiledConjuncts(const std::vector<CompiledExpr>& preds,
                                    const Row& row, EvalContext& ctx);

/// Evaluates an expression list into `out` (cleared first). Used for hash /
/// sort / group keys and projections. Sets *has_null when any value is
/// NULL (pass null if not needed).
Status EvalCompiledList(const std::vector<CompiledExpr>& exprs, const Row& row,
                        EvalContext& ctx, Row* out, bool* has_null = nullptr);

}  // namespace cbqt

#endif  // CBQT_EXEC_COMPILED_EXPR_H_
