#include "exec/prune.h"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sql/expr_util.h"

namespace cbqt {
namespace {

void MarkAll(std::vector<bool>* req) {
  std::fill(req->begin(), req->end(), true);
}

bool AllMarked(const std::vector<bool>& req) {
  return std::all_of(req.begin(), req.end(), [](bool b) { return b; });
}

std::vector<size_t> IdentityKept(size_t n) {
  std::vector<size_t> kept(n);
  for (size_t i = 0; i < n; ++i) kept[i] = i;
  return kept;
}

/// Marks the slots of `schema` that `e` binds to. Returns false when the
/// expression contains a subquery — its subplan reaches this schema through
/// frames in ways the walk cannot enumerate, so the caller must keep all
/// slots. References that do not resolve in `schema` belong to an enclosing
/// frame (kept whole by the conservative cases below) or to an alternate
/// naming of the same positions (derived-table renames; callers mark against
/// both namings). Over-marking is always safe; only a missed local binding
/// would be a bug.
bool MarkRefs(const Expr* e, const Schema& schema, std::vector<bool>* req) {
  bool precise = true;
  VisitExprConst(e, [&](const Expr* x) {
    if (x->kind == ExprKind::kSubquery) precise = false;
    if (x->kind != ExprKind::kColumnRef) return;
    int slot = FindSlot(schema, x->table_alias, x->column_name);
    if (slot >= 0) (*req)[static_cast<size_t>(slot)] = true;
  });
  return precise;
}

bool MarkList(const std::vector<ExprPtr>& list, const Schema& schema,
              std::vector<bool>* req) {
  bool precise = true;
  for (const auto& e : list) precise = MarkRefs(e.get(), schema, req) && precise;
  return precise;
}

Schema Select(const Schema& schema, const std::vector<size_t>& kept) {
  Schema out;
  out.reserve(kept.size());
  for (size_t i : kept) out.push_back(schema[i]);
  return out;
}

/// Prunes under `node` given `required[i]` = some ancestor needs slot i of
/// node->output (indices into the schema as it stands *before* this call).
/// Returns the original positions the node still produces, in order. Each
/// node rebuilds its output from its *own* original slots at the kept
/// positions — never from the child's — because pass-through nodes at
/// derived-table boundaries rename slots (same positions, different
/// (alias, name)) and ancestors bind against the renamed schema.
std::vector<size_t> PruneNode(PlanNode* node, std::vector<bool> required) {
  switch (node->op) {
    case PlanOp::kTableScan:
    case PlanOp::kIndexScan: {
      // The pushed filter evaluates against the scan's own output; probes
      // resolve through enclosing frames before any row exists, so they
      // impose nothing on the output (a name collision just over-marks).
      if (!MarkList(node->filter, node->output, &required)) MarkAll(&required);
      MarkList(node->probes, node->output, &required);
      if (AllMarked(required)) return IdentityKept(node->output.size());
      std::vector<size_t> kept;
      for (size_t i = 0; i < node->output.size(); ++i) {
        if (required[i]) kept.push_back(i);
      }
      node->output = Select(node->output, kept);
      return kept;
    }

    case PlanOp::kFilter:
    case PlanOp::kSort:
    case PlanOp::kLimit: {
      // Pass-through: output slot i is child slot i, possibly renamed.
      // Expressions on these nodes compile against the node's own schema
      // (filters) or the child's (sort keys); mark against both namings.
      PlanNode* child = node->children[0].get();
      std::vector<bool> creq = required;
      bool ok = MarkList(node->filter, node->output, &creq);
      ok = MarkList(node->filter, child->output, &creq) && ok;
      ok = MarkList(node->sort_keys, node->output, &creq) && ok;
      ok = MarkList(node->sort_keys, child->output, &creq) && ok;
      if (!ok) MarkAll(&creq);
      std::vector<size_t> kept = PruneNode(child, std::move(creq));
      node->output = Select(node->output, kept);
      return kept;
    }

    case PlanOp::kDistinct: {
      // Deduplicates on the whole row — every column is semantic.
      PlanNode* child = node->children[0].get();
      PruneNode(child, std::vector<bool>(child->output.size(), true));
      return IdentityKept(node->output.size());
    }

    case PlanOp::kSetOp: {
      // Branch outputs align by position and row equality drives the set
      // semantics; pruning any branch would misalign or change results.
      for (auto& child : node->children) {
        PruneNode(child.get(),
                  std::vector<bool>(child->output.size(), true));
      }
      return IdentityKept(node->output.size());
    }

    case PlanOp::kWindow: {
      PlanNode* child = node->children[0].get();
      size_t cn = child->output.size();
      std::vector<bool> creq(cn, false);
      for (size_t i = 0; i < cn && i < required.size(); ++i) {
        creq[i] = required[i];
      }
      bool ok = MarkList(node->window_exprs, child->output, &creq);
      std::vector<bool> own(node->output.size(), false);
      ok = MarkList(node->window_exprs, node->output, &own) && ok;
      for (size_t i = 0; i < cn; ++i) creq[i] = creq[i] || own[i];
      if (!ok) MarkAll(&creq);
      std::vector<size_t> kept = PruneNode(child, std::move(creq));
      // Appended window slots stay at the tail of the output.
      for (size_t i = cn; i < node->output.size(); ++i) kept.push_back(i);
      node->output = Select(node->output, kept);
      return kept;
    }

    case PlanOp::kProject: {
      // Output is defined by the projections, not the child.
      if (!node->children.empty()) {
        PlanNode* child = node->children[0].get();
        std::vector<bool> creq(child->output.size(), false);
        bool ok = MarkList(node->projections, child->output, &creq);
        ok = MarkList(node->filter, child->output, &creq) && ok;
        if (!ok) MarkAll(&creq);
        PruneNode(child, std::move(creq));
      }
      return IdentityKept(node->output.size());
    }

    case PlanOp::kAggregate: {
      // Output is keys + aggregates, independent of the input width.
      PlanNode* child = node->children[0].get();
      std::vector<bool> creq(child->output.size(), false);
      bool ok = MarkList(node->group_keys, child->output, &creq);
      ok = MarkList(node->agg_exprs, child->output, &creq) && ok;
      ok = MarkList(node->filter, child->output, &creq) && ok;
      if (!ok) MarkAll(&creq);
      PruneNode(child, std::move(creq));
      return IdentityKept(node->output.size());
    }

    case PlanOp::kNestedLoopJoin:
    case PlanOp::kHashJoin:
    case PlanOp::kMergeJoin: {
      PlanNode* left = node->children[0].get();
      PlanNode* right = node->children[1].get();
      size_t ln = left->output.size();
      size_t rn = right->output.size();
      bool left_only = node->join_kind == JoinKind::kSemi ||
                       node->join_kind == JoinKind::kAnti ||
                       node->join_kind == JoinKind::kAntiNA;
      std::vector<bool> lreq(ln, false);
      std::vector<bool> rreq(rn, false);
      for (size_t i = 0; i < required.size(); ++i) {
        if (!required[i]) continue;
        if (i < ln) {
          lreq[i] = true;
        } else if (!left_only && i - ln < rn) {
          rreq[i - ln] = true;
        }
      }
      bool ok = MarkList(node->hash_left_keys, left->output, &lreq);
      ok = MarkList(node->hash_right_keys, right->output, &rreq) && ok;
      // Generic conditions and residual filters see the combined row.
      Schema combined = left->output;
      combined.insert(combined.end(), right->output.begin(),
                      right->output.end());
      std::vector<bool> creq(ln + rn, false);
      ok = MarkList(node->join_conds, combined, &creq) && ok;
      ok = MarkList(node->filter, combined, &creq) && ok;
      for (size_t i = 0; i < ln; ++i) lreq[i] = lreq[i] || creq[i];
      for (size_t i = 0; i < rn; ++i) rreq[i] = rreq[i] || creq[ln + i];
      if (!ok) {
        MarkAll(&lreq);
        MarkAll(&rreq);
      }
      // A rescanning right subtree resolves outer references into the left
      // row's frame by name; keep the left side whole.
      if (node->op == PlanOp::kNestedLoopJoin && node->rescan_right) {
        MarkAll(&lreq);
      }
      std::vector<size_t> lkept = PruneNode(left, std::move(lreq));
      std::vector<size_t> rkept = PruneNode(right, std::move(rreq));
      std::vector<size_t> kept = std::move(lkept);
      if (!left_only) {
        for (size_t i : rkept) kept.push_back(ln + i);
      }
      node->output = Select(node->output, kept);
      return kept;
    }

    case PlanOp::kSubqueryFilter: {
      // Subplans resolve correlated references into the outer row's frame by
      // name; keep the child whole, and prune inside each subplan on its own.
      PlanNode* child = node->children[0].get();
      PruneNode(child, std::vector<bool>(child->output.size(), true));
      for (auto& sp : node->subplans) {
        PruneNode(sp.get(), std::vector<bool>(sp->output.size(), true));
      }
      return IdentityKept(node->output.size());
    }
  }
  return IdentityKept(node->output.size());
}

}  // namespace

void PruneScanColumns(PlanNode* root) {
  if (root == nullptr) return;
  // The caller consumes the root schema as-is.
  PruneNode(root, std::vector<bool>(root->output.size(), true));
}

}  // namespace cbqt
