#include "exec/shared_scan.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/value.h"
#include "sql/signature.h"

namespace cbqt {

namespace {

/// Consumer wait slice: short enough that cancellation polls stay
/// responsive, long enough that a healthy producer outruns the waiter.
constexpr int64_t kWaitSliceMs = 5;

int64_t BatchBytes(const RowBatch& batch) {
  int64_t bytes = 0;
  for (const auto& row : batch.rows()) bytes += EstimateRowBytes(row);
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// SharedStream

SharedStream::~SharedStream() {
  if (tracker_ != nullptr && reserved_ > 0) tracker_->Release(reserved_);
}

bool SharedStream::Append(const RowBatch& batch) {
  if (batch.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    return !degraded_;
  }
  int64_t bytes = BatchBytes(batch);
  // Reserve outside the stream lock: the tracker may run the engine's
  // pressure ladder (cache eviction callbacks), which must not nest under
  // stream state.
  bool reserved = tracker_ == nullptr || tracker_->TryReserve(bytes).ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (degraded_) {
      if (reserved && tracker_ != nullptr) tracker_->Release(bytes);
      return false;
    }
    if (!reserved) {
      degraded_ = true;
      cv_.notify_all();
      return false;
    }
    reserved_ += bytes;
    for (const auto& row : batch.rows()) rows_.push_back(row);
  }
  cv_.notify_all();
  return true;
}

void SharedStream::MarkComplete() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    complete_ = true;
  }
  cv_.notify_all();
}

void SharedStream::MarkDegraded() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    degraded_ = true;
  }
  cv_.notify_all();
}

SharedStream::ReadState SharedStream::Read(size_t* cursor, size_t max,
                                           RowBatch* out, int64_t* bytes) {
  out->Clear();
  *bytes = 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (*cursor < rows_.size()) {
    size_t end = std::min(rows_.size(), *cursor + max);
    for (size_t i = *cursor; i < end; ++i) {
      *bytes += EstimateRowBytes(rows_[i]);
      out->Add(Row(rows_[i]));
    }
    *cursor = end;
    return ReadState::kRows;
  }
  if (complete_ && !degraded_) return ReadState::kEnd;
  if (degraded_) return ReadState::kDegraded;
  return ReadState::kPending;
}

bool SharedStream::WaitForMore(size_t cursor, int64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return rows_.size() > cursor || complete_ || degraded_;
  });
}

bool SharedStream::IsCompleteIntact() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_ && !degraded_;
}

bool SharedStream::IsDegraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

// ---------------------------------------------------------------------------
// SharedScanHub

SharedScanHub::Acquired SharedScanHub::Acquire(const std::string& key,
                                               const void* owner,
                                               bool materialize) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(key);
  if (it != streams_.end()) {
    if (it->second->IsDegraded()) return {};
    it->second->attached_++;
    return {it->second, false};
  }
  auto stream = std::make_shared<SharedStream>(key, owner, &buffers_);
  stream->attached_ = 1;
  streams_[key] = stream;
  open_producers_[owner]++;
  auto& counter = materialize ? stats_.materialize_streams : stats_.scan_streams;
  counter.fetch_add(1, std::memory_order_relaxed);
  return {stream, true};
}

void SharedScanHub::Detach(const std::shared_ptr<SharedStream>& stream) {
  std::lock_guard<std::mutex> lock(mu_);
  if (--stream->attached_ > 0) return;
  if (stream->IsCompleteIntact()) return;  // stays joinable until RetireAll
  auto it = streams_.find(stream->key());
  if (it != streams_.end() && it->second == stream) streams_.erase(it);
}

void SharedScanHub::ProducerSettled(const void* owner) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_producers_.find(owner);
  if (it != open_producers_.end() && --it->second <= 0) {
    open_producers_.erase(it);
  }
}

bool SharedScanHub::OwnerHasOpenProducer(const void* owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = open_producers_.find(owner);
  return it != open_producers_.end() && it->second > 0;
}

void SharedScanHub::RetireAll() {
  std::vector<std::shared_ptr<SharedStream>> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    doomed.reserve(streams_.size());
    for (auto& entry : streams_) doomed.push_back(entry.second);
    streams_.clear();
    open_producers_.clear();
  }
  for (auto& stream : doomed) {
    if (!stream->IsCompleteIntact()) stream->MarkDegraded();
  }
}

size_t SharedScanHub::live_streams() const {
  std::lock_guard<std::mutex> lock(mu_);
  return streams_.size();
}

// ---------------------------------------------------------------------------
// SharedScanOperator

Status SharedScanOperator::OpenInner() {
  CBQT_RETURN_IF_ERROR(inner_->Open());
  inner_opened_ = true;
  return Status::OK();
}

void SharedScanOperator::SettleProducer() {
  if (!producer_open_) return;
  producer_open_ = false;
  hub_->ProducerSettled(ctx_);
}

Status SharedScanOperator::Open() {
  cursor_ = 0;
  if (opened_once_) {
    // Rescan (nested-loop right side). A completed intact stream replays
    // from its buffer — the shared-scan analogue of a materialized rescan;
    // anything else abandons sharing and rescans privately from row 0.
    if (stream_ != nullptr && stream_->IsCompleteIntact()) {
      mode_ = Mode::kReplay;
      hub_->stats().replays.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (producer_open_) {
      if (stream_ != nullptr) stream_->MarkDegraded();
      SettleProducer();
    }
    if (stream_ != nullptr) {
      hub_->Detach(stream_);
      stream_.reset();
    }
    mode_ = Mode::kPrivate;
    skip_ = 0;
    return OpenInner();
  }
  opened_once_ = true;
  auto acquired = hub_->Acquire(key_, ctx_, materialize_);
  if (acquired.stream == nullptr) {
    mode_ = Mode::kPrivate;
    skip_ = 0;
    return OpenInner();
  }
  stream_ = std::move(acquired.stream);
  if (acquired.is_producer) {
    mode_ = Mode::kProducer;
    producer_open_ = true;
    return OpenInner();
  }
  mode_ = Mode::kConsumer;
  hub_->stats().consumers.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<bool> SharedScanOperator::ProducerNext(RowBatch* out) {
  auto more = inner_->NextBatch(out);
  if (!more.ok()) {
    // The producing query failed (cancel, fault, resource) — degrade so
    // waiting consumers fall back instead of hanging on a dead stream.
    stream_->MarkDegraded();
    SettleProducer();
    return more;
  }
  if (!more.value()) {
    stream_->MarkComplete();
    SettleProducer();
    return false;
  }
  if (!append_failed_ && !stream_->Append(*out)) {
    append_failed_ = true;
    hub_->stats().pressure_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

Status SharedScanOperator::GoPrivate(size_t skip) {
  if (stream_ != nullptr) {
    hub_->Detach(stream_);
    stream_.reset();
  }
  mode_ = Mode::kPrivate;
  skip_ = skip;
  return OpenInner();
}

Result<bool> SharedScanOperator::ConsumerNext(RowBatch* out) {
  int64_t waited_ms = 0;
  while (mode_ == Mode::kConsumer || mode_ == Mode::kReplay) {
    int64_t bytes = 0;
    auto state = stream_->Read(&cursor_, ctx_->batch_size, out, &bytes);
    if (state == SharedStream::ReadState::kRows) {
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(out->size())));
      hub_->stats().rows_shared.fetch_add(static_cast<int64_t>(out->size()),
                                          std::memory_order_relaxed);
      hub_->stats().bytes_saved.fetch_add(bytes, std::memory_order_relaxed);
      return true;
    }
    if (state == SharedStream::ReadState::kEnd) return false;
    if (state == SharedStream::ReadState::kDegraded ||
        stream_->producer() == ctx_ || hub_->OwnerHasOpenProducer(ctx_)) {
      // Degraded stream, in-plan self-share, or our own execution holds an
      // unfinished producer role — never wait in any of these.
      hub_->stats().private_fallbacks.fetch_add(1, std::memory_order_relaxed);
      CBQT_RETURN_IF_ERROR(GoPrivate(cursor_));
      break;
    }
    CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
    if (waited_ms >= hub_->consumer_wait_ms()) {
      hub_->stats().wait_fallbacks.fetch_add(1, std::memory_order_relaxed);
      CBQT_RETURN_IF_ERROR(GoPrivate(cursor_));
      break;
    }
    stream_->WaitForMore(cursor_, kWaitSliceMs);
    waited_ms += kWaitSliceMs;
  }
  return PrivateNext(out);
}

Result<bool> SharedScanOperator::PrivateNext(RowBatch* out) {
  auto more = inner_->NextBatch(out);
  if (!more.ok() || !more.value()) return more;
  if (skip_ > 0 && !out->empty()) {
    // Resuming after rows were served from a stream: the wrapped operator
    // is deterministic, so dropping the first skip_ output rows continues
    // the stream bit-identically. An over-dropped (empty) true batch is
    // legal — the caller keeps pulling.
    size_t drop = std::min(skip_, out->size());
    out->rows().erase(out->rows().begin(),
                      out->rows().begin() + static_cast<ptrdiff_t>(drop));
    skip_ -= drop;
  }
  return true;
}

Result<bool> SharedScanOperator::NextBatch(RowBatch* out) {
  out->Clear();
  switch (mode_) {
    case Mode::kProducer:
      return ProducerNext(out);
    case Mode::kConsumer:
    case Mode::kReplay:
      return ConsumerNext(out);
    case Mode::kPrivate:
      return PrivateNext(out);
    case Mode::kUnopened:
      break;
  }
  return Status::Internal("SharedScanOperator::NextBatch before Open");
}

void SharedScanOperator::Close() {
  if (producer_open_) {
    // Closed before completing (LIMIT above us, error unwind): the buffered
    // prefix alone is not the full stream — degrade it.
    if (stream_ != nullptr && !stream_->IsCompleteIntact()) {
      stream_->MarkDegraded();
    }
    SettleProducer();
  }
  if (stream_ != nullptr) {
    hub_->Detach(stream_);
    stream_.reset();
  }
  if (inner_opened_) {
    inner_->Close();
    inner_opened_ = false;
  }
  mode_ = Mode::kUnopened;
  opened_once_ = false;
}

// ---------------------------------------------------------------------------
// Eligibility and keys

namespace {

bool ExprsShareable(const std::vector<ExprPtr>& exprs,
                    const std::string& alias) {
  for (const auto& e : exprs) {
    if (e == nullptr || !ExprUsesOnlyAlias(*e, alias)) return false;
  }
  return true;
}

/// Output schema fragment of the key: slot names and types, with the scan's
/// alias normalized away so per-query aliasing does not split streams.
std::string OutCols(const PlanNode& node, const std::string& alias) {
  std::string s;
  for (const auto& slot : node.output) {
    if (!s.empty()) s += ",";
    s += (slot.alias == alias ? std::string("$T") : slot.alias);
    s += ".";
    s += slot.name;
    s += ":";
    s += std::to_string(static_cast<int>(slot.type));
  }
  return s;
}

std::string ExprListSignature(const std::vector<ExprPtr>& exprs,
                              const std::string& alias) {
  std::string s;
  for (const auto& e : exprs) {
    if (!s.empty()) s += ",";
    s += ExprSignature(*e, alias);
  }
  return s;
}

/// Finds the single base scan a candidate chain bottoms out on, or null
/// when the subtree contains anything outside the shareable chain shape.
const PlanNode* ChainLeafScan(const PlanNode& node) {
  const PlanNode* cur = &node;
  for (;;) {
    switch (cur->op) {
      case PlanOp::kTableScan:
        return cur->probes.empty() ? cur : nullptr;
      case PlanOp::kFilter:
      case PlanOp::kProject:
      case PlanOp::kSort:
      case PlanOp::kDistinct:
      case PlanOp::kAggregate:
        if (cur->children.size() != 1 || !cur->subplans.empty()) {
          return nullptr;
        }
        cur = cur->children[0].get();
        break;
      default:
        return nullptr;
    }
  }
}

/// Renders one chain node's key (recursing into its child), or "" when an
/// expression is not self-contained on the leaf alias.
std::string ChainNodeKey(const PlanNode& node, const std::string& alias) {
  std::string child;
  if (node.op != PlanOp::kTableScan) {
    child = ChainNodeKey(*node.children[0], alias);
    if (child.empty()) return "";
  }
  switch (node.op) {
    case PlanOp::kTableScan:
      if (!ExprsShareable(node.filter, alias)) return "";
      return "scan(" + node.table_name + "|" + OutCols(node, alias) + "|" +
             ConjunctsSignature(node.filter, alias) + ")";
    case PlanOp::kFilter:
      if (!ExprsShareable(node.filter, alias)) return "";
      return "filter(" + ConjunctsSignature(node.filter, alias) + ")<" +
             child + ">";
    case PlanOp::kProject:
      if (!ExprsShareable(node.projections, alias)) return "";
      return "project(" + ExprListSignature(node.projections, alias) + "|" +
             OutCols(node, alias) + ")<" + child + ">";
    case PlanOp::kSort: {
      if (!ExprsShareable(node.sort_keys, alias)) return "";
      std::string keys;
      for (size_t i = 0; i < node.sort_keys.size(); ++i) {
        if (!keys.empty()) keys += ",";
        keys += ExprSignature(*node.sort_keys[i], alias);
        keys += (i < node.sort_ascending.size() && !node.sort_ascending[i])
                    ? " desc"
                    : " asc";
      }
      return "sort(" + keys + ")<" + child + ">";
    }
    case PlanOp::kDistinct:
      return "distinct<" + child + ">";
    case PlanOp::kAggregate: {
      if (!ExprsShareable(node.group_keys, alias) ||
          !ExprsShareable(node.agg_exprs, alias)) {
        return "";
      }
      std::string sets;
      for (const auto& gs : node.grouping_sets) {
        sets += "(";
        for (size_t i = 0; i < gs.size(); ++i) {
          if (i > 0) sets += ",";
          sets += std::to_string(gs[i]);
        }
        sets += ")";
      }
      return "agg(" + ExprListSignature(node.group_keys, alias) + ";" +
             ExprListSignature(node.agg_exprs, alias) + ";" + sets + "|" +
             OutCols(node, alias) + ")<" + child + ">";
    }
    default:
      return "";
  }
}

}  // namespace

std::string ShareableScanKey(const PlanNode& node) {
  if (node.op != PlanOp::kTableScan || !node.probes.empty()) return "";
  if (!ExprsShareable(node.filter, node.table_alias)) return "";
  return "scan:" + node.table_name + "|" + OutCols(node, node.table_alias) +
         "|" + ConjunctsSignature(node.filter, node.table_alias);
}

std::string ShareableMaterializeKey(const PlanNode& node) {
  switch (node.op) {
    case PlanOp::kFilter:
    case PlanOp::kProject:
    case PlanOp::kSort:
    case PlanOp::kDistinct:
    case PlanOp::kAggregate:
      break;
    default:
      return "";  // base scans go through ShareableScanKey
  }
  const PlanNode* leaf = ChainLeafScan(node);
  if (leaf == nullptr) return "";
  std::string key = ChainNodeKey(node, leaf->table_alias);
  if (key.empty()) return "";
  return "mat:" + key;
}

}  // namespace cbqt
