#ifndef CBQT_EXEC_EVAL_H_
#define CBQT_EXEC_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "optimizer/plan.h"

namespace cbqt {

/// One name-resolution frame: a schema plus the current row of that schema.
struct Frame {
  const Schema* schema;
  const Row* row;
};

/// Materialized subquery result plus a lazily built hash index used by
/// IN / NOT IN predicates (a linear scan per outer row would make TIS
/// quadratic).
struct SubqueryResultView {
  const std::vector<Row>* rows = nullptr;
  /// Hash set over the result rows (structural equality). May be null when
  /// the resolver does not provide one; callers then scan `rows`.
  const void* row_set = nullptr;  // std::unordered_set<Row, RowHasher, RowEq>*
  /// True if any result row contains a NULL (drives three-valued IN).
  bool has_null = false;
};

/// Callback the executor installs so EvalExpr can evaluate kSubquery nodes:
/// returns the materialized result of the subquery for the current outer
/// context (with TIS caching behind it).
class SubqueryResolver {
 public:
  virtual ~SubqueryResolver() = default;
  virtual Result<SubqueryResultView> Resolve(const Expr* subquery_node) = 0;
};

/// Evaluation context: a stack of frames (innermost last). Column refs
/// resolve by (alias, name) searching innermost-first — sound because the
/// binder guarantees globally unique table aliases.
struct EvalContext {
  std::vector<Frame> frames;
  int64_t rownum = 0;  ///< current ROWNUM for kRownum expressions
  SubqueryResolver* subquery_resolver = nullptr;
};

/// Evaluates `e` under `ctx` with SQL three-valued semantics: the "unknown"
/// truth value is represented as a NULL Value.
Result<Value> EvalExpr(const Expr& e, EvalContext& ctx);

/// SQL predicate truth: TRUE only (NULL/unknown and FALSE both reject).
bool IsTruthy(const Value& v);

/// Three-valued comparison on already-evaluated operands: NULL when either
/// side is NULL, else the boolean result of `op` over CompareValues. Shared
/// by the tree evaluator and the compiled batch evaluator so the two paths
/// cannot diverge.
Value EvalCompareOp(const Value& a, const Value& b, BinaryOp op);

/// SQL arithmetic on already-evaluated operands: NULL-propagating, int64
/// preserved while both sides are int64 (division always real; division by
/// zero yields NULL).
Value EvalArithOp(const Value& a, const Value& b, BinaryOp op);

/// Amount of spin work per expensive_* function call, to make wall-clock
/// execution time reflect the cost model's expensive_call constant.
/// Default 2000 iterations; tests may lower it.
void SetExpensiveFunctionWork(int iterations);
int GetExpensiveFunctionWork();

}  // namespace cbqt

#endif  // CBQT_EXEC_EVAL_H_
