#include "exec/eval.h"

#include <cmath>
#include <unordered_set>

#include "common/str_util.h"

namespace cbqt {

namespace {

int g_expensive_work = 2000;

Value Tribool(Ordering ord, BinaryOp op) {
  if (ord == Ordering::kUnknown) return Value::Null();
  bool r = false;
  switch (op) {
    case BinaryOp::kEq:
      r = ord == Ordering::kEqual;
      break;
    case BinaryOp::kNe:
      r = ord != Ordering::kEqual;
      break;
    case BinaryOp::kLt:
      r = ord == Ordering::kLess;
      break;
    case BinaryOp::kLe:
      r = ord != Ordering::kGreater;
      break;
    case BinaryOp::kGt:
      r = ord == Ordering::kGreater;
      break;
    case BinaryOp::kGe:
      r = ord != Ordering::kLess;
      break;
    default:
      return Value::Null();
  }
  return Value::Boolean(r);
}

Value EvalCompare(const Value& a, const Value& b, BinaryOp op) {
  return EvalCompareOp(a, b, op);
}

Value EvalArith(const Value& a, const Value& b, BinaryOp op) {
  return EvalArithOp(a, b, op);
}

// Subquery predicate evaluation over its materialized rows.
Result<Value> EvalSubqueryPredicate(const Expr& e,
                                    const SubqueryResultView& view,
                                    EvalContext& ctx) {
  const std::vector<Row>& rows = *view.rows;
  switch (e.subkind) {
    case SubqueryKind::kExists:
      return Value::Boolean(!rows.empty());
    case SubqueryKind::kNotExists:
      return Value::Boolean(rows.empty());
    case SubqueryKind::kScalar:
      if (rows.empty()) return Value::Null();
      return rows[0][0];
    case SubqueryKind::kIn:
    case SubqueryKind::kNotIn: {
      Row left;
      bool left_has_null = false;
      for (const auto& c : e.children) {
        auto v = EvalExpr(*c, ctx);
        if (!v.ok()) return v.status();
        if (v->is_null()) left_has_null = true;
        left.push_back(std::move(v.value()));
      }
      // Fast path: hash probe. Valid when the probe row is null-free (a
      // probe with NULLs needs per-row three-valued comparison).
      if (view.row_set != nullptr && !left_has_null) {
        const auto* set =
            static_cast<const std::unordered_set<Row, RowHasher, RowEq>*>(
                view.row_set);
        if (set->count(left) > 0) {
          return Value::Boolean(e.subkind == SubqueryKind::kIn);
        }
        if (view.has_null) return Value::Null();
        return Value::Boolean(e.subkind != SubqueryKind::kIn);
      }
      bool any_unknown = false;
      for (const Row& r : rows) {
        bool all_true = true;
        bool row_unknown = false;
        for (size_t i = 0; i < left.size(); ++i) {
          Ordering ord = CompareValues(left[i], r[i]);
          if (ord == Ordering::kUnknown) {
            row_unknown = true;
            all_true = false;
          } else if (ord != Ordering::kEqual) {
            all_true = false;
            row_unknown = false;
            break;
          }
        }
        if (all_true) {
          return Value::Boolean(e.subkind == SubqueryKind::kIn);
        }
        if (row_unknown) any_unknown = true;
      }
      if (any_unknown) return Value::Null();
      return Value::Boolean(e.subkind != SubqueryKind::kIn);
    }
    case SubqueryKind::kAnyCmp:
    case SubqueryKind::kAllCmp: {
      auto left = EvalExpr(*e.children[0], ctx);
      if (!left.ok()) return left.status();
      bool any_unknown = false;
      bool any_true = false;
      bool all_true = true;
      for (const Row& r : rows) {
        Value cmp = EvalCompare(left.value(), r[0], e.sub_cmp);
        if (cmp.is_null()) {
          any_unknown = true;
          all_true = false;
        } else if (cmp.AsBool()) {
          any_true = true;
        } else {
          all_true = false;
        }
      }
      if (e.subkind == SubqueryKind::kAnyCmp) {
        if (any_true) return Value::Boolean(true);
        if (any_unknown) return Value::Null();
        return Value::Boolean(false);
      }
      // ALL: vacuously true on empty input.
      if (all_true) return Value::Boolean(true);
      if (any_unknown) return Value::Null();
      // Some comparison was definitively false.
      for (const Row& r : rows) {
        Value cmp = EvalCompare(left.value(), r[0], e.sub_cmp);
        if (!cmp.is_null() && !cmp.AsBool()) return Value::Boolean(false);
      }
      return Value::Null();
    }
  }
  return Status::Internal("unhandled subquery kind");
}

Result<Value> EvalFuncCall(const Expr& e, EvalContext& ctx) {
  std::vector<Value> args;
  args.reserve(e.children.size());
  for (const auto& c : e.children) {
    auto v = EvalExpr(*c, ctx);
    if (!v.ok()) return v.status();
    args.push_back(std::move(v.value()));
  }
  const std::string& f = e.func_name;
  if (StartsWith(f, "expensive_")) {
    // Spin to make wall time reflect the cost model's expensive_call.
    volatile double sink = 0;
    for (int i = 0; i < g_expensive_work; ++i) {
      sink = sink + std::sqrt(i + 1.0);
    }
    (void)sink;
    if (args.empty()) return Value::Real(1.0);
    if (args[0].is_null()) return Value::Null();
    if (args.size() >= 2 && !args[1].is_null()) {
      int64_t m = static_cast<int64_t>(args[1].NumericValue());
      if (m <= 0) m = 1;
      uint64_t h = args[0].Hash();
      return Value::Real((h % static_cast<uint64_t>(m)) == 0 ? 1.0 : 0.0);
    }
    return Value::Real(args[0].NumericValue());
  }
  if (f == "abs") {
    if (args[0].is_null()) return Value::Null();
    return Value::Real(std::fabs(args[0].NumericValue()));
  }
  if (f == "mod") {
    if (args.size() != 2 || args[0].is_null() || args[1].is_null()) {
      return Value::Null();
    }
    int64_t b = static_cast<int64_t>(args[1].NumericValue());
    if (b == 0) return Value::Null();
    return Value::Int(static_cast<int64_t>(args[0].NumericValue()) % b);
  }
  if (f == "floor") {
    if (args[0].is_null()) return Value::Null();
    return Value::Real(std::floor(args[0].NumericValue()));
  }
  if (f == "upper") {
    if (args[0].is_null()) return Value::Null();
    return Value::Str(ToUpper(args[0].AsString()));
  }
  if (f == "lower") {
    if (args[0].is_null()) return Value::Null();
    return Value::Str(ToLower(args[0].AsString()));
  }
  return Status::NotSupported("unknown function: " + f);
}

}  // namespace

Value EvalCompareOp(const Value& a, const Value& b, BinaryOp op) {
  return Tribool(CompareValues(a, b), op);
}

Value EvalArithOp(const Value& a, const Value& b, BinaryOp op) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool both_int =
      a.kind() == ValueKind::kInt64 && b.kind() == ValueKind::kInt64;
  double x = a.NumericValue();
  double y = b.NumericValue();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::Int(a.AsInt() + b.AsInt()) : Value::Real(x + y);
    case BinaryOp::kSub:
      return both_int ? Value::Int(a.AsInt() - b.AsInt()) : Value::Real(x - y);
    case BinaryOp::kMul:
      return both_int ? Value::Int(a.AsInt() * b.AsInt()) : Value::Real(x * y);
    case BinaryOp::kDiv:
      if (y == 0) return Value::Null();
      return Value::Real(x / y);
    default:
      return Value::Null();
  }
}

void SetExpensiveFunctionWork(int iterations) {
  g_expensive_work = iterations;
}

int GetExpensiveFunctionWork() { return g_expensive_work; }

bool IsTruthy(const Value& v) {
  return v.kind() == ValueKind::kBool && v.AsBool();
}

Result<Value> EvalExpr(const Expr& e, EvalContext& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kColumnRef: {
      for (auto it = ctx.frames.rbegin(); it != ctx.frames.rend(); ++it) {
        int slot = FindSlot(*it->schema, e.table_alias, e.column_name);
        if (slot >= 0) return (*it->row)[static_cast<size_t>(slot)];
      }
      return Status::Internal("unresolved column at execution: " +
                              e.table_alias + "." + e.column_name);
    }
    case ExprKind::kBinary: {
      if (e.bop == BinaryOp::kAnd || e.bop == BinaryOp::kOr) {
        auto l = EvalExpr(*e.children[0], ctx);
        if (!l.ok()) return l.status();
        bool is_and = e.bop == BinaryOp::kAnd;
        // Short circuit.
        if (!l->is_null() && l->kind() == ValueKind::kBool) {
          if (is_and && !l->AsBool()) return Value::Boolean(false);
          if (!is_and && l->AsBool()) return Value::Boolean(true);
        }
        auto r = EvalExpr(*e.children[1], ctx);
        if (!r.ok()) return r.status();
        bool l_known = !l->is_null();
        bool r_known = !r->is_null();
        if (is_and) {
          if (r_known && !r->AsBool()) return Value::Boolean(false);
          if (l_known && r_known) return Value::Boolean(l->AsBool() && r->AsBool());
          return Value::Null();
        }
        if (r_known && r->AsBool()) return Value::Boolean(true);
        if (l_known && r_known) return Value::Boolean(l->AsBool() || r->AsBool());
        return Value::Null();
      }
      auto l = EvalExpr(*e.children[0], ctx);
      if (!l.ok()) return l.status();
      auto r = EvalExpr(*e.children[1], ctx);
      if (!r.ok()) return r.status();
      if (e.bop == BinaryOp::kNullSafeEq) {
        return Value::Boolean(NullSafeEqual(l.value(), r.value()));
      }
      if (IsComparisonOp(e.bop)) return EvalCompare(l.value(), r.value(), e.bop);
      return EvalArith(l.value(), r.value(), e.bop);
    }
    case ExprKind::kUnary: {
      auto v = EvalExpr(*e.children[0], ctx);
      if (!v.ok()) return v.status();
      switch (e.uop) {
        case UnaryOp::kNot:
          if (v->is_null()) return Value::Null();
          return Value::Boolean(!v->AsBool());
        case UnaryOp::kNeg:
          if (v->is_null()) return Value::Null();
          if (v->kind() == ValueKind::kInt64) return Value::Int(-v->AsInt());
          return Value::Real(-v->NumericValue());
        case UnaryOp::kIsNull:
          return Value::Boolean(v->is_null());
        case UnaryOp::kIsNotNull:
          return Value::Boolean(!v->is_null());
        case UnaryOp::kLnnvl:
          // TRUE iff the operand is FALSE or UNKNOWN.
          return Value::Boolean(!IsTruthy(v.value()));
      }
      return Status::Internal("unhandled unary op");
    }
    case ExprKind::kFuncCall:
      return EvalFuncCall(e, ctx);
    case ExprKind::kSubquery: {
      if (ctx.subquery_resolver == nullptr) {
        return Status::Internal("subquery evaluated without resolver");
      }
      auto view = ctx.subquery_resolver->Resolve(&e);
      if (!view.ok()) return view.status();
      return EvalSubqueryPredicate(e, view.value(), ctx);
    }
    case ExprKind::kRownum:
      return Value::Int(ctx.rownum);
    case ExprKind::kCase: {
      size_t i = 0;
      while (i + 1 < e.children.size()) {
        auto cond = EvalExpr(*e.children[i], ctx);
        if (!cond.ok()) return cond.status();
        if (IsTruthy(cond.value())) return EvalExpr(*e.children[i + 1], ctx);
        i += 2;
      }
      if (i < e.children.size()) return EvalExpr(*e.children[i], ctx);
      return Value::Null();
    }
    case ExprKind::kAggregate:
    case ExprKind::kWindow:
      return Status::Internal(
          "aggregate/window expression reached the row evaluator (planner "
          "substitution bug)");
  }
  return Status::Internal("unhandled expression kind");
}

}  // namespace cbqt
