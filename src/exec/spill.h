#ifndef CBQT_EXEC_SPILL_H_
#define CBQT_EXEC_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace cbqt {

class FaultInjector;

/// Spill I/O counters, accumulated into ExecStats by the executor.
struct SpillStats {
  int64_t files = 0;          ///< spill temp files created
  int64_t rows_written = 0;
  int64_t bytes_written = 0;
  int64_t rows_read = 0;
  int64_t bytes_read = 0;
};

/// One spill temp file: an append-only sequence of serialized rows written
/// by a pipeline breaker under memory pressure, then read back one or more
/// times (Rewind restarts the scan). Row format: u32 value count, then per
/// value a u8 kind tag followed by the payload (int64/double little-endian,
/// string as u32 length + bytes, bool as u8). Values never reference the
/// file after Next() returns, so buffer lifetime is the Row's own.
///
/// Write and read consume the kExecSpillWrite / kExecSpillRead fault sites
/// (one hit per row), letting tests prove that mid-spill I/O failures
/// unwind the query without leaking temp files or reservations.
class SpillFile {
 public:
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  Status Append(const Row& row);
  /// Flushes buffered writes; the file becomes readable. Idempotent.
  Status FinishWrite();
  /// (Re)starts reading from the first row; implies FinishWrite().
  Status Rewind();
  /// Reads the next row into *row; false at end of file.
  Result<bool> Next(Row* row);

  int64_t row_count() const { return rows_; }
  const std::string& path() const { return path_; }

 private:
  friend class SpillManager;
  SpillFile(std::string path, FaultInjector* faults, SpillStats* stats);

  std::string path_;
  FaultInjector* faults_ = nullptr;
  SpillStats* stats_ = nullptr;
  std::FILE* f_ = nullptr;
  bool writing_ = true;
  int64_t rows_ = 0;
};

/// Owns the spill temp files of one query execution. Created lazily on the
/// first spill so queries that stay in memory never touch the filesystem;
/// the destructor removes every file and the per-query directory, so error
/// unwinds (cancel, injected faults, real I/O errors) can never leak disk.
class SpillManager {
 public:
  /// Creates the per-query spill directory under `dir` (empty = the
  /// system temp directory).
  static Result<std::unique_ptr<SpillManager>> Create(const std::string& dir,
                                                      FaultInjector* faults,
                                                      SpillStats* stats);
  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  /// Opens a new spill file; the manager keeps ownership. `tag` names the
  /// spilling operator in the file name for debuggability.
  Result<SpillFile*> NewFile(const char* tag);

  const std::string& dir() const { return dir_; }

 private:
  SpillManager(std::string dir, FaultInjector* faults, SpillStats* stats)
      : dir_(std::move(dir)), faults_(faults), stats_(stats) {}

  std::string dir_;
  FaultInjector* faults_;
  SpillStats* stats_;
  std::vector<std::unique_ptr<SpillFile>> files_;
  uint64_t next_id_ = 0;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_SPILL_H_
