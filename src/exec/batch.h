#ifndef CBQT_EXEC_BATCH_H_
#define CBQT_EXEC_BATCH_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/value.h"

namespace cbqt {

/// Default number of rows per batch. Large enough to amortize virtual
/// dispatch, frame pushes, and guardrail polls over the per-row work; small
/// enough that a batch of wide rows stays cache- and budget-friendly.
inline constexpr size_t kDefaultBatchSize = 1024;

/// A batch of rows flowing between operators. The batch owns its rows; an
/// operator that returns a filled batch transfers ownership of the rows to
/// the caller, and the caller's next NextBatch() call invalidates them.
/// Capacity is advisory (operators stop appending at the executor's batch
/// size) — Add() never fails.
class RowBatch {
 public:
  RowBatch() = default;
  explicit RowBatch(size_t capacity) { rows_.reserve(capacity); }

  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  void Clear() { rows_.clear(); }
  void Add(Row&& row) { rows_.push_back(std::move(row)); }

  Row& operator[](size_t i) { return rows_[i]; }
  const Row& operator[](size_t i) const { return rows_[i]; }

  std::vector<Row>& rows() { return rows_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::vector<Row> rows_;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_BATCH_H_
