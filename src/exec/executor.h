#ifndef CBQT_EXEC_EXECUTOR_H_
#define CBQT_EXEC_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/eval.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace cbqt {

/// Execution counters. `rows_processed` is a deterministic work measure
/// (rows flowing through operators) used by the benchmarks alongside wall
/// time; the subquery counters expose the TIS caching behaviour
/// (paper §2.1.1: "the execution engine caches the results ... for the
/// tuples in the left table").
struct ExecStats {
  int64_t rows_processed = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
};

/// Operator-at-a-time executor over materialized row vectors. Faithful to
/// the plan's choices: join methods and order, index probes, semijoin
/// early-out, null-aware antijoin, TIS subquery evaluation with
/// correlation-value caching, lazy ROWNUM filters, grouping sets, windows.
class Executor {
 public:
  explicit Executor(const Database& db) : db_(db) {}

  /// Runs the plan to completion and returns the result rows (matching
  /// `plan.output`).
  Result<std::vector<Row>> Execute(const PlanNode& plan,
                                   ExecStats* stats = nullptr);

 private:
  Result<std::vector<Row>> Run(const PlanNode& node, EvalContext& ctx);

  Result<std::vector<Row>> RunTableScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunIndexScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunFilter(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunProject(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunNestedLoopJoin(const PlanNode& node,
                                             EvalContext& ctx);
  Result<std::vector<Row>> RunHashJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunMergeJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunAggregate(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSort(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunDistinct(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSetOp(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunLimit(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunWindow(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSubqueryFilter(const PlanNode& node,
                                             EvalContext& ctx);

  const Database& db_;
  ExecStats* stats_ = nullptr;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_EXECUTOR_H_
