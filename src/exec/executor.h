#ifndef CBQT_EXEC_EXECUTOR_H_
#define CBQT_EXEC_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/eval.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace cbqt {

/// Execution counters. `rows_processed` is a deterministic work measure
/// (rows flowing through operators) used by the benchmarks alongside wall
/// time; the subquery counters expose the TIS caching behaviour
/// (paper §2.1.1: "the execution engine caches the results ... for the
/// tuples in the left table").
struct ExecStats {
  int64_t rows_processed = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
};

/// Operator-at-a-time executor over materialized row vectors. Faithful to
/// the plan's choices: join methods and order, index probes, semijoin
/// early-out, null-aware antijoin, TIS subquery evaluation with
/// correlation-value caching, lazy ROWNUM filters, grouping sets, windows.
class Executor {
 public:
  /// `budget`, when non-null, caps the rows pushed through operators
  /// (OptimizerBudget::max_exec_rows): a runaway query fails fast with
  /// kBudgetExhausted instead of grinding through an unbounded join.
  explicit Executor(const Database& db, BudgetTracker* budget = nullptr)
      : db_(db), budget_(budget) {
    if (budget != nullptr && budget->budget().max_exec_rows > 0) {
      row_cap_ = budget->budget().max_exec_rows;
    }
  }

  /// Runs the plan to completion and returns the result rows (matching
  /// `plan.output`).
  Result<std::vector<Row>> Execute(const PlanNode& plan,
                                   ExecStats* stats = nullptr);

 private:
  /// Counts one row of operator work against the stats and the row budget.
  /// The hot path is one increment and one predictable compare; the cap is
  /// infinite when no budget is set.
  Status CountRow() {
    if (++stats_->rows_processed > row_cap_) {
      budget_->MarkExhausted(BudgetDimension::kExecRows);
      return Status::BudgetExhausted(
          "executor row budget exceeded (max_exec_rows=" +
          std::to_string(budget_->budget().max_exec_rows) + ")");
    }
    return Status::OK();
  }

  Result<std::vector<Row>> Run(const PlanNode& node, EvalContext& ctx);

  Result<std::vector<Row>> RunTableScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunIndexScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunFilter(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunProject(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunNestedLoopJoin(const PlanNode& node,
                                             EvalContext& ctx);
  Result<std::vector<Row>> RunHashJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunMergeJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunAggregate(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSort(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunDistinct(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSetOp(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunLimit(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunWindow(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSubqueryFilter(const PlanNode& node,
                                             EvalContext& ctx);

  const Database& db_;
  BudgetTracker* budget_ = nullptr;
  int64_t row_cap_ = std::numeric_limits<int64_t>::max();
  ExecStats* stats_ = nullptr;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_EXECUTOR_H_
