#ifndef CBQT_EXEC_EXECUTOR_H_
#define CBQT_EXEC_EXECUTOR_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/guardrails.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/eval.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace cbqt {

/// Execution counters. `rows_processed` is a deterministic work measure
/// (rows flowing through operators) used by the benchmarks alongside wall
/// time; the subquery counters expose the TIS caching behaviour
/// (paper §2.1.1: "the execution engine caches the results ... for the
/// tuples in the left table").
struct ExecStats {
  int64_t rows_processed = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
};

/// Operator-at-a-time executor over materialized row vectors. Faithful to
/// the plan's choices: join methods and order, index probes, semijoin
/// early-out, null-aware antijoin, TIS subquery evaluation with
/// correlation-value caching, lazy ROWNUM filters, grouping sets, windows.
class Executor {
 public:
  /// `budget`, when non-null, caps the rows pushed through operators
  /// (OptimizerBudget::max_exec_rows): a runaway query fails fast with
  /// kBudgetExhausted instead of grinding through an unbounded join.
  /// `guards` adds the runtime guardrails: the cancellation token is polled
  /// at every CountRow (one row = one polling quantum), and pipeline
  /// breakers (hash-join build sides, sort buffers, aggregation tables,
  /// materialized subquery results) charge their buffered bytes against the
  /// per-query memory tracker.
  explicit Executor(const Database& db, BudgetTracker* budget = nullptr,
                    QueryGuards guards = {})
      : db_(db), budget_(budget), guards_(guards) {
    if (budget != nullptr && budget->budget().max_exec_rows > 0) {
      row_cap_ = budget->budget().max_exec_rows;
    }
    has_guards_ = guards_.any();
  }

  /// Runs the plan to completion and returns the result rows (matching
  /// `plan.output`).
  Result<std::vector<Row>> Execute(const PlanNode& plan,
                                   ExecStats* stats = nullptr);

 private:
  /// Counts one row of operator work against the stats and the row budget.
  /// The hot path is one increment, one predictable compare, and one
  /// predictable branch on the guardrail flag; the cap is infinite when no
  /// budget is set.
  Status CountRow() {
    if (++stats_->rows_processed > row_cap_) {
      budget_->MarkExhausted(BudgetDimension::kExecRows);
      return Status::BudgetExhausted(
          "executor row budget exceeded (max_exec_rows=" +
          std::to_string(budget_->budget().max_exec_rows) + ")");
    }
    if (has_guards_) return PollGuards();
    return Status::OK();
  }

  /// Guardrail poll at the row quantum: fires the kExecBatch / kCancelAt
  /// injection sites and returns the cancellation token's status.
  Status PollGuards();

  /// True when pipeline breakers must account their buffered bytes (a
  /// memory tracker is attached, or fault injection wants the charge
  /// sites). Call sites skip computing byte estimates entirely otherwise.
  bool charge_memory() const {
    return guards_.memory != nullptr || guards_.faults != nullptr;
  }

  /// Buffered bytes accumulate locally and hit the tracker's atomics once
  /// per page of growth, so the per-row cost of accounting a pipeline
  /// breaker is an addition, not two atomic RMWs up the tracker chain.
  /// Budget enforcement lags by at most this many bytes per open buffer.
  static constexpr int64_t kChargeQuantumBytes = 4096;

  /// A reservation for one pipeline breaker's buffer, page-batched.
  ScopedReservation BufferReservation() {
    ScopedReservation res(guards_.memory);
    res.set_flush_quantum(kChargeQuantumBytes);
    return res;
  }

  /// Charges one buffered row (plus `extra` structure bytes) of a pipeline
  /// breaker against the per-query memory tracker via `res`, firing the
  /// kExecSpillCheck / kMemoryPressure injection sites. Zero cost (no byte
  /// estimate computed) when no guardrails are configured.
  Status ChargeBufferedRow(ScopedReservation& res, const Row& row,
                           int64_t extra = 0) {
    if (!charge_memory()) return Status::OK();
    return ChargeBufferedSlow(res, EstimateRowBytes(row) + extra);
  }
  Status ChargeBufferedSlow(ScopedReservation& res, int64_t bytes);

  Result<std::vector<Row>> Run(const PlanNode& node, EvalContext& ctx);

  Result<std::vector<Row>> RunTableScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunIndexScan(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunFilter(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunProject(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunNestedLoopJoin(const PlanNode& node,
                                             EvalContext& ctx);
  Result<std::vector<Row>> RunHashJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunMergeJoin(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunAggregate(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSort(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunDistinct(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSetOp(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunLimit(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunWindow(const PlanNode& node, EvalContext& ctx);
  Result<std::vector<Row>> RunSubqueryFilter(const PlanNode& node,
                                             EvalContext& ctx);

  const Database& db_;
  BudgetTracker* budget_ = nullptr;
  QueryGuards guards_;
  bool has_guards_ = false;
  int64_t row_cap_ = std::numeric_limits<int64_t>::max();
  ExecStats* stats_ = nullptr;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_EXECUTOR_H_
