#ifndef CBQT_EXEC_EXECUTOR_H_
#define CBQT_EXEC_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/guardrails.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/batch.h"
#include "exec/spill.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace cbqt {

class SharedScanHub;

/// Execution counters. `rows_processed` is a deterministic work measure
/// (rows flowing through operators) used by the benchmarks alongside wall
/// time; the subquery counters expose the TIS caching behaviour
/// (paper §2.1.1: "the execution engine caches the results ... for the
/// tuples in the left table"); the spill counters report how pipeline
/// breakers degraded to disk under memory pressure.
struct ExecStats {
  int64_t rows_processed = 0;
  /// CountBatch invocations — the number of budget/guardrail polling quanta
  /// (one per batch of rows, not one per row).
  int64_t batches = 0;
  int64_t subquery_executions = 0;
  int64_t subquery_cache_hits = 0;
  /// Pipeline breakers (sort / hash-join build / aggregation / distinct)
  /// that switched to spilling when their reservation hit the budget.
  int64_t spilled_operators = 0;
  SpillStats spill;
};

/// Everything that configures one Executor — the single way to run a plan.
/// `budget` and `guards` are borrowed (not owned) and may be null/empty.
struct ExecOptions {
  /// Caps the rows pushed through operators (OptimizerBudget::
  /// max_exec_rows): a runaway query fails fast with kBudgetExhausted.
  BudgetTracker* budget = nullptr;
  /// Runtime guardrails: cancellation polled once per batch, pipeline
  /// breakers charge buffered bytes against the per-query memory tracker,
  /// fault-injection sites armed through `guards.faults`.
  QueryGuards guards;
  /// Rows per operator batch. Smaller batches poll guardrails more often
  /// (tests pin this low to land injected faults deterministically).
  size_t batch_size = kDefaultBatchSize;
  /// Directory for spill temp files; empty = the system temp directory.
  std::string spill_dir;
  /// When true (default), a pipeline breaker whose reservation exceeds the
  /// memory budget spills partitions to disk and the query completes;
  /// when false the charge failure surfaces as kResourceExhausted.
  bool enable_spill = true;
  /// When false, Execute returns default-initialized stats (counters are
  /// still maintained internally for budget enforcement).
  bool collect_stats = true;
  /// Multi-query shared-scan registry (exec/shared_scan.h). Borrowed from
  /// the engine's MQO layer; null (the default) executes every scan
  /// privately.
  SharedScanHub* shared_scans = nullptr;
};

/// What Execute returns: the result rows plus the execution counters. The
/// executor always owns its stats block internally — there is no caller
/// out-param to leave null (the old API's latent null-deref).
struct ExecResult {
  std::vector<Row> rows;
  ExecStats stats;
};

/// Vectorized pull-model executor: the plan tree is compiled into an
/// Operator tree (exec/operators.h) exchanging RowBatch containers, and the
/// root is drained to completion. Faithful to the plan's choices: join
/// methods and order, index probes, semijoin early-out, null-aware
/// antijoin, TIS subquery evaluation with correlation-value caching, lazy
/// ROWNUM filters, grouping sets, windows. Pipeline breakers degrade to
/// disk via SpillManager instead of failing when the memory budget is hit.
class Executor {
 public:
  explicit Executor(const Database& db, ExecOptions options = {})
      : db_(db), options_(std::move(options)) {}

  /// Runs the plan to completion and returns the result rows (matching
  /// `plan.output`) together with the execution stats.
  Result<ExecResult> Execute(const PlanNode& plan);

 private:
  const Database& db_;
  ExecOptions options_;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_EXECUTOR_H_
