#include "exec/reference.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "binder/binder.h"

namespace cbqt {

namespace {

// Minimal aggregate accumulation, independent of the main executor's.
struct RefAccum {
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  std::vector<Row> distinct_seen;

  void Add(const Value& v, const Expr& agg) {
    if (agg.agg == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (agg.agg_distinct) {
      for (const Row& seen : distinct_seen) {
        if (RowsEqualStructural(seen, Row{v})) return;
      }
      distinct_seen.push_back(Row{v});
    }
    ++count;
    if (v.kind() == ValueKind::kInt64 && all_int) {
      isum += v.AsInt();
    } else {
      if (all_int) {
        sum = static_cast<double>(isum);
        all_int = false;
      }
      sum += v.NumericValue();
    }
    if (min.is_null() || TotalLess(v, min)) min = v;
    if (max.is_null() || TotalLess(max, v)) max = v;
  }

  Value Finish(const Expr& agg) const {
    switch (agg.agg) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return all_int ? Value::Int(isum) : Value::Real(sum);
      case AggFunc::kAvg:
        if (count == 0) return Value::Null();
        return Value::Real((all_int ? static_cast<double>(isum) : sum) /
                           static_cast<double>(count));
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

bool RowLessTotal(const Row& a, const Row& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (TotalLess(a[i], b[i])) return true;
    if (TotalLess(b[i], a[i])) return false;
  }
  return a.size() < b.size();
}

}  // namespace

/// Re-executes subquery blocks on every evaluation — no caching, which is
/// exactly what makes it a trustworthy oracle.
class NaiveSubqueryResolver : public SubqueryResolver {
 public:
  NaiveSubqueryResolver(ReferenceExecutor* owner, EvalContext& ctx)
      : owner_(owner), ctx_(ctx) {}

  Result<SubqueryResultView> Resolve(const Expr* subquery_node) override {
    auto rows = owner_->ExecuteBlock(*subquery_node->subquery, ctx_);
    if (!rows.ok()) return rows.status();
    owner_->subquery_results_.push_back(std::move(rows.value()));
    SubqueryResultView view;
    view.rows = &owner_->subquery_results_.back();
    return view;
  }

 private:
  ReferenceExecutor* owner_;
  EvalContext& ctx_;
};

Result<std::vector<Row>> ReferenceExecutor::Execute(const QueryBlock& qb) {
  subquery_results_.clear();
  schemas_.clear();
  EvalContext ctx;
  return ExecuteBlock(qb, ctx);
}

Result<std::vector<Row>> ReferenceExecutor::ExecuteBlock(const QueryBlock& qb,
                                                         EvalContext& ctx) {
  if (qb.IsSetOp()) return ExecuteSetOp(qb, ctx);
  return ExecuteRegular(qb, ctx);
}

Result<std::vector<Row>> ReferenceExecutor::ExecuteSetOp(const QueryBlock& qb,
                                                         EvalContext& ctx) {
  std::vector<std::vector<Row>> inputs;
  for (const auto& b : qb.branches) {
    auto rows = ExecuteBlock(*b, ctx);
    if (!rows.ok()) return rows.status();
    inputs.push_back(std::move(rows.value()));
  }
  std::vector<Row> out;
  auto contains = [](const std::vector<Row>& rows, const Row& r) {
    for (const Row& x : rows) {
      if (RowsEqualStructural(x, r)) return true;
    }
    return false;
  };
  switch (qb.set_op) {
    case SetOpKind::kUnionAll:
      for (auto& in : inputs) {
        for (auto& r : in) out.push_back(std::move(r));
      }
      break;
    case SetOpKind::kUnion:
      for (auto& in : inputs) {
        for (auto& r : in) {
          if (!contains(out, r)) out.push_back(std::move(r));
        }
      }
      break;
    case SetOpKind::kIntersect:
      for (const Row& r : inputs[0]) {
        bool in_all = true;
        for (size_t b = 1; b < inputs.size(); ++b) {
          if (!contains(inputs[b], r)) in_all = false;
        }
        if (in_all && !contains(out, r)) out.push_back(r);
      }
      break;
    case SetOpKind::kMinus:
      for (const Row& r : inputs[0]) {
        bool in_rest = false;
        for (size_t b = 1; b < inputs.size(); ++b) {
          if (contains(inputs[b], r)) in_rest = true;
        }
        if (!in_rest && !contains(out, r)) out.push_back(r);
      }
      break;
    case SetOpKind::kNone:
      return Status::Internal("set-op block without operator");
  }
  if (qb.rownum_limit >= 0 &&
      static_cast<int64_t>(out.size()) > qb.rownum_limit) {
    out.resize(static_cast<size_t>(qb.rownum_limit));
  }
  return out;
}

Result<std::vector<Row>> ReferenceExecutor::EntryRows(const TableRef& tr,
                                                      EvalContext& ctx) {
  if (tr.IsBaseTable()) {
    const Table* table = db_.FindTable(tr.table_name);
    if (table == nullptr) {
      return Status::Internal("missing table: " + tr.table_name);
    }
    std::vector<Row> out;
    out.reserve(table->NumRows());
    for (size_t i = 0; i < table->NumRows(); ++i) {
      Row r = table->rows()[i];
      r.push_back(Value::Int(static_cast<int64_t>(i)));
      out.push_back(std::move(r));
    }
    return out;
  }
  return ExecuteBlock(*tr.derived, ctx);
}

Result<std::vector<Row>> ReferenceExecutor::ExecuteRegular(
    const QueryBlock& qb, EvalContext& ctx) {
  NaiveSubqueryResolver resolver(this, ctx);
  SubqueryResolver* saved_resolver = ctx.subquery_resolver;
  ctx.subquery_resolver = &resolver;
  struct ResolverGuard {
    EvalContext& ctx;
    SubqueryResolver* saved;
    ~ResolverGuard() { ctx.subquery_resolver = saved; }
  } guard{ctx, saved_resolver};

  // ---- FROM: left-fold over entries. `acc` holds combined tuples over the
  // accumulated schema. ----
  schemas_.emplace_back();
  Schema& schema = schemas_.back();
  std::vector<Row> acc{Row{}};

  auto entry_schema = [&](const TableRef& tr) {
    Schema s;
    if (tr.IsBaseTable()) {
      for (const auto& col : tr.table_def->columns) {
        s.push_back(ColumnSlot{tr.alias, col.name, col.type});
      }
      s.push_back(ColumnSlot{tr.alias, "rowid", DataType::kInt64});
    } else {
      for (const auto& oc : BlockOutputColumns(*tr.derived)) {
        s.push_back(ColumnSlot{tr.alias, oc.name, oc.type});
      }
    }
    return s;
  };

  for (const auto& tr : qb.from) {
    Schema eschema = entry_schema(tr);
    std::vector<Row> right;
    bool per_row = tr.lateral;
    if (!per_row) {
      auto r = EntryRows(tr, ctx);
      if (!r.ok()) return r.status();
      right = std::move(r.value());
    }
    Schema combined = schema;
    combined.insert(combined.end(), eschema.begin(), eschema.end());
    schemas_.push_back(combined);
    Schema& combined_ref = schemas_.back();

    std::vector<Row> next;
    for (const Row& lrow : acc) {
      std::vector<Row> rrows;
      if (per_row) {
        ctx.frames.push_back(Frame{&schema, &lrow});
        auto r = EntryRows(tr, ctx);
        ctx.frames.pop_back();
        if (!r.ok()) return r.status();
        rrows = std::move(r.value());
      } else {
        rrows = right;  // copy: naive by design
      }
      bool matched = false;
      bool unknown = false;
      for (const Row& rrow : rrows) {
        Row comb = lrow;
        comb.insert(comb.end(), rrow.begin(), rrow.end());
        Value pass = Value::Boolean(true);
        if (!tr.join_conds.empty()) {
          ctx.frames.push_back(Frame{&combined_ref, &comb});
          bool unk = false;
          for (const auto& c : tr.join_conds) {
            auto v = EvalExpr(*c, ctx);
            if (!v.ok()) {
              ctx.frames.pop_back();
              return v.status();
            }
            if (v->is_null()) {
              unk = true;
            } else if (!v->AsBool()) {
              pass = Value::Boolean(false);
              unk = false;
              break;
            }
          }
          ctx.frames.pop_back();
          if (IsTruthy(pass) && unk) pass = Value::Null();
        }
        if (pass.is_null()) {
          unknown = true;
          continue;
        }
        if (!pass.AsBool()) continue;
        matched = true;
        if (tr.join == JoinKind::kInner || tr.join == JoinKind::kLeftOuter) {
          next.push_back(std::move(comb));
        } else {
          break;  // semi/anti decided by the first match
        }
      }
      switch (tr.join) {
        case JoinKind::kSemi:
          if (matched) next.push_back(lrow);
          break;
        case JoinKind::kAnti:
          if (!matched) next.push_back(lrow);
          break;
        case JoinKind::kAntiNA:
          if (!matched && !unknown) next.push_back(lrow);
          break;
        case JoinKind::kLeftOuter:
          if (!matched) {
            Row comb = lrow;
            for (size_t i = 0; i < eschema.size(); ++i) {
              comb.push_back(Value::Null());
            }
            next.push_back(std::move(comb));
          }
          break;
        case JoinKind::kInner:
          break;
      }
    }
    if (tr.join == JoinKind::kInner || tr.join == JoinKind::kLeftOuter) {
      schema = combined_ref;
    }
    acc = std::move(next);
  }

  // ---- WHERE ----
  if (!qb.where.empty()) {
    std::vector<Row> kept;
    for (const Row& r : acc) {
      ctx.frames.push_back(Frame{&schema, &r});
      bool pass = true;
      for (const auto& w : qb.where) {
        auto v = EvalExpr(*w, ctx);
        if (!v.ok()) {
          ctx.frames.pop_back();
          return v.status();
        }
        if (!IsTruthy(v.value())) {
          pass = false;
          break;
        }
      }
      ctx.frames.pop_back();
      if (pass) kept.push_back(r);
    }
    acc = std::move(kept);
  }

  // ---- evaluation helpers over a "group" of rows ----
  // Evaluates `e` where aggregates compute over the group, grouping
  // expressions take their *key* values (NULL for columns excluded from the
  // current grouping set), and everything else evaluates on the group's
  // first row.
  const Row* current_key = nullptr;
  std::function<Result<Value>(const Expr&, const std::vector<const Row*>&)>
      eval_grouped = [&](const Expr& e, const std::vector<const Row*>& group)
      -> Result<Value> {
    if (current_key != nullptr) {
      for (size_t g = 0; g < qb.group_by.size(); ++g) {
        if (ExprEquals(e, *qb.group_by[g])) return (*current_key)[g];
      }
    }
    if (e.kind == ExprKind::kAggregate) {
      RefAccum accum;
      for (const Row* r : group) {
        Value v = Value::Null();
        if (e.agg != AggFunc::kCountStar) {
          ctx.frames.push_back(Frame{&schema, r});
          auto rv = EvalExpr(*e.children[0], ctx);
          ctx.frames.pop_back();
          if (!rv.ok()) return rv.status();
          v = std::move(rv.value());
        }
        accum.Add(v, e);
      }
      return accum.Finish(e);
    }
    if (e.kind == ExprKind::kWindow) {
      return Status::Internal("window inside aggregate context");
    }
    // Evaluate on the group's representative row, with aggregate sub-nodes
    // replaced by their values over the whole group (clone + substitute).
    ExprPtr copy = e.Clone();
    std::function<Status(Expr*)> fill = [&](Expr* node) -> Status {
      if (current_key != nullptr) {
        for (size_t g = 0; g < qb.group_by.size(); ++g) {
          if (ExprEquals(*node, *qb.group_by[g])) {
            node->kind = ExprKind::kLiteral;
            node->literal = (*current_key)[g];
            node->children.clear();
            return Status::OK();
          }
        }
      }
      if (node->kind == ExprKind::kAggregate) {
        auto v = eval_grouped(*node, group);
        if (!v.ok()) return v.status();
        node->kind = ExprKind::kLiteral;
        node->literal = v.value();
        node->children.clear();
        return Status::OK();
      }
      for (auto& c : node->children) CBQT_RETURN_IF_ERROR(fill(c.get()));
      return Status::OK();
    };
    CBQT_RETURN_IF_ERROR(fill(copy.get()));
    if (group.empty()) {
      // Scalar aggregate over empty input: non-aggregate parts are NULL.
      Row empty_row(schema.size(), Value::Null());
      ctx.frames.push_back(Frame{&schema, &empty_row});
      auto v = EvalExpr(*copy, ctx);
      ctx.frames.pop_back();
      return v;
    }
    ctx.frames.push_back(Frame{&schema, group[0]});
    auto v = EvalExpr(*copy, ctx);
    ctx.frames.pop_back();
    return v;
  };

  bool aggregating = qb.IsAggregating();
  std::vector<Row> results;

  if (aggregating) {
    // ---- GROUP BY (+ grouping sets) ----
    std::vector<std::vector<int>> sets = qb.grouping_sets;
    if (sets.empty()) {
      std::vector<int> all;
      for (size_t g = 0; g < qb.group_by.size(); ++g) {
        all.push_back(static_cast<int>(g));
      }
      sets.push_back(std::move(all));
    }
    for (const auto& set : sets) {
      std::vector<bool> in_set(qb.group_by.size(), false);
      for (int g : set) in_set[static_cast<size_t>(g)] = true;
      // Group rows by key (linear scan: naive by design).
      std::vector<Row> keys;
      std::vector<std::vector<const Row*>> groups;
      for (const Row& r : acc) {
        Row key;
        ctx.frames.push_back(Frame{&schema, &r});
        bool failed = false;
        Status err;
        for (size_t g = 0; g < qb.group_by.size(); ++g) {
          if (!in_set[g]) {
            key.push_back(Value::Null());
            continue;
          }
          auto v = EvalExpr(*qb.group_by[g], ctx);
          if (!v.ok()) {
            failed = true;
            err = v.status();
            break;
          }
          key.push_back(std::move(v.value()));
        }
        ctx.frames.pop_back();
        if (failed) return err;
        int idx = -1;
        for (size_t k = 0; k < keys.size(); ++k) {
          if (RowsEqualStructural(keys[k], key)) idx = static_cast<int>(k);
        }
        if (idx < 0) {
          keys.push_back(std::move(key));
          groups.emplace_back();
          idx = static_cast<int>(keys.size()) - 1;
        }
        groups[static_cast<size_t>(idx)].push_back(&r);
      }
      if (groups.empty() && qb.group_by.empty()) {
        groups.emplace_back();  // scalar aggregation over empty input
      }
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        const auto& group = groups[gi];
        current_key = gi < keys.size() ? &keys[gi] : nullptr;
        // HAVING
        bool pass = true;
        for (const auto& h : qb.having) {
          auto v = eval_grouped(*h, group);
          if (!v.ok()) return v.status();
          if (!IsTruthy(v.value())) pass = false;
        }
        if (!pass) continue;
        Row out_row;
        for (const auto& item : qb.select) {
          auto v = eval_grouped(*item.expr, group);
          if (!v.ok()) return v.status();
          out_row.push_back(std::move(v.value()));
        }
        // ORDER BY keys appended as hidden tail, stripped after sorting.
        for (const auto& o : qb.order_by) {
          auto v = eval_grouped(*o.expr, group);
          if (!v.ok()) return v.status();
          out_row.push_back(std::move(v.value()));
        }
        results.push_back(std::move(out_row));
      }
      current_key = nullptr;
    }
  } else {
    // ---- plain projection (with O(n^2) windows) ----
    for (size_t i = 0; i < acc.size(); ++i) {
      const Row& r = acc[i];
      // Window values for this row computed by scanning the whole input.
      auto eval_with_windows = [&](const Expr& e) -> Result<Value> {
        ExprPtr copy = e.Clone();
        std::function<Status(Expr*)> fill = [&](Expr* node) -> Status {
          for (auto& c : node->children) CBQT_RETURN_IF_ERROR(fill(c.get()));
          if (node->kind != ExprKind::kWindow) return Status::OK();
          // Partition keys and order keys of the current row.
          auto keys_of = [&](const Row& row, const std::vector<ExprPtr>& es,
                             Row* out) -> Status {
            ctx.frames.push_back(Frame{&schema, &row});
            for (const auto& k : es) {
              auto v = EvalExpr(*k, ctx);
              if (!v.ok()) {
                ctx.frames.pop_back();
                return v.status();
              }
              out->push_back(std::move(v.value()));
            }
            ctx.frames.pop_back();
            return Status::OK();
          };
          Row my_part, my_ord;
          CBQT_RETURN_IF_ERROR(keys_of(r, node->partition_by, &my_part));
          CBQT_RETURN_IF_ERROR(keys_of(r, node->win_order_by, &my_ord));
          RefAccum accum;
          Expr agg_proxy;
          agg_proxy.kind = ExprKind::kAggregate;
          agg_proxy.agg = node->win_func;
          for (const Row& other : acc) {
            Row part, ord;
            CBQT_RETURN_IF_ERROR(keys_of(other, node->partition_by, &part));
            if (!RowsEqualStructural(part, my_part)) continue;
            CBQT_RETURN_IF_ERROR(keys_of(other, node->win_order_by, &ord));
            // RANGE UNBOUNDED PRECEDING .. CURRENT ROW: include peers.
            if (RowLessTotal(my_ord, ord)) continue;
            Value v = Value::Null();
            if (node->win_func != AggFunc::kCountStar) {
              ctx.frames.push_back(Frame{&schema, &other});
              auto rv = EvalExpr(*node->children[0], ctx);
              ctx.frames.pop_back();
              if (!rv.ok()) return rv.status();
              v = std::move(rv.value());
            }
            accum.Add(v, agg_proxy);
          }
          node->kind = ExprKind::kLiteral;
          node->literal = accum.Finish(agg_proxy);
          node->children.clear();
          node->partition_by.clear();
          node->win_order_by.clear();
          return Status::OK();
        };
        CBQT_RETURN_IF_ERROR(fill(copy.get()));
        ctx.frames.push_back(Frame{&schema, &r});
        ctx.rownum = static_cast<int64_t>(results.size()) + 1;
        auto v = EvalExpr(*copy, ctx);
        ctx.frames.pop_back();
        return v;
      };
      Row out_row;
      for (const auto& item : qb.select) {
        auto v = eval_with_windows(*item.expr);
        if (!v.ok()) return v.status();
        out_row.push_back(std::move(v.value()));
      }
      for (const auto& o : qb.order_by) {
        auto v = eval_with_windows(*o.expr);
        if (!v.ok()) return v.status();
        out_row.push_back(std::move(v.value()));
      }
      results.push_back(std::move(out_row));
    }
  }

  size_t visible = qb.select.size();

  // ---- DISTINCT (on visible columns only; our queries keep ORDER BY
  // columns inside the select list when DISTINCT is used) ----
  if (qb.distinct) {
    std::vector<Row> dedup;
    for (const Row& r : results) {
      bool seen = false;
      for (const Row& x : dedup) {
        bool eq = true;
        for (size_t c = 0; c < visible; ++c) {
          if (!(x[c].is_null() && r[c].is_null()) &&
              !(!x[c].is_null() && !r[c].is_null() &&
                RowsEqualStructural(Row{x[c]}, Row{r[c]}))) {
            eq = false;
            break;
          }
        }
        if (eq) {
          seen = true;
          break;
        }
      }
      if (!seen) dedup.push_back(r);
    }
    results = std::move(dedup);
  }

  // ---- ORDER BY (keys are the hidden tail) ----
  if (!qb.order_by.empty()) {
    std::stable_sort(results.begin(), results.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < qb.order_by.size(); ++k) {
                         const Value& x = a[visible + k];
                         const Value& y = b[visible + k];
                         bool asc = qb.order_by[k].ascending;
                         if (x.is_null() && y.is_null()) continue;
                         if (x.is_null()) return !asc;
                         if (y.is_null()) return asc;
                         Ordering ord = CompareValues(x, y);
                         if (ord == Ordering::kEqual ||
                             ord == Ordering::kUnknown) {
                           continue;
                         }
                         bool less = ord == Ordering::kLess;
                         return asc ? less : !less;
                       }
                       return false;
                     });
  }
  for (Row& r : results) r.resize(visible);

  // ---- ROWNUM ----
  if (qb.rownum_limit >= 0 &&
      static_cast<int64_t>(results.size()) > qb.rownum_limit) {
    results.resize(static_cast<size_t>(qb.rownum_limit));
  }
  return results;
}

}  // namespace cbqt
