#ifndef CBQT_EXEC_PRUNE_H_
#define CBQT_EXEC_PRUNE_H_

#include "optimizer/plan.h"

namespace cbqt {

/// Executor-side column pruning (late materialization).
///
/// Narrows the output schemas of scan nodes to the slots actually referenced
/// by their ancestors, then recomputes the schemas of pass-through operators
/// (filter, sort, limit, window) and joins bottom-up so every node's `output`
/// stays consistent with what its operator emits. The root's schema is never
/// changed, so results are identical; only the width of intermediate rows
/// shrinks. Because expressions bind to slots by (alias, name) — both in the
/// compiled fast path and in the tree evaluator's frame search — narrowing a
/// schema never re-binds a reference: a ref that resolved locally keeps its
/// slot (the analysis marks it required), and a ref that resolved through an
/// enclosing frame still fails locally (pruning only removes slots).
///
/// Conservative cases keep every column: DISTINCT and set operations (whole-
/// row equality semantics), subquery-filter children and rescanning nested-
/// loop left sides (correlated references resolve into their frames by name),
/// and any expression containing a subquery.
///
/// Call on a plan the executor owns (a clone) — the tree is mutated.
void PruneScanColumns(PlanNode* root);

}  // namespace cbqt

#endif  // CBQT_EXEC_PRUNE_H_
