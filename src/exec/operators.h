#ifndef CBQT_EXEC_OPERATORS_H_
#define CBQT_EXEC_OPERATORS_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/budget.h"
#include "common/guardrails.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/batch.h"
#include "exec/eval.h"
#include "exec/executor.h"
#include "exec/spill.h"
#include "optimizer/plan.h"
#include "storage/database.h"

namespace cbqt {

class SharedScanHub;

/// Shared execution state for one query: the database, the evaluation
/// context (frame stack / ROWNUM / subquery resolver), the stats block the
/// executor owns (never a caller pointer), the budget/guardrail handles,
/// and the lazily created spill manager. One ExecContext per Execute()
/// call; every operator of the tree borrows it.
struct ExecContext {
  const Database* db = nullptr;
  EvalContext eval;
  ExecStats stats;

  BudgetTracker* budget = nullptr;
  QueryGuards guards;
  bool has_guards = false;
  int64_t row_cap = std::numeric_limits<int64_t>::max();
  size_t batch_size = kDefaultBatchSize;
  bool enable_spill = true;
  std::string spill_dir;

  /// Multi-query shared-scan registry (exec/shared_scan.h); null outside an
  /// MQO batch. When set, OperatorFactory::Build wraps shareable scans and
  /// single-table intermediates in SharedScanOperator. `building_shared` is
  /// the factory's re-entrancy latch: inside a shared subtree's build,
  /// nested nodes are not wrapped again (sharing happens at the topmost
  /// eligible node only).
  SharedScanHub* shared_scans = nullptr;
  bool building_shared = false;

  /// Counts `n` rows of operator work — one batch, one poll. The per-batch
  /// cost is one add, one predictable compare, and one branch on the
  /// guardrail flag; cancellation and the kExecBatch fault site fire at
  /// batch granularity (the polling quantum is now a batch, not a row).
  Status CountBatch(int64_t n);

  /// Cancellation/guardrail poll without counting work — used inside spill
  /// partition processing, where the rows were already counted when first
  /// consumed. Does not consume kExecBatch fault hits.
  Status PollOnly() { return has_guards ? guards.Poll() : Status::OK(); }

  /// True when pipeline breakers must account their buffered bytes (a
  /// memory tracker is attached, or fault injection wants the charge
  /// sites). Call sites skip computing byte estimates entirely otherwise.
  bool charge_memory() const {
    return guards.memory != nullptr || guards.faults != nullptr;
  }

  /// Buffered bytes accumulate locally and hit the tracker's atomics once
  /// per page of growth; budget enforcement lags by at most this many
  /// bytes per open buffer.
  static constexpr int64_t kChargeQuantumBytes = 4096;

  /// A reservation for one pipeline breaker's buffer, page-batched.
  ScopedReservation BufferReservation() {
    ScopedReservation res(guards.memory);
    res.set_flush_quantum(kChargeQuantumBytes);
    return res;
  }

  /// Charges `bytes` of a pipeline breaker's buffer via `res`, firing the
  /// kExecSpillCheck / kMemoryPressure injection sites.
  Status ChargeBuffered(ScopedReservation& res, int64_t bytes);

  /// Charges one buffered row (plus `extra` structure bytes). Zero cost
  /// (no byte estimate computed) when no guardrails are configured.
  Status ChargeBufferedRow(ScopedReservation& res, const Row& row,
                           int64_t extra = 0) {
    if (!charge_memory()) return Status::OK();
    return ChargeBuffered(res, EstimateRowBytes(row) + extra);
  }

  /// True when a failed charge should degrade to disk instead of failing
  /// the query: spill is enabled and the failure is a memory one (other
  /// statuses — injected kInternal faults, cancellation — propagate).
  bool ShouldSpill(const Status& s) const {
    return enable_spill && s.code() == StatusCode::kResourceExhausted;
  }

  /// The query's spill manager, created on first use so in-memory queries
  /// never touch the filesystem.
  Result<SpillManager*> GetSpill();

 private:
  std::unique_ptr<SpillManager> spill_mgr_;
};

/// The vectorized pull-model operator interface. Lifecycle:
/// Open() → NextBatch()* → Close(), repeatable (a nested-loop rescan
/// re-Opens its right subtree per outer row). NextBatch fills `out` with up
/// to ExecContext::batch_size rows and returns true, or returns false at
/// end of stream; a true return with an *empty* batch is legal (a scan
/// whose batch was fully filtered) and callers must keep pulling. Batch
/// rows are owned by the caller once returned and are invalidated by the
/// caller's next NextBatch call on the same operator.
class Operator {
 public:
  Operator(ExecContext* ctx, const PlanNode* node) : ctx_(ctx), node_(node) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  virtual Status Open() = 0;
  virtual Result<bool> NextBatch(RowBatch* out) = 0;
  virtual void Close() {}

  const PlanNode& node() const { return *node_; }

 protected:
  ExecContext* ctx_;
  const PlanNode* node_;
};

/// Builds the operator tree for a plan by walking the PlanNode tree — one
/// subclass per plan operator kind.
class OperatorFactory {
 public:
  static Result<std::unique_ptr<Operator>> Build(const PlanNode& node,
                                                 ExecContext* ctx);
};

/// Open → pull every batch → Close, materializing the full result. Used by
/// the executor for the root and internally for subplans / build sides.
Result<std::vector<Row>> DrainOperator(Operator* op);

}  // namespace cbqt

#endif  // CBQT_EXEC_OPERATORS_H_
