#include "exec/spill.h"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/fault_injector.h"

namespace cbqt {

namespace {

namespace fs = std::filesystem;

// Process-wide counter so concurrent executions never collide on a
// directory name even within the same millisecond.
std::atomic<uint64_t> g_spill_dir_seq{0};

// Serialized value kind tags. Kept independent of ValueKind's numeric
// values so the on-disk format is explicit.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagReal = 2;
constexpr uint8_t kTagStr = 3;
constexpr uint8_t kTagBool = 4;

bool WriteBytes(std::FILE* f, const void* p, size_t n, int64_t* written) {
  if (n == 0) return true;
  if (std::fwrite(p, 1, n, f) != n) return false;
  *written += static_cast<int64_t>(n);
  return true;
}

bool ReadBytes(std::FILE* f, void* p, size_t n, int64_t* read) {
  if (n == 0) return true;
  if (std::fread(p, 1, n, f) != n) return false;
  *read += static_cast<int64_t>(n);
  return true;
}

}  // namespace

SpillFile::SpillFile(std::string path, FaultInjector* faults,
                     SpillStats* stats)
    : path_(std::move(path)), faults_(faults), stats_(stats) {}

SpillFile::~SpillFile() {
  if (f_ != nullptr) std::fclose(f_);
  std::error_code ec;
  fs::remove(path_, ec);  // best effort; the manager removes the directory
}

Status SpillFile::Append(const Row& row) {
  if (!writing_ || f_ == nullptr) {
    return Status::Internal("spill append after FinishWrite: " + path_);
  }
  if (faults_ != nullptr) {
    CBQT_RETURN_IF_ERROR(faults_->MaybeFail(FaultSite::kExecSpillWrite));
  }
  int64_t written = 0;
  bool ok = true;
  uint32_t n = static_cast<uint32_t>(row.size());
  ok = ok && WriteBytes(f_, &n, sizeof(n), &written);
  for (const Value& v : row) {
    if (!ok) break;
    switch (v.kind()) {
      case ValueKind::kNull: {
        uint8_t tag = kTagNull;
        ok = WriteBytes(f_, &tag, 1, &written);
        break;
      }
      case ValueKind::kInt64: {
        uint8_t tag = kTagInt;
        int64_t x = v.AsInt();
        ok = WriteBytes(f_, &tag, 1, &written) &&
             WriteBytes(f_, &x, sizeof(x), &written);
        break;
      }
      case ValueKind::kDouble: {
        uint8_t tag = kTagReal;
        double x = v.AsDouble();
        ok = WriteBytes(f_, &tag, 1, &written) &&
             WriteBytes(f_, &x, sizeof(x), &written);
        break;
      }
      case ValueKind::kString: {
        uint8_t tag = kTagStr;
        const std::string& s = v.AsString();
        uint32_t len = static_cast<uint32_t>(s.size());
        ok = WriteBytes(f_, &tag, 1, &written) &&
             WriteBytes(f_, &len, sizeof(len), &written) &&
             WriteBytes(f_, s.data(), s.size(), &written);
        break;
      }
      case ValueKind::kBool: {
        uint8_t tag = kTagBool;
        uint8_t x = v.AsBool() ? 1 : 0;
        ok = WriteBytes(f_, &tag, 1, &written) &&
             WriteBytes(f_, &x, 1, &written);
        break;
      }
    }
  }
  if (!ok) return Status::Internal("spill write failed: " + path_);
  ++rows_;
  if (stats_ != nullptr) {
    ++stats_->rows_written;
    stats_->bytes_written += written;
  }
  return Status::OK();
}

Status SpillFile::FinishWrite() {
  if (!writing_) return Status::OK();
  writing_ = false;
  if (f_ != nullptr && std::fflush(f_) != 0) {
    return Status::Internal("spill flush failed: " + path_);
  }
  return Status::OK();
}

Status SpillFile::Rewind() {
  CBQT_RETURN_IF_ERROR(FinishWrite());
  if (f_ == nullptr) return Status::Internal("spill file not open: " + path_);
  if (std::fseek(f_, 0, SEEK_SET) != 0) {
    return Status::Internal("spill rewind failed: " + path_);
  }
  return Status::OK();
}

Result<bool> SpillFile::Next(Row* row) {
  if (writing_ || f_ == nullptr) {
    return Status::Internal("spill read before Rewind: " + path_);
  }
  int64_t read = 0;
  uint32_t n = 0;
  if (std::fread(&n, 1, sizeof(n), f_) != sizeof(n)) {
    if (std::feof(f_)) return false;
    return Status::Internal("spill read failed: " + path_);
  }
  read += static_cast<int64_t>(sizeof(n));
  if (faults_ != nullptr) {
    CBQT_RETURN_IF_ERROR(faults_->MaybeFail(FaultSite::kExecSpillRead));
  }
  row->clear();
  row->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t tag = 0;
    if (!ReadBytes(f_, &tag, 1, &read)) {
      return Status::Internal("spill read failed: " + path_);
    }
    switch (tag) {
      case kTagNull:
        row->push_back(Value::Null());
        break;
      case kTagInt: {
        int64_t x = 0;
        if (!ReadBytes(f_, &x, sizeof(x), &read)) {
          return Status::Internal("spill read failed: " + path_);
        }
        row->push_back(Value::Int(x));
        break;
      }
      case kTagReal: {
        double x = 0;
        if (!ReadBytes(f_, &x, sizeof(x), &read)) {
          return Status::Internal("spill read failed: " + path_);
        }
        row->push_back(Value::Real(x));
        break;
      }
      case kTagStr: {
        uint32_t len = 0;
        if (!ReadBytes(f_, &len, sizeof(len), &read)) {
          return Status::Internal("spill read failed: " + path_);
        }
        std::string s(len, '\0');
        if (!ReadBytes(f_, s.data(), len, &read)) {
          return Status::Internal("spill read failed: " + path_);
        }
        row->push_back(Value::Str(std::move(s)));
        break;
      }
      case kTagBool: {
        uint8_t x = 0;
        if (!ReadBytes(f_, &x, 1, &read)) {
          return Status::Internal("spill read failed: " + path_);
        }
        row->push_back(Value::Boolean(x != 0));
        break;
      }
      default:
        return Status::Internal("corrupt spill file (bad tag): " + path_);
    }
  }
  if (stats_ != nullptr) {
    ++stats_->rows_read;
    stats_->bytes_read += read;
  }
  return true;
}

Result<std::unique_ptr<SpillManager>> SpillManager::Create(
    const std::string& dir, FaultInjector* faults, SpillStats* stats) {
  std::error_code ec;
  fs::path base = dir.empty() ? fs::temp_directory_path(ec) : fs::path(dir);
  if (ec) return Status::Internal("no temp directory for spill: " + ec.message());
  uint64_t seq = g_spill_dir_seq.fetch_add(1, std::memory_order_relaxed);
  fs::path mine = base / ("cbqt-spill-" + std::to_string(::getpid()) + "-" +
                          std::to_string(seq));
  fs::create_directories(mine, ec);
  if (ec) {
    return Status::Internal("cannot create spill directory " + mine.string() +
                            ": " + ec.message());
  }
  return std::unique_ptr<SpillManager>(
      new SpillManager(mine.string(), faults, stats));
}

SpillManager::~SpillManager() {
  files_.clear();  // closes and unlinks each file
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

Result<SpillFile*> SpillManager::NewFile(const char* tag) {
  std::string path =
      dir_ + "/" + tag + "-" + std::to_string(next_id_++) + ".spill";
  std::unique_ptr<SpillFile> f(new SpillFile(path, faults_, stats_));
  f->f_ = std::fopen(path.c_str(), "w+b");
  if (f->f_ == nullptr) {
    return Status::Internal("cannot open spill file: " + path);
  }
  if (stats_ != nullptr) ++stats_->files;
  files_.push_back(std::move(f));
  return files_.back().get();
}

}  // namespace cbqt
