#ifndef CBQT_EXEC_REFERENCE_H_
#define CBQT_EXEC_REFERENCE_H_

#include <deque>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "exec/eval.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// A naive, obviously-correct interpreter of *bound query trees*.
///
/// It evaluates the declarative tree directly — cross products, per-row
/// subquery re-execution, O(n^2) window frames — with no planner, no join
/// reordering, no caching, and no transformations. It is deliberately slow
/// and deliberately independent of the optimizer and executor, which makes
/// it the correctness oracle for the whole pipeline: for any query,
/// `CbqtOptimizer + Executor` must return the same multiset of rows as this
/// class (see tests/test_reference_oracle.cc).
class ReferenceExecutor {
 public:
  explicit ReferenceExecutor(const Database& db) : db_(db) {}

  /// Executes a bound query block tree. Output columns follow the select
  /// list (or the first branch's for set operations).
  Result<std::vector<Row>> Execute(const QueryBlock& qb);

 private:
  friend class NaiveSubqueryResolver;

  Result<std::vector<Row>> ExecuteBlock(const QueryBlock& qb,
                                        EvalContext& ctx);
  Result<std::vector<Row>> ExecuteRegular(const QueryBlock& qb,
                                          EvalContext& ctx);
  Result<std::vector<Row>> ExecuteSetOp(const QueryBlock& qb,
                                        EvalContext& ctx);

  /// Rows of one FROM entry under the current context (base table with
  /// ROWIDs, or a recursively executed derived table).
  Result<std::vector<Row>> EntryRows(const TableRef& tr, EvalContext& ctx);

  const Database& db_;
  /// Keeps subquery results alive for the duration of one Execute call
  /// (EvalExpr receives borrowed pointers).
  std::deque<std::vector<Row>> subquery_results_;
  std::deque<Schema> schemas_;
};

}  // namespace cbqt

#endif  // CBQT_EXEC_REFERENCE_H_
