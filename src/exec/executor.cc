#include "exec/executor.h"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_set>
#include <memory>
#include <unordered_map>

#include "common/fault_injector.h"
#include "common/str_util.h"

namespace cbqt {

Status Executor::PollGuards() {
  if (guards_.faults != nullptr) {
    CBQT_RETURN_IF_ERROR(guards_.faults->MaybeFail(FaultSite::kExecBatch));
  }
  return guards_.Poll();
}

Status Executor::ChargeBufferedSlow(ScopedReservation& res, int64_t bytes) {
  if (guards_.faults != nullptr) {
    CBQT_RETURN_IF_ERROR(
        guards_.faults->MaybeFail(FaultSite::kExecSpillCheck));
    if (guards_.faults->MaybeFire(FaultSite::kMemoryPressure)) {
      return Status::ResourceExhausted(
          "injected memory pressure (executor pipeline breaker)");
    }
  }
  return res.Grow(bytes);
}

namespace {

using RowMap =
    std::unordered_map<Row, std::vector<size_t>, RowHasher, RowEq>;

// Mirrors the planner's subquery traversal order (pre-order, not descending
// into nested subquery blocks).
void CollectSubqueryNodesExec(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kSubquery) {
    out->push_back(e);
    return;
  }
  for (const auto& c : e->children) CollectSubqueryNodesExec(c.get(), out);
  for (const auto& c : e->partition_by) CollectSubqueryNodesExec(c.get(), out);
  for (const auto& c : e->win_order_by) CollectSubqueryNodesExec(c.get(), out);
}

// Evaluates a conjunct list under the current context; result is TRUE /
// FALSE / UNKNOWN(null).
Result<Value> EvalConjuncts(const std::vector<ExprPtr>& preds,
                            EvalContext& ctx) {
  bool unknown = false;
  for (const auto& p : preds) {
    auto v = EvalExpr(*p, ctx);
    if (!v.ok()) return v.status();
    if (v->is_null()) {
      unknown = true;
      continue;
    }
    if (!v->AsBool()) return Value::Boolean(false);
  }
  if (unknown) return Value::Null();
  return Value::Boolean(true);
}

struct AggAccum {
  double sum = 0;
  int64_t count = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  std::unordered_map<Row, bool, RowHasher, RowEq> distinct;

  void Add(const Value& v, const Expr& agg) {
    if (agg.agg == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (agg.agg_distinct) {
      Row key{v};
      if (!distinct.emplace(std::move(key), true).second) return;
    }
    ++count;
    switch (agg.agg) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.kind() == ValueKind::kInt64 && sum_is_int) {
          isum += v.AsInt();
        } else {
          if (sum_is_int) {
            sum = static_cast<double>(isum);
            sum_is_int = false;
          }
          sum += v.NumericValue();
        }
        break;
      case AggFunc::kMin:
        if (min.is_null() || TotalLess(v, min)) min = v;
        break;
      case AggFunc::kMax:
        if (max.is_null() || TotalLess(max, v)) max = v;
        break;
      default:
        break;
    }
  }

  Value Finish(const Expr& agg) const {
    switch (agg.agg) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_is_int ? Value::Int(isum) : Value::Real(sum);
      case AggFunc::kAvg: {
        if (count == 0) return Value::Null();
        double total = sum_is_int ? static_cast<double>(isum) : sum;
        return Value::Real(total / static_cast<double>(count));
      }
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

bool SortRowLess(const Row& a, const Row& b, const std::vector<bool>& asc) {
  for (size_t i = 0; i < a.size(); ++i) {
    bool ascending = i < asc.size() ? asc[i] : true;
    const Value& x = a[i];
    const Value& y = b[i];
    // Oracle default: NULLS LAST ascending, NULLS FIRST descending.
    if (x.is_null() && y.is_null()) continue;
    if (x.is_null()) return !ascending;
    if (y.is_null()) return ascending;
    Ordering ord = CompareValues(x, y);
    if (ord == Ordering::kEqual || ord == Ordering::kUnknown) continue;
    bool less = ord == Ordering::kLess;
    return ascending ? less : !less;
  }
  return false;
}

}  // namespace

Result<std::vector<Row>> Executor::Execute(const PlanNode& plan,
                                           ExecStats* stats) {
  ExecStats local;
  stats_ = stats != nullptr ? stats : &local;
  EvalContext ctx;
  return Run(plan, ctx);
}

Result<std::vector<Row>> Executor::Run(const PlanNode& node, EvalContext& ctx) {
  switch (node.op) {
    case PlanOp::kTableScan:
      return RunTableScan(node, ctx);
    case PlanOp::kIndexScan:
      return RunIndexScan(node, ctx);
    case PlanOp::kFilter:
      return RunFilter(node, ctx);
    case PlanOp::kProject:
      return RunProject(node, ctx);
    case PlanOp::kNestedLoopJoin:
      return RunNestedLoopJoin(node, ctx);
    case PlanOp::kHashJoin:
      return RunHashJoin(node, ctx);
    case PlanOp::kMergeJoin:
      return RunMergeJoin(node, ctx);
    case PlanOp::kAggregate:
      return RunAggregate(node, ctx);
    case PlanOp::kSort:
      return RunSort(node, ctx);
    case PlanOp::kDistinct:
      return RunDistinct(node, ctx);
    case PlanOp::kSetOp:
      return RunSetOp(node, ctx);
    case PlanOp::kLimit:
      return RunLimit(node, ctx);
    case PlanOp::kWindow:
      return RunWindow(node, ctx);
    case PlanOp::kSubqueryFilter:
      return RunSubqueryFilter(node, ctx);
  }
  return Status::Internal("unhandled plan operator");
}

Result<std::vector<Row>> Executor::RunTableScan(const PlanNode& node,
                                                EvalContext& ctx) {
  const Table* table = db_.FindTable(node.table_name);
  if (table == nullptr) {
    return Status::Internal("missing table at execution: " + node.table_name);
  }
  std::vector<Row> out;
  const auto& rows = table->rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    CBQT_RETURN_IF_ERROR(CountRow());
    Row r = rows[i];
    r.push_back(Value::Int(static_cast<int64_t>(i)));  // rowid
    if (!node.filter.empty()) {
      ctx.frames.push_back(Frame{&node.output, &r});
      auto pass = EvalConjuncts(node.filter, ctx);
      ctx.frames.pop_back();
      if (!pass.ok()) return pass.status();
      if (!IsTruthy(pass.value())) continue;
    }
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> Executor::RunIndexScan(const PlanNode& node,
                                                EvalContext& ctx) {
  const Table* table = db_.FindTable(node.table_name);
  const Index* index = db_.FindIndex(node.table_name, node.index_name);
  if (table == nullptr || index == nullptr) {
    return Status::Internal("missing table/index at execution: " +
                            node.table_name + "/" + node.index_name);
  }
  Row key;
  key.reserve(node.probes.size());
  for (const auto& p : node.probes) {
    auto v = EvalExpr(*p, ctx);
    if (!v.ok()) return v.status();
    key.push_back(std::move(v.value()));
  }
  std::vector<Row> out;
  for (int64_t rowid : index->LookupEqual(key)) {
    CBQT_RETURN_IF_ERROR(CountRow());
    Row r = table->rows()[static_cast<size_t>(rowid)];
    r.push_back(Value::Int(rowid));
    if (!node.filter.empty()) {
      ctx.frames.push_back(Frame{&node.output, &r});
      auto pass = EvalConjuncts(node.filter, ctx);
      ctx.frames.pop_back();
      if (!pass.ok()) return pass.status();
      if (!IsTruthy(pass.value())) continue;
    }
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> Executor::RunFilter(const PlanNode& node,
                                             EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  std::vector<Row> out;
  for (auto& r : input.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.frames.push_back(Frame{&node.output, &r});
    auto pass = EvalConjuncts(node.filter, ctx);
    ctx.frames.pop_back();
    if (!pass.ok()) return pass.status();
    if (IsTruthy(pass.value())) out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Row>> Executor::RunProject(const PlanNode& node,
                                              EvalContext& ctx) {
  std::vector<Row> input;
  if (!node.children.empty()) {
    auto child = Run(*node.children[0], ctx);
    if (!child.ok()) return child.status();
    input = std::move(child.value());
  } else {
    input.push_back(Row{});  // no-FROM block: one synthetic row
  }
  const Schema& in_schema =
      node.children.empty() ? node.output : node.children[0]->output;
  std::vector<Row> out;
  out.reserve(input.size());
  int64_t saved_rownum = ctx.rownum;
  for (size_t i = 0; i < input.size(); ++i) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.rownum = static_cast<int64_t>(i) + 1;
    ctx.frames.push_back(Frame{&in_schema, &input[i]});
    Row r;
    r.reserve(node.projections.size());
    bool failed = false;
    Status err;
    for (const auto& p : node.projections) {
      auto v = EvalExpr(*p, ctx);
      if (!v.ok()) {
        failed = true;
        err = v.status();
        break;
      }
      r.push_back(std::move(v.value()));
    }
    ctx.frames.pop_back();
    if (failed) return err;
    out.push_back(std::move(r));
  }
  ctx.rownum = saved_rownum;
  return out;
}

Result<std::vector<Row>> Executor::RunNestedLoopJoin(const PlanNode& node,
                                                     EvalContext& ctx) {
  auto left = Run(*node.children[0], ctx);
  if (!left.ok()) return left.status();
  const Schema& left_schema = node.children[0]->output;
  const Schema& right_schema = node.children[1]->output;
  Schema combined = left_schema;
  combined.insert(combined.end(), right_schema.begin(), right_schema.end());

  std::vector<Row> right_cache;
  bool right_materialized = false;
  if (!node.rescan_right) {
    auto right = Run(*node.children[1], ctx);
    if (!right.ok()) return right.status();
    right_cache = std::move(right.value());
    right_materialized = true;
  }

  std::vector<Row> out;
  for (auto& lrow : left.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    const std::vector<Row>* right_rows = &right_cache;
    std::vector<Row> per_row;
    if (!right_materialized) {
      ctx.frames.push_back(Frame{&left_schema, &lrow});
      auto right = Run(*node.children[1], ctx);
      ctx.frames.pop_back();
      if (!right.ok()) return right.status();
      per_row = std::move(right.value());
      right_rows = &per_row;
    }
    bool matched = false;
    bool unknown = false;
    for (const auto& rrow : *right_rows) {
      CBQT_RETURN_IF_ERROR(CountRow());
      Row comb = lrow;
      comb.insert(comb.end(), rrow.begin(), rrow.end());
      Value pass = Value::Boolean(true);
      if (!node.join_conds.empty()) {
        ctx.frames.push_back(Frame{&combined, &comb});
        auto v = EvalConjuncts(node.join_conds, ctx);
        ctx.frames.pop_back();
        if (!v.ok()) return v.status();
        pass = v.value();
      }
      if (pass.is_null()) {
        unknown = true;
        continue;
      }
      if (!pass.AsBool()) continue;
      matched = true;
      switch (node.join_kind) {
        case JoinKind::kInner:
        case JoinKind::kLeftOuter:
          out.push_back(std::move(comb));
          break;
        case JoinKind::kSemi:
          break;  // emit below, once
        case JoinKind::kAnti:
        case JoinKind::kAntiNA:
          break;
      }
      if (node.join_kind == JoinKind::kSemi ||
          node.join_kind == JoinKind::kAnti ||
          node.join_kind == JoinKind::kAntiNA) {
        break;  // stop-at-first-match property
      }
    }
    switch (node.join_kind) {
      case JoinKind::kSemi:
        if (matched) out.push_back(lrow);
        break;
      case JoinKind::kAnti:
        if (!matched) out.push_back(lrow);
        break;
      case JoinKind::kAntiNA:
        if (!matched && !unknown) out.push_back(lrow);
        break;
      case JoinKind::kLeftOuter:
        if (!matched) {
          Row comb = lrow;
          for (size_t i = 0; i < right_schema.size(); ++i) {
            comb.push_back(Value::Null());
          }
          out.push_back(std::move(comb));
        }
        break;
      case JoinKind::kInner:
        break;
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::RunHashJoin(const PlanNode& node,
                                               EvalContext& ctx) {
  auto left = Run(*node.children[0], ctx);
  if (!left.ok()) return left.status();
  auto right = Run(*node.children[1], ctx);
  if (!right.ok()) return right.status();
  const Schema& left_schema = node.children[0]->output;
  const Schema& right_schema = node.children[1]->output;
  Schema combined = left_schema;
  combined.insert(combined.end(), right_schema.begin(), right_schema.end());

  // Build on the right. The build side is a pipeline breaker: its hash
  // table bytes (key rows + posting lists + the buffered build rows they
  // point at) are charged against the per-query memory tracker.
  RowMap table;
  bool build_has_null_key = false;
  ScopedReservation build_mem = BufferReservation();
  const auto& rrows = right.value();
  for (size_t i = 0; i < rrows.size(); ++i) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.frames.push_back(Frame{&right_schema, &rrows[i]});
    Row key;
    bool has_null = false;
    for (const auto& k : node.hash_right_keys) {
      auto v = EvalExpr(*k, ctx);
      if (!v.ok()) {
        ctx.frames.pop_back();
        return v.status();
      }
      if (v->is_null()) has_null = true;
      key.push_back(std::move(v.value()));
    }
    ctx.frames.pop_back();
    if (has_null) {
      build_has_null_key = true;
      continue;
    }
    if (charge_memory()) {
      CBQT_RETURN_IF_ERROR(ChargeBufferedSlow(
          build_mem, EstimateRowBytes(key) + EstimateRowBytes(rrows[i]) +
                         static_cast<int64_t>(sizeof(size_t))));
    }
    table[std::move(key)].push_back(i);
  }

  std::vector<Row> out;
  for (auto& lrow : left.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.frames.push_back(Frame{&left_schema, &lrow});
    Row key;
    bool has_null = false;
    for (const auto& k : node.hash_left_keys) {
      auto v = EvalExpr(*k, ctx);
      if (!v.ok()) {
        ctx.frames.pop_back();
        return v.status();
      }
      if (v->is_null()) has_null = true;
      key.push_back(std::move(v.value()));
    }
    ctx.frames.pop_back();

    bool matched = false;
    if (!has_null) {
      auto it = table.find(key);
      if (it != table.end()) {
        for (size_t ri : it->second) {
          CBQT_RETURN_IF_ERROR(CountRow());
          Row comb = lrow;
          const Row& rrow = rrows[ri];
          comb.insert(comb.end(), rrow.begin(), rrow.end());
          if (!node.join_conds.empty()) {
            ctx.frames.push_back(Frame{&combined, &comb});
            auto pass = EvalConjuncts(node.join_conds, ctx);
            ctx.frames.pop_back();
            if (!pass.ok()) return pass.status();
            if (!IsTruthy(pass.value())) continue;
          }
          matched = true;
          if (node.join_kind == JoinKind::kInner ||
              node.join_kind == JoinKind::kLeftOuter) {
            out.push_back(std::move(comb));
          } else {
            break;  // semi/anti: first match decides
          }
        }
      }
    }

    switch (node.join_kind) {
      case JoinKind::kSemi:
        if (matched) out.push_back(std::move(lrow));
        break;
      case JoinKind::kAnti:
        if (!matched) out.push_back(std::move(lrow));
        break;
      case JoinKind::kAntiNA:
        // NOT IN semantics: a NULL on either side makes the comparison
        // unknown, which rejects the row (unless the right side is empty).
        if (rrows.empty()) {
          out.push_back(std::move(lrow));
        } else if (!matched && !has_null && !build_has_null_key) {
          out.push_back(std::move(lrow));
        }
        break;
      case JoinKind::kLeftOuter:
        if (!matched) {
          Row comb = std::move(lrow);
          for (size_t i = 0; i < right_schema.size(); ++i) {
            comb.push_back(Value::Null());
          }
          out.push_back(std::move(comb));
        }
        break;
      case JoinKind::kInner:
        break;
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::RunMergeJoin(const PlanNode& node,
                                                EvalContext& ctx) {
  auto left = Run(*node.children[0], ctx);
  if (!left.ok()) return left.status();
  auto right = Run(*node.children[1], ctx);
  if (!right.ok()) return right.status();
  const Schema& left_schema = node.children[0]->output;
  const Schema& right_schema = node.children[1]->output;
  Schema combined = left_schema;
  combined.insert(combined.end(), right_schema.begin(), right_schema.end());

  auto eval_keys = [&](const Schema& schema, const Row& row,
                       const std::vector<ExprPtr>& keys,
                       Row* out_keys) -> Status {
    ctx.frames.push_back(Frame{&schema, &row});
    for (const auto& k : keys) {
      auto v = EvalExpr(*k, ctx);
      if (!v.ok()) {
        ctx.frames.pop_back();
        return v.status();
      }
      out_keys->push_back(std::move(v.value()));
    }
    ctx.frames.pop_back();
    return Status::OK();
  };

  struct Keyed {
    Row keys;
    const Row* row;
  };
  // Both sorted key buffers break the pipeline; charge their bytes.
  ScopedReservation merge_mem = BufferReservation();
  std::vector<Keyed> lk, rk;
  for (const auto& r : left.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    Keyed k{{}, &r};
    CBQT_RETURN_IF_ERROR(eval_keys(left_schema, r, node.hash_left_keys, &k.keys));
    bool has_null = false;
    for (const auto& v : k.keys) {
      if (v.is_null()) has_null = true;
    }
    if (has_null) continue;
    CBQT_RETURN_IF_ERROR(ChargeBufferedRow(
        merge_mem, k.keys, static_cast<int64_t>(sizeof(Keyed))));
    lk.push_back(std::move(k));
  }
  for (const auto& r : right.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    Keyed k{{}, &r};
    CBQT_RETURN_IF_ERROR(
        eval_keys(right_schema, r, node.hash_right_keys, &k.keys));
    bool has_null = false;
    for (const auto& v : k.keys) {
      if (v.is_null()) has_null = true;
    }
    if (has_null) continue;
    CBQT_RETURN_IF_ERROR(ChargeBufferedRow(
        merge_mem, k.keys, static_cast<int64_t>(sizeof(Keyed))));
    rk.push_back(std::move(k));
  }
  auto key_less = [](const Keyed& a, const Keyed& b) {
    for (size_t i = 0; i < a.keys.size(); ++i) {
      if (TotalLess(a.keys[i], b.keys[i])) return true;
      if (TotalLess(b.keys[i], a.keys[i])) return false;
    }
    return false;
  };
  std::sort(lk.begin(), lk.end(), key_less);
  std::sort(rk.begin(), rk.end(), key_less);

  std::vector<Row> out;
  size_t i = 0, j = 0;
  while (i < lk.size() && j < rk.size()) {
    if (key_less(lk[i], rk[j])) {
      ++i;
      continue;
    }
    if (key_less(rk[j], lk[i])) {
      ++j;
      continue;
    }
    // Equal key group.
    size_t i_end = i;
    while (i_end < lk.size() && !key_less(lk[i], lk[i_end]) &&
           !key_less(lk[i_end], lk[i])) {
      ++i_end;
    }
    size_t j_end = j;
    while (j_end < rk.size() && !key_less(rk[j], rk[j_end]) &&
           !key_less(rk[j_end], rk[j])) {
      ++j_end;
    }
    for (size_t a = i; a < i_end; ++a) {
      for (size_t b = j; b < j_end; ++b) {
        CBQT_RETURN_IF_ERROR(CountRow());
        Row comb = *lk[a].row;
        comb.insert(comb.end(), rk[b].row->begin(), rk[b].row->end());
        if (!node.join_conds.empty()) {
          ctx.frames.push_back(Frame{&combined, &comb});
          auto pass = EvalConjuncts(node.join_conds, ctx);
          ctx.frames.pop_back();
          if (!pass.ok()) return pass.status();
          if (!IsTruthy(pass.value())) continue;
        }
        out.push_back(std::move(comb));
      }
    }
    i = i_end;
    j = j_end;
  }
  return out;
}

Result<std::vector<Row>> Executor::RunAggregate(const PlanNode& node,
                                                EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  const Schema& in_schema = node.children[0]->output;
  const size_t num_keys = node.group_keys.size();
  const size_t num_aggs = node.agg_exprs.size();

  // Grouping sets: default is the single full set.
  std::vector<std::vector<int>> sets = node.grouping_sets;
  if (sets.empty()) {
    std::vector<int> all;
    for (size_t g = 0; g < num_keys; ++g) all.push_back(static_cast<int>(g));
    sets.push_back(std::move(all));
  }

  std::vector<Row> out;
  for (const auto& set : sets) {
    std::vector<bool> in_set(num_keys, false);
    for (int g : set) in_set[static_cast<size_t>(g)] = true;

    // The aggregation hash table is a pipeline breaker; each new group's
    // key and accumulators are charged against the query tracker.
    ScopedReservation agg_mem = BufferReservation();
    std::unordered_map<Row, std::vector<AggAccum>, RowHasher, RowEq> groups;
    for (const auto& r : input.value()) {
      CBQT_RETURN_IF_ERROR(CountRow());
      ctx.frames.push_back(Frame{&in_schema, &r});
      Row key;
      key.reserve(num_keys);
      bool failed = false;
      Status err;
      for (size_t g = 0; g < num_keys; ++g) {
        if (!in_set[g]) {
          key.push_back(Value::Null());
          continue;
        }
        auto v = EvalExpr(*node.group_keys[g], ctx);
        if (!v.ok()) {
          failed = true;
          err = v.status();
          break;
        }
        key.push_back(std::move(v.value()));
      }
      if (failed) {
        ctx.frames.pop_back();
        return err;
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) {
        it->second.resize(num_aggs);
        Status charged = ChargeBufferedRow(
            agg_mem, it->first,
            static_cast<int64_t>(num_aggs * sizeof(AggAccum)));
        if (!charged.ok()) {
          ctx.frames.pop_back();
          return charged;
        }
      }
      for (size_t a = 0; a < num_aggs; ++a) {
        const Expr& agg = *node.agg_exprs[a];
        Value v = Value::Null();
        if (agg.agg != AggFunc::kCountStar) {
          auto r2 = EvalExpr(*agg.children[0], ctx);
          if (!r2.ok()) {
            ctx.frames.pop_back();
            return r2.status();
          }
          v = std::move(r2.value());
        }
        it->second[a].Add(v, agg);
      }
      ctx.frames.pop_back();
    }
    // Scalar aggregation produces one row even on empty input.
    if (groups.empty() && num_keys == 0) {
      groups.try_emplace(Row{}).first->second.resize(num_aggs);
    }
    for (auto& [key, accums] : groups) {
      Row r = key;
      for (size_t a = 0; a < num_aggs; ++a) {
        r.push_back(accums[a].Finish(*node.agg_exprs[a]));
      }
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::RunSort(const PlanNode& node,
                                           EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  const Schema& in_schema = node.children[0]->output;
  struct Keyed {
    Row keys;
    size_t index;
  };
  // The sort buffer (key columns alongside the already-materialized input)
  // is a pipeline breaker; its bytes are charged against the query tracker.
  ScopedReservation sort_mem = BufferReservation();
  std::vector<Keyed> keyed;
  keyed.reserve(input->size());
  for (size_t i = 0; i < input->size(); ++i) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.frames.push_back(Frame{&in_schema, &(*input)[i]});
    Keyed k{{}, i};
    for (const auto& key : node.sort_keys) {
      auto v = EvalExpr(*key, ctx);
      if (!v.ok()) {
        ctx.frames.pop_back();
        return v.status();
      }
      k.keys.push_back(std::move(v.value()));
    }
    ctx.frames.pop_back();
    CBQT_RETURN_IF_ERROR(ChargeBufferedRow(
        sort_mem, k.keys, static_cast<int64_t>(sizeof(Keyed))));
    keyed.push_back(std::move(k));
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [&](const Keyed& a, const Keyed& b) {
                     return SortRowLess(a.keys, b.keys, node.sort_ascending);
                   });
  std::vector<Row> out;
  out.reserve(input->size());
  for (const auto& k : keyed) out.push_back(std::move((*input)[k.index]));
  return out;
}

Result<std::vector<Row>> Executor::RunDistinct(const PlanNode& node,
                                               EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  ScopedReservation distinct_mem = BufferReservation();
  std::unordered_map<Row, bool, RowHasher, RowEq> seen;
  std::vector<Row> out;
  for (auto& r : input.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    if (seen.emplace(r, true).second) {
      CBQT_RETURN_IF_ERROR(ChargeBufferedRow(distinct_mem, r));
      out.push_back(std::move(r));
    }
  }
  return out;
}

Result<std::vector<Row>> Executor::RunSetOp(const PlanNode& node,
                                            EvalContext& ctx) {
  std::vector<std::vector<Row>> inputs;
  for (const auto& c : node.children) {
    auto r = Run(*c, ctx);
    if (!r.ok()) return r.status();
    inputs.push_back(std::move(r.value()));
  }
  std::vector<Row> out;
  switch (node.set_op) {
    case SetOpKind::kUnionAll: {
      for (auto& in : inputs) {
        for (auto& r : in) {
          CBQT_RETURN_IF_ERROR(CountRow());
          out.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpKind::kUnion: {
      std::unordered_map<Row, bool, RowHasher, RowEq> seen;
      for (auto& in : inputs) {
        for (auto& r : in) {
          CBQT_RETURN_IF_ERROR(CountRow());
          if (seen.emplace(r, true).second) out.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpKind::kIntersect: {
      // Set semantics; NULLs match (paper §2.2.7).
      std::unordered_map<Row, bool, RowHasher, RowEq> right;
      for (size_t b = 1; b < inputs.size(); ++b) {
        for (auto& r : inputs[b]) {
          CBQT_RETURN_IF_ERROR(CountRow());
          right.emplace(std::move(r), true);
        }
      }
      std::unordered_map<Row, bool, RowHasher, RowEq> emitted;
      for (auto& r : inputs[0]) {
        CBQT_RETURN_IF_ERROR(CountRow());
        if (right.count(r) > 0 && emitted.emplace(r, true).second) {
          out.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpKind::kMinus: {
      std::unordered_map<Row, bool, RowHasher, RowEq> right;
      for (size_t b = 1; b < inputs.size(); ++b) {
        for (auto& r : inputs[b]) {
          CBQT_RETURN_IF_ERROR(CountRow());
          right.emplace(std::move(r), true);
        }
      }
      std::unordered_map<Row, bool, RowHasher, RowEq> emitted;
      for (auto& r : inputs[0]) {
        CBQT_RETURN_IF_ERROR(CountRow());
        if (right.count(r) == 0 && emitted.emplace(r, true).second) {
          out.push_back(std::move(r));
        }
      }
      break;
    }
    case SetOpKind::kNone:
      return Status::Internal("SetOp node without a set operator");
  }
  return out;
}

Result<std::vector<Row>> Executor::RunLimit(const PlanNode& node,
                                            EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  const Schema& in_schema = node.children[0]->output;
  std::vector<Row> out;
  int64_t saved_rownum = ctx.rownum;
  for (auto& r : input.value()) {
    if (static_cast<int64_t>(out.size()) >= node.limit) break;
    CBQT_RETURN_IF_ERROR(CountRow());
    if (!node.filter.empty()) {
      ctx.rownum = static_cast<int64_t>(out.size()) + 1;
      ctx.frames.push_back(Frame{&in_schema, &r});
      auto pass = EvalConjuncts(node.filter, ctx);
      ctx.frames.pop_back();
      if (!pass.ok()) return pass.status();
      if (!IsTruthy(pass.value())) continue;
    }
    out.push_back(std::move(r));
  }
  ctx.rownum = saved_rownum;
  return out;
}

Result<std::vector<Row>> Executor::RunWindow(const PlanNode& node,
                                             EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  const Schema& in_schema = node.children[0]->output;
  size_t n = input->size();
  // Result columns for each window expression, indexed by input row.
  std::vector<std::vector<Value>> win_cols(
      node.window_exprs.size(), std::vector<Value>(n, Value::Null()));

  for (size_t w = 0; w < node.window_exprs.size(); ++w) {
    const Expr& win = *node.window_exprs[w];
    // Partition rows.
    std::unordered_map<Row, std::vector<size_t>, RowHasher, RowEq> parts;
    for (size_t i = 0; i < n; ++i) {
      CBQT_RETURN_IF_ERROR(CountRow());
      ctx.frames.push_back(Frame{&in_schema, &(*input)[i]});
      Row key;
      for (const auto& p : win.partition_by) {
        auto v = EvalExpr(*p, ctx);
        if (!v.ok()) {
          ctx.frames.pop_back();
          return v.status();
        }
        key.push_back(std::move(v.value()));
      }
      ctx.frames.pop_back();
      parts[std::move(key)].push_back(i);
    }
    for (auto& [key, indices] : parts) {
      // Sort the partition by the window ORDER BY keys.
      std::vector<Row> order_keys(indices.size());
      for (size_t k = 0; k < indices.size(); ++k) {
        ctx.frames.push_back(Frame{&in_schema, &(*input)[indices[k]]});
        for (const auto& o : win.win_order_by) {
          auto v = EvalExpr(*o, ctx);
          if (!v.ok()) {
            ctx.frames.pop_back();
            return v.status();
          }
          order_keys[k].push_back(std::move(v.value()));
        }
        ctx.frames.pop_back();
      }
      std::vector<size_t> perm(indices.size());
      for (size_t k = 0; k < perm.size(); ++k) perm[k] = k;
      std::vector<bool> asc(win.win_order_by.size(), true);
      std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
        return SortRowLess(order_keys[a], order_keys[b], asc);
      });
      // Running aggregate, RANGE UNBOUNDED PRECEDING .. CURRENT ROW:
      // peers (equal order keys) share the cumulative value at the end of
      // their peer group.
      AggAccum accum;
      Expr agg_proxy;
      agg_proxy.kind = ExprKind::kAggregate;
      agg_proxy.agg = win.win_func;
      size_t g = 0;
      while (g < perm.size()) {
        size_t g_end = g;
        while (g_end < perm.size() &&
               RowsEqualStructural(order_keys[perm[g]],
                                   order_keys[perm[g_end]])) {
          ++g_end;
        }
        for (size_t k = g; k < g_end; ++k) {
          size_t row_idx = indices[perm[k]];
          Value v = Value::Null();
          if (win.win_func != AggFunc::kCountStar) {
            ctx.frames.push_back(Frame{&in_schema, &(*input)[row_idx]});
            auto r = EvalExpr(*win.children[0], ctx);
            ctx.frames.pop_back();
            if (!r.ok()) return r.status();
            v = std::move(r.value());
          }
          accum.Add(v, agg_proxy);
        }
        Value result = accum.Finish(agg_proxy);
        for (size_t k = g; k < g_end; ++k) {
          win_cols[w][indices[perm[k]]] = result;
        }
        g = g_end;
      }
    }
  }
  std::vector<Row> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row r = std::move((*input)[i]);
    for (size_t w = 0; w < node.window_exprs.size(); ++w) {
      r.push_back(win_cols[w][i]);
    }
    out.push_back(std::move(r));
  }
  return out;
}

namespace {

/// TIS subquery resolver with per-correlation-key result caching.
class CachingSubqueryResolver : public SubqueryResolver {
 public:
  CachingSubqueryResolver(const PlanNode& node, EvalContext& ctx,
                          ExecStats* stats)
      : node_(node), ctx_(ctx), stats_(stats) {
    std::vector<const Expr*> subs;
    for (const auto& f : node.filter) CollectSubqueryNodesExec(f.get(), &subs);
    for (size_t i = 0; i < subs.size() && i < node.subplans.size(); ++i) {
      index_[subs[i]] = i;
    }
    caches_.resize(node.subplans.size());
  }

  Result<SubqueryResultView> Resolve(const Expr* subquery_node) override {
    auto it = index_.find(subquery_node);
    if (it == index_.end()) {
      return Status::Internal("subquery node has no planned subplan");
    }
    size_t i = it->second;
    Row key;
    for (const auto& k : node_.subplan_corr_keys[i]) {
      auto v = EvalExpr(*k, ctx_);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v.value()));
    }
    auto& cache = caches_[i];
    auto hit = cache.find(key);
    if (hit != cache.end()) {
      ++stats_->subquery_cache_hits;
      return MakeView(hit->second);
    }
    ++stats_->subquery_executions;
    // Execute the subplan under the *current* context so correlated refs
    // resolve against the outer row.
    auto rows = RunSubplan(*node_.subplans[i]);
    if (!rows.ok()) return rows.status();
    if (charge_fn) {
      // Materialized subquery results persist for the whole operator (TIS
      // caching); charge them against the per-query memory tracker.
      for (const Row& r : rows.value()) {
        Status charged = charge_fn(r);
        if (!charged.ok()) return charged;
      }
    }
    auto [pos, inserted] = cache.emplace(std::move(key), CachedResult{});
    (void)inserted;
    pos->second.rows = std::move(rows.value());
    return MakeView(pos->second);
  }

  /// Set by RunSubqueryFilter: executes a plan under the current context.
  std::function<Result<std::vector<Row>>(const PlanNode&)> run_fn;
  /// Optional memory-accounting hook for cached subquery result rows.
  std::function<Status(const Row&)> charge_fn;

 private:
  Result<std::vector<Row>> RunSubplan(const PlanNode& plan) {
    return run_fn(plan);
  }

  struct CachedResult {
    std::vector<Row> rows;
    std::unique_ptr<std::unordered_set<Row, RowHasher, RowEq>> row_set;
    bool has_null = false;
  };

  // Builds (and lazily indexes) the view handed to the evaluator. The hash
  // index makes IN / NOT IN probes O(1) instead of a scan of the cached
  // result per outer row.
  static SubqueryResultView MakeView(CachedResult& cached) {
    if (cached.row_set == nullptr) {
      cached.row_set =
          std::make_unique<std::unordered_set<Row, RowHasher, RowEq>>();
      for (const Row& r : cached.rows) {
        bool null_in_row = false;
        for (const Value& v : r) {
          if (v.is_null()) null_in_row = true;
        }
        if (null_in_row) cached.has_null = true;
        cached.row_set->insert(r);
      }
    }
    SubqueryResultView view;
    view.rows = &cached.rows;
    view.row_set = cached.row_set.get();
    view.has_null = cached.has_null;
    return view;
  }

  const PlanNode& node_;
  EvalContext& ctx_;
  ExecStats* stats_;
  std::map<const Expr*, size_t> index_;
  std::vector<std::unordered_map<Row, CachedResult, RowHasher, RowEq>>
      caches_;
};

}  // namespace

Result<std::vector<Row>> Executor::RunSubqueryFilter(const PlanNode& node,
                                                     EvalContext& ctx) {
  auto input = Run(*node.children[0], ctx);
  if (!input.ok()) return input.status();
  const Schema& in_schema = node.children[0]->output;

  CachingSubqueryResolver resolver(node, ctx, stats_);
  resolver.run_fn = [this, &ctx](const PlanNode& plan) {
    return this->Run(plan, ctx);
  };
  ScopedReservation subq_mem = BufferReservation();
  if (charge_memory()) {
    resolver.charge_fn = [this, &subq_mem](const Row& r) {
      return this->ChargeBufferedRow(subq_mem, r);
    };
  }

  SubqueryResolver* saved = ctx.subquery_resolver;
  std::vector<Row> out;
  for (auto& r : input.value()) {
    CBQT_RETURN_IF_ERROR(CountRow());
    ctx.frames.push_back(Frame{&in_schema, &r});
    ctx.subquery_resolver = &resolver;
    auto pass = EvalConjuncts(node.filter, ctx);
    ctx.subquery_resolver = saved;
    ctx.frames.pop_back();
    if (!pass.ok()) return pass.status();
    if (IsTruthy(pass.value())) out.push_back(std::move(r));
  }
  return out;
}

}  // namespace cbqt
