#include "exec/executor.h"

#include <limits>
#include <utility>

#include "exec/operators.h"
#include "exec/prune.h"

namespace cbqt {

Result<ExecResult> Executor::Execute(const PlanNode& plan) {
  // The context must outlive the operator tree (operators release
  // reservations and drop spill files against it in their destructors), so
  // it is declared first.
  ExecContext ctx;
  ctx.db = &db_;
  ctx.budget = options_.budget;
  ctx.guards = options_.guards;
  ctx.has_guards = options_.guards.any();
  if (options_.budget != nullptr &&
      options_.budget->budget().max_exec_rows > 0) {
    ctx.row_cap = options_.budget->budget().max_exec_rows;
  }
  ctx.batch_size = options_.batch_size == 0 ? 1 : options_.batch_size;
  ctx.enable_spill = options_.enable_spill;
  ctx.spill_dir = options_.spill_dir;
  ctx.shared_scans = options_.shared_scans;

  // Column pruning mutates scan schemas, so it runs on a private clone; the
  // clone must outlive the operator tree, which holds pointers into it.
  std::unique_ptr<PlanNode> pruned = plan.Clone();
  PruneScanColumns(pruned.get());

  auto root = OperatorFactory::Build(*pruned, &ctx);
  if (!root.ok()) return root.status();
  auto rows = DrainOperator(root.value().get());
  if (!rows.ok()) return rows.status();

  ExecResult out;
  out.rows = std::move(rows.value());
  if (options_.collect_stats) out.stats = ctx.stats;
  return out;
}

}  // namespace cbqt
