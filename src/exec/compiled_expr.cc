#include "exec/compiled_expr.h"

namespace cbqt {

CompiledExpr CompiledExpr::Compile(const Expr* e, const Schema* schema) {
  CompiledExpr c;
  c.expr_ = e;
  c.nodes_.reserve(8);
  int root = c.CompileNode(*e, *schema);
  c.fast_ = root >= 0;
  c.root_ = root;
  if (!c.fast_) {
    c.nodes_.clear();
    c.children_.clear();
  }
  return c;
}

int CompiledExpr::CompileNode(const Expr& e, const Schema& schema) {
  switch (e.kind) {
    case ExprKind::kLiteral: {
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = Op::kConst;
      nodes_[idx].constant = e.literal;
      return idx;
    }
    case ExprKind::kColumnRef: {
      int slot = FindSlot(schema, e.table_alias, e.column_name);
      if (slot < 0) return -1;  // resolves through an outer frame
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = Op::kSlot;
      nodes_[idx].slot = slot;
      return idx;
    }
    case ExprKind::kRownum: {
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = Op::kRownum;
      return idx;
    }
    case ExprKind::kBinary: {
      Op op;
      if (e.bop == BinaryOp::kAnd) {
        op = Op::kAnd;
      } else if (e.bop == BinaryOp::kOr) {
        op = Op::kOr;
      } else if (e.bop == BinaryOp::kNullSafeEq) {
        op = Op::kNullSafeEq;
      } else if (IsComparisonOp(e.bop)) {
        op = Op::kCmp;
      } else {
        op = Op::kArith;
      }
      int l = CompileNode(*e.children[0], schema);
      if (l < 0) return -1;
      int r = CompileNode(*e.children[1], schema);
      if (r < 0) return -1;
      int cb = static_cast<int>(children_.size());
      children_.push_back(l);
      children_.push_back(r);
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = op;
      nodes_[idx].bop = e.bop;
      nodes_[idx].child_begin = cb;
      nodes_[idx].child_count = 2;
      return idx;
    }
    case ExprKind::kUnary: {
      Op op;
      switch (e.uop) {
        case UnaryOp::kNot:
          op = Op::kNot;
          break;
        case UnaryOp::kNeg:
          op = Op::kNeg;
          break;
        case UnaryOp::kIsNull:
          op = Op::kIsNull;
          break;
        case UnaryOp::kIsNotNull:
          op = Op::kIsNotNull;
          break;
        case UnaryOp::kLnnvl:
          op = Op::kLnnvl;
          break;
      }
      int c = CompileNode(*e.children[0], schema);
      if (c < 0) return -1;
      int cb = static_cast<int>(children_.size());
      children_.push_back(c);
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = op;
      nodes_[idx].child_begin = cb;
      nodes_[idx].child_count = 1;
      return idx;
    }
    case ExprKind::kCase: {
      std::vector<int> kids;
      kids.reserve(e.children.size());
      for (const auto& c : e.children) {
        int k = CompileNode(*c, schema);
        if (k < 0) return -1;
        kids.push_back(k);
      }
      int cb = static_cast<int>(children_.size());
      for (int k : kids) children_.push_back(k);
      int idx = static_cast<int>(nodes_.size());
      nodes_.push_back(Node{});
      nodes_[idx].op = Op::kCase;
      nodes_[idx].child_begin = cb;
      nodes_[idx].child_count = static_cast<int>(kids.size());
      return idx;
    }
    case ExprKind::kFuncCall:
    case ExprKind::kSubquery:
    case ExprKind::kAggregate:
    case ExprKind::kWindow:
      return -1;
  }
  return -1;
}

// Mirrors EvalExpr's semantics exactly for the compiled subset; any change
// here must track exec/eval.cc (the oracle-equivalence tests in
// test_batch_executor compare the two paths row for row).
Value CompiledExpr::EvalNode(int idx, const Row& row, int64_t rownum) const {
  const Node& n = nodes_[idx];
  switch (n.op) {
    case Op::kConst:
      return n.constant;
    case Op::kSlot:
      return row[static_cast<size_t>(n.slot)];
    case Op::kRownum:
      return Value::Int(rownum);
    case Op::kCmp: {
      Value l = EvalNode(children_[n.child_begin], row, rownum);
      Value r = EvalNode(children_[n.child_begin + 1], row, rownum);
      return EvalCompareOp(l, r, n.bop);
    }
    case Op::kArith: {
      Value l = EvalNode(children_[n.child_begin], row, rownum);
      Value r = EvalNode(children_[n.child_begin + 1], row, rownum);
      return EvalArithOp(l, r, n.bop);
    }
    case Op::kNullSafeEq: {
      Value l = EvalNode(children_[n.child_begin], row, rownum);
      Value r = EvalNode(children_[n.child_begin + 1], row, rownum);
      return Value::Boolean(NullSafeEqual(l, r));
    }
    case Op::kAnd: {
      Value l = EvalNode(children_[n.child_begin], row, rownum);
      if (!l.is_null() && l.kind() == ValueKind::kBool && !l.AsBool()) {
        return Value::Boolean(false);  // short circuit
      }
      Value r = EvalNode(children_[n.child_begin + 1], row, rownum);
      bool l_known = !l.is_null();
      bool r_known = !r.is_null();
      if (r_known && !r.AsBool()) return Value::Boolean(false);
      if (l_known && r_known) return Value::Boolean(l.AsBool() && r.AsBool());
      return Value::Null();
    }
    case Op::kOr: {
      Value l = EvalNode(children_[n.child_begin], row, rownum);
      if (!l.is_null() && l.kind() == ValueKind::kBool && l.AsBool()) {
        return Value::Boolean(true);  // short circuit
      }
      Value r = EvalNode(children_[n.child_begin + 1], row, rownum);
      bool l_known = !l.is_null();
      bool r_known = !r.is_null();
      if (r_known && r.AsBool()) return Value::Boolean(true);
      if (l_known && r_known) return Value::Boolean(l.AsBool() || r.AsBool());
      return Value::Null();
    }
    case Op::kNot: {
      Value v = EvalNode(children_[n.child_begin], row, rownum);
      if (v.is_null()) return Value::Null();
      return Value::Boolean(!v.AsBool());
    }
    case Op::kNeg: {
      Value v = EvalNode(children_[n.child_begin], row, rownum);
      if (v.is_null()) return Value::Null();
      if (v.kind() == ValueKind::kInt64) return Value::Int(-v.AsInt());
      return Value::Real(-v.NumericValue());
    }
    case Op::kIsNull: {
      Value v = EvalNode(children_[n.child_begin], row, rownum);
      return Value::Boolean(v.is_null());
    }
    case Op::kIsNotNull: {
      Value v = EvalNode(children_[n.child_begin], row, rownum);
      return Value::Boolean(!v.is_null());
    }
    case Op::kLnnvl: {
      Value v = EvalNode(children_[n.child_begin], row, rownum);
      return Value::Boolean(!IsTruthy(v));
    }
    case Op::kCase: {
      int i = 0;
      while (i + 1 < n.child_count) {
        Value cond = EvalNode(children_[n.child_begin + i], row, rownum);
        if (IsTruthy(cond)) {
          return EvalNode(children_[n.child_begin + i + 1], row, rownum);
        }
        i += 2;
      }
      if (i < n.child_count) {
        return EvalNode(children_[n.child_begin + i], row, rownum);
      }
      return Value::Null();
    }
  }
  return Value::Null();
}

std::vector<CompiledExpr> CompileExprList(const std::vector<ExprPtr>& exprs,
                                          const Schema* schema) {
  std::vector<CompiledExpr> out;
  out.reserve(exprs.size());
  for (const auto& e : exprs) out.push_back(CompiledExpr::Compile(e.get(), schema));
  return out;
}

Result<Value> EvalCompiledConjuncts(const std::vector<CompiledExpr>& preds,
                                    const Row& row, EvalContext& ctx) {
  bool unknown = false;
  for (const auto& p : preds) {
    Value v;
    if (p.fast()) {
      v = p.EvalFast(row, ctx.rownum);
    } else {
      auto r = p.EvalSlow(ctx);
      if (!r.ok()) return r.status();
      v = std::move(r.value());
    }
    if (v.is_null()) {
      unknown = true;
      continue;
    }
    if (!v.AsBool()) return Value::Boolean(false);
  }
  if (unknown) return Value::Null();
  return Value::Boolean(true);
}

Status EvalCompiledList(const std::vector<CompiledExpr>& exprs, const Row& row,
                        EvalContext& ctx, Row* out, bool* has_null) {
  out->clear();
  if (has_null != nullptr) *has_null = false;
  for (const auto& e : exprs) {
    Value v;
    if (e.fast()) {
      v = e.EvalFast(row, ctx.rownum);
    } else {
      auto r = e.EvalSlow(ctx);
      if (!r.ok()) return r.status();
      v = std::move(r.value());
    }
    if (has_null != nullptr && v.is_null()) *has_null = true;
    out->push_back(std::move(v));
  }
  return Status::OK();
}

}  // namespace cbqt
