#ifndef CBQT_EXEC_SHARED_SCAN_H_
#define CBQT_EXEC_SHARED_SCAN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "exec/batch.h"
#include "exec/operators.h"
#include "optimizer/plan.h"

namespace cbqt {

/// Multi-query shared scans and shared materialized intermediates
/// (exec side of the MQO layer, cbqt/mqo.h).
///
/// When several concurrently admitted queries scan the same table under the
/// same pushed predicate — or compute the same single-table intermediate
/// (filter / project / sort / distinct / aggregate chain) — only one of
/// them runs the work. The first execution to open such an operator becomes
/// the *producer*: it runs the wrapped operator normally and appends every
/// produced batch to a keyed SharedStream. Every later execution becomes a
/// *consumer* and drains the stream's buffer instead of re-scanning.
///
/// Invariants the implementation maintains:
///   - Row identity: a consumer observes exactly the rows (values and
///     order) its private execution would have produced. Eligibility
///     (ShareableScanKey / ShareableMaterializeKey) admits only
///     deterministic, correlation-free, ROWNUM-free, subquery-free
///     subtrees, so the producer's stream *is* the consumer's stream.
///   - Never block on yourself: a consumer never waits on a stream whose
///     producer lives in the same execution (an in-plan self-join), nor on
///     any stream while its own execution holds an unfinished producer
///     role elsewhere (two queries could otherwise wait on each other).
///     Both cases degrade to private execution immediately.
///   - Bounded waiting: a consumer waits for the producer in short slices,
///     polling its own cancellation guardrail between slices, and gives up
///     after the hub's wait budget — falling back to a private scan that
///     skips the rows already served (scans are deterministic, so skip-N
///     resumes bit-identically).
///   - Graceful degradation: the stream buffer is charged to the hub's
///     MemoryTracker; when a reservation fails the stream is marked
///     degraded, consumers finish the already-buffered prefix and continue
///     privately, and the producer keeps running unbuffered.
///   - Independent cancellation: consumers poll their own guardrails and
///     fail individually; a cancelled consumer detaches without touching
///     the producer or the other consumers.
struct SharedScanStats {
  std::atomic<int64_t> scan_streams{0};         ///< producer streams (base scans)
  std::atomic<int64_t> materialize_streams{0};  ///< producer streams (intermediates)
  std::atomic<int64_t> consumers{0};            ///< consumer attachments
  std::atomic<int64_t> replays{0};              ///< rescans served from a
                                                ///< completed stream
  std::atomic<int64_t> rows_shared{0};          ///< rows served from buffers
  std::atomic<int64_t> bytes_saved{0};          ///< estimated bytes of those rows
  std::atomic<int64_t> pressure_fallbacks{0};   ///< streams degraded by memory
  std::atomic<int64_t> wait_fallbacks{0};       ///< consumers that timed out
  std::atomic<int64_t> private_fallbacks{0};    ///< deadlock-avoid / degraded-
                                                ///< stream fallbacks
};

/// One keyed producer→consumers row buffer. Thread-safe; created and
/// retired by the SharedScanHub, drained by SharedScanOperator.
class SharedStream {
 public:
  SharedStream(std::string key, const void* producer, MemoryTracker* tracker)
      : key_(std::move(key)), producer_(producer), tracker_(tracker) {}
  ~SharedStream();

  SharedStream(const SharedStream&) = delete;
  SharedStream& operator=(const SharedStream&) = delete;

  /// What a consumer Read() observed past the buffered rows.
  enum class ReadState {
    kRows,      ///< `out` holds served rows
    kEnd,       ///< buffer drained and the stream completed intact
    kPending,   ///< producer still running — wait or fall back
    kDegraded,  ///< stream degraded — finish privately with skip
  };

  /// Producer: buffers a copy of `batch`, charging its estimated bytes.
  /// Returns false once the stream is degraded (charge failure or retire);
  /// the already-buffered prefix stays valid for consumers.
  bool Append(const RowBatch& batch);
  void MarkComplete();
  void MarkDegraded();

  /// Consumer: copies up to `max` rows starting at `*cursor` into `out`
  /// (cleared first), advancing the cursor; `*bytes` gets their estimated
  /// size. Buffered rows are served even on a degraded stream — the prefix
  /// is identical to private execution.
  ReadState Read(size_t* cursor, size_t max, RowBatch* out, int64_t* bytes);

  /// Consumer: sleeps up to `timeout_ms` for rows past `cursor` (or a
  /// terminal state). Returns true when there is something new to observe.
  bool WaitForMore(size_t cursor, int64_t timeout_ms);

  bool IsCompleteIntact() const;
  bool IsDegraded() const;
  const void* producer() const { return producer_; }
  const std::string& key() const { return key_; }

 private:
  friend class SharedScanHub;

  const std::string key_;
  const void* const producer_;
  MemoryTracker* const tracker_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Row> rows_;
  bool complete_ = false;
  bool degraded_ = false;
  int64_t reserved_ = 0;

  /// Guarded by the hub's mutex, not mu_.
  int attached_ = 0;
};

/// The per-engine registry of live shared streams. One hub per
/// MqoRegistry; executions of the same admission batch share it through
/// ExecOptions::shared_scans.
class SharedScanHub {
 public:
  /// `buffer_limit_bytes <= 0` means unlimited buffering; `parent` chains
  /// the hub into the engine's tracker hierarchy.
  explicit SharedScanHub(int64_t buffer_limit_bytes,
                         int64_t consumer_wait_ms = 250,
                         MemoryTracker* parent = nullptr)
      : buffers_("mqo-shared-scans", buffer_limit_bytes, parent),
        consumer_wait_ms_(consumer_wait_ms) {}

  struct Acquired {
    std::shared_ptr<SharedStream> stream;  ///< null: run privately
    bool is_producer = false;
  };

  /// Joins the stream for `key`: the first caller becomes the producer (a
  /// fresh stream is registered and `owner`'s producer count is raised),
  /// later callers attach as consumers. A degraded stream is not joinable —
  /// callers get a null stream and run privately.
  Acquired Acquire(const std::string& key, const void* owner,
                   bool materialize);

  /// Drops one attachment. The last detach erases a stream that did not
  /// complete intact; completed streams stay registered (later queries of
  /// the batch replay them) until RetireAll.
  void Detach(const std::shared_ptr<SharedStream>& stream);

  /// The producer for one of `owner`'s streams finished (complete,
  /// degraded, or closed early) — drops one open-producer slot.
  void ProducerSettled(const void* owner);

  /// True while `owner` holds an unfinished producer role. Consumers owned
  /// by such an execution must not block (cross-query producer/consumer
  /// cycles would deadlock).
  bool OwnerHasOpenProducer(const void* owner) const;

  /// Ends an optimization batch: degrades every incomplete stream (waking
  /// any waiter into its private fallback) and clears the registry. Buffers
  /// stay alive while replaying operators still hold their shared_ptr.
  void RetireAll();

  SharedScanStats& stats() { return stats_; }
  const SharedScanStats& stats() const { return stats_; }
  MemoryTracker* tracker() { return &buffers_; }
  int64_t consumer_wait_ms() const { return consumer_wait_ms_; }
  size_t live_streams() const;

 private:
  MemoryTracker buffers_;
  const int64_t consumer_wait_ms_;
  SharedScanStats stats_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<SharedStream>> streams_;
  std::unordered_map<const void*, int> open_producers_;
};

/// The SharedScan / SharedMaterialize operator: wraps the ordinary operator
/// for an eligible subtree and routes its stream through the hub. The same
/// class implements both roles — `materialize` only selects the stats
/// bucket; OperatorFactory::Build wraps base scans (ShareableScanKey) and
/// single-table intermediate chains (ShareableMaterializeKey).
class SharedScanOperator final : public Operator {
 public:
  SharedScanOperator(ExecContext* ctx, const PlanNode* node,
                     SharedScanHub* hub, std::string key,
                     std::unique_ptr<Operator> inner, bool materialize)
      : Operator(ctx, node),
        hub_(hub),
        key_(std::move(key)),
        inner_(std::move(inner)),
        materialize_(materialize) {}

  Status Open() override;
  Result<bool> NextBatch(RowBatch* out) override;
  void Close() override;

 private:
  enum class Mode { kUnopened, kProducer, kConsumer, kReplay, kPrivate };

  Status OpenInner();
  /// Leaves the stream (degrading an unfinished producer role) and
  /// re-enters as a private scan that drops the first `skip` output rows.
  Status GoPrivate(size_t skip);
  void SettleProducer();
  Result<bool> ProducerNext(RowBatch* out);
  Result<bool> ConsumerNext(RowBatch* out);
  Result<bool> PrivateNext(RowBatch* out);

  SharedScanHub* const hub_;
  const std::string key_;
  std::unique_ptr<Operator> inner_;
  const bool materialize_;

  std::shared_ptr<SharedStream> stream_;
  Mode mode_ = Mode::kUnopened;
  size_t cursor_ = 0;  ///< rows consumed from the stream buffer
  size_t skip_ = 0;    ///< private mode: output rows still to drop
  bool producer_open_ = false;
  bool inner_opened_ = false;
  bool opened_once_ = false;
  bool append_failed_ = false;
};

/// Sharing key for a base-table scan, or "" when the scan is not
/// shareable. Eligible: kTableScan without index probes whose every pushed
/// filter is self-contained on the scan's alias (sql/signature.h). The key
/// normalizes the alias away and canonicalizes the predicate, so the same
/// table + predicate under different aliases or conjunct orders collides.
std::string ShareableScanKey(const PlanNode& node);

/// Sharing key for a single-table intermediate — a chain of
/// filter / project / sort / distinct / aggregate nodes over one eligible
/// base scan — or "" when not shareable. All expressions in the chain must
/// be self-contained on the leaf scan's alias.
std::string ShareableMaterializeKey(const PlanNode& node);

}  // namespace cbqt

#endif  // CBQT_EXEC_SHARED_SCAN_H_
