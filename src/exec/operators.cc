#include "exec/operators.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/fault_injector.h"
#include "exec/compiled_expr.h"
#include "exec/shared_scan.h"

namespace cbqt {

// ---------------------------------------------------------------------------
// ExecContext
// ---------------------------------------------------------------------------

Status ExecContext::CountBatch(int64_t n) {
  if (n <= 0) return Status::OK();
  ++stats.batches;
  stats.rows_processed += n;
  if (stats.rows_processed > row_cap) {
    budget->MarkExhausted(BudgetDimension::kExecRows);
    return Status::BudgetExhausted(
        "executor row budget exceeded (max_exec_rows=" +
        std::to_string(budget->budget().max_exec_rows) + ")");
  }
  if (has_guards) {
    if (guards.faults != nullptr) {
      CBQT_RETURN_IF_ERROR(guards.faults->MaybeFail(FaultSite::kExecBatch));
    }
    return guards.Poll();
  }
  return Status::OK();
}

Status ExecContext::ChargeBuffered(ScopedReservation& res, int64_t bytes) {
  if (guards.faults != nullptr) {
    CBQT_RETURN_IF_ERROR(guards.faults->MaybeFail(FaultSite::kExecSpillCheck));
    if (guards.faults->MaybeFire(FaultSite::kMemoryPressure)) {
      return Status::ResourceExhausted(
          "injected memory pressure (executor pipeline breaker)");
    }
  }
  return res.Grow(bytes);
}

Result<SpillManager*> ExecContext::GetSpill() {
  if (spill_mgr_ == nullptr) {
    auto m = SpillManager::Create(spill_dir, guards.faults, &stats.spill);
    if (!m.ok()) return m.status();
    spill_mgr_ = std::move(m.value());
  }
  return spill_mgr_.get();
}

namespace {

using RowMap = std::unordered_map<Row, std::vector<size_t>, RowHasher, RowEq>;
using SeenMap = std::unordered_map<Row, bool, RowHasher, RowEq>;

/// Fan-out of a spilling pipeline breaker, and the recursion bound when a
/// partition itself does not fit (each level re-salts the hash, so only an
/// adversarial key set can keep colliding).
constexpr size_t kSpillPartitions = 8;
constexpr int kMaxSpillDepth = 6;

/// Poll cadence (rows) while re-reading spilled partitions: the rows were
/// already counted when first consumed, so cancellation is checked without
/// recounting (and without consuming kExecBatch fault hits).
constexpr int64_t kSpillPollMask = 0xFF;

size_t PartitionOfKey(const Row& key, int salt) {
  uint64_t h = static_cast<uint64_t>(HashRow(key));
  h ^= 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(salt + 1);
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h % kSpillPartitions);
}

// Mirrors the planner's subquery traversal order (pre-order, not descending
// into nested subquery blocks).
void CollectSubqueryNodesExec(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kSubquery) {
    out->push_back(e);
    return;
  }
  for (const auto& c : e->children) CollectSubqueryNodesExec(c.get(), out);
  for (const auto& c : e->partition_by) CollectSubqueryNodesExec(c.get(), out);
  for (const auto& c : e->win_order_by) CollectSubqueryNodesExec(c.get(), out);
}

struct AggAccum {
  double sum = 0;
  int64_t count = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  std::unordered_map<Row, bool, RowHasher, RowEq> distinct;

  void Add(const Value& v, const Expr& agg) {
    if (agg.agg == AggFunc::kCountStar) {
      ++count;
      return;
    }
    if (v.is_null()) return;
    if (agg.agg_distinct) {
      Row key{v};
      if (!distinct.emplace(std::move(key), true).second) return;
    }
    ++count;
    switch (agg.agg) {
      case AggFunc::kSum:
      case AggFunc::kAvg:
        if (v.kind() == ValueKind::kInt64 && sum_is_int) {
          isum += v.AsInt();
        } else {
          if (sum_is_int) {
            sum = static_cast<double>(isum);
            sum_is_int = false;
          }
          sum += v.NumericValue();
        }
        break;
      case AggFunc::kMin:
        if (min.is_null() || TotalLess(v, min)) min = v;
        break;
      case AggFunc::kMax:
        if (max.is_null() || TotalLess(max, v)) max = v;
        break;
      default:
        break;
    }
  }

  Value Finish(const Expr& agg) const {
    switch (agg.agg) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        return Value::Int(count);
      case AggFunc::kSum:
        if (count == 0) return Value::Null();
        return sum_is_int ? Value::Int(isum) : Value::Real(sum);
      case AggFunc::kAvg: {
        if (count == 0) return Value::Null();
        double total = sum_is_int ? static_cast<double>(isum) : sum;
        return Value::Real(total / static_cast<double>(count));
      }
      case AggFunc::kMin:
        return min;
      case AggFunc::kMax:
        return max;
    }
    return Value::Null();
  }
};

bool SortRowLess(const Row& a, const Row& b, const std::vector<bool>& asc,
                 size_t num_keys) {
  for (size_t i = 0; i < num_keys; ++i) {
    bool ascending = i < asc.size() ? asc[i] : true;
    const Value& x = a[i];
    const Value& y = b[i];
    // Oracle default: NULLS LAST ascending, NULLS FIRST descending.
    if (x.is_null() && y.is_null()) continue;
    if (x.is_null()) return !ascending;
    if (y.is_null()) return ascending;
    Ordering ord = CompareValues(x, y);
    if (ord == Ordering::kEqual || ord == Ordering::kUnknown) continue;
    bool less = ord == Ordering::kLess;
    return ascending ? less : !less;
  }
  return false;
}

bool SortRowLess(const Row& a, const Row& b, const std::vector<bool>& asc) {
  return SortRowLess(a, b, asc, a.size());
}

/// RAII frame push. Operators push once per batch (or per row on fallback
/// paths) and mutate the row pointer in place.
class FrameGuard {
 public:
  FrameGuard(EvalContext& ctx, const Schema* schema) : ctx_(ctx) {
    ctx_.frames.push_back(Frame{schema, nullptr});
  }
  ~FrameGuard() { ctx_.frames.pop_back(); }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

  void SetRow(const Row* row) { ctx_.frames.back().row = row; }

 private:
  EvalContext& ctx_;
};

bool AnySlow(const std::vector<CompiledExpr>& exprs) {
  for (const auto& e : exprs) {
    if (!e.fast()) return true;
  }
  return false;
}

/// Conjunct evaluation for one row. The all-fast path touches neither the
/// frame stack nor Status plumbing — this is the batch executor's hot
/// filter/join loop. The fallback pushes one frame for the row, matching
/// the tree evaluator's resolution order exactly.
Result<Value> EvalPredsOnRow(EvalContext& ev,
                             const std::vector<CompiledExpr>& preds,
                             const Row& row, const Schema* schema,
                             bool needs_frame) {
  if (!needs_frame) {
    bool unknown = false;
    for (const auto& p : preds) {
      Value v = p.EvalFast(row, ev.rownum);
      if (v.is_null()) {
        unknown = true;
        continue;
      }
      if (!v.AsBool()) return Value::Boolean(false);
    }
    if (unknown) return Value::Null();
    return Value::Boolean(true);
  }
  FrameGuard g(ev, schema);
  g.SetRow(&row);
  return EvalCompiledConjuncts(preds, row, ev);
}

/// Expression-list evaluation for one row (hash/sort/group keys,
/// projections) with the same fast/fallback split as EvalPredsOnRow.
Status EvalListOnRow(EvalContext& ev, const std::vector<CompiledExpr>& exprs,
                     const Row& row, const Schema* schema, bool needs_frame,
                     Row* out, bool* has_null = nullptr) {
  if (!needs_frame) {
    out->clear();
    if (has_null != nullptr) *has_null = false;
    for (const auto& e : exprs) {
      Value v = e.EvalFast(row, ev.rownum);
      if (has_null != nullptr && v.is_null()) *has_null = true;
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  FrameGuard g(ev, schema);
  g.SetRow(&row);
  return EvalCompiledList(exprs, row, ev, out, has_null);
}

// ---------------------------------------------------------------------------
// Scans
// ---------------------------------------------------------------------------

/// Sentinel source index for the rowid pseudo-column.
constexpr int kRowIdSrc = -1;

/// Maps each output slot of a scan to its column index in the stored table
/// (or kRowIdSrc for the rowid pseudo-column). Column pruning may have
/// narrowed the scan's output to a subset of the table's columns, so the
/// mapping is by name, mirroring how the planner built the schema.
Status MapScanSlots(const Schema& output, const TableDef& def,
                    std::vector<int>* src_slots) {
  src_slots->clear();
  src_slots->reserve(output.size());
  for (const auto& slot : output) {
    int idx = def.FindColumn(slot.name);
    if (idx < 0 && slot.name == "rowid") idx = kRowIdSrc;
    if (idx < 0 && slot.name != "rowid") {
      return Status::Internal("scan output column missing from table " +
                              def.name + ": " + slot.name);
    }
    src_slots->push_back(idx);
  }
  return Status::OK();
}

/// Copies only the mapped slots out of a stored row — the batch executor's
/// late materialization: unreferenced (typically wide string) columns never
/// leave the table.
Row MaterializeScanRow(const Row& src, const std::vector<int>& src_slots,
                       int64_t rowid) {
  Row r;
  r.reserve(src_slots.size());
  for (int s : src_slots) {
    if (s == kRowIdSrc) {
      r.push_back(Value::Int(rowid));
    } else {
      r.push_back(src[static_cast<size_t>(s)]);
    }
  }
  return r;
}

class TableScanOperator final : public Operator {
 public:
  TableScanOperator(ExecContext* ctx, const PlanNode* node)
      : Operator(ctx, node),
        filter_(CompileExprList(node->filter, &node->output)),
        filter_needs_frame_(AnySlow(filter_)) {}

  Status Open() override {
    table_ = ctx_->db->FindTable(node_->table_name);
    if (table_ == nullptr) {
      return Status::Internal("missing table at execution: " +
                              node_->table_name);
    }
    CBQT_RETURN_IF_ERROR(
        MapScanSlots(node_->output, table_->def(), &src_slots_));
    // Try to bind the pushed filter directly to the stored row layout: when
    // every predicate compiles fast against the table's columns (no rowid,
    // no outer frames), rows that fail the filter are never materialized.
    if (!node_->filter.empty() && src_filter_.empty()) {
      src_schema_.clear();
      for (const auto& col : table_->def().columns) {
        src_schema_.push_back(
            ColumnSlot{node_->table_alias, col.name, col.type});
      }
      src_filter_ = CompileExprList(node_->filter, &src_schema_);
      filter_on_source_ = !AnySlow(src_filter_);
    }
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    const auto& rows = table_->rows();
    if (pos_ >= rows.size()) return false;
    size_t end = std::min(rows.size(), pos_ + ctx_->batch_size);
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(end - pos_)));
    if (filter_on_source_) {
      for (; pos_ < end; ++pos_) {
        auto pass = EvalPredsOnRow(ctx_->eval, src_filter_, rows[pos_],
                                   &src_schema_, false);
        if (!pass.ok()) return pass.status();
        if (!IsTruthy(pass.value())) continue;
        out->Add(MaterializeScanRow(rows[pos_], src_slots_,
                                    static_cast<int64_t>(pos_)));
      }
      return true;
    }
    for (; pos_ < end; ++pos_) {
      Row r = MaterializeScanRow(rows[pos_], src_slots_,
                                 static_cast<int64_t>(pos_));
      if (!filter_.empty()) {
        auto pass = EvalPredsOnRow(ctx_->eval, filter_, r, &node_->output,
                                   filter_needs_frame_);
        if (!pass.ok()) return pass.status();
        if (!IsTruthy(pass.value())) continue;
      }
      out->Add(std::move(r));
    }
    return true;
  }

 private:
  std::vector<CompiledExpr> filter_;
  bool filter_needs_frame_;
  std::vector<CompiledExpr> src_filter_;
  Schema src_schema_;
  bool filter_on_source_ = false;
  const Table* table_ = nullptr;
  std::vector<int> src_slots_;
  size_t pos_ = 0;
};

class IndexScanOperator final : public Operator {
 public:
  IndexScanOperator(ExecContext* ctx, const PlanNode* node)
      : Operator(ctx, node),
        filter_(CompileExprList(node->filter, &node->output)),
        filter_needs_frame_(AnySlow(filter_)) {}

  Status Open() override {
    table_ = ctx_->db->FindTable(node_->table_name);
    const Index* index = ctx_->db->FindIndex(node_->table_name,
                                             node_->index_name);
    if (table_ == nullptr || index == nullptr) {
      return Status::Internal("missing table/index at execution: " +
                              node_->table_name + "/" + node_->index_name);
    }
    CBQT_RETURN_IF_ERROR(
        MapScanSlots(node_->output, table_->def(), &src_slots_));
    // Probe values resolve through the *enclosing* frames (a rescanning
    // nested-loop join re-Opens this operator once per outer row with the
    // outer frame pushed), so they go through the tree evaluator.
    Row key;
    key.reserve(node_->probes.size());
    for (const auto& p : node_->probes) {
      auto v = EvalExpr(*p, ctx_->eval);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v.value()));
    }
    rowids_ = index->LookupEqual(key);
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    if (pos_ >= rowids_.size()) return false;
    size_t end = std::min(rowids_.size(), pos_ + ctx_->batch_size);
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(end - pos_)));
    for (; pos_ < end; ++pos_) {
      int64_t rowid = rowids_[pos_];
      Row r = MaterializeScanRow(table_->rows()[static_cast<size_t>(rowid)],
                                 src_slots_, rowid);
      if (!filter_.empty()) {
        auto pass = EvalPredsOnRow(ctx_->eval, filter_, r, &node_->output,
                                   filter_needs_frame_);
        if (!pass.ok()) return pass.status();
        if (!IsTruthy(pass.value())) continue;
      }
      out->Add(std::move(r));
    }
    return true;
  }

 private:
  std::vector<CompiledExpr> filter_;
  bool filter_needs_frame_;
  const Table* table_ = nullptr;
  std::vector<int64_t> rowids_;
  std::vector<int> src_slots_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Filter / Project
// ---------------------------------------------------------------------------

class FilterOperator final : public Operator {
 public:
  FilterOperator(ExecContext* ctx, const PlanNode* node,
                 std::unique_ptr<Operator> child)
      : Operator(ctx, node),
        child_(std::move(child)),
        filter_(CompileExprList(node->filter, &node->output)),
        filter_needs_frame_(AnySlow(filter_)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    auto more = child_->NextBatch(&in_);
    if (!more.ok()) return more.status();
    if (!more.value()) return false;
    if (in_.empty()) return true;
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(in_.size())));
    for (auto& r : in_.rows()) {
      auto pass = EvalPredsOnRow(ctx_->eval, filter_, r, &node_->output,
                                 filter_needs_frame_);
      if (!pass.ok()) return pass.status();
      if (IsTruthy(pass.value())) out->Add(std::move(r));
    }
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<CompiledExpr> filter_;
  bool filter_needs_frame_;
  RowBatch in_;
};

class ProjectOperator final : public Operator {
 public:
  ProjectOperator(ExecContext* ctx, const PlanNode* node,
                  std::unique_ptr<Operator> child)
      : Operator(ctx, node),
        child_(std::move(child)),
        in_schema_(node->children.empty() ? &node->output
                                          : &node->children[0]->output),
        projs_(CompileExprList(node->projections, in_schema_)),
        projs_need_frame_(AnySlow(projs_)) {}

  Status Open() override {
    row_index_ = 0;
    synthetic_done_ = false;
    if (child_ != nullptr) return child_->Open();
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    if (child_ == nullptr) {
      // No-FROM block: one synthetic empty input row.
      if (synthetic_done_) return false;
      synthetic_done_ = true;
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(1));
      Row empty;
      CBQT_RETURN_IF_ERROR(ProjectRow(empty, 1, out));
      return true;
    }
    auto more = child_->NextBatch(&in_);
    if (!more.ok()) return more.status();
    if (!more.value()) return false;
    if (in_.empty()) return true;
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(in_.size())));
    for (auto& r : in_.rows()) {
      ++row_index_;
      CBQT_RETURN_IF_ERROR(ProjectRow(r, row_index_, out));
    }
    return true;
  }

  void Close() override {
    if (child_ != nullptr) child_->Close();
  }

 private:
  Status ProjectRow(Row& in, int64_t rownum, RowBatch* out) {
    // ROWNUM scopes to this projection: set for the row, restored after
    // (the enclosing operator may maintain its own, e.g. a lazy Limit).
    int64_t saved = ctx_->eval.rownum;
    ctx_->eval.rownum = rownum;
    scratch_.clear();
    Status st = EvalListOnRow(ctx_->eval, projs_, in, in_schema_,
                              projs_need_frame_, &scratch_);
    ctx_->eval.rownum = saved;
    CBQT_RETURN_IF_ERROR(st);
    // The input row is dead once evaluated; reuse its heap buffer for the
    // output row so steady-state projection allocates nothing per row.
    in.clear();
    in.reserve(scratch_.size());
    for (auto& v : scratch_) in.push_back(std::move(v));
    out->Add(std::move(in));
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
  std::vector<CompiledExpr> projs_;
  bool projs_need_frame_;
  Row scratch_;
  RowBatch in_;
  int64_t row_index_ = 0;
  bool synthetic_done_ = false;
};

// ---------------------------------------------------------------------------
// Nested-loop join
// ---------------------------------------------------------------------------

class NestedLoopJoinOperator final : public Operator {
 public:
  NestedLoopJoinOperator(ExecContext* ctx, const PlanNode* node,
                         std::unique_ptr<Operator> left,
                         std::unique_ptr<Operator> right)
      : Operator(ctx, node),
        left_(std::move(left)),
        right_(std::move(right)),
        left_schema_(&node->children[0]->output),
        right_schema_(&node->children[1]->output) {
    combined_ = *left_schema_;
    combined_.insert(combined_.end(), right_schema_->begin(),
                     right_schema_->end());
    conds_ = CompileExprList(node->join_conds, &combined_);
    conds_need_frame_ = AnySlow(conds_);
  }

  Status Open() override {
    CBQT_RETURN_IF_ERROR(left_->Open());
    left_batch_.Clear();
    left_pos_ = 0;
    left_done_ = false;
    right_cache_.clear();
    if (!node_->rescan_right) {
      auto rows = DrainOperator(right_.get());
      if (!rows.ok()) return rows.status();
      right_cache_ = std::move(rows.value());
    }
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    while (!left_done_ && out->size() < ctx_->batch_size) {
      if (left_pos_ >= left_batch_.size()) {
        auto more = left_->NextBatch(&left_batch_);
        if (!more.ok()) return more.status();
        if (!more.value()) {
          left_done_ = true;
          break;
        }
        left_pos_ = 0;
        continue;
      }
      Row& lrow = left_batch_[left_pos_++];
      CBQT_RETURN_IF_ERROR(ProcessLeftRow(lrow, out));
    }
    if (left_done_ && out->empty()) return false;
    return true;
  }

  void Close() override {
    left_->Close();
    right_->Close();
    right_cache_.clear();
  }

 private:
  Status ProcessLeftRow(Row& lrow, RowBatch* out) {
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(1));
    const std::vector<Row>* right_rows = &right_cache_;
    std::vector<Row> per_row;
    if (node_->rescan_right) {
      // Re-run the right subtree with the outer row in scope: index probes
      // and correlated filters below re-resolve against this frame.
      FrameGuard g(ctx_->eval, left_schema_);
      g.SetRow(&lrow);
      auto rows = DrainOperator(right_.get());
      if (!rows.ok()) return rows.status();
      per_row = std::move(rows.value());
      right_rows = &per_row;
    }
    bool matched = false;
    bool unknown = false;
    int64_t examined = 0;
    for (const auto& rrow : *right_rows) {
      ++examined;
      Row comb = lrow;
      comb.insert(comb.end(), rrow.begin(), rrow.end());
      Value pass = Value::Boolean(true);
      if (!conds_.empty()) {
        auto v = EvalPredsOnRow(ctx_->eval, conds_, comb, &combined_,
                                conds_need_frame_);
        if (!v.ok()) return v.status();
        pass = std::move(v.value());
      }
      if (pass.is_null()) {
        unknown = true;
        continue;
      }
      if (!pass.AsBool()) continue;
      matched = true;
      if (node_->join_kind == JoinKind::kInner ||
          node_->join_kind == JoinKind::kLeftOuter) {
        out->Add(std::move(comb));
      }
      if (node_->join_kind == JoinKind::kSemi ||
          node_->join_kind == JoinKind::kAnti ||
          node_->join_kind == JoinKind::kAntiNA) {
        break;  // stop-at-first-match property
      }
    }
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(examined));
    switch (node_->join_kind) {
      case JoinKind::kSemi:
        if (matched) out->Add(std::move(lrow));
        break;
      case JoinKind::kAnti:
        if (!matched) out->Add(std::move(lrow));
        break;
      case JoinKind::kAntiNA:
        if (!matched && !unknown) out->Add(std::move(lrow));
        break;
      case JoinKind::kLeftOuter:
        if (!matched) {
          Row comb = std::move(lrow);
          for (size_t i = 0; i < right_schema_->size(); ++i) {
            comb.push_back(Value::Null());
          }
          out->Add(std::move(comb));
        }
        break;
      case JoinKind::kInner:
        break;
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  const Schema* left_schema_;
  const Schema* right_schema_;
  Schema combined_;
  std::vector<CompiledExpr> conds_;
  bool conds_need_frame_ = false;
  RowBatch left_batch_;
  size_t left_pos_ = 0;
  bool left_done_ = false;
  std::vector<Row> right_cache_;
};

// ---------------------------------------------------------------------------
// Hash join (Grace-partitioned spill on build-side memory pressure)
// ---------------------------------------------------------------------------

class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(ExecContext* ctx, const PlanNode* node,
                   std::unique_ptr<Operator> left,
                   std::unique_ptr<Operator> right)
      : Operator(ctx, node),
        left_(std::move(left)),
        right_(std::move(right)),
        left_schema_(&node->children[0]->output),
        right_schema_(&node->children[1]->output) {
    combined_ = *left_schema_;
    combined_.insert(combined_.end(), right_schema_->begin(),
                     right_schema_->end());
    lkeys_ = CompileExprList(node->hash_left_keys, left_schema_);
    rkeys_ = CompileExprList(node->hash_right_keys, right_schema_);
    conds_ = CompileExprList(node->join_conds, &combined_);
    lkeys_need_frame_ = AnySlow(lkeys_);
    rkeys_need_frame_ = AnySlow(rkeys_);
    conds_need_frame_ = AnySlow(conds_);
  }

  Status Open() override {
    table_.clear();
    build_rows_.clear();
    build_has_null_key_ = false;
    build_input_rows_ = 0;
    spilled_ = false;
    parts_.clear();
    pending_.clear();
    pending_pos_ = 0;
    next_part_ = 0;
    skip_parts_ = false;
    probe_batch_.Clear();
    probe_pos_ = 0;
    probe_done_ = false;
    build_mem_.emplace(ctx_->BufferReservation());

    // Build on the right. The build side is a pipeline breaker: its hash
    // table bytes are charged against the per-query memory tracker, and on
    // the first failed charge the build degrades to Grace partitioning.
    CBQT_RETURN_IF_ERROR(right_->Open());
    RowBatch b;
    for (;;) {
      auto more = right_->NextBatch(&b);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (b.empty()) continue;
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(b.size())));
      for (auto& row : b.rows()) {
        ++build_input_rows_;
        Row key;
        bool has_null = false;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, rkeys_, row,
                                           right_schema_, rkeys_need_frame_,
                                           &key, &has_null));
        if (has_null) {
          // NULL keys never equal anything; they only matter for the
          // null-aware antijoin's three-valued verdict.
          build_has_null_key_ = true;
          continue;
        }
        if (!spilled_ && ctx_->charge_memory()) {
          Status st = ctx_->ChargeBuffered(
              *build_mem_, EstimateRowBytes(key) + EstimateRowBytes(row) +
                               static_cast<int64_t>(sizeof(size_t)));
          if (!st.ok()) {
            if (!ctx_->ShouldSpill(st)) return st;
            CBQT_RETURN_IF_ERROR(BeginBuildSpill());
          }
        }
        if (spilled_) {
          CBQT_RETURN_IF_ERROR(
              parts_[PartitionOfKey(key, 0)].build->Append(row));
        } else {
          table_[std::move(key)].push_back(build_rows_.size());
          build_rows_.push_back(std::move(row));
        }
      }
    }
    right_->Close();

    CBQT_RETURN_IF_ERROR(left_->Open());
    if (spilled_) return RouteProbeSide();
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    if (spilled_) return NextSpilled(out);
    while (!probe_done_ && out->size() < ctx_->batch_size) {
      if (probe_pos_ >= probe_batch_.size()) {
        auto more = left_->NextBatch(&probe_batch_);
        if (!more.ok()) return more.status();
        if (!more.value()) {
          probe_done_ = true;
          break;
        }
        probe_pos_ = 0;
        if (!probe_batch_.empty()) {
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(probe_batch_.size())));
        }
        continue;
      }
      Row& lrow = probe_batch_[probe_pos_++];
      CBQT_RETURN_IF_ERROR(
          ProbeOne(table_, build_rows_, std::move(lrow), &out->rows()));
    }
    if (probe_done_ && out->empty()) return false;
    return true;
  }

  void Close() override {
    left_->Close();
    table_.clear();
    build_rows_.clear();
    pending_.clear();
    if (build_mem_) build_mem_->Release();
  }

 private:
  struct Part {
    SpillFile* build = nullptr;
    SpillFile* probe = nullptr;
    int64_t probe_rows = 0;
  };

  /// Probes one outer row against a (table, rows) build image and applies
  /// the join kind's emission rule. Shared by the in-memory path and the
  /// per-partition spill path; candidate rows examined are counted exactly
  /// as the row-at-a-time executor counted them.
  Status ProbeOne(const RowMap& table, const std::vector<Row>& brows,
                  Row&& lrow, std::vector<Row>* sink) {
    // probe_key_ is a reused scratch row: key evaluation allocates nothing
    // per probe row in steady state.
    bool has_null = false;
    CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, lkeys_, lrow, left_schema_,
                                       lkeys_need_frame_, &probe_key_,
                                       &has_null));
    bool matched = false;
    int64_t examined = 0;
    if (!has_null) {
      auto it = table.find(probe_key_);
      if (it != table.end()) {
        for (size_t ri : it->second) {
          ++examined;
          const Row& rrow = brows[ri];
          Row comb;
          comb.reserve(lrow.size() + rrow.size());
          comb.insert(comb.end(), lrow.begin(), lrow.end());
          comb.insert(comb.end(), rrow.begin(), rrow.end());
          if (!conds_.empty()) {
            auto pass = EvalPredsOnRow(ctx_->eval, conds_, comb, &combined_,
                                       conds_need_frame_);
            if (!pass.ok()) return pass.status();
            if (!IsTruthy(pass.value())) continue;
          }
          matched = true;
          if (node_->join_kind == JoinKind::kInner ||
              node_->join_kind == JoinKind::kLeftOuter) {
            sink->push_back(std::move(comb));
          } else {
            break;  // semi/anti: first match decides
          }
        }
      }
    }
    if (examined > 0) CBQT_RETURN_IF_ERROR(ctx_->CountBatch(examined));
    switch (node_->join_kind) {
      case JoinKind::kSemi:
        if (matched) sink->push_back(std::move(lrow));
        break;
      case JoinKind::kAnti:
        if (!matched) sink->push_back(std::move(lrow));
        break;
      case JoinKind::kAntiNA:
        // NOT IN semantics: a NULL on either side makes the comparison
        // unknown, which rejects the row (unless the right side is empty).
        if (build_input_rows_ == 0) {
          sink->push_back(std::move(lrow));
        } else if (!matched && !has_null && !build_has_null_key_) {
          sink->push_back(std::move(lrow));
        }
        break;
      case JoinKind::kLeftOuter:
        if (!matched) {
          Row comb = std::move(lrow);
          for (size_t i = 0; i < right_schema_->size(); ++i) {
            comb.push_back(Value::Null());
          }
          sink->push_back(std::move(comb));
        }
        break;
      case JoinKind::kInner:
        break;
    }
    return Status::OK();
  }

  Status BeginBuildSpill() {
    auto mgr = ctx_->GetSpill();
    if (!mgr.ok()) return mgr.status();
    parts_.resize(kSpillPartitions);
    for (auto& p : parts_) {
      auto bf = mgr.value()->NewFile("hj-build");
      if (!bf.ok()) return bf.status();
      p.build = bf.value();
      auto pf = mgr.value()->NewFile("hj-probe");
      if (!pf.ok()) return pf.status();
      p.probe = pf.value();
    }
    // Flush what was already built in memory into its partitions.
    for (const auto& [key, idxs] : table_) {
      size_t p = PartitionOfKey(key, 0);
      for (size_t i : idxs) {
        CBQT_RETURN_IF_ERROR(parts_[p].build->Append(build_rows_[i]));
      }
    }
    table_.clear();
    build_rows_.clear();
    build_mem_->Release();
    spilled_ = true;
    ++ctx_->stats.spilled_operators;
    return Status::OK();
  }

  /// Spilled build: the probe side is routed into matching partitions in
  /// one pass. Probe rows with NULL keys can never hash-match and are
  /// resolved immediately by the join kind's rule.
  Status RouteProbeSide() {
    RowBatch b;
    for (;;) {
      auto more = left_->NextBatch(&b);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (b.empty()) continue;
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(b.size())));
      for (auto& lrow : b.rows()) {
        Row key;
        bool has_null = false;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, lkeys_, lrow,
                                           left_schema_, lkeys_need_frame_,
                                           &key, &has_null));
        if (has_null) {
          switch (node_->join_kind) {
            case JoinKind::kAnti:
              pending_.push_back(std::move(lrow));
              break;
            case JoinKind::kLeftOuter: {
              Row comb = std::move(lrow);
              for (size_t i = 0; i < right_schema_->size(); ++i) {
                comb.push_back(Value::Null());
              }
              pending_.push_back(std::move(comb));
              break;
            }
            case JoinKind::kInner:
            case JoinKind::kSemi:
            case JoinKind::kAntiNA:  // unknown verdict rejects
              break;
          }
          continue;
        }
        Part& p = parts_[PartitionOfKey(key, 0)];
        CBQT_RETURN_IF_ERROR(p.probe->Append(lrow));
        ++p.probe_rows;
      }
    }
    left_->Close();
    for (auto& p : parts_) {
      CBQT_RETURN_IF_ERROR(p.build->FinishWrite());
      CBQT_RETURN_IF_ERROR(p.probe->FinishWrite());
    }
    // Null-aware antijoin with a NULL build key: every probe row gets the
    // unknown verdict, so no partition can emit anything.
    if (node_->join_kind == JoinKind::kAntiNA && build_has_null_key_) {
      skip_parts_ = true;
    }
    return Status::OK();
  }

  Result<bool> NextSpilled(RowBatch* out) {
    for (;;) {
      while (pending_pos_ < pending_.size() &&
             out->size() < ctx_->batch_size) {
        out->Add(std::move(pending_[pending_pos_++]));
      }
      if (out->size() >= ctx_->batch_size) return true;
      if (skip_parts_ || next_part_ >= parts_.size()) break;
      pending_.clear();
      pending_pos_ = 0;
      CBQT_RETURN_IF_ERROR(ProcessPartition(parts_[next_part_++]));
    }
    return !out->empty();
  }

  /// Joins one partition: reload its build rows into a hash table (charged
  /// against the budget again — one partition is ~1/8 of the input) and
  /// stream its probe rows through ProbeOne. Falls back to chunked
  /// multi-pass probing when even a single partition does not fit.
  Status ProcessPartition(Part& p) {
    if (p.probe_rows == 0) return Status::OK();  // nothing can be emitted
    RowMap table;
    std::vector<Row> brows;
    {
      ScopedReservation res = ctx_->BufferReservation();
      CBQT_RETURN_IF_ERROR(p.build->Rewind());
      Row r;
      bool fits = true;
      int64_t seen = 0;
      for (;;) {
        auto more = p.build->Next(&r);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if (((++seen) & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        Row key;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, rkeys_, r,
                                           right_schema_, rkeys_need_frame_,
                                           &key, nullptr));
        if (ctx_->charge_memory()) {
          Status st = ctx_->ChargeBuffered(
              res, EstimateRowBytes(key) + EstimateRowBytes(r) +
                       static_cast<int64_t>(sizeof(size_t)));
          if (!st.ok()) {
            if (!ctx_->ShouldSpill(st)) return st;
            fits = false;
            break;
          }
        }
        table[std::move(key)].push_back(brows.size());
        brows.push_back(std::move(r));
      }
      if (!fits) return ProcessPartitionChunked(p);
      // Probe this partition.
      CBQT_RETURN_IF_ERROR(p.probe->Rewind());
      Row lrow;
      int64_t probed = 0;
      for (;;) {
        auto more = p.probe->Next(&lrow);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if (((++probed) & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        CBQT_RETURN_IF_ERROR(
            ProbeOne(table, brows, std::move(lrow), &pending_));
      }
    }
    return Status::OK();
  }

  /// Last-resort path: the partition's build side is processed in chunks
  /// that do fit, with a per-probe-row matched bitset carried across
  /// chunks so each join kind's emission rule stays exact.
  Status ProcessPartitionChunked(Part& p) {
    const JoinKind kind = node_->join_kind;
    std::vector<char> matched(static_cast<size_t>(p.probe_rows), 0);
    const int64_t build_total = p.build->row_count();
    int64_t start = 0;
    while (start < build_total) {
      RowMap table;
      std::vector<Row> brows;
      ScopedReservation res = ctx_->BufferReservation();
      CBQT_RETURN_IF_ERROR(p.build->Rewind());
      Row r;
      int64_t idx = 0;
      for (; idx < build_total; ++idx) {
        auto more = p.build->Next(&r);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if ((idx & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        if (idx < start) continue;  // before this chunk
        Row key;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, rkeys_, r,
                                           right_schema_, rkeys_need_frame_,
                                           &key, nullptr));
        if (ctx_->charge_memory() && !brows.empty()) {
          // The first row of a chunk is always admitted (progress
          // guarantee); later rows stop the chunk when the budget is hit.
          Status st = ctx_->ChargeBuffered(
              res, EstimateRowBytes(key) + EstimateRowBytes(r) +
                       static_cast<int64_t>(sizeof(size_t)));
          if (!st.ok()) {
            if (!ctx_->ShouldSpill(st)) return st;
            break;
          }
        }
        table[std::move(key)].push_back(brows.size());
        brows.push_back(std::move(r));
      }
      int64_t chunk_end = start + static_cast<int64_t>(brows.size());
      // Probe every partition row against this chunk.
      CBQT_RETURN_IF_ERROR(p.probe->Rewind());
      Row lrow;
      for (int64_t pi = 0;; ++pi) {
        auto more = p.probe->Next(&lrow);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if ((pi & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        bool already = matched[static_cast<size_t>(pi)] != 0;
        if (already && (kind == JoinKind::kSemi || kind == JoinKind::kAnti ||
                        kind == JoinKind::kAntiNA)) {
          continue;  // verdict decided by an earlier chunk
        }
        Row key;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, lkeys_, lrow,
                                           left_schema_, lkeys_need_frame_,
                                           &key, nullptr));
        auto it = table.find(key);
        if (it == table.end()) continue;
        int64_t examined = 0;
        for (size_t ri : it->second) {
          ++examined;
          Row comb = lrow;
          const Row& rrow = brows[ri];
          comb.insert(comb.end(), rrow.begin(), rrow.end());
          if (!conds_.empty()) {
            auto pass = EvalPredsOnRow(ctx_->eval, conds_, comb, &combined_,
                                       conds_need_frame_);
            if (!pass.ok()) return pass.status();
            if (!IsTruthy(pass.value())) continue;
          }
          matched[static_cast<size_t>(pi)] = 1;
          if (kind == JoinKind::kInner || kind == JoinKind::kLeftOuter) {
            pending_.push_back(std::move(comb));
          } else if (kind == JoinKind::kSemi) {
            if (!already) pending_.push_back(lrow);
            break;
          } else {
            break;  // anti/antiNA: match only flips the bit
          }
        }
        if (examined > 0) CBQT_RETURN_IF_ERROR(ctx_->CountBatch(examined));
      }
      start = chunk_end;
    }
    // Final pass for kinds that emit unmatched probe rows.
    if (kind == JoinKind::kAnti || kind == JoinKind::kAntiNA ||
        kind == JoinKind::kLeftOuter) {
      CBQT_RETURN_IF_ERROR(p.probe->Rewind());
      Row lrow;
      for (int64_t pi = 0;; ++pi) {
        auto more = p.probe->Next(&lrow);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if ((pi & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        if (matched[static_cast<size_t>(pi)] != 0) continue;
        if (kind == JoinKind::kLeftOuter) {
          Row comb = std::move(lrow);
          for (size_t i = 0; i < right_schema_->size(); ++i) {
            comb.push_back(Value::Null());
          }
          pending_.push_back(std::move(comb));
          lrow = Row{};
        } else {
          // kAnti always emits; kAntiNA reaches here only when no build row
          // had a NULL key (skip_parts_ covers the other case) and this
          // probe row's key is non-NULL (NULL keys never enter partitions).
          pending_.push_back(std::move(lrow));
          lrow = Row{};
        }
      }
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  const Schema* left_schema_;
  const Schema* right_schema_;
  Schema combined_;
  std::vector<CompiledExpr> lkeys_;
  std::vector<CompiledExpr> rkeys_;
  std::vector<CompiledExpr> conds_;
  bool lkeys_need_frame_ = false;
  bool rkeys_need_frame_ = false;
  bool conds_need_frame_ = false;
  Row probe_key_;

  RowMap table_;
  std::vector<Row> build_rows_;
  std::optional<ScopedReservation> build_mem_;
  bool build_has_null_key_ = false;
  int64_t build_input_rows_ = 0;

  bool spilled_ = false;
  std::vector<Part> parts_;
  std::vector<Row> pending_;
  size_t pending_pos_ = 0;
  size_t next_part_ = 0;
  bool skip_parts_ = false;

  RowBatch probe_batch_;
  size_t probe_pos_ = 0;
  bool probe_done_ = false;
};

// ---------------------------------------------------------------------------
// Buffered operators (materialize-in-Open, serve batches)
// ---------------------------------------------------------------------------

/// Base for operators whose semantics require the full input before the
/// first output row and whose result is served from a buffer: merge join,
/// set operations, windows, aggregation.
class BufferedOperator : public Operator {
 public:
  using Operator::Operator;

  Status Open() override {
    pending_.clear();
    pos_ = 0;
    return Compute();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    while (pos_ < pending_.size() && out->size() < ctx_->batch_size) {
      out->Add(std::move(pending_[pos_++]));
    }
    if (out->empty()) {
      pending_.clear();
      pos_ = 0;
      return false;
    }
    return true;
  }

 protected:
  virtual Status Compute() = 0;

  std::vector<Row> pending_;
  size_t pos_ = 0;
};

class MergeJoinOperator final : public BufferedOperator {
 public:
  MergeJoinOperator(ExecContext* ctx, const PlanNode* node,
                    std::unique_ptr<Operator> left,
                    std::unique_ptr<Operator> right)
      : BufferedOperator(ctx, node),
        left_(std::move(left)),
        right_(std::move(right)),
        left_schema_(&node->children[0]->output),
        right_schema_(&node->children[1]->output) {
    combined_ = *left_schema_;
    combined_.insert(combined_.end(), right_schema_->begin(),
                     right_schema_->end());
    lkeys_ = CompileExprList(node->hash_left_keys, left_schema_);
    rkeys_ = CompileExprList(node->hash_right_keys, right_schema_);
    conds_ = CompileExprList(node->join_conds, &combined_);
    lkeys_need_frame_ = AnySlow(lkeys_);
    rkeys_need_frame_ = AnySlow(rkeys_);
    conds_need_frame_ = AnySlow(conds_);
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 protected:
  Status Compute() override {
    auto lrows = DrainOperator(left_.get());
    if (!lrows.ok()) return lrows.status();
    auto rrows = DrainOperator(right_.get());
    if (!rrows.ok()) return rrows.status();

    struct Keyed {
      Row keys;
      const Row* row;
    };
    // Both sorted key buffers break the pipeline; charge their bytes.
    // (Merge join does not spill — the planner only picks it for inputs it
    // believes sortable in memory; the sort operator is the spilling path.)
    ScopedReservation merge_mem = ctx_->BufferReservation();
    std::vector<Keyed> lk, rk;
    auto materialize = [&](const std::vector<Row>& rows, const Schema* schema,
                           const std::vector<CompiledExpr>& keys,
                           bool needs_frame,
                           std::vector<Keyed>* out) -> Status {
      CBQT_RETURN_IF_ERROR(
          ctx_->CountBatch(static_cast<int64_t>(rows.size())));
      for (const auto& r : rows) {
        Keyed k{{}, &r};
        bool has_null = false;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, keys, r, schema,
                                           needs_frame, &k.keys, &has_null));
        if (has_null) continue;
        CBQT_RETURN_IF_ERROR(ctx_->ChargeBufferedRow(
            merge_mem, k.keys, static_cast<int64_t>(sizeof(Keyed))));
        out->push_back(std::move(k));
      }
      return Status::OK();
    };
    CBQT_RETURN_IF_ERROR(materialize(lrows.value(), left_schema_, lkeys_,
                                     lkeys_need_frame_, &lk));
    CBQT_RETURN_IF_ERROR(materialize(rrows.value(), right_schema_, rkeys_,
                                     rkeys_need_frame_, &rk));

    auto key_less = [](const Keyed& a, const Keyed& b) {
      for (size_t i = 0; i < a.keys.size(); ++i) {
        if (TotalLess(a.keys[i], b.keys[i])) return true;
        if (TotalLess(b.keys[i], a.keys[i])) return false;
      }
      return false;
    };
    std::sort(lk.begin(), lk.end(), key_less);
    std::sort(rk.begin(), rk.end(), key_less);

    size_t i = 0, j = 0;
    while (i < lk.size() && j < rk.size()) {
      if (key_less(lk[i], rk[j])) {
        ++i;
        continue;
      }
      if (key_less(rk[j], lk[i])) {
        ++j;
        continue;
      }
      // Equal key group: cross product, residual conditions applied.
      size_t i_end = i;
      while (i_end < lk.size() && !key_less(lk[i], lk[i_end]) &&
             !key_less(lk[i_end], lk[i])) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < rk.size() && !key_less(rk[j], rk[j_end]) &&
             !key_less(rk[j_end], rk[j])) {
        ++j_end;
      }
      for (size_t a = i; a < i_end; ++a) {
        for (size_t b = j; b < j_end; ++b) {
          CBQT_RETURN_IF_ERROR(ctx_->CountBatch(1));
          Row comb = *lk[a].row;
          comb.insert(comb.end(), rk[b].row->begin(), rk[b].row->end());
          if (!conds_.empty()) {
            auto pass = EvalPredsOnRow(ctx_->eval, conds_, comb, &combined_,
                                       conds_need_frame_);
            if (!pass.ok()) return pass.status();
            if (!IsTruthy(pass.value())) continue;
          }
          pending_.push_back(std::move(comb));
        }
      }
      i = i_end;
      j = j_end;
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  const Schema* left_schema_;
  const Schema* right_schema_;
  Schema combined_;
  std::vector<CompiledExpr> lkeys_;
  std::vector<CompiledExpr> rkeys_;
  std::vector<CompiledExpr> conds_;
  bool lkeys_need_frame_ = false;
  bool rkeys_need_frame_ = false;
  bool conds_need_frame_ = false;
};

// ---------------------------------------------------------------------------
// Aggregate (hybrid hash aggregation: resident groups keep aggregating,
// overflow keys spill to salted partitions and re-aggregate recursively)
// ---------------------------------------------------------------------------

class AggregateOperator final : public BufferedOperator {
 public:
  AggregateOperator(ExecContext* ctx, const PlanNode* node,
                    std::unique_ptr<Operator> child)
      : BufferedOperator(ctx, node),
        child_(std::move(child)),
        in_schema_(&node->children[0]->output),
        keys_(CompileExprList(node->group_keys, in_schema_)) {
    for (const auto& agg : node->agg_exprs) {
      if (agg->agg == AggFunc::kCountStar) {
        args_.push_back(CompiledExpr::Compile(agg.get(), in_schema_));
        arg_used_.push_back(false);
      } else {
        args_.push_back(
            CompiledExpr::Compile(agg->children[0].get(), in_schema_));
        arg_used_.push_back(true);
      }
    }
    keys_need_frame_ = AnySlow(keys_);
    for (size_t a = 0; a < args_.size(); ++a) {
      if (arg_used_[a] && !args_[a].fast()) args_need_frame_ = true;
    }
  }

  void Close() override { child_->Close(); }

 protected:
  Status Compute() override {
    const size_t num_keys = node_->group_keys.size();
    std::vector<std::vector<int>> sets = node_->grouping_sets;
    if (sets.empty()) {
      std::vector<int> all;
      for (size_t g = 0; g < num_keys; ++g) all.push_back(static_cast<int>(g));
      sets.push_back(std::move(all));
    }
    const bool multi_set = sets.size() > 1;
    std::vector<Row> input;
    if (multi_set) {
      auto rows = DrainOperator(child_.get());
      if (!rows.ok()) return rows.status();
      input = std::move(rows.value());
    }
    for (const auto& set : sets) {
      std::vector<bool> in_set(num_keys, false);
      for (int g : set) in_set[static_cast<size_t>(g)] = true;

      AggState st;
      st.mem.emplace(ctx_->BufferReservation());
      if (multi_set) {
        CBQT_RETURN_IF_ERROR(
            ctx_->CountBatch(static_cast<int64_t>(input.size())));
        for (const auto& r : input) {
          CBQT_RETURN_IF_ERROR(ConsumeRow(st, in_set, r));
        }
      } else {
        CBQT_RETURN_IF_ERROR(child_->Open());
        RowBatch b;
        for (;;) {
          auto more = child_->NextBatch(&b);
          if (!more.ok()) return more.status();
          if (!more.value()) break;
          if (b.empty()) continue;
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(b.size())));
          for (const auto& r : b.rows()) {
            CBQT_RETURN_IF_ERROR(ConsumeRow(st, in_set, r));
          }
        }
        child_->Close();
      }
      int64_t emitted = 0;
      CBQT_RETURN_IF_ERROR(FinishState(st, in_set, 0, &emitted));
      // Scalar aggregation produces one row even on empty input.
      if (emitted == 0 && num_keys == 0) {
        std::vector<AggAccum> accums(node_->agg_exprs.size());
        Row r;
        for (size_t a = 0; a < accums.size(); ++a) {
          r.push_back(accums[a].Finish(*node_->agg_exprs[a]));
        }
        pending_.push_back(std::move(r));
      }
    }
    return Status::OK();
  }

 private:
  struct AggState {
    std::unordered_map<Row, std::vector<AggAccum>, RowHasher, RowEq> groups;
    std::optional<ScopedReservation> mem;
    bool spilled = false;
    int salt = 0;
    std::vector<SpillFile*> parts;
  };

  Status ConsumeRow(AggState& st, const std::vector<bool>& in_set,
                    const Row& r) {
    const size_t num_keys = keys_.size();
    const size_t num_aggs = args_.size();
    std::optional<FrameGuard> fg;
    if (keys_need_frame_ || args_need_frame_) {
      fg.emplace(ctx_->eval, in_schema_);
      fg->SetRow(&r);
    }
    // key_scratch_ is reused across rows; try_emplace only consumes it when
    // a new group is created, so repeated keys allocate nothing.
    Row& key = key_scratch_;
    key.clear();
    key.reserve(num_keys);
    for (size_t g = 0; g < num_keys; ++g) {
      if (!in_set[g]) {
        key.push_back(Value::Null());
        continue;
      }
      if (keys_[g].fast()) {
        key.push_back(keys_[g].EvalFast(r, ctx_->eval.rownum));
      } else {
        auto v = keys_[g].EvalSlow(ctx_->eval);
        if (!v.ok()) return v.status();
        key.push_back(std::move(v.value()));
      }
    }
    std::vector<AggAccum>* accums = nullptr;
    if (st.spilled) {
      auto it = st.groups.find(key);
      if (it == st.groups.end()) {
        // Not resident: route to the key's partition for a later pass.
        return st.parts[PartitionOfKey(key, st.salt)]->Append(r);
      }
      accums = &it->second;
    } else {
      auto [it, inserted] = st.groups.try_emplace(std::move(key));
      if (inserted) {
        it->second.resize(num_aggs);
        Status charged = ctx_->ChargeBufferedRow(
            *st.mem, it->first,
            static_cast<int64_t>(num_aggs * sizeof(AggAccum)));
        if (!charged.ok()) {
          if (!ctx_->ShouldSpill(charged)) return charged;
          // Switch to hybrid mode: evict the uncharged group, keep every
          // already-charged group aggregating in memory, and route the
          // overflow keys (starting with this one) to partitions.
          Row key_copy = it->first;
          st.groups.erase(it);
          CBQT_RETURN_IF_ERROR(BeginAggSpill(st));
          return st.parts[PartitionOfKey(key_copy, st.salt)]->Append(r);
        }
      }
      accums = &it->second;
    }
    for (size_t a = 0; a < num_aggs; ++a) {
      const Expr& agg = *node_->agg_exprs[a];
      Value v = Value::Null();
      if (arg_used_[a]) {
        if (args_[a].fast()) {
          v = args_[a].EvalFast(r, ctx_->eval.rownum);
        } else {
          auto res = args_[a].EvalSlow(ctx_->eval);
          if (!res.ok()) return res.status();
          v = std::move(res.value());
        }
      }
      (*accums)[a].Add(v, agg);
    }
    return Status::OK();
  }

  Status BeginAggSpill(AggState& st) {
    if (st.salt > kMaxSpillDepth) {
      return Status::ResourceExhausted(
          "aggregate spill recursion depth exceeded (adversarial key "
          "distribution)");
    }
    auto mgr = ctx_->GetSpill();
    if (!mgr.ok()) return mgr.status();
    st.parts.reserve(kSpillPartitions);
    for (size_t i = 0; i < kSpillPartitions; ++i) {
      auto f = mgr.value()->NewFile("agg");
      if (!f.ok()) return f.status();
      st.parts.push_back(f.value());
    }
    st.spilled = true;
    ++ctx_->stats.spilled_operators;
    return Status::OK();
  }

  /// Emits the state's resident groups and recursively re-aggregates its
  /// partitions (each level uses a fresh hash salt).
  Status FinishState(AggState& st, const std::vector<bool>& in_set, int depth,
                     int64_t* emitted) {
    for (auto& [key, accums] : st.groups) {
      Row r = key;
      for (size_t a = 0; a < accums.size(); ++a) {
        r.push_back(accums[a].Finish(*node_->agg_exprs[a]));
      }
      pending_.push_back(std::move(r));
      ++*emitted;
    }
    st.groups.clear();
    if (st.mem) st.mem->Release();
    if (!st.spilled) return Status::OK();
    for (SpillFile* f : st.parts) {
      CBQT_RETURN_IF_ERROR(f->FinishWrite());
    }
    std::vector<SpillFile*> parts = std::move(st.parts);
    for (SpillFile* f : parts) {
      if (f->row_count() == 0) continue;
      AggState sub;
      sub.salt = depth + 1;
      sub.mem.emplace(ctx_->BufferReservation());
      CBQT_RETURN_IF_ERROR(f->Rewind());
      Row r;
      int64_t seen = 0;
      for (;;) {
        auto more = f->Next(&r);
        if (!more.ok()) return more.status();
        if (!more.value()) break;
        if (((++seen) & kSpillPollMask) == 0) {
          CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
        }
        CBQT_RETURN_IF_ERROR(ConsumeRow(sub, in_set, r));
      }
      CBQT_RETURN_IF_ERROR(FinishState(sub, in_set, depth + 1, emitted));
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
  std::vector<CompiledExpr> keys_;
  std::vector<CompiledExpr> args_;
  std::vector<bool> arg_used_;
  bool keys_need_frame_ = false;
  bool args_need_frame_ = false;
  Row key_scratch_;
};

// ---------------------------------------------------------------------------
// Sort (external merge sort: sorted runs spill to disk, k-way merge serves)
// ---------------------------------------------------------------------------

class SortOperator final : public Operator {
 public:
  SortOperator(ExecContext* ctx, const PlanNode* node,
               std::unique_ptr<Operator> child)
      : Operator(ctx, node),
        child_(std::move(child)),
        in_schema_(&node->children[0]->output),
        keys_(CompileExprList(node->sort_keys, in_schema_)),
        keys_need_frame_(AnySlow(keys_)) {}

  Status Open() override {
    buffer_.clear();
    runs_.clear();
    cursors_.clear();
    serve_pos_ = 0;
    res_.emplace(ctx_->BufferReservation());
    CBQT_RETURN_IF_ERROR(child_->Open());
    RowBatch b;
    for (;;) {
      auto more = child_->NextBatch(&b);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (b.empty()) continue;
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(b.size())));
      for (auto& r : b.rows()) {
        SKeyed k;
        CBQT_RETURN_IF_ERROR(EvalListOnRow(ctx_->eval, keys_, r, in_schema_,
                                           keys_need_frame_, &k.keys,
                                           nullptr));
        if (ctx_->charge_memory()) {
          int64_t bytes = EstimateRowBytes(k.keys) + EstimateRowBytes(r) +
                          static_cast<int64_t>(sizeof(SKeyed));
          Status st = ctx_->ChargeBuffered(*res_, bytes);
          if (!st.ok()) {
            if (!ctx_->ShouldSpill(st)) return st;
            CBQT_RETURN_IF_ERROR(FlushRun());
            // First row of the new run: admit it even if the budget is
            // still tight (progress guarantee), but surface non-memory
            // failures (injected faults) from the retried charge.
            Status again = ctx_->ChargeBuffered(*res_, bytes);
            if (!again.ok() && !ctx_->ShouldSpill(again)) return again;
          }
        }
        k.row = std::move(r);
        buffer_.push_back(std::move(k));
      }
    }
    child_->Close();
    if (runs_.empty()) {
      // Fully in memory: one stable sort, serve from the buffer.
      std::stable_sort(buffer_.begin(), buffer_.end(),
                       [this](const SKeyed& a, const SKeyed& b) {
                         return SortRowLess(a.keys, b.keys,
                                            node_->sort_ascending);
                       });
      return Status::OK();
    }
    CBQT_RETURN_IF_ERROR(FlushRun());
    // Initialize one merge cursor per run. Ties are broken by run index:
    // runs are flushed in input order and each run is stable-sorted, so
    // the merge reproduces std::stable_sort's output exactly.
    cursors_.reserve(runs_.size());
    for (SpillFile* f : runs_) {
      RunCursor c;
      c.f = f;
      CBQT_RETURN_IF_ERROR(f->Rewind());
      auto more = f->Next(&c.next);
      if (!more.ok()) return more.status();
      c.eof = !more.value();
      cursors_.push_back(std::move(c));
    }
    return Status::OK();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    const size_t nk = keys_.size();
    if (runs_.empty()) {
      while (serve_pos_ < buffer_.size() && out->size() < ctx_->batch_size) {
        out->Add(std::move(buffer_[serve_pos_++].row));
      }
      if (out->empty()) {
        buffer_.clear();
        return false;
      }
      return true;
    }
    while (out->size() < ctx_->batch_size) {
      int best = -1;
      for (size_t c = 0; c < cursors_.size(); ++c) {
        if (cursors_[c].eof) continue;
        if (best < 0 ||
            SortRowLess(cursors_[c].next, cursors_[static_cast<size_t>(best)].next,
                        node_->sort_ascending, nk)) {
          best = static_cast<int>(c);
        }
      }
      if (best < 0) break;
      RunCursor& c = cursors_[static_cast<size_t>(best)];
      // The spilled record is keys followed by the row; strip the keys.
      Row row(std::make_move_iterator(c.next.begin() +
                                      static_cast<std::ptrdiff_t>(nk)),
              std::make_move_iterator(c.next.end()));
      out->Add(std::move(row));
      auto more = c.f->Next(&c.next);
      if (!more.ok()) return more.status();
      c.eof = !more.value();
      if ((out->size() & static_cast<size_t>(kSpillPollMask)) == 0) {
        CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
      }
    }
    return !out->empty();
  }

  void Close() override {
    child_->Close();
    buffer_.clear();
    cursors_.clear();
    if (res_) res_->Release();
  }

 private:
  struct SKeyed {
    Row keys;
    Row row;
  };
  struct RunCursor {
    SpillFile* f = nullptr;
    Row next;
    bool eof = true;
  };

  Status FlushRun() {
    if (runs_.empty()) ++ctx_->stats.spilled_operators;
    auto mgr = ctx_->GetSpill();
    if (!mgr.ok()) return mgr.status();
    auto f = mgr.value()->NewFile("sort-run");
    if (!f.ok()) return f.status();
    std::stable_sort(buffer_.begin(), buffer_.end(),
                     [this](const SKeyed& a, const SKeyed& b) {
                       return SortRowLess(a.keys, b.keys,
                                          node_->sort_ascending);
                     });
    for (auto& k : buffer_) {
      Row rec = std::move(k.keys);
      rec.insert(rec.end(), std::make_move_iterator(k.row.begin()),
                 std::make_move_iterator(k.row.end()));
      CBQT_RETURN_IF_ERROR(f.value()->Append(rec));
    }
    CBQT_RETURN_IF_ERROR(f.value()->FinishWrite());
    runs_.push_back(f.value());
    buffer_.clear();
    res_->Release();
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
  std::vector<CompiledExpr> keys_;
  bool keys_need_frame_;
  std::vector<SKeyed> buffer_;
  std::optional<ScopedReservation> res_;
  std::vector<SpillFile*> runs_;
  std::vector<RunCursor> cursors_;
  size_t serve_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Distinct (streaming dedup; overflow keys spill to salted partitions)
// ---------------------------------------------------------------------------

class DistinctOperator final : public Operator {
 public:
  DistinctOperator(ExecContext* ctx, const PlanNode* node,
                   std::unique_ptr<Operator> child)
      : Operator(ctx, node), child_(std::move(child)) {}

  Status Open() override {
    seen_.clear();
    spilled_ = false;
    parts_.clear();
    pending_.clear();
    pending_pos_ = 0;
    child_done_ = false;
    parts_processed_ = false;
    res_.emplace(ctx_->BufferReservation());
    return child_->Open();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    while (!child_done_ && out->size() < ctx_->batch_size) {
      auto more = child_->NextBatch(&in_);
      if (!more.ok()) return more.status();
      if (!more.value()) {
        child_done_ = true;
        break;
      }
      if (in_.empty()) continue;
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(in_.size())));
      for (auto& r : in_.rows()) {
        if (spilled_) {
          if (seen_.count(r) > 0) continue;  // already emitted in memory
          CBQT_RETURN_IF_ERROR(
              parts_[PartitionOfKey(r, 0)]->Append(r));
          continue;
        }
        auto [it, inserted] = seen_.emplace(r, true);
        if (!inserted) continue;
        Status st = ctx_->ChargeBufferedRow(*res_, r);
        if (!st.ok()) {
          if (!ctx_->ShouldSpill(st)) return st;
          // The uncharged key is evicted and routed to disk; the resident
          // set stays live both as emitted output and as the dedup filter
          // for the remaining stream.
          seen_.erase(it);
          CBQT_RETURN_IF_ERROR(BeginSpill());
          CBQT_RETURN_IF_ERROR(
              parts_[PartitionOfKey(r, 0)]->Append(r));
          continue;
        }
        out->Add(std::move(r));
      }
    }
    if (!child_done_) return true;  // batch filled mid-stream
    if (spilled_ && !parts_processed_) {
      parts_processed_ = true;
      child_->Close();
      for (SpillFile* f : parts_) {
        CBQT_RETURN_IF_ERROR(f->FinishWrite());
      }
      for (SpillFile* f : parts_) {
        CBQT_RETURN_IF_ERROR(ProcessPartition(f, 0));
      }
    }
    while (pending_pos_ < pending_.size() && out->size() < ctx_->batch_size) {
      out->Add(std::move(pending_[pending_pos_++]));
    }
    return !out->empty();
  }

  void Close() override {
    child_->Close();
    seen_.clear();
    pending_.clear();
    if (res_) res_->Release();
  }

 private:
  Status BeginSpill() {
    auto mgr = ctx_->GetSpill();
    if (!mgr.ok()) return mgr.status();
    parts_.reserve(kSpillPartitions);
    for (size_t i = 0; i < kSpillPartitions; ++i) {
      auto f = mgr.value()->NewFile("distinct");
      if (!f.ok()) return f.status();
      parts_.push_back(f.value());
    }
    spilled_ = true;
    ++ctx_->stats.spilled_operators;
    return Status::OK();
  }

  /// Dedups one partition into pending_, recursing with a fresh salt when
  /// even the partition's distinct set does not fit.
  Status ProcessPartition(SpillFile* f, int depth) {
    if (f->row_count() == 0) return Status::OK();
    if (depth > kMaxSpillDepth) {
      return Status::ResourceExhausted(
          "distinct spill recursion depth exceeded (adversarial key "
          "distribution)");
    }
    SeenMap local;
    ScopedReservation res = ctx_->BufferReservation();
    std::vector<SpillFile*> subparts;
    bool sub_spilled = false;
    CBQT_RETURN_IF_ERROR(f->Rewind());
    Row r;
    int64_t seen_rows = 0;
    for (;;) {
      auto more = f->Next(&r);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      if (((++seen_rows) & kSpillPollMask) == 0) {
        CBQT_RETURN_IF_ERROR(ctx_->PollOnly());
      }
      if (sub_spilled) {
        if (local.count(r) > 0) continue;
        CBQT_RETURN_IF_ERROR(
            subparts[PartitionOfKey(r, depth + 1)]->Append(r));
        continue;
      }
      auto [it, inserted] = local.emplace(r, true);
      if (!inserted) continue;
      Status st = ctx_->ChargeBufferedRow(res, r);
      if (!st.ok()) {
        if (!ctx_->ShouldSpill(st)) return st;
        local.erase(it);
        auto mgr = ctx_->GetSpill();
        if (!mgr.ok()) return mgr.status();
        subparts.reserve(kSpillPartitions);
        for (size_t i = 0; i < kSpillPartitions; ++i) {
          auto sf = mgr.value()->NewFile("distinct");
          if (!sf.ok()) return sf.status();
          subparts.push_back(sf.value());
        }
        sub_spilled = true;
        ++ctx_->stats.spilled_operators;
        CBQT_RETURN_IF_ERROR(
            subparts[PartitionOfKey(r, depth + 1)]->Append(r));
        continue;
      }
      pending_.push_back(std::move(r));
      r = Row{};
    }
    for (SpillFile* sf : subparts) {
      CBQT_RETURN_IF_ERROR(sf->FinishWrite());
    }
    for (SpillFile* sf : subparts) {
      CBQT_RETURN_IF_ERROR(ProcessPartition(sf, depth + 1));
    }
    return Status::OK();
  }

  std::unique_ptr<Operator> child_;
  RowBatch in_;
  SeenMap seen_;
  std::optional<ScopedReservation> res_;
  bool spilled_ = false;
  std::vector<SpillFile*> parts_;
  std::vector<Row> pending_;
  size_t pending_pos_ = 0;
  bool child_done_ = false;
  bool parts_processed_ = false;
};

// ---------------------------------------------------------------------------
// Set operations
// ---------------------------------------------------------------------------

class SetOpOperator final : public BufferedOperator {
 public:
  SetOpOperator(ExecContext* ctx, const PlanNode* node,
                std::vector<std::unique_ptr<Operator>> children)
      : BufferedOperator(ctx, node), children_(std::move(children)) {}

  void Close() override {
    for (auto& c : children_) c->Close();
  }

 protected:
  Status Compute() override {
    std::vector<std::vector<Row>> inputs;
    inputs.reserve(children_.size());
    for (auto& c : children_) {
      auto rows = DrainOperator(c.get());
      if (!rows.ok()) return rows.status();
      inputs.push_back(std::move(rows.value()));
    }
    switch (node_->set_op) {
      case SetOpKind::kUnionAll: {
        for (auto& in : inputs) {
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(in.size())));
          for (auto& r : in) pending_.push_back(std::move(r));
        }
        break;
      }
      case SetOpKind::kUnion: {
        SeenMap seen;
        for (auto& in : inputs) {
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(in.size())));
          for (auto& r : in) {
            if (seen.emplace(r, true).second) pending_.push_back(std::move(r));
          }
        }
        break;
      }
      case SetOpKind::kIntersect: {
        // Set semantics; NULLs match (paper §2.2.7).
        SeenMap right;
        for (size_t b = 1; b < inputs.size(); ++b) {
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(inputs[b].size())));
          for (auto& r : inputs[b]) right.emplace(std::move(r), true);
        }
        SeenMap emitted;
        CBQT_RETURN_IF_ERROR(
            ctx_->CountBatch(static_cast<int64_t>(inputs[0].size())));
        for (auto& r : inputs[0]) {
          if (right.count(r) > 0 && emitted.emplace(r, true).second) {
            pending_.push_back(std::move(r));
          }
        }
        break;
      }
      case SetOpKind::kMinus: {
        SeenMap right;
        for (size_t b = 1; b < inputs.size(); ++b) {
          CBQT_RETURN_IF_ERROR(
              ctx_->CountBatch(static_cast<int64_t>(inputs[b].size())));
          for (auto& r : inputs[b]) right.emplace(std::move(r), true);
        }
        SeenMap emitted;
        CBQT_RETURN_IF_ERROR(
            ctx_->CountBatch(static_cast<int64_t>(inputs[0].size())));
        for (auto& r : inputs[0]) {
          if (right.count(r) == 0 && emitted.emplace(r, true).second) {
            pending_.push_back(std::move(r));
          }
        }
        break;
      }
      case SetOpKind::kNone:
        return Status::Internal("SetOp node without a set operator");
    }
    return Status::OK();
  }

 private:
  std::vector<std::unique_ptr<Operator>> children_;
};

// ---------------------------------------------------------------------------
// Limit (streaming with early termination — the child is not drained past
// the cutoff, unlike the row-at-a-time executor which materialized it)
// ---------------------------------------------------------------------------

class LimitOperator final : public Operator {
 public:
  LimitOperator(ExecContext* ctx, const PlanNode* node,
                std::unique_ptr<Operator> child)
      : Operator(ctx, node),
        child_(std::move(child)),
        in_schema_(&node->children[0]->output),
        filter_(CompileExprList(node->filter, in_schema_)),
        filter_needs_frame_(AnySlow(filter_)) {}

  Status Open() override {
    emitted_ = 0;
    done_ = false;
    return child_->Open();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    if (done_) return false;
    auto more = child_->NextBatch(&in_);
    if (!more.ok()) return more.status();
    if (!more.value()) {
      done_ = true;
      return false;
    }
    int64_t considered = 0;
    int64_t saved_rownum = ctx_->eval.rownum;
    for (auto& r : in_.rows()) {
      if (emitted_ >= node_->limit) {
        done_ = true;
        break;
      }
      ++considered;
      if (!filter_.empty()) {
        // Lazy ROWNUM: the filter sees the next *output* position.
        ctx_->eval.rownum = emitted_ + 1;
        auto pass = EvalPredsOnRow(ctx_->eval, filter_, r, in_schema_,
                                   filter_needs_frame_);
        if (!pass.ok()) {
          ctx_->eval.rownum = saved_rownum;
          return pass.status();
        }
        if (!IsTruthy(pass.value())) continue;
      }
      ++emitted_;
      out->Add(std::move(r));
    }
    ctx_->eval.rownum = saved_rownum;
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(considered));
    if (done_ && out->empty()) return false;
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
  std::vector<CompiledExpr> filter_;
  bool filter_needs_frame_;
  RowBatch in_;
  int64_t emitted_ = 0;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// Window
// ---------------------------------------------------------------------------

class WindowOperator final : public BufferedOperator {
 public:
  WindowOperator(ExecContext* ctx, const PlanNode* node,
                 std::unique_ptr<Operator> child)
      : BufferedOperator(ctx, node),
        child_(std::move(child)),
        in_schema_(&node->children[0]->output) {}

  void Close() override { child_->Close(); }

 protected:
  Status Compute() override {
    auto drained = DrainOperator(child_.get());
    if (!drained.ok()) return drained.status();
    std::vector<Row> input = std::move(drained.value());
    EvalContext& ev = ctx_->eval;
    size_t n = input.size();
    std::vector<std::vector<Value>> win_cols(
        node_->window_exprs.size(), std::vector<Value>(n, Value::Null()));

    for (size_t w = 0; w < node_->window_exprs.size(); ++w) {
      const Expr& win = *node_->window_exprs[w];
      CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(n)));
      // Partition rows.
      std::unordered_map<Row, std::vector<size_t>, RowHasher, RowEq> parts;
      {
        FrameGuard g(ev, in_schema_);
        for (size_t i = 0; i < n; ++i) {
          g.SetRow(&input[i]);
          Row key;
          for (const auto& p : win.partition_by) {
            auto v = EvalExpr(*p, ev);
            if (!v.ok()) return v.status();
            key.push_back(std::move(v.value()));
          }
          parts[std::move(key)].push_back(i);
        }
      }
      for (auto& [key, indices] : parts) {
        // Sort the partition by the window ORDER BY keys.
        std::vector<Row> order_keys(indices.size());
        {
          FrameGuard g(ev, in_schema_);
          for (size_t k = 0; k < indices.size(); ++k) {
            g.SetRow(&input[indices[k]]);
            for (const auto& o : win.win_order_by) {
              auto v = EvalExpr(*o, ev);
              if (!v.ok()) return v.status();
              order_keys[k].push_back(std::move(v.value()));
            }
          }
        }
        std::vector<size_t> perm(indices.size());
        for (size_t k = 0; k < perm.size(); ++k) perm[k] = k;
        std::vector<bool> asc(win.win_order_by.size(), true);
        std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
          return SortRowLess(order_keys[a], order_keys[b], asc);
        });
        // Running aggregate, RANGE UNBOUNDED PRECEDING .. CURRENT ROW:
        // peers (equal order keys) share the cumulative value at the end
        // of their peer group.
        AggAccum accum;
        Expr agg_proxy;
        agg_proxy.kind = ExprKind::kAggregate;
        agg_proxy.agg = win.win_func;
        size_t g = 0;
        while (g < perm.size()) {
          size_t g_end = g;
          while (g_end < perm.size() &&
                 RowsEqualStructural(order_keys[perm[g]],
                                     order_keys[perm[g_end]])) {
            ++g_end;
          }
          for (size_t k = g; k < g_end; ++k) {
            size_t row_idx = indices[perm[k]];
            Value v = Value::Null();
            if (win.win_func != AggFunc::kCountStar) {
              FrameGuard fg(ev, in_schema_);
              fg.SetRow(&input[row_idx]);
              auto r = EvalExpr(*win.children[0], ev);
              if (!r.ok()) return r.status();
              v = std::move(r.value());
            }
            accum.Add(v, agg_proxy);
          }
          Value result = accum.Finish(agg_proxy);
          for (size_t k = g; k < g_end; ++k) {
            win_cols[w][indices[perm[k]]] = result;
          }
          g = g_end;
        }
      }
    }
    pending_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Row r = std::move(input[i]);
      for (size_t w = 0; w < node_->window_exprs.size(); ++w) {
        r.push_back(win_cols[w][i]);
      }
      pending_.push_back(std::move(r));
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
};

// ---------------------------------------------------------------------------
// Subquery filter (TIS) — per-correlation-key result caching
// ---------------------------------------------------------------------------

/// TIS subquery resolver with per-correlation-key result caching.
class CachingSubqueryResolver : public SubqueryResolver {
 public:
  CachingSubqueryResolver(const PlanNode& node, EvalContext& ctx,
                          ExecStats* stats)
      : node_(node), ctx_(ctx), stats_(stats) {
    std::vector<const Expr*> subs;
    for (const auto& f : node.filter) CollectSubqueryNodesExec(f.get(), &subs);
    for (size_t i = 0; i < subs.size() && i < node.subplans.size(); ++i) {
      index_[subs[i]] = i;
    }
    caches_.resize(node.subplans.size());
  }

  Result<SubqueryResultView> Resolve(const Expr* subquery_node) override {
    auto it = index_.find(subquery_node);
    if (it == index_.end()) {
      return Status::Internal("subquery node has no planned subplan");
    }
    size_t i = it->second;
    Row key;
    for (const auto& k : node_.subplan_corr_keys[i]) {
      auto v = EvalExpr(*k, ctx_);
      if (!v.ok()) return v.status();
      key.push_back(std::move(v.value()));
    }
    auto& cache = caches_[i];
    auto hit = cache.find(key);
    if (hit != cache.end()) {
      ++stats_->subquery_cache_hits;
      return MakeView(hit->second);
    }
    ++stats_->subquery_executions;
    // Execute the subplan under the *current* context so correlated refs
    // resolve against the outer row.
    auto rows = run_fn(*node_.subplans[i]);
    if (!rows.ok()) return rows.status();
    if (charge_fn) {
      // Materialized subquery results persist for the whole operator (TIS
      // caching); charge them against the per-query memory tracker.
      for (const Row& r : rows.value()) {
        Status charged = charge_fn(r);
        if (!charged.ok()) return charged;
      }
    }
    auto [pos, inserted] = cache.emplace(std::move(key), CachedResult{});
    (void)inserted;
    pos->second.rows = std::move(rows.value());
    return MakeView(pos->second);
  }

  /// Set by SubqueryFilterOperator: builds and drains an operator tree for
  /// the subplan under the current evaluation context.
  std::function<Result<std::vector<Row>>(const PlanNode&)> run_fn;
  /// Optional memory-accounting hook for cached subquery result rows.
  std::function<Status(const Row&)> charge_fn;

 private:
  struct CachedResult {
    std::vector<Row> rows;
    std::unique_ptr<std::unordered_set<Row, RowHasher, RowEq>> row_set;
    bool has_null = false;
  };

  // Builds (and lazily indexes) the view handed to the evaluator. The hash
  // index makes IN / NOT IN probes O(1) instead of a scan of the cached
  // result per outer row.
  static SubqueryResultView MakeView(CachedResult& cached) {
    if (cached.row_set == nullptr) {
      cached.row_set =
          std::make_unique<std::unordered_set<Row, RowHasher, RowEq>>();
      for (const Row& r : cached.rows) {
        bool null_in_row = false;
        for (const Value& v : r) {
          if (v.is_null()) null_in_row = true;
        }
        if (null_in_row) cached.has_null = true;
        cached.row_set->insert(r);
      }
    }
    SubqueryResultView view;
    view.rows = &cached.rows;
    view.row_set = cached.row_set.get();
    view.has_null = cached.has_null;
    return view;
  }

  const PlanNode& node_;
  EvalContext& ctx_;
  ExecStats* stats_;
  std::map<const Expr*, size_t> index_;
  std::vector<std::unordered_map<Row, CachedResult, RowHasher, RowEq>>
      caches_;
};

class SubqueryFilterOperator final : public Operator {
 public:
  SubqueryFilterOperator(ExecContext* ctx, const PlanNode* node,
                         std::unique_ptr<Operator> child)
      : Operator(ctx, node),
        child_(std::move(child)),
        in_schema_(&node->children[0]->output),
        conds_(CompileExprList(node->filter, in_schema_)) {}

  Status Open() override {
    resolver_ = std::make_unique<CachingSubqueryResolver>(*node_, ctx_->eval,
                                                          &ctx_->stats);
    resolver_->run_fn = [this](const PlanNode& plan) {
      auto op = OperatorFactory::Build(plan, ctx_);
      if (!op.ok()) return Result<std::vector<Row>>(op.status());
      return DrainOperator(op.value().get());
    };
    subq_mem_.emplace(ctx_->BufferReservation());
    if (ctx_->charge_memory()) {
      resolver_->charge_fn = [this](const Row& r) {
        return ctx_->ChargeBufferedRow(*subq_mem_, r);
      };
    }
    return child_->Open();
  }

  Result<bool> NextBatch(RowBatch* out) override {
    out->Clear();
    auto more = child_->NextBatch(&in_);
    if (!more.ok()) return more.status();
    if (!more.value()) return false;
    CBQT_RETURN_IF_ERROR(ctx_->CountBatch(static_cast<int64_t>(in_.size())));
    // Subquery predicates always evaluate through the tree walker (the
    // compiled programs fall back), under a frame for the current row.
    EvalContext& ev = ctx_->eval;
    FrameGuard g(ev, in_schema_);
    SubqueryResolver* saved = ev.subquery_resolver;
    for (auto& r : in_.rows()) {
      g.SetRow(&r);
      ev.subquery_resolver = resolver_.get();
      auto pass = EvalCompiledConjuncts(conds_, r, ev);
      ev.subquery_resolver = saved;
      if (!pass.ok()) return pass.status();
      if (IsTruthy(pass.value())) out->Add(std::move(r));
    }
    return true;
  }

  void Close() override {
    child_->Close();
    resolver_.reset();
    if (subq_mem_) subq_mem_->Release();
  }

 private:
  std::unique_ptr<Operator> child_;
  const Schema* in_schema_;
  std::vector<CompiledExpr> conds_;
  RowBatch in_;
  std::unique_ptr<CachingSubqueryResolver> resolver_;
  std::optional<ScopedReservation> subq_mem_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factory + drain
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Operator>> OperatorFactory::Build(const PlanNode& node,
                                                         ExecContext* ctx) {
  // MQO interception: inside a batch, wrap the topmost shareable subtree in
  // a SharedScanOperator routing its stream through the hub. The latch
  // suppresses wrapping inside the shared subtree itself — sharing happens
  // once, at the widest eligible point.
  if (ctx->shared_scans != nullptr && !ctx->building_shared) {
    bool materialize = node.op != PlanOp::kTableScan;
    std::string key =
        materialize ? ShareableMaterializeKey(node) : ShareableScanKey(node);
    if (!key.empty()) {
      ctx->building_shared = true;
      auto inner = Build(node, ctx);
      ctx->building_shared = false;
      if (!inner.ok()) return inner.status();
      return std::unique_ptr<Operator>(std::make_unique<SharedScanOperator>(
          ctx, &node, ctx->shared_scans, std::move(key),
          std::move(inner.value()), materialize));
    }
  }
  std::vector<std::unique_ptr<Operator>> kids;
  kids.reserve(node.children.size());
  for (const auto& c : node.children) {
    auto k = Build(*c, ctx);
    if (!k.ok()) return k.status();
    kids.push_back(std::move(k.value()));
  }
  std::unique_ptr<Operator> op;
  switch (node.op) {
    case PlanOp::kTableScan:
      op = std::make_unique<TableScanOperator>(ctx, &node);
      break;
    case PlanOp::kIndexScan:
      op = std::make_unique<IndexScanOperator>(ctx, &node);
      break;
    case PlanOp::kFilter:
      op = std::make_unique<FilterOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kProject:
      op = std::make_unique<ProjectOperator>(
          ctx, &node, kids.empty() ? nullptr : std::move(kids[0]));
      break;
    case PlanOp::kNestedLoopJoin:
      op = std::make_unique<NestedLoopJoinOperator>(
          ctx, &node, std::move(kids[0]), std::move(kids[1]));
      break;
    case PlanOp::kHashJoin:
      op = std::make_unique<HashJoinOperator>(ctx, &node, std::move(kids[0]),
                                              std::move(kids[1]));
      break;
    case PlanOp::kMergeJoin:
      op = std::make_unique<MergeJoinOperator>(ctx, &node, std::move(kids[0]),
                                               std::move(kids[1]));
      break;
    case PlanOp::kAggregate:
      op = std::make_unique<AggregateOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kSort:
      op = std::make_unique<SortOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kDistinct:
      op = std::make_unique<DistinctOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kSetOp:
      op = std::make_unique<SetOpOperator>(ctx, &node, std::move(kids));
      break;
    case PlanOp::kLimit:
      op = std::make_unique<LimitOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kWindow:
      op = std::make_unique<WindowOperator>(ctx, &node, std::move(kids[0]));
      break;
    case PlanOp::kSubqueryFilter:
      op = std::make_unique<SubqueryFilterOperator>(ctx, &node,
                                                    std::move(kids[0]));
      break;
  }
  if (op == nullptr) {
    return Status::Internal("no operator for plan node kind");
  }
  return op;
}

Result<std::vector<Row>> DrainOperator(Operator* op) {
  CBQT_RETURN_IF_ERROR(op->Open());
  std::vector<Row> out;
  RowBatch b;
  for (;;) {
    auto more = op->NextBatch(&b);
    if (!more.ok()) {
      op->Close();
      return more.status();
    }
    if (!more.value()) break;
    for (auto& r : b.rows()) out.push_back(std::move(r));
  }
  op->Close();
  return out;
}

}  // namespace cbqt
