#include "cbqt/plan_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace cbqt {

namespace {

/// Size of the frame header written by FramePayload: magic u32, version u32,
/// payload size u64, checksum u64.
constexpr uint64_t kFrameHeaderBytes = 24;

/// Ceiling on a single record's payload, far above any real plan; a header
/// claiming more is corruption, not a large plan.
constexpr uint64_t kMaxRecordPayload = 256ull << 20;

/// RAII advisory lock on the whole store file.
class ScopedFlock {
 public:
  ScopedFlock(int fd, int op) : fd_(fd) {
    while (::flock(fd_, op) != 0 && errno == EINTR) {
    }
  }
  ~ScopedFlock() { ::flock(fd_, LOCK_UN); }
  ScopedFlock(const ScopedFlock&) = delete;
  ScopedFlock& operator=(const ScopedFlock&) = delete;

 private:
  int fd_;
};

Status WriteAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("plan store write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadRange(int fd, uint64_t offset, uint64_t len) {
  std::string out(len, '\0');
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::pread(fd, out.data() + got, len - got,
                        static_cast<off_t>(offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("plan store read failed: ") +
                              std::strerror(errno));
    }
    if (n == 0) {
      return Status::DataCorruption("plan store truncated mid-record");
    }
    got += static_cast<size_t>(n);
  }
  return out;
}

Result<uint64_t> FileSize(int fd) {
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::Internal(std::string("plan store fstat failed: ") +
                            std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

/// Parses the fixed frame header at `offset`; returns the payload size after
/// validating magic and version.
Result<uint64_t> ParseFrameHeader(int fd, uint64_t offset,
                                  uint32_t expected_magic) {
  auto head = ReadRange(fd, offset, kFrameHeaderBytes);
  if (!head.ok()) return head.status();
  ByteReader r(*head);
  uint32_t magic = 0, version = 0;
  uint64_t size = 0, checksum = 0;
  CBQT_RETURN_IF_ERROR(r.U32(&magic));
  CBQT_RETURN_IF_ERROR(r.U32(&version));
  CBQT_RETURN_IF_ERROR(r.U64(&size));
  CBQT_RETURN_IF_ERROR(r.U64(&checksum));
  if (magic != expected_magic) {
    return Status::DataCorruption("plan store: bad record magic");
  }
  if (version != kPlanSerdeVersion) {
    return Status::DataCorruption("plan store: record version skew");
  }
  if (size > kMaxRecordPayload) {
    return Status::DataCorruption("plan store: implausible record size " +
                                  std::to_string(size));
  }
  return size;
}

}  // namespace

PlanStore::PlanStore(std::string path, int fd, uint64_t fingerprint)
    : path_(std::move(path)), fd_(fd), fingerprint_(fingerprint) {}

PlanStore::~PlanStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<PlanStore>> PlanStore::Open(
    const std::string& path, uint64_t schema_fingerprint) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open plan store " + path + ": " +
                            std::strerror(errno));
  }
  std::unique_ptr<PlanStore> store(
      new PlanStore(path, fd, schema_fingerprint));

  // Exclusive while deciding whether to write the header, so two instances
  // racing to create the store cannot both write one.
  ScopedFlock lock(fd, LOCK_EX);
  auto size = FileSize(fd);
  if (!size.ok()) return size.status();

  ByteWriter header_payload;
  header_payload.U64(schema_fingerprint);
  std::string header =
      FramePayload(kPlanStoreHeaderMagic, header_payload.Take());

  if (*size == 0) {
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      return Status::Internal("plan store seek failed");
    }
    CBQT_RETURN_IF_ERROR(WriteAll(fd, header));
    store->scan_offset_ = header.size();
    return store;
  }

  // Existing store: validate its header against our schema.
  auto payload_size = ParseFrameHeader(fd, 0, kPlanStoreHeaderMagic);
  if (!payload_size.ok()) return payload_size.status();
  auto full = ReadRange(fd, 0, kFrameHeaderBytes + *payload_size);
  if (!full.ok()) return full.status();
  auto payload = UnframePayload(kPlanStoreHeaderMagic, *full);
  if (!payload.ok()) return payload.status();
  ByteReader r(*payload);
  uint64_t fingerprint = 0;
  CBQT_RETURN_IF_ERROR(r.U64(&fingerprint));
  if (fingerprint != schema_fingerprint) {
    return Status::DataCorruption(
        "plan store " + path + " belongs to a different schema (fingerprint " +
        std::to_string(fingerprint) + " vs " +
        std::to_string(schema_fingerprint) + ")");
  }
  store->scan_offset_ = kFrameHeaderBytes + *payload_size;
  return store;
}

Status PlanStore::Publish(const CachedPlanEntry& entry) {
  ByteWriter w;
  SerializeCachedPlanEntry(entry, &w);
  std::string record = FramePayload(kPlanStoreRecordMagic, w.Take());

  ScopedFlock lock(fd_, LOCK_EX);
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::Internal("plan store seek failed");
  }
  CBQT_RETURN_IF_ERROR(WriteAll(fd_, record));
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status PlanStore::RefreshIndexLocked(CancellationToken* cancel) {
  auto size = FileSize(fd_);
  if (!size.ok()) return size.status();
  while (scan_offset_ + kFrameHeaderBytes <= *size) {
    if (cancel != nullptr && cancel->cancelled()) return cancel->status();
    auto payload_size =
        ParseFrameHeader(fd_, scan_offset_, kPlanStoreRecordMagic);
    if (!payload_size.ok()) {
      corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
      return payload_size.status();
    }
    uint64_t record_len = kFrameHeaderBytes + *payload_size;
    if (scan_offset_ + record_len > *size) {
      // Appender mid-write (cannot happen under the advisory locks, but a
      // crashed writer can leave a short tail): stop before it; a complete
      // re-append will be picked up next refresh.
      break;
    }
    auto record = ReadRange(fd_, scan_offset_, record_len);
    if (!record.ok()) return record.status();
    auto payload = UnframePayload(kPlanStoreRecordMagic, *record);
    if (!payload.ok()) {
      corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
      return payload.status();
    }
    ByteReader r(*payload);
    auto entry = DeserializeCachedPlanEntry(&r);
    if (!entry.ok() || !r.exhausted()) {
      corrupt_skipped_.fetch_add(1, std::memory_order_relaxed);
      return entry.ok() ? r.Fail("trailing bytes after store entry")
                        : entry.status();
    }
    index_[(*entry)->key] = std::move(*entry);  // last write wins
    scan_offset_ += record_len;
    records_scanned_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Result<std::shared_ptr<CachedPlanEntry>> PlanStore::Import(
    const std::string& key, uint64_t current_epoch,
    CancellationToken* cancel) {
  std::lock_guard<std::mutex> mu_lock(mu_);
  {
    ScopedFlock lock(fd_, LOCK_SH);
    CBQT_RETURN_IF_ERROR(RefreshIndexLocked(cancel));
  }
  auto it = index_.find(key);
  if (it == index_.end()) return std::shared_ptr<CachedPlanEntry>{};
  if (it->second->stats_epoch != current_epoch) {
    stale_rejected_.fetch_add(1, std::memory_order_relaxed);
    return std::shared_ptr<CachedPlanEntry>{};
  }
  imports_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

PlanStoreStats PlanStore::stats() const {
  PlanStoreStats out;
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.imports = imports_.load(std::memory_order_relaxed);
  out.stale_rejected = stale_rejected_.load(std::memory_order_relaxed);
  out.corrupt_skipped = corrupt_skipped_.load(std::memory_order_relaxed);
  out.records_scanned = records_scanned_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace cbqt
