#ifndef CBQT_CBQT_PLAN_CACHE_H_
#define CBQT_CBQT_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cbqt/framework.h"
#include "common/budget.h"
#include "common/memory_tracker.h"
#include "common/value.h"
#include "optimizer/plan.h"
#include "optimizer/plan_serde.h"
#include "sql/query_block.h"

namespace cbqt {

/// One cached optimization result, keyed by a parameterized statement key
/// (sql/parameterize.h) and pinned to the catalog stats epoch it was planned
/// under. Immutable once published — a hit clones the tree/plan and re-binds
/// the caller's literal values into the clones; upgrades replace the whole
/// entry rather than mutating it. The only mutable members are the atomics
/// driving the budget-upgrade ladder.
struct CachedPlanEntry {
  std::string key;
  uint64_t stats_epoch = 0;

  /// The chosen (transformed, bound) query tree and physical plan, with
  /// parameterized literals carrying their Expr::param_index slots.
  std::unique_ptr<const QueryBlock> tree;
  std::unique_ptr<const PlanNode> plan;
  /// The *original* parsed (parameterized, untransformed) statement: the
  /// budget-upgrade path re-optimizes from here, because a degraded
  /// optimization may have applied heuristic transformations that a
  /// full-budget search starting from the transformed tree could not undo.
  std::unique_ptr<const QueryBlock> source_tree;
  double cost = 0;
  CbqtStats stats;  ///< telemetry of the Optimize() that produced the plan
  size_t num_params = 0;
  /// Selectivity band (optimizer/card_est.h) of each parameter slot at the
  /// literal values the plan was optimized for; -1 = band-insensitive. A hit
  /// whose re-bound literals land in a different band re-costs the statement
  /// instead of blindly reusing the plan.
  std::vector<int> param_bands;
  /// Estimated footprint of the entry (trees + plan + key), computed by the
  /// engine before Put and charged against the engine memory tracker while
  /// the entry is cached.
  int64_t bytes = 0;

  // Budget-upgrade state (PlanCacheConfig): a degraded entry was planned
  // under a tripped OptimizerBudget and re-optimizes itself with an enlarged
  // budget once hot.
  bool degraded = false;
  OptimizerBudget planned_budget;  ///< budget the plan was produced under
  int upgrade_attempts = 0;        ///< attempts consumed so far (inherited)
  mutable std::atomic<int64_t> hits{0};  ///< hits since this entry was cached
  /// CAS gate so at most one thread runs the (expensive) re-optimization for
  /// this statement at a time; others keep serving the degraded plan.
  mutable std::atomic<bool> upgrade_in_flight{false};
};

/// Telemetry snapshot of a PlanCache (QueryEngine::plan_cache_stats()).
struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;          ///< includes epoch invalidations
  int64_t evictions = 0;       ///< LRU capacity evictions
  int64_t invalidations = 0;   ///< entries dropped for a stale stats epoch
  int64_t insertions = 0;
  int64_t upgrade_attempts = 0;  ///< budget-upgrade re-optimizations started
  int64_t upgrades = 0;          ///< ... that produced a non-degraded plan
  int64_t hit_prepares = 0;      ///< Prepare calls served from the cache
  int64_t miss_prepares = 0;     ///< Prepare calls that optimized from scratch
  double hit_prepare_ms_total = 0;
  double miss_prepare_ms_total = 0;
  size_t entries = 0;
  int64_t memory_bytes = 0;      ///< estimated bytes held by cached entries
  int64_t shed_bytes = 0;        ///< bytes freed by EvictBytes (memory pressure)

  // Persistence / sharing telemetry (zero when neither is configured).
  int64_t snapshot_loaded = 0;   ///< entries warm-started from a snapshot
  int64_t snapshot_stale = 0;    ///< snapshot entries skipped (epoch/schema)
  int64_t snapshot_saved = 0;    ///< entries streamed to a snapshot file
  int64_t store_imports = 0;     ///< misses served from the shared plan store
  int64_t store_publishes = 0;   ///< entries published to the shared store
  int64_t store_stale = 0;       ///< store entries rejected (epoch/bands)
  int64_t rebind_recosts = 0;    ///< hits re-costed on a selectivity-band move

  double hit_rate() const {
    int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0;
  }
  double avg_hit_prepare_ms() const {
    return hit_prepares > 0 ? hit_prepare_ms_total / hit_prepares : 0;
  }
  double avg_miss_prepare_ms() const {
    return miss_prepares > 0 ? miss_prepare_ms_total / miss_prepares : 0;
  }
};

/// Engine-level plan cache: a sharded, thread-safe, LRU-bounded map from a
/// normalized (literal-parameterized) statement key to an immutable cached
/// plan entry. Owned by QueryEngine; `WHERE id = 7` and `WHERE id = 9` map
/// to one entry whose literal vector is re-bound at Prepare time.
///
/// Invalidation is lazy and epoch-based: every entry records the Database
/// stats epoch it was planned under, and Find() drops entries whose epoch no
/// longer matches — a stats refresh (Database::Analyze) silently invalidates
/// the whole cache without touching it.
///
/// Same locking structure as AnnotationCache: mutex-guarded shards, keys
/// living in map nodes with the LRU list pointing back at them, entries
/// handed out as shared_ptr so a hit survives concurrent replacement or
/// eviction.
class PlanCache {
 public:
  /// `tracker` (optional) charges every cached entry's CachedPlanEntry::bytes
  /// while it sits in the cache — the engine passes its root MemoryTracker so
  /// cached plans participate in the engine byte budget and can be shed under
  /// memory pressure (EvictBytes). All bytes are released on eviction,
  /// invalidation, Clear(), and destruction.
  explicit PlanCache(PlanCacheConfig config, MemoryTracker* tracker = nullptr);

  ~PlanCache();

  /// The cached entry for `key` planned under `current_epoch`, or nullptr.
  /// An entry with a stale epoch is erased (counted as invalidation + miss).
  /// A hit refreshes LRU position and bumps the entry's hit counter.
  std::shared_ptr<const CachedPlanEntry> Find(std::string_view key,
                                              uint64_t current_epoch);

  /// Inserts or replaces the entry under entry->key, evicting the LRU tail
  /// beyond the per-shard capacity.
  void Put(std::shared_ptr<const CachedPlanEntry> entry);

  void Clear();

  /// Memory-pressure shedding: evicts LRU entries (round-robin across
  /// shards) until at least `target_bytes` of estimated entry bytes are
  /// freed or the cache is empty. Returns the bytes actually freed. Wired
  /// as the engine root tracker's pressure callback, so a reservation that
  /// would exceed the engine budget sheds cached plans before failing.
  int64_t EvictBytes(int64_t target_bytes);

  /// Estimated bytes currently held by cached entries.
  int64_t memory_bytes() const {
    return memory_bytes_.load(std::memory_order_relaxed);
  }

  size_t size() const;
  PlanCacheStats stats() const;
  const PlanCacheConfig& config() const { return config_; }

  // Latency / upgrade telemetry, recorded by QueryEngine::Prepare.
  void RecordHitLatency(double ms);
  void RecordMissLatency(double ms);
  void RecordUpgradeAttempt(bool upgraded);

  // Shared-store / re-binding telemetry, recorded by QueryEngine.
  void RecordStoreImport();
  void RecordStorePublish();
  void RecordStoreStale();
  void RecordRebindRecost();

  /// Streams every cached entry to `path` (atomically: tmp file + rename) as
  /// one framed, checksummed blob stamped with the catalog schema
  /// fingerprint. Degraded entries are saved too — their upgrade ladder
  /// resumes after the restart.
  Status SaveSnapshot(const std::string& path,
                      uint64_t schema_fingerprint) const;

  /// Warm-starts the cache from `path`: validates the frame (magic, version,
  /// checksum) and the schema fingerprint, then Put()s every entry whose
  /// stats epoch equals `current_epoch` (others count as snapshot_stale).
  /// A missing file is not an error (returns 0); malformed bytes yield a
  /// typed DataCorruption and load nothing.
  Result<size_t> LoadSnapshot(const std::string& path, uint64_t current_epoch,
                              uint64_t schema_fingerprint);

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  struct Slot {
    std::shared_ptr<const CachedPlanEntry> entry;
    std::list<const std::string*>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot, TransparentHash, std::equal_to<>>
        map;
    std::list<const std::string*> lru;  ///< front = most recently used
  };

  Shard& ShardFor(std::string_view key) const;

  /// Applies a byte delta to memory_bytes_ and the tracker (ForceReserve on
  /// growth — publishing a plan never fails — Release on shrink).
  void AccountDelta(int64_t delta);

  PlanCacheConfig config_;
  size_t shard_capacity_ = 0;
  MemoryTracker* tracker_ = nullptr;  ///< optional byte accounting
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> memory_bytes_{0};
  std::atomic<int64_t> shed_bytes_{0};

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> upgrade_attempts_{0};
  std::atomic<int64_t> upgrades_{0};
  std::atomic<int64_t> hit_prepares_{0};
  std::atomic<int64_t> miss_prepares_{0};
  std::atomic<int64_t> hit_prepare_ns_{0};
  std::atomic<int64_t> miss_prepare_ns_{0};
  std::atomic<int64_t> snapshot_loaded_{0};
  std::atomic<int64_t> snapshot_stale_{0};
  /// mutable: SaveSnapshot is logically const (the cache is unchanged).
  mutable std::atomic<int64_t> snapshot_saved_{0};
  std::atomic<int64_t> store_imports_{0};
  std::atomic<int64_t> store_publishes_{0};
  std::atomic<int64_t> store_stale_{0};
  std::atomic<int64_t> rebind_recosts_{0};
};

/// Estimated footprint of one plan-cache entry (trees + plan + key), charged
/// against the engine memory tracker while the entry is cached.
int64_t EstimateEntryBytes(const CachedPlanEntry& entry);

/// Magic of a framed plan-cache snapshot file ("CBQS").
inline constexpr uint32_t kPlanSnapshotMagic = 0x53514243u;  // "CBQS" LE

/// Serializes one cache entry (key, epoch, trees, plan, cost, telemetry,
/// parameter bands, upgrade-ladder state) into `w` — unframed; the snapshot
/// file and shared-store records add their own frame around batches of
/// entries. The mutable atomics (hits, upgrade gate) are not persisted.
void SerializeCachedPlanEntry(const CachedPlanEntry& entry, ByteWriter* w);

/// Inverse of SerializeCachedPlanEntry. The deserialized trees are unbound
/// (catalog pointers are never serialized), which every consumer tolerates:
/// execution uses only the plan, and upgrades re-optimize the source tree
/// through CbqtOptimizer::Optimize, which re-binds internally. `bytes` is
/// recomputed; the atomics start fresh.
Result<std::shared_ptr<CachedPlanEntry>> DeserializeCachedPlanEntry(
    ByteReader* r);

/// Overwrites, in place, the value of every parameterized literal
/// (Expr::param_index >= 0) anywhere in `plan` — probes, filters, join
/// conditions, keys, projections, subplans, TIS cache keys, recursively —
/// with the value of its slot in `params`. The complement of BindTreeParams
/// for physical plans: together they turn a cloned cache entry into the
/// caller's statement.
void RebindPlanParams(PlanNode* plan, const std::vector<Value>& params);

}  // namespace cbqt

#endif  // CBQT_CBQT_PLAN_CACHE_H_
