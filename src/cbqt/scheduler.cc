#include "cbqt/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>

namespace cbqt {

namespace {

/// Queued waiters poll their CancellationToken in slices of this length:
/// the token has no condition-variable hookup, so a cancel arriving from
/// another thread is noticed within one slice even when no slot frees.
constexpr auto kWaitSlice = std::chrono::milliseconds(10);

TenantSpec ClampSpec(TenantSpec spec) {
  if (spec.weight < 1) spec.weight = 1;
  if (spec.priority < 0) spec.priority = 0;
  if (spec.priority >= kNumPriorityClasses) {
    spec.priority = kNumPriorityClasses - 1;
  }
  if (spec.max_queued < 0) spec.max_queued = 0;
  if (spec.max_concurrent < 0) spec.max_concurrent = 0;
  return spec;
}

}  // namespace

double RetryAfterMs(const Status& s) {
  static constexpr char kTag[] = "retry-after-ms=";
  size_t pos = s.message().find(kTag);
  if (pos == std::string::npos) return 0;
  const char* start = s.message().c_str() + pos + sizeof(kTag) - 1;
  char* end = nullptr;
  double ms = std::strtod(start, &end);
  if (end == start || ms < 0) return 0;
  return ms;
}

SchedulerConfig TenantScheduler::FromLegacy(const AdmissionConfig& ac) {
  SchedulerConfig c;
  c.enabled = true;
  c.max_concurrent = ac.max_concurrent;
  c.queue_timeout_ms = ac.queue_timeout_ms;
  c.default_tenant.max_queued = ac.max_queued;
  c.default_tenant.priority = 0;
  // The historical ladder had one rung: queue, then reject. No budget
  // shrinking, no cross-tenant shedding.
  c.budget_shrink_occupancy = 1;
  c.max_queued_total = 0;
  return c;
}

TenantScheduler::TenantScheduler(const SchedulerConfig& config,
                                 bool legacy_mode, MemoryTracker* engine_root)
    : legacy_(legacy_mode),
      queue_timeout_ms_(config.queue_timeout_ms),
      max_concurrent_(std::max(1, config.max_concurrent)),
      aging_dispatches_(std::max(1, config.aging_dispatches)),
      budget_shrink_occupancy_(config.budget_shrink_occupancy),
      budget_shrink_factor_(config.budget_shrink_factor),
      retry_after_ms_(config.retry_after_ms),
      max_queued_total_(config.max_queued_total),
      cursor_(kNumPriorityClasses, 0) {
  tenants_.reserve(config.tenants.size() + 1);
  for (const TenantSpec& spec : config.tenants) {
    TenantState t;
    t.spec = ClampSpec(spec);
    by_name_.emplace(t.spec.name, static_cast<int>(tenants_.size()));
    tenants_.push_back(std::move(t));
  }
  TenantState def;
  def.spec = ClampSpec(config.default_tenant);
  def.spec.name = "default";
  default_index_ = static_cast<int>(tenants_.size());
  tenants_.push_back(std::move(def));
  for (TenantState& t : tenants_) {
    if (t.spec.memory_bytes > 0 && engine_root != nullptr) {
      t.memory = std::make_unique<MemoryTracker>(
          "tenant-" + t.spec.name, t.spec.memory_bytes, engine_root);
    }
  }
}

TenantScheduler::~TenantScheduler() = default;

int TenantScheduler::tenant_index(const std::string& name) const {
  auto it = by_name_.find(name);
  return it != by_name_.end() ? it->second : default_index_;
}

MemoryTracker* TenantScheduler::tenant_memory(int index) const {
  return tenants_[static_cast<size_t>(index)].memory.get();
}

const std::string& TenantScheduler::tenant_name(int index) const {
  return tenants_[static_cast<size_t>(index)].spec.name;
}

int TenantScheduler::EffectiveClassLocked(const TenantState& t) const {
  if (!t.queue.empty() && t.queue.front()->promoted) return 0;
  return t.spec.priority;
}

bool TenantScheduler::EligibleLocked(const TenantState& t) const {
  return !t.queue.empty() &&
         (t.spec.max_concurrent <= 0 || t.running < t.spec.max_concurrent);
}

void TenantScheduler::RemoveFromQueueLocked(
    const std::shared_ptr<Waiter>& w) {
  TenantState& t = tenants_[static_cast<size_t>(w->tenant)];
  for (auto it = t.queue.begin(); it != t.queue.end(); ++it) {
    if (*it == w) {
      t.queue.erase(it);
      --queued_now_;
      break;
    }
  }
  // Classic DRR anti-hoarding: an emptied queue forfeits its credit.
  if (t.queue.empty()) t.deficit = 0;
}

Status TenantScheduler::ThrottleStatusLocked(TenantState& t,
                                             const std::string& why) {
  if (legacy_) return Status::AdmissionRejected(why);
  double occupancy =
      t.spec.max_queued > 0
          ? static_cast<double>(t.queue.size()) / t.spec.max_queued
          : 1.0;
  double retry = retry_after_ms_ * (1.0 + occupancy);
  return Status::TenantThrottled(
      "tenant '" + t.spec.name + "' throttled: " + why + "; retry-after-ms=" +
      std::to_string(static_cast<long long>(std::llround(retry))));
}

std::shared_ptr<TenantScheduler::Waiter> TenantScheduler::PickNextLocked() {
  int best = kNumPriorityClasses;
  for (const TenantState& t : tenants_) {
    if (!EligibleLocked(t)) continue;
    best = std::min(best, EffectiveClassLocked(t));
  }
  if (best == kNumPriorityClasses) return nullptr;

  // Weighted deficit round robin within the winning class, unit cost per
  // grant. The cursor stays on a tenant while its deficit lasts (so a
  // weight-3 tenant takes 3 consecutive grants per lap); advancing onto a
  // tenant replenishes its deficit by its weight. One lap replenishes every
  // candidate by >= 1, so a winner exists within two laps.
  const size_t n = tenants_.size();
  auto servable = [&](const TenantState& t) {
    return EligibleLocked(t) && EffectiveClassLocked(t) == best;
  };
  std::shared_ptr<Waiter> winner;
  size_t& cur = cursor_[static_cast<size_t>(best)];
  cur %= n;
  for (size_t step = 0; step <= 2 * n; ++step) {
    TenantState& t = tenants_[cur];
    if (servable(t) && t.deficit >= 1) {
      t.deficit -= 1;
      winner = t.queue.front();
      break;
    }
    cur = (cur + 1) % n;
    TenantState& next = tenants_[cur];
    if (servable(next)) next.deficit += next.spec.weight;
  }
  if (winner == nullptr) return nullptr;

  // Aging: every eligible front waiter that lost this dispatch moves one
  // step toward promotion into the top class — the starvation bound.
  for (TenantState& t : tenants_) {
    if (!EligibleLocked(t)) continue;
    const std::shared_ptr<Waiter>& front = t.queue.front();
    if (front == winner || front->promoted) continue;
    if (++front->passed_over >= aging_dispatches_) {
      front->promoted = true;
      ++t.aging_promotions;
    }
  }
  return winner;
}

void TenantScheduler::DispatchLocked() {
  bool eager_wake = false;
  while (running_ < max_concurrent_) {
    std::shared_ptr<Waiter> w = PickNextLocked();
    if (w == nullptr) break;
    TenantState& t = tenants_[static_cast<size_t>(w->tenant)];
    t.queue.pop_front();
    --queued_now_;
    if (t.queue.empty()) t.deficit = 0;
    w->granted = true;
    ++running_;
    ++t.running;
    t.peak_running = std::max(t.peak_running, t.running);
    ++dispatches_;
    // Lazy wakeup for batch classes: waking a sleeping waiter here lets the
    // OS boost it over the *releasing* thread — an interactive query's tail
    // then pays for the batch query it handed its slot to. Interactive
    // grants (top class or promoted) are notified eagerly; lower classes
    // discover the grant at their next wait slice (<= kWaitSlice), which is
    // within their latency class.
    if (t.spec.priority == 0 || w->promoted) eager_wake = true;
  }
  if (eager_wake) cv_.notify_all();
}

Result<Admission> TenantScheduler::Admit(const std::string& tenant,
                                         CancellationToken* cancel,
                                         FaultInjector* faults) {
  std::unique_lock<std::mutex> lock(mu_);
  const int idx = tenant_index(tenant);
  TenantState& t = tenants_[static_cast<size_t>(idx)];

  // Overload ladder step 2 (decided at arrival): a backed-up queue buys
  // admission with a shrunk optimizer budget.
  const bool shrink =
      !legacy_ && budget_shrink_occupancy_ < 1 && t.spec.max_queued > 0 &&
      static_cast<double>(t.queue.size()) >=
          budget_shrink_occupancy_ * t.spec.max_queued &&
      !t.queue.empty();

  bool waited = false;
  if (t.queue.empty() && running_ < max_concurrent_ &&
      (t.spec.max_concurrent <= 0 || t.running < t.spec.max_concurrent)) {
    // Slot free, nobody ahead of us in this tenant: grant immediately.
    // (Waiters of *other* tenants can only be queued here when they are
    // quota-blocked — dispatch is otherwise work-conserving — so taking
    // the slot jumps nobody who could use it.)
    ++running_;
    ++t.running;
    t.peak_running = std::max(t.peak_running, t.running);
    ++dispatches_;
  } else {
    if (queue_timeout_ms_ <= 0) {
      // Explicit no-wait semantics: with a zero timeout nothing ever
      // queues, even when max_queued > 0.
      std::string why = "all " + std::to_string(max_concurrent_) +
                        " execution slots busy (no queueing configured)";
      if (legacy_) {
        ++t.rejected;
        return Status::AdmissionRejected(why);
      }
      ++t.throttled;
      return ThrottleStatusLocked(t, why);
    }
    if (static_cast<int>(t.queue.size()) >= t.spec.max_queued) {
      std::string why = "admission queue full (" +
                        std::to_string(t.queue.size()) + " waiting for " +
                        std::to_string(max_concurrent_) + " slots)";
      if (legacy_) {
        ++t.rejected;
        return Status::AdmissionRejected(why);
      }
      ++t.throttled;
      return ThrottleStatusLocked(t, why);
    }
    if (!legacy_ && max_queued_total_ > 0 && queued_now_ >= max_queued_total_) {
      // Overload ladder step 3: the global backlog is at its bound. Shed
      // the lowest-priority queued waiter if this arrival outranks it;
      // otherwise the arrival itself is turned away.
      TenantState* victim_tenant = nullptr;
      int victim_class = t.spec.priority;
      for (TenantState& vt : tenants_) {
        if (vt.queue.empty()) continue;
        // Promoted fronts are top-class; shed from the back (the least
        // invested waiter), which is never promoted while a front exists.
        int c = vt.queue.size() == 1 && vt.queue.front()->promoted
                    ? 0
                    : vt.spec.priority;
        if (c > victim_class) {
          victim_class = c;
          victim_tenant = &vt;
        }
      }
      if (victim_tenant == nullptr) {
        ++t.throttled;
        return ThrottleStatusLocked(
            t, "global admission backlog full (" +
                   std::to_string(queued_now_) + " queued)");
      }
      std::shared_ptr<Waiter> victim = victim_tenant->queue.back();
      victim->shed = true;
      victim->shed_status = ThrottleStatusLocked(
          *victim_tenant, "shed by a higher-priority arrival");
      RemoveFromQueueLocked(victim);
      ++victim_tenant->shed;
      cv_.notify_all();
    }

    auto w = std::make_shared<Waiter>();
    w->tenant = idx;
    t.queue.push_back(w);
    ++queued_now_;
    ++t.queued;
    waited = true;
    // A freed-but-quota-blocked slot may be grantable now that a new
    // tenant is represented in the queue.
    DispatchLocked();

    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(queue_timeout_ms_));
    while (!w->granted && !w->shed) {
      if (cancel != nullptr && cancel->cancelled()) {
        RemoveFromQueueLocked(w);
        return cancel->status();
      }
      auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      auto slice = std::min<std::chrono::steady_clock::duration>(
          kWaitSlice, deadline - now);
      cv_.wait_for(lock, slice);
    }
    if (w->shed) return w->shed_status;
    if (!w->granted) {
      RemoveFromQueueLocked(w);
      std::string why = "queued for " + std::to_string(queue_timeout_ms_) +
                        " ms without getting one of " +
                        std::to_string(max_concurrent_) + " execution slots";
      if (legacy_) {
        ++t.rejected;
        return Status::AdmissionRejected(why);
      }
      ++t.throttled;
      return ThrottleStatusLocked(t, why);
    }
  }

  // Slot held from here on: every early return must give it back.
  if (faults != nullptr) {
    Status injected = faults->MaybeFail(FaultSite::kAdmit);
    if (!injected.ok()) {
      --running_;
      --t.running;
      DispatchLocked();
      return injected;
    }
  }

  Admission adm;
  adm.ticket = next_ticket_++;
  adm.tenant_index = idx;
  adm.queued = waited;
  adm.budget_factor = shrink ? budget_shrink_factor_ : 1.0;
  if (shrink) ++t.budget_shrunk;
  ++t.admitted;
  return adm;
}

void TenantScheduler::Release(const Admission& admission) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantState& t = tenants_[static_cast<size_t>(admission.tenant_index)];
  --running_;
  --t.running;
  DispatchLocked();
}

SchedulerStats TenantScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats out;
  out.dispatches = dispatches_;
  out.per_tenant.reserve(tenants_.size());
  for (const TenantState& t : tenants_) {
    TenantStats ts;
    ts.name = t.spec.name;
    ts.admitted = t.admitted;
    ts.queued = t.queued;
    ts.throttled = t.throttled;
    ts.shed = t.shed;
    ts.rejected = t.rejected;
    ts.budget_shrunk = t.budget_shrunk;
    ts.aging_promotions = t.aging_promotions;
    ts.running = t.running;
    ts.queue_depth = static_cast<int>(t.queue.size());
    ts.peak_running = t.peak_running;
    if (t.memory != nullptr) {
      ts.memory_used_bytes = t.memory->used_bytes();
      ts.memory_peak_bytes = t.memory->peak_bytes();
    }
    out.admitted += ts.admitted;
    out.queued += ts.queued;
    out.throttled += ts.throttled;
    out.shed += ts.shed;
    out.rejected += ts.rejected;
    out.budget_shrunk += ts.budget_shrunk;
    out.aging_promotions += ts.aging_promotions;
    out.per_tenant.push_back(std::move(ts));
  }
  return out;
}

}  // namespace cbqt
