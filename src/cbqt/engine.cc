#include "cbqt/engine.h"

#include <chrono>

#include "parser/parser.h"

namespace cbqt {

namespace {

double MonotonicMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

}  // namespace

Result<PreparedQuery> QueryEngine::Prepare(const std::string& sql) const {
  double t0 = MonotonicMs();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  auto optimized = optimizer_.Optimize(*parsed.value());
  if (!optimized.ok()) return optimized.status();
  PreparedQuery out;
  out.tree = std::move(optimized->tree);
  out.plan = std::move(optimized->plan);
  out.cost = optimized->cost;
  out.stats = std::move(optimized->stats);
  out.optimize_ms = MonotonicMs() - t0;
  return out;
}

Result<QueryResult> QueryEngine::Execute(PreparedQuery prepared) const {
  // Row-budget governor for this execution (OptimizerBudget::max_exec_rows):
  // a runaway query fails fast with kBudgetExhausted instead of grinding on.
  BudgetTracker exec_budget(config_.budget);
  Executor executor(db_, config_.budget.max_exec_rows > 0 ? &exec_budget
                                                          : nullptr);
  ExecStats exec_stats;
  double t0 = MonotonicMs();
  auto rows = executor.Execute(*prepared.plan, &exec_stats);
  double t1 = MonotonicMs();
  if (!rows.ok()) return rows.status();
  QueryResult out;
  out.rows = std::move(rows.value());
  out.prepared = std::move(prepared);
  out.execute_ms = t1 - t0;
  out.rows_processed = exec_stats.rows_processed;
  return out;
}

Result<QueryResult> QueryEngine::Run(const std::string& sql) const {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return Execute(std::move(prepared.value()));
}

}  // namespace cbqt
