#include "cbqt/engine.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "parser/parser.h"
#include "sql/parameterize.h"

namespace cbqt {

namespace {

double MonotonicMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

bool IsDegraded(const CbqtStats& stats) {
  return stats.budget_exhausted || stats.searches_degraded > 0;
}

}  // namespace

QueryEngine::QueryEngine(const Database& db, CbqtConfig config,
                         CostParams params)
    : db_(db), optimizer_(db, config, params), config_(config) {
  if (config_.plan_cache.enabled()) {
    plan_cache_ = std::make_unique<PlanCache>(config_.plan_cache);
    // One worker is plenty: upgrades are rare (bounded per statement) and
    // coarse (a whole re-optimization each).
    upgrade_pool_ = std::make_unique<ThreadPool>(1);
  }
}

PlanCacheStats QueryEngine::plan_cache_stats() const {
  return plan_cache_ != nullptr ? plan_cache_->stats() : PlanCacheStats{};
}

void QueryEngine::WaitForUpgrades() const {
  if (upgrade_pool_ != nullptr) upgrade_pool_->Wait();
}

Result<PreparedQuery> QueryEngine::PrepareUncached(
    const std::string& sql) const {
  double t0 = MonotonicMs();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  auto optimized = optimizer_.Optimize(*parsed.value());
  if (!optimized.ok()) return optimized.status();
  PreparedQuery out;
  out.tree = std::move(optimized->tree);
  out.plan = std::move(optimized->plan);
  out.cost = optimized->cost;
  out.stats = std::move(optimized->stats);
  out.degraded = IsDegraded(out.stats);
  out.optimize_ms = MonotonicMs() - t0;
  return out;
}

void QueryEngine::MaybeUpgrade(
    const std::shared_ptr<const CachedPlanEntry>& entry, uint64_t epoch) const {
  int64_t hit_count = entry->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!entry->degraded) return;
  const PlanCacheConfig& pc = config_.plan_cache;
  if (hit_count < pc.upgrade_after_hits) return;
  if (entry->upgrade_attempts >= pc.max_upgrade_attempts) return;
  bool expected = false;
  if (!entry->upgrade_in_flight.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // an upgrade of this statement is already in flight
  }
  // CAS won: hand the re-optimization to the background pool and keep
  // serving the degraded plan. The pool outlives every captured reference
  // (it is the first engine member destroyed, and its destructor drains).
  upgrade_pool_->Submit(
      [this, entry, epoch]() { RunUpgrade(entry, epoch); });
}

void QueryEngine::RunUpgrade(std::shared_ptr<const CachedPlanEntry> entry,
                             uint64_t epoch) const {
  const PlanCacheConfig& pc = config_.plan_cache;
  // Re-optimize the original parameterized statement under an enlarged
  // budget: the original budget scaled by multiplier^attempt, so persistent
  // exhaustion climbs the ladder instead of retrying the same ceiling.
  double factor = std::pow(pc.upgrade_budget_multiplier,
                           static_cast<double>(entry->upgrade_attempts + 1));
  OptimizerBudget enlarged = ScaledBudget(entry->planned_budget, factor);
  auto optimized = optimizer_.Optimize(*entry->source_tree, enlarged);

  auto fresh = std::make_shared<CachedPlanEntry>();
  fresh->key = entry->key;
  fresh->stats_epoch = epoch;
  fresh->num_params = entry->num_params;
  fresh->planned_budget = entry->planned_budget;
  fresh->upgrade_attempts = entry->upgrade_attempts + 1;
  fresh->source_tree = entry->source_tree->Clone();
  if (optimized.ok()) {
    fresh->tree = std::move(optimized->tree);
    fresh->plan = std::move(optimized->plan);
    fresh->cost = optimized->cost;
    fresh->stats = std::move(optimized->stats);
    fresh->degraded = IsDegraded(fresh->stats);
  } else {
    // Keep serving the degraded plan, but burn the attempt so a statement
    // that cannot be re-optimized stops retrying.
    fresh->tree = entry->tree->Clone();
    fresh->plan = entry->plan->Clone();
    fresh->cost = entry->cost;
    fresh->stats = entry->stats;
    fresh->degraded = true;
  }
  plan_cache_->RecordUpgradeAttempt(!fresh->degraded);
  plan_cache_->Put(fresh);
  entry->upgrade_in_flight.store(false, std::memory_order_release);
}

Result<PreparedQuery> QueryEngine::Prepare(const std::string& sql) const {
  if (plan_cache_ == nullptr) return PrepareUncached(sql);

  double t0 = MonotonicMs();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  ParameterizedStatement ps = ParameterizeQuery(parsed.value().get());
  // Captured before optimization: if Analyze() runs concurrently the entry
  // is cached under the old epoch and lazily invalidated on its next lookup.
  uint64_t epoch = db_.stats_epoch();

  auto entry = plan_cache_->Find(ps.key, epoch);
  if (entry != nullptr) {
    MaybeUpgrade(entry, epoch);
    PreparedQuery out;
    out.tree = entry->tree->Clone();
    BindTreeParams(out.tree.get(), ps.params);
    out.plan = entry->plan->Clone();
    RebindPlanParams(out.plan.get(), ps.params);
    out.cost = entry->cost;
    out.stats = entry->stats;
    out.from_plan_cache = true;
    out.degraded = entry->degraded;
    out.optimize_ms = MonotonicMs() - t0;
    plan_cache_->RecordHitLatency(out.optimize_ms);
    return out;
  }

  auto optimized = optimizer_.Optimize(*parsed.value());
  if (!optimized.ok()) return optimized.status();

  auto fresh = std::make_shared<CachedPlanEntry>();
  fresh->key = std::move(ps.key);
  fresh->stats_epoch = epoch;
  fresh->tree = optimized->tree->Clone();
  fresh->plan = optimized->plan->Clone();
  fresh->source_tree = parsed.value()->Clone();
  fresh->cost = optimized->cost;
  fresh->stats = optimized->stats;
  fresh->num_params = ps.params.size();
  fresh->degraded = IsDegraded(fresh->stats);
  fresh->planned_budget = config_.budget;
  plan_cache_->Put(std::move(fresh));

  PreparedQuery out;
  out.tree = std::move(optimized->tree);
  out.plan = std::move(optimized->plan);
  out.cost = optimized->cost;
  out.stats = std::move(optimized->stats);
  out.degraded = IsDegraded(out.stats);
  out.optimize_ms = MonotonicMs() - t0;
  plan_cache_->RecordMissLatency(out.optimize_ms);
  return out;
}

Result<QueryResult> QueryEngine::Execute(PreparedQuery prepared) const {
  // Row-budget governor for this execution (OptimizerBudget::max_exec_rows):
  // a runaway query fails fast with kBudgetExhausted instead of grinding on.
  BudgetTracker exec_budget(config_.budget);
  Executor executor(db_, config_.budget.max_exec_rows > 0 ? &exec_budget
                                                          : nullptr);
  ExecStats exec_stats;
  double t0 = MonotonicMs();
  auto rows = executor.Execute(*prepared.plan, &exec_stats);
  double t1 = MonotonicMs();
  if (!rows.ok()) return rows.status();
  QueryResult out;
  out.rows = std::move(rows.value());
  out.prepared = std::move(prepared);
  out.execute_ms = t1 - t0;
  out.rows_processed = exec_stats.rows_processed;
  return out;
}

Result<QueryResult> QueryEngine::Run(const std::string& sql) const {
  auto prepared = Prepare(sql);
  if (!prepared.ok()) return prepared.status();
  return Execute(std::move(prepared.value()));
}

}  // namespace cbqt
