#include "cbqt/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <utility>

#include "optimizer/card_est.h"
#include "parser/parser.h"
#include "sql/parameterize.h"

namespace cbqt {

namespace {

double MonotonicMs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double, std::milli>(now).count();
}

bool IsDegraded(const CbqtStats& stats) {
  return stats.budget_exhausted || stats.searches_degraded > 0;
}

/// RAII pairing of Admit/EndQuery so every exit path (including early
/// returns on parse errors) frees the admission slot and records the
/// outcome.
class AdmissionScope {
 public:
  using EndFn = std::function<void(uint64_t, const Status&)>;
  AdmissionScope(uint64_t id, EndFn end) : id_(id), end_(std::move(end)) {}
  ~AdmissionScope() { end_(id_, status_); }
  AdmissionScope(const AdmissionScope&) = delete;
  AdmissionScope& operator=(const AdmissionScope&) = delete;

  void set_status(const Status& s) { status_ = s; }

 private:
  uint64_t id_;
  EndFn end_;
  Status status_;
};

}  // namespace

QueryEngine::QueryEngine(const Database& db, CbqtConfig config,
                         CostParams params)
    : db_(db), optimizer_(db, config, params), config_(config) {
  const GuardrailConfig& gr = config_.guardrails;
  if (gr.engine_memory_bytes > 0 || gr.query_memory_bytes > 0 ||
      gr.any_tenant_memory_quota()) {
    root_memory_ = std::make_unique<MemoryTracker>("engine",
                                                   gr.engine_memory_bytes);
    // Pressure ladder, engine level: shed cached plans before failing a
    // reservation against the engine budget...
    root_memory_->set_pressure_callback([this](int64_t missing) -> int64_t {
      if (plan_cache_ == nullptr) return 0;
      return plan_cache_->EvictBytes(missing);
    });
    // ...and as a last resort fail the largest admitted query. The victim
    // is cancelled with kResourceExhausted through the same token plumbing
    // as a user cancel; when the requester itself is the largest there is
    // no victim and the requester's own reservation fails.
    root_memory_->set_victim_callback(
        [this](const MemoryTracker* requester, int64_t missing) -> bool {
          (void)missing;
          std::lock_guard<std::mutex> lock(admission_mu_);
          const ActiveQuery* victim = nullptr;
          int64_t victim_used = -1;
          for (const auto& [id, aq] : active_) {
            if (aq.memory == nullptr) continue;
            int64_t used = aq.memory->used_bytes();
            if (used > victim_used) {
              victim_used = used;
              victim = &aq;
            }
          }
          if (victim == nullptr || victim->memory.get() == requester) {
            return false;  // requester is the largest: it fails itself
          }
          if (victim->token == nullptr) return false;
          bool tripped = victim->token->CancelWith(Status::ResourceExhausted(
              "cancelled as engine memory-pressure victim (largest admitted "
              "query, " +
              std::to_string(victim_used) + " bytes)"));
          if (tripped) {
            memory_victims_.fetch_add(1, std::memory_order_relaxed);
          }
          return tripped;
        });
  }
  if (gr.scheduler.enabled_and_valid()) {
    scheduler_ = std::make_unique<TenantScheduler>(gr.scheduler,
                                                   /*legacy_mode=*/false,
                                                   root_memory_.get());
  } else if (gr.admission.enabled()) {
    // The historical single-queue admission runs as a one-tenant scheduler
    // in legacy mode: same statuses (kAdmissionRejected), same counters.
    scheduler_ = std::make_unique<TenantScheduler>(
        TenantScheduler::FromLegacy(gr.admission), /*legacy_mode=*/true,
        root_memory_.get());
  }
  if (config_.mqo.enabled) {
    mqo_ = std::make_unique<MqoRegistry>(config_.mqo, root_memory_.get());
  }
  if (config_.plan_cache.enabled()) {
    plan_cache_ =
        std::make_unique<PlanCache>(config_.plan_cache, root_memory_.get());
    // One worker is plenty: upgrades are rare (bounded per statement) and
    // coarse (a whole re-optimization each).
    upgrade_pool_ = std::make_unique<ThreadPool>(1);
    shutdown_token_ = std::make_shared<CancellationToken>();

    schema_fingerprint_ = db_.catalog().Fingerprint();
    const PlanCacheConfig& pc = config_.plan_cache;
    if (!pc.snapshot_path.empty()) {
      // Warm-start: best effort. A missing/stale/corrupt snapshot simply
      // leaves the cache cold; the serde layer guarantees a typed error for
      // malformed bytes, so nothing half-loaded can ever execute.
      (void)plan_cache_->LoadSnapshot(pc.snapshot_path, db_.stats_epoch(),
                                      schema_fingerprint_);
    }
    if (!pc.shared_store_path.empty()) {
      auto store = PlanStore::Open(pc.shared_store_path, schema_fingerprint_);
      // A store of a different schema (or a malformed one) is refused:
      // run without sharing rather than share wrong plans.
      if (store.ok()) plan_store_ = std::move(*store);
    }
  }
}

QueryEngine::~QueryEngine() {
  // Shutdown ordering: trip the shutdown token first so an in-flight
  // background upgrade unwinds at its next polling quantum instead of
  // finishing a long re-optimization, then cancel whatever queries are
  // still admitted, then drain the upgrade pool explicitly while
  // plan_cache_ and optimizer_ are guaranteed alive. (Member order alone
  // would destroy the pool first too, but only after blocking on the full
  // upgrade; and it would not stop admitted queries from racing teardown.)
  if (shutdown_token_ != nullptr) {
    shutdown_token_->CancelWith(Status::Cancelled("engine shutting down"));
  }
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    for (auto& [id, aq] : active_) {
      if (aq.token != nullptr) {
        aq.token->CancelWith(Status::Cancelled("engine shutting down"));
      }
    }
  }
  if (upgrade_pool_ != nullptr) upgrade_pool_->Wait();
  // Snapshot after the pool drain so the file carries the upgraded entries
  // (and never races a background Put).
  if (plan_cache_ != nullptr && config_.plan_cache.snapshot_on_shutdown &&
      !config_.plan_cache.snapshot_path.empty()) {
    (void)plan_cache_->SaveSnapshot(config_.plan_cache.snapshot_path,
                                    schema_fingerprint_);
  }
}

PlanCacheStats QueryEngine::plan_cache_stats() const {
  return plan_cache_ != nullptr ? plan_cache_->stats() : PlanCacheStats{};
}

PlanStoreStats QueryEngine::plan_store_stats() const {
  return plan_store_ != nullptr ? plan_store_->stats() : PlanStoreStats{};
}

Status QueryEngine::SavePlanSnapshot() const {
  if (plan_cache_ == nullptr) {
    return Status::InvalidArgument("plan cache is disabled");
  }
  if (config_.plan_cache.snapshot_path.empty()) {
    return Status::InvalidArgument("no snapshot path configured");
  }
  return plan_cache_->SaveSnapshot(config_.plan_cache.snapshot_path,
                                   schema_fingerprint_);
}

void QueryEngine::WaitForUpgrades() const {
  if (upgrade_pool_ != nullptr) upgrade_pool_->Wait();
}

GuardrailStats QueryEngine::guardrail_stats() const {
  GuardrailStats out;
  out.admitted = admitted_.load(std::memory_order_relaxed);
  if (scheduler_ != nullptr) {
    SchedulerStats ss = scheduler_->stats();
    out.queued = ss.queued;
    out.admission_rejected = ss.rejected;
    out.tenant_throttled = ss.throttled;
    out.tenant_shed = ss.shed;
    out.budget_shrunk = ss.budget_shrunk;
    out.aging_promotions = ss.aging_promotions;
  }
  out.cancelled = cancelled_.load(std::memory_order_relaxed);
  out.resource_exhausted =
      resource_exhausted_.load(std::memory_order_relaxed);
  out.memory_victims = memory_victims_.load(std::memory_order_relaxed);
  if (plan_cache_ != nullptr) {
    out.cache_shed_bytes = plan_cache_->stats().shed_bytes;
  }
  if (root_memory_ != nullptr) {
    out.engine_used_bytes = root_memory_->used_bytes();
    out.engine_peak_bytes = root_memory_->peak_bytes();
  }
  if (mqo_ != nullptr) {
    MqoStats mqo = mqo_->stats();
    out.mqo_batches = mqo.batches_formed;
    out.mqo_shared_subplan_hits = mqo.shared_subplan_hits;
    out.mqo_scan_streams = mqo.scan_streams + mqo.materialize_streams;
    out.mqo_scan_consumers = mqo.scan_consumers;
    out.mqo_rows_shared = mqo.rows_shared;
    out.mqo_bytes_saved = mqo.bytes_saved;
    out.mqo_pressure_fallbacks = mqo.pressure_fallbacks;
  }
  return out;
}

MqoStats QueryEngine::mqo_stats() const {
  return mqo_ != nullptr ? mqo_->stats() : MqoStats{};
}

SchedulerStats QueryEngine::scheduler_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats() : SchedulerStats{};
}

bool QueryEngine::Cancel(uint64_t query_id) const {
  // The token is tripped while admission_mu_ is held: EndQuery removes
  // registry entries under the same mutex, so the (possibly caller-owned)
  // token pointer cannot dangle during the trip.
  std::lock_guard<std::mutex> lock(admission_mu_);
  auto it = active_.find(query_id);
  if (it == active_.end() || it->second.token == nullptr) return false;
  return it->second.token->Cancel();
}

std::vector<uint64_t> QueryEngine::ActiveQueryIds() const {
  std::lock_guard<std::mutex> lock(admission_mu_);
  std::vector<uint64_t> out;
  out.reserve(active_.size());
  for (const auto& [id, aq] : active_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

Result<uint64_t> QueryEngine::Admit(CancellationToken* cancel,
                                    const std::string& tenant) const {
  // Cancel-before-admit: a token tripped at entry fails fast without
  // consuming an admission slot or doing any work.
  if (cancel != nullptr && cancel->cancelled()) {
    Status st = cancel->status();
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  // Pre-admission fault point: nothing is held yet, so a fire here proves
  // the typed error path without any cleanup obligations. (The scheduler
  // fires a second, post-grant kAdmit hit that proves slot release.)
  if (config_.fault_injector != nullptr) {
    Status injected = config_.fault_injector->MaybeFail(FaultSite::kAdmit);
    if (!injected.ok()) return injected;
  }

  Admission adm;
  if (scheduler_ != nullptr) {
    auto granted =
        scheduler_->Admit(tenant, cancel, config_.fault_injector.get());
    if (!granted.ok()) {
      if (cancel != nullptr && cancel->cancelled()) {
        cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
      return granted.status();
    }
    adm = *granted;
  }

  std::lock_guard<std::mutex> lock(admission_mu_);
  uint64_t id = next_query_id_++;
  ActiveQuery aq;
  if (cancel != nullptr) {
    aq.token = cancel;
  } else {
    aq.owned_token = std::make_shared<CancellationToken>();
    aq.token = aq.owned_token.get();
  }
  // The per-query tracker charges through the tenant's quota tracker when
  // the tenant has one, otherwise directly through the engine root.
  MemoryTracker* parent = root_memory_.get();
  if (scheduler_ != nullptr) {
    if (MemoryTracker* tm = scheduler_->tenant_memory(adm.tenant_index)) {
      parent = tm;
    }
  }
  if (parent != nullptr) {
    aq.memory = std::make_unique<MemoryTracker>(
        "query-" + std::to_string(id), config_.guardrails.query_memory_bytes,
        parent);
  }
  if (scheduler_ != nullptr) {
    aq.admission = adm;
    aq.has_admission = true;
  }
  active_.emplace(id, std::move(aq));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  // The admitted operation joins the in-flight MQO batch (lock order:
  // admission → registry).
  if (mqo_ != nullptr) mqo_->JoinBatch(id);
  return id;
}

void QueryEngine::EndQuery(uint64_t id, const Status& final_status) const {
  switch (final_status.code()) {
    case StatusCode::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StatusCode::kResourceExhausted:
      resource_exhausted_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
  Admission adm;
  bool release = false;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto it = active_.find(id);
    if (it != active_.end()) {
      adm = it->second.admission;
      release = it->second.has_admission;
      active_.erase(it);
    }
  }
  // Outside admission_mu_: the slot release dispatches queued waiters
  // under the scheduler's own lock, and the last member out retires the
  // MQO batch's shared scan streams (stream locks, consumer wakeups).
  if (release && scheduler_ != nullptr) scheduler_->Release(adm);
  if (mqo_ != nullptr) mqo_->LeaveBatch(id);
}

QueryGuards QueryEngine::GuardsFor(uint64_t id) const {
  QueryGuards g;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto it = active_.find(id);
    if (it != active_.end()) {
      g.cancel = it->second.token;
      g.memory = it->second.memory.get();
    }
  }
  g.faults = config_.fault_injector.get();
  return g;
}

OptimizerBudget QueryEngine::BudgetFor(uint64_t id) const {
  double factor = 1.0;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    auto it = active_.find(id);
    if (it != active_.end() && it->second.has_admission) {
      factor = it->second.admission.budget_factor;
    }
  }
  return ScaledBudget(config_.budget, factor);
}

Result<CbqtResult> QueryEngine::OptimizeTree(const QueryBlock& query,
                                             const OptimizerBudget& budget,
                                             const QueryGuards& guards) const {
  if (mqo_ != nullptr) {
    return optimizer_.Optimize(query, budget, guards,
                               mqo_->PrepareCaches(db_.stats_epoch()));
  }
  return optimizer_.Optimize(query, budget, guards);
}

Result<PreparedQuery> QueryEngine::PrepareUncached(
    const std::string& sql, const OptimizerBudget& budget,
    const QueryGuards& guards) const {
  double t0 = MonotonicMs();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  auto optimized = OptimizeTree(*parsed.value(), budget, guards);
  if (!optimized.ok()) return optimized.status();
  PreparedQuery out;
  out.tree = std::move(optimized->tree);
  out.plan = std::move(optimized->plan);
  out.cost = optimized->cost;
  out.stats = std::move(optimized->stats);
  out.degraded = IsDegraded(out.stats);
  out.optimize_ms = MonotonicMs() - t0;
  return out;
}

void QueryEngine::MaybeUpgrade(
    const std::shared_ptr<const CachedPlanEntry>& entry, uint64_t epoch) const {
  int64_t hit_count = entry->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!entry->degraded) return;
  const PlanCacheConfig& pc = config_.plan_cache;
  if (hit_count < pc.upgrade_after_hits) return;
  if (entry->upgrade_attempts >= pc.max_upgrade_attempts) return;
  bool expected = false;
  if (!entry->upgrade_in_flight.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;  // an upgrade of this statement is already in flight
  }
  // CAS won: hand the re-optimization to the background pool and keep
  // serving the degraded plan. The pool outlives every captured reference
  // (the engine destructor trips the shutdown token and drains it while the
  // cache and optimizer are still alive).
  upgrade_pool_->Submit(
      [this, entry, epoch]() { RunUpgrade(entry, epoch); });
}

void QueryEngine::RunUpgrade(std::shared_ptr<const CachedPlanEntry> entry,
                             uint64_t epoch) const {
  const PlanCacheConfig& pc = config_.plan_cache;
  // Hold the database read lock like any foreground engine operation: the
  // re-optimization must not race a concurrent Analyze().
  auto db_lock = db_.ReadLock();
  // Re-optimize the original parameterized statement under an enlarged
  // budget: the original budget scaled by multiplier^attempt, so persistent
  // exhaustion climbs the ladder instead of retrying the same ceiling.
  double factor = std::pow(pc.upgrade_budget_multiplier,
                           static_cast<double>(entry->upgrade_attempts + 1));
  OptimizerBudget enlarged = ScaledBudget(entry->planned_budget, factor);
  // The shutdown token makes an upgrade caught mid-flight by ~QueryEngine
  // unwind at its next per-state poll instead of finishing the whole
  // re-optimization against an engine that is tearing down.
  QueryGuards upgrade_guards;
  upgrade_guards.cancel = shutdown_token_.get();
  auto optimized =
      optimizer_.Optimize(*entry->source_tree, enlarged, upgrade_guards);
  if (shutdown_token_->cancelled()) {
    // Engine teardown in progress: do not touch the cache; leave the
    // in-flight flag set so no new upgrade starts either.
    return;
  }

  auto fresh = std::make_shared<CachedPlanEntry>();
  fresh->key = entry->key;
  fresh->stats_epoch = epoch;
  fresh->num_params = entry->num_params;
  fresh->param_bands = entry->param_bands;
  fresh->planned_budget = entry->planned_budget;
  fresh->upgrade_attempts = entry->upgrade_attempts + 1;
  fresh->source_tree = entry->source_tree->Clone();
  if (optimized.ok()) {
    fresh->tree = std::move(optimized->tree);
    fresh->plan = std::move(optimized->plan);
    fresh->cost = optimized->cost;
    fresh->stats = std::move(optimized->stats);
    fresh->degraded = IsDegraded(fresh->stats);
  } else {
    // Keep serving the degraded plan, but burn the attempt so a statement
    // that cannot be re-optimized stops retrying.
    fresh->tree = entry->tree->Clone();
    fresh->plan = entry->plan->Clone();
    fresh->cost = entry->cost;
    fresh->stats = entry->stats;
    fresh->degraded = true;
  }
  fresh->bytes = EstimateEntryBytes(*fresh);
  plan_cache_->RecordUpgradeAttempt(!fresh->degraded);
  if (plan_store_ != nullptr && !fresh->degraded) {
    // An upgraded plan is exactly what peers want: publish the improvement.
    if (plan_store_->Publish(*fresh).ok()) plan_cache_->RecordStorePublish();
  }
  plan_cache_->Put(fresh);
  entry->upgrade_in_flight.store(false, std::memory_order_release);
}

Result<PreparedQuery> QueryEngine::PrepareAdmitted(const std::string& sql,
                                                   uint64_t id) const {
  QueryGuards guards = GuardsFor(id);
  // Possibly shrunk by the scheduler's overload ladder (budget_factor < 1
  // when this query was admitted off a backed-up tenant queue).
  OptimizerBudget budget = BudgetFor(id);
  if (plan_cache_ == nullptr) return PrepareUncached(sql, budget, guards);

  double t0 = MonotonicMs();
  auto parsed = ParseSql(sql);
  if (!parsed.ok()) return parsed.status();
  ParameterizedStatement ps = ParameterizeQuery(parsed.value().get());
  // Captured before optimization: if Analyze() runs concurrently the entry
  // is cached under the old epoch and lazily invalidated on its next lookup.
  uint64_t epoch = db_.stats_epoch();

  // Selectivity bands of the statement's literal values (lazy: only needed
  // when a cached/imported candidate exists or a fresh entry is built).
  std::vector<int> bands;
  bool bands_computed = false;
  auto current_bands = [&]() -> const std::vector<int>& {
    if (!bands_computed) {
      bands = ComputeParamBands(*parsed.value(), ps.params.size(),
                                db_.catalog(), db_.stats());
      bands_computed = true;
    }
    return bands;
  };

  auto serve = [&](const std::shared_ptr<const CachedPlanEntry>& e,
                   bool from_store) {
    PreparedQuery out;
    out.tree = e->tree->Clone();
    BindTreeParams(out.tree.get(), ps.params);
    out.plan = e->plan->Clone();
    RebindPlanParams(out.plan.get(), ps.params);
    out.cost = e->cost;
    out.stats = e->stats;
    out.from_plan_cache = true;
    out.from_plan_store = from_store;
    out.degraded = e->degraded;
    out.optimize_ms = MonotonicMs() - t0;
    plan_cache_->RecordHitLatency(out.optimize_ms);
    return out;
  };

  auto entry = plan_cache_->Find(ps.key, epoch);
  if (entry != nullptr) {
    if (ps.params.empty() || current_bands() == entry->param_bands) {
      MaybeUpgrade(entry, epoch);
      return serve(entry, false);
    }
    // Cardinality-aware re-binding: the re-bound literals land in a
    // different selectivity band than the plan was optimized for — blind
    // reuse risks a badly mis-costed plan, so re-cost from scratch (the
    // fresh Put below replaces the entry, re-centering its bands).
    plan_cache_->RecordRebindRecost();
  } else if (plan_store_ != nullptr) {
    // Local miss: try a peer's published plan before paying for the search.
    auto peer = plan_store_->Import(ps.key, epoch, guards.cancel);
    if (!peer.ok()) {
      // Cancellation must unwind; a corrupt store just means no sharing.
      if (IsGuardrailAbort(peer.status().code())) return peer.status();
    } else if (*peer != nullptr) {
      if (ps.params.empty() || current_bands() == (*peer)->param_bands) {
        plan_cache_->Put(*peer);
        plan_cache_->RecordStoreImport();
        return serve(*peer, true);
      }
      plan_cache_->RecordStoreStale();
    }
  }

  auto optimized = OptimizeTree(*parsed.value(), budget, guards);
  if (!optimized.ok()) return optimized.status();
  // A cancelled or memory-failed optimization returned above — only fully
  // successful plans are published, so guardrail unwinds can never leak a
  // partial result into the cache.

  auto fresh = std::make_shared<CachedPlanEntry>();
  fresh->key = std::move(ps.key);
  fresh->stats_epoch = epoch;
  fresh->tree = optimized->tree->Clone();
  fresh->plan = optimized->plan->Clone();
  fresh->source_tree = parsed.value()->Clone();
  fresh->cost = optimized->cost;
  fresh->stats = optimized->stats;
  fresh->num_params = ps.params.size();
  if (!ps.params.empty()) fresh->param_bands = current_bands();
  fresh->degraded = IsDegraded(fresh->stats);
  fresh->planned_budget = budget;
  fresh->bytes = EstimateEntryBytes(*fresh);
  if (plan_store_ != nullptr && !fresh->degraded) {
    // Share the search result with peer instances. Best effort: a store
    // write failure only costs the sharing, never the query.
    if (plan_store_->Publish(*fresh).ok()) plan_cache_->RecordStorePublish();
  }
  plan_cache_->Put(std::move(fresh));

  PreparedQuery out;
  out.tree = std::move(optimized->tree);
  out.plan = std::move(optimized->plan);
  out.cost = optimized->cost;
  out.stats = std::move(optimized->stats);
  out.degraded = IsDegraded(out.stats);
  out.optimize_ms = MonotonicMs() - t0;
  plan_cache_->RecordMissLatency(out.optimize_ms);
  return out;
}

Result<QueryResult> QueryEngine::ExecuteAdmitted(PreparedQuery prepared,
                                                 uint64_t id) const {
  QueryGuards guards = GuardsFor(id);
  // Row-budget governor for this execution (OptimizerBudget::max_exec_rows):
  // a runaway query fails fast with kBudgetExhausted instead of grinding on.
  BudgetTracker exec_budget(config_.budget);
  ExecOptions opts = config_.exec;
  opts.budget = config_.budget.max_exec_rows > 0 ? &exec_budget : nullptr;
  opts.guards = guards;
  if (mqo_ != nullptr && config_.mqo.share_scans) {
    opts.shared_scans = mqo_->hub();
  }
  Executor executor(db_, std::move(opts));
  double t0 = MonotonicMs();
  auto result = executor.Execute(*prepared.plan);
  double t1 = MonotonicMs();
  if (!result.ok()) return result.status();
  QueryResult out;
  out.rows = std::move(result.value().rows);
  out.prepared = std::move(prepared);
  out.execute_ms = t1 - t0;
  out.exec = result.value().stats;
  out.rows_processed = out.exec.rows_processed;
  if (guards.memory != nullptr) {
    out.peak_memory_bytes = guards.memory->peak_bytes();
  }
  return out;
}

Result<PreparedQuery> QueryEngine::Prepare(const std::string& sql,
                                           CancellationToken* cancel) const {
  QueryOptions opts;
  opts.cancel = cancel;
  return Prepare(sql, opts);
}

Result<QueryResult> QueryEngine::Execute(PreparedQuery prepared,
                                         CancellationToken* cancel) const {
  QueryOptions opts;
  opts.cancel = cancel;
  return Execute(std::move(prepared), opts);
}

Result<QueryResult> QueryEngine::Run(const std::string& sql,
                                     CancellationToken* cancel) const {
  QueryOptions opts;
  opts.cancel = cancel;
  return Run(sql, opts);
}

Result<PreparedQuery> QueryEngine::Prepare(const std::string& sql,
                                           const QueryOptions& opts) const {
  auto admitted = Admit(opts.cancel, opts.tenant);
  if (!admitted.ok()) return admitted.status();
  AdmissionScope scope(*admitted, [this](uint64_t id, const Status& s) {
    EndQuery(id, s);
  });
  auto db_lock = db_.ReadLock();
  auto out = PrepareAdmitted(sql, *admitted);
  scope.set_status(out.status());
  return out;
}

Result<QueryResult> QueryEngine::Execute(PreparedQuery prepared,
                                         const QueryOptions& opts) const {
  auto admitted = Admit(opts.cancel, opts.tenant);
  if (!admitted.ok()) return admitted.status();
  AdmissionScope scope(*admitted, [this](uint64_t id, const Status& s) {
    EndQuery(id, s);
  });
  auto db_lock = db_.ReadLock();
  auto out = ExecuteAdmitted(std::move(prepared), *admitted);
  scope.set_status(out.status());
  return out;
}

Result<QueryResult> QueryEngine::Run(const std::string& sql,
                                     const QueryOptions& opts) const {
  // One admission slot and one per-query memory tracker cover the whole
  // prepare + execute pipeline.
  auto admitted = Admit(opts.cancel, opts.tenant);
  if (!admitted.ok()) return admitted.status();
  AdmissionScope scope(*admitted, [this](uint64_t id, const Status& s) {
    EndQuery(id, s);
  });
  auto db_lock = db_.ReadLock();
  auto prepared = PrepareAdmitted(sql, *admitted);
  if (!prepared.ok()) {
    scope.set_status(prepared.status());
    return prepared.status();
  }
  auto out = ExecuteAdmitted(std::move(prepared.value()), *admitted);
  scope.set_status(out.status());
  return out;
}

}  // namespace cbqt
