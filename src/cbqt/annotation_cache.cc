#include "cbqt/annotation_cache.h"

namespace cbqt {

const CostAnnotation* AnnotationCache::Find(
    const std::string& signature) const {
  auto it = cache_.find(signature);
  if (it == cache_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void AnnotationCache::Put(const std::string& signature,
                          CostAnnotation annotation) {
  cache_[signature] = std::move(annotation);
}

void AnnotationCache::Clear() {
  cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace cbqt
