#include "cbqt/annotation_cache.h"

#include <algorithm>

namespace cbqt {

namespace {

/// Estimated footprint of one cached annotation: the entry struct, the key
/// string, the out-stats, and the memoized plan tree.
int64_t EstimateEntryBytes(std::string_view signature,
                           const CostAnnotation& annotation) {
  int64_t bytes = static_cast<int64_t>(sizeof(CostAnnotation)) +
                  static_cast<int64_t>(signature.size()) +
                  static_cast<int64_t>(annotation.exact_sql.size());
  if (annotation.plan != nullptr) bytes += annotation.plan->EstimateBytes();
  return bytes;
}

}  // namespace

AnnotationCache::AnnotationCache(int num_shards, size_t capacity,
                                 MemoryTracker* tracker)
    : capacity_(capacity), tracker_(tracker) {
  int n = std::max(1, num_shards);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (capacity_ > 0) {
    shard_capacity_ =
        std::max<size_t>(1, capacity_ / static_cast<size_t>(n));
  }
}

AnnotationCache::~AnnotationCache() {
  if (tracker_ != nullptr) {
    int64_t held = memory_bytes_.load(std::memory_order_relaxed);
    if (held > 0) tracker_->Release(held);
  }
}

AnnotationCache::Shard& AnnotationCache::ShardFor(
    std::string_view signature) const {
  size_t h = std::hash<std::string_view>{}(signature);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CostAnnotation> AnnotationCache::Find(
    std::string_view signature) const {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(signature);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.annotation;
}

void AnnotationCache::Put(std::string_view signature,
                          CostAnnotation annotation) {
  int64_t entry_bytes =
      tracker_ != nullptr ? EstimateEntryBytes(signature, annotation) : 0;
  auto entry =
      std::make_shared<const CostAnnotation>(std::move(annotation));
  Shard& shard = ShardFor(signature);
  int64_t delta = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(signature);
    if (it != shard.map.end()) {
      delta = entry_bytes - it->second.bytes;
      it->second.annotation = std::move(entry);
      it->second.bytes = entry_bytes;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    } else {
      auto pos = shard.map.try_emplace(std::string(signature)).first;
      pos->second.annotation = std::move(entry);
      pos->second.bytes = entry_bytes;
      shard.lru.push_front(&pos->first);
      pos->second.lru_it = shard.lru.begin();
      delta = entry_bytes;
      if (shard_capacity_ > 0 && shard.map.size() > shard_capacity_) {
        const std::string* victim = shard.lru.back();
        shard.lru.pop_back();
        auto vit = shard.map.find(*victim);
        delta -= vit->second.bytes;
        shard.map.erase(vit);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (tracker_ != nullptr && delta != 0) {
    // ForceReserve: cache growth must not fail an insert mid-structure; the
    // shared tracker's next TryReserve is the enforcement point.
    if (delta > 0) {
      tracker_->ForceReserve(delta);
    } else {
      tracker_->Release(-delta);
    }
    memory_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }
}

void AnnotationCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  int64_t held = memory_bytes_.exchange(0, std::memory_order_relaxed);
  if (tracker_ != nullptr && held > 0) tracker_->Release(held);
}

size_t AnnotationCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace cbqt
