#include "cbqt/annotation_cache.h"

#include <algorithm>
#include <functional>

namespace cbqt {

AnnotationCache::AnnotationCache(int num_shards) {
  int n = std::max(1, num_shards);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

AnnotationCache::Shard& AnnotationCache::ShardFor(
    const std::string& signature) const {
  size_t h = std::hash<std::string>{}(signature);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CostAnnotation> AnnotationCache::Find(
    const std::string& signature) const {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(signature);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void AnnotationCache::Put(const std::string& signature,
                          CostAnnotation annotation) {
  auto entry =
      std::make_shared<const CostAnnotation>(std::move(annotation));
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map[signature] = std::move(entry);
}

void AnnotationCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t AnnotationCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace cbqt
