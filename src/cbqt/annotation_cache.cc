#include "cbqt/annotation_cache.h"

#include <algorithm>

namespace cbqt {

AnnotationCache::AnnotationCache(int num_shards, size_t capacity)
    : capacity_(capacity) {
  int n = std::max(1, num_shards);
  shards_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (capacity_ > 0) {
    shard_capacity_ =
        std::max<size_t>(1, capacity_ / static_cast<size_t>(n));
  }
}

AnnotationCache::Shard& AnnotationCache::ShardFor(
    std::string_view signature) const {
  size_t h = std::hash<std::string_view>{}(signature);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const CostAnnotation> AnnotationCache::Find(
    std::string_view signature) const {
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(signature);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.annotation;
}

void AnnotationCache::Put(std::string_view signature,
                          CostAnnotation annotation) {
  auto entry =
      std::make_shared<const CostAnnotation>(std::move(annotation));
  Shard& shard = ShardFor(signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(signature);
  if (it != shard.map.end()) {
    it->second.annotation = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return;
  }
  auto pos = shard.map.try_emplace(std::string(signature)).first;
  pos->second.annotation = std::move(entry);
  shard.lru.push_front(&pos->first);
  pos->second.lru_it = shard.lru.begin();
  if (shard_capacity_ > 0 && shard.map.size() > shard_capacity_) {
    const std::string* victim = shard.lru.back();
    shard.lru.pop_back();
    shard.map.erase(shard.map.find(*victim));
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AnnotationCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->lru.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
}

size_t AnnotationCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

}  // namespace cbqt
