#ifndef CBQT_CBQT_ENGINE_H_
#define CBQT_CBQT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cbqt/framework.h"
#include "cbqt/plan_cache.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// A query that went through parse → bind → cost-based transformation →
/// physical planning and is ready to execute.
struct PreparedQuery {
  std::unique_ptr<QueryBlock> tree;  ///< the chosen (transformed) query tree
  std::unique_ptr<PlanNode> plan;    ///< its physical plan
  double cost = 0;                   ///< estimated cost of `plan`
  CbqtStats stats;                   ///< CBQT telemetry
  double optimize_ms = 0;            ///< wall time of parse + CBQT + planning
  bool from_plan_cache = false;      ///< served from the engine plan cache
  /// Planned under a tripped OptimizerBudget (the plan cache's upgrade path
  /// re-optimizes such statements once they prove hot).
  bool degraded = false;
};

/// One end-to-end query execution.
struct QueryResult {
  std::vector<Row> rows;
  PreparedQuery prepared;      ///< the plan the rows were produced from
  double execute_ms = 0;       ///< wall time of execution
  int64_t rows_processed = 0;  ///< rows pushed through operators (work units)
};

/// The public facade over the whole pipeline — the one place that wires
/// parse → bind → CBQT → physical plan → execute together. Examples,
/// benches, the workload runner, and downstream users all go through this;
/// nothing else should re-assemble the pipeline by hand.
///
/// A QueryEngine is immutable after construction and safe to share across
/// threads for concurrent Prepare/Run calls; the CbqtConfig fixed at
/// construction covers transformation selection, search strategy,
/// intra-query parallelism (CbqtConfig::num_threads), and the plan cache
/// (CbqtConfig::plan_cache — off by default).
///
/// With the plan cache enabled, Prepare parameterizes the statement's
/// literals (sql/parameterize.h) and serves repeats of the same shape from
/// the cache, re-binding the literal values into a clone of the cached plan.
/// Entries are pinned to the Database stats epoch and invalidated lazily
/// after a stats refresh; entries planned under a tripped OptimizerBudget
/// are re-optimized with an enlarged budget once hot (budget upgrade).
class QueryEngine {
 public:
  explicit QueryEngine(const Database& db, CbqtConfig config = {},
                       CostParams params = {});

  /// Parses, transforms, and plans `sql` without executing it.
  Result<PreparedQuery> Prepare(const std::string& sql) const;

  /// Executes a previously prepared query (consumes it; the prepared query
  /// is returned inside the result for plan/stats inspection).
  Result<QueryResult> Execute(PreparedQuery prepared) const;

  /// Prepare + Execute in one call.
  Result<QueryResult> Run(const std::string& sql) const;

  const Database& db() const { return db_; }
  const CbqtConfig& config() const { return config_; }

  bool plan_cache_enabled() const { return plan_cache_ != nullptr; }
  /// Telemetry of the plan cache; all-zero when the cache is disabled.
  PlanCacheStats plan_cache_stats() const;

  /// Blocks until every background budget-upgrade scheduled so far has
  /// finished (re-optimized and republished, or burned its attempt). Used by
  /// tests and benches for deterministic observation; production callers
  /// never need it — hits keep serving the degraded plan until the upgraded
  /// entry lands.
  void WaitForUpgrades() const;

 private:
  /// The historical Prepare path: parse + optimize, no cache involvement.
  Result<PreparedQuery> PrepareUncached(const std::string& sql) const;

  /// Budget-upgrade ladder: called on every cache hit. For a degraded entry
  /// that has accumulated enough hits (and attempts remain), wins the
  /// per-entry CAS gate and schedules RunUpgrade on the engine's background
  /// pool — the serving thread returns the degraded entry immediately
  /// instead of paying for the re-optimization inline.
  void MaybeUpgrade(const std::shared_ptr<const CachedPlanEntry>& entry,
                    uint64_t epoch) const;

  /// The actual upgrade (runs on upgrade_pool_): re-optimizes the entry's
  /// parameterized statement under the enlarged budget and atomically
  /// replaces the cache entry; on failure keeps the degraded plan but burns
  /// the attempt.
  void RunUpgrade(std::shared_ptr<const CachedPlanEntry> entry,
                  uint64_t epoch) const;

  const Database& db_;
  CbqtOptimizer optimizer_;
  CbqtConfig config_;
  /// Null when CbqtConfig::plan_cache is disabled. Mutable state lives in
  /// the cache itself (sharded mutexes + atomics), so const Prepare stays
  /// thread-safe.
  std::unique_ptr<PlanCache> plan_cache_;
  /// Background worker for budget upgrades; null when the plan cache is
  /// disabled. Declared last so it is destroyed first: the destructor drains
  /// in-flight upgrades while plan_cache_ and optimizer_ are still alive.
  std::unique_ptr<ThreadPool> upgrade_pool_;
};

}  // namespace cbqt

#endif  // CBQT_CBQT_ENGINE_H_
