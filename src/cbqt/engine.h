#ifndef CBQT_CBQT_ENGINE_H_
#define CBQT_CBQT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cbqt/framework.h"
#include "common/status.h"
#include "common/value.h"
#include "exec/executor.h"
#include "optimizer/cost_model.h"
#include "optimizer/plan.h"
#include "sql/query_block.h"
#include "storage/database.h"

namespace cbqt {

/// A query that went through parse → bind → cost-based transformation →
/// physical planning and is ready to execute.
struct PreparedQuery {
  std::unique_ptr<QueryBlock> tree;  ///< the chosen (transformed) query tree
  std::unique_ptr<PlanNode> plan;    ///< its physical plan
  double cost = 0;                   ///< estimated cost of `plan`
  CbqtStats stats;                   ///< CBQT telemetry
  double optimize_ms = 0;            ///< wall time of parse + CBQT + planning
};

/// One end-to-end query execution.
struct QueryResult {
  std::vector<Row> rows;
  PreparedQuery prepared;      ///< the plan the rows were produced from
  double execute_ms = 0;       ///< wall time of execution
  int64_t rows_processed = 0;  ///< rows pushed through operators (work units)
};

/// The public facade over the whole pipeline — the one place that wires
/// parse → bind → CBQT → physical plan → execute together. Examples,
/// benches, the workload runner, and downstream users all go through this;
/// nothing else should re-assemble the pipeline by hand.
///
/// A QueryEngine is immutable after construction and safe to share across
/// threads for concurrent Prepare/Run calls; the CbqtConfig fixed at
/// construction covers transformation selection, search strategy, and
/// intra-query parallelism (CbqtConfig::num_threads).
class QueryEngine {
 public:
  explicit QueryEngine(const Database& db, CbqtConfig config = {},
                       CostParams params = {})
      : db_(db), optimizer_(db, config, params), config_(config) {}

  /// Parses, transforms, and plans `sql` without executing it.
  Result<PreparedQuery> Prepare(const std::string& sql) const;

  /// Executes a previously prepared query (consumes it; the prepared query
  /// is returned inside the result for plan/stats inspection).
  Result<QueryResult> Execute(PreparedQuery prepared) const;

  /// Prepare + Execute in one call.
  Result<QueryResult> Run(const std::string& sql) const;

  const Database& db() const { return db_; }
  const CbqtConfig& config() const { return config_; }

 private:
  const Database& db_;
  CbqtOptimizer optimizer_;
  CbqtConfig config_;
};

}  // namespace cbqt

#endif  // CBQT_CBQT_ENGINE_H_
